//! Sharded, capacity-bounded plan cache with single-flight builds.
//!
//! Preprocessing dominates a one-shot solve (the paper's Table 5 puts it at
//! ≈ 9× one SpTRSV), so the cache's job is to make sure each distinct matrix
//! is preprocessed **once** no matter how many threads ask concurrently:
//! the first requester installs a `Building` slot and runs the build outside
//! every lock; the rest find the slot and wait on its condvar. Plans are
//! keyed by structure *and* values — a [`recblock::RecBlockSolver`] embeds
//! the factor's numeric entries, so a structure-only key would alias
//! matrices that solve differently.
//!
//! Capacity is enforced per shard with least-recently-used eviction;
//! in-flight (`Building`) entries are never chosen as victims.

use crate::error::ServeError;
use crate::metrics::Metrics;
use recblock::RecBlockSolver;
use recblock_matrix::Scalar;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Cache/store key: structural fingerprint plus a digest of the numeric
/// values. Defined by `recblock-store` so in-memory cache and on-disk
/// store index plans identically; re-exported here for API stability.
pub use recblock_store::PlanKey;

/// Where a resolved plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Already resident in the in-memory cache (or joined an in-flight
    /// resolution of the same key).
    Cache,
    /// Deserialized from the persistent plan store.
    Store,
    /// Preprocessed from scratch.
    Built,
}

/// What a fetch closure produced on a cache miss — distinguished so the
/// metrics can tell preprocessing runs from store loads.
pub enum Fetched<S> {
    /// The plan was preprocessed from scratch.
    Built(RecBlockSolver<S>),
    /// The plan was loaded from the persistent store.
    Loaded(RecBlockSolver<S>),
}

enum SlotState<S> {
    Building,
    Ready(Arc<RecBlockSolver<S>>),
    Failed(String),
}

struct Slot<S> {
    state: Mutex<SlotState<S>>,
    cv: Condvar,
}

struct Entry<S> {
    slot: Arc<Slot<S>>,
    /// Logical LRU timestamp (global tick at last touch).
    stamp: u64,
}

type Shard<S> = HashMap<PlanKey, Entry<S>>;

/// Sharded LRU of preprocessed plans. See the module docs.
pub struct PlanCache<S> {
    shards: Vec<Mutex<Shard<S>>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    metrics: Arc<Metrics>,
}

impl<S: Scalar> PlanCache<S> {
    pub(crate) fn new(capacity: usize, shards: usize, metrics: Arc<Metrics>) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        PlanCache {
            per_shard_capacity: capacity.div_ceil(shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            tick: AtomicU64::new(0),
            metrics,
        }
    }

    fn shard_of(&self, key: &PlanKey) -> &Mutex<Shard<S>> {
        let h = key.structure.hash ^ key.values.rotate_left(17);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Plans currently resident (including in-flight builds).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys of every resident plan (including in-flight builds), in no
    /// particular order. A point-in-time copy — entries may be evicted or
    /// added while the caller iterates. The cluster tier uses this to
    /// enumerate what a draining node must hand off.
    pub fn keys(&self) -> Vec<PlanKey> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().keys().copied());
        }
        out
    }

    /// Return the cached plan for `key`, building it with `build` on a miss.
    ///
    /// Exactly one caller runs `build` per resident key; concurrent callers
    /// block until that build resolves. A failed build is not cached — the
    /// error is reported to everyone waiting, then the next request retries.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<RecBlockSolver<S>, recblock_matrix::MatrixError>,
    ) -> Result<Arc<RecBlockSolver<S>>, ServeError> {
        self.get_or_fetch(key, || build().map(Fetched::Built)).map(|(plan, _)| plan)
    }

    /// As [`PlanCache::get_or_build`], but the closure may resolve the miss
    /// either by preprocessing (`Fetched::Built`, counted as a plan build)
    /// or by loading a persisted plan (`Fetched::Loaded`, not counted —
    /// the store tier records its own metrics). Also reports where the
    /// returned plan came from.
    pub fn get_or_fetch(
        &self,
        key: PlanKey,
        fetch: impl FnOnce() -> Result<Fetched<S>, recblock_matrix::MatrixError>,
    ) -> Result<(Arc<RecBlockSolver<S>>, PlanSource), ServeError> {
        let stamp = self.tick.fetch_add(1, Relaxed);
        let slot = {
            let mut shard = self.shard_of(&key).lock().unwrap();
            if let Some(entry) = shard.get_mut(&key) {
                entry.stamp = stamp;
                self.metrics.cache_hits.fetch_add(1, Relaxed);
                let slot = entry.slot.clone();
                drop(shard);
                return self.wait_ready(&slot).map(|plan| (plan, PlanSource::Cache));
            }
            self.metrics.cache_misses.fetch_add(1, Relaxed);
            let slot =
                Arc::new(Slot { state: Mutex::new(SlotState::Building), cv: Condvar::new() });
            shard.insert(key, Entry { slot: slot.clone(), stamp });
            self.evict_over_capacity(&mut shard, &key);
            slot
        };

        let t0 = Instant::now();
        let built = fetch();
        let elapsed = t0.elapsed();
        match built {
            Ok(fetched) => {
                let (solver, source) = match fetched {
                    Fetched::Built(s) => {
                        self.metrics.plan_builds.fetch_add(1, Relaxed);
                        self.metrics.preprocess_ns.fetch_add(elapsed.as_nanos() as u64, Relaxed);
                        (s, PlanSource::Built)
                    }
                    Fetched::Loaded(s) => (s, PlanSource::Store),
                };
                let plan = Arc::new(solver);
                let mut state = slot.state.lock().unwrap();
                *state = SlotState::Ready(plan.clone());
                drop(state);
                slot.cv.notify_all();
                Ok((plan, source))
            }
            Err(e) => {
                let msg = e.to_string();
                let mut state = slot.state.lock().unwrap();
                *state = SlotState::Failed(msg.clone());
                drop(state);
                slot.cv.notify_all();
                // Un-cache the failure so a later submit retries the build.
                let mut shard = self.shard_of(&key).lock().unwrap();
                if let Some(entry) = shard.get(&key) {
                    if Arc::ptr_eq(&entry.slot, &slot) {
                        shard.remove(&key);
                    }
                }
                Err(ServeError::PlanBuild(msg))
            }
        }
    }

    /// Look up `key` without resolving a miss: a resident plan (or the
    /// result of an in-flight build, once it lands) is returned and counted
    /// as a cache hit; an absent key returns `None` and counts nothing —
    /// the caller decides how (or whether) to resolve it. This is the probe
    /// the network tier uses: it can only *fetch* plans (cache, then
    /// store), never build them, because a wire request carries the matrix
    /// fingerprint but not the matrix.
    pub fn probe(&self, key: PlanKey) -> Option<Result<Arc<RecBlockSolver<S>>, ServeError>> {
        let stamp = self.tick.fetch_add(1, Relaxed);
        let slot = {
            let mut shard = self.shard_of(&key).lock().unwrap();
            let entry = shard.get_mut(&key)?;
            entry.stamp = stamp;
            entry.slot.clone()
        };
        self.metrics.cache_hits.fetch_add(1, Relaxed);
        Some(self.wait_ready(&slot))
    }

    /// Install an already-resolved plan (warm-start path). Does not count
    /// as a hit or a miss; respects capacity like any other insertion. An
    /// existing entry for `key` is left untouched — the resident plan (or
    /// in-flight build) wins.
    pub fn insert(&self, key: PlanKey, plan: Arc<RecBlockSolver<S>>) {
        let stamp = self.tick.fetch_add(1, Relaxed);
        let mut shard = self.shard_of(&key).lock().unwrap();
        if shard.contains_key(&key) {
            return;
        }
        let slot = Arc::new(Slot { state: Mutex::new(SlotState::Ready(plan)), cv: Condvar::new() });
        shard.insert(key, Entry { slot, stamp });
        self.evict_over_capacity(&mut shard, &key);
    }

    /// Install `plan` for `key`, displacing any resident entry — the
    /// canary tuner's winner-install path, where the *new* plan must win
    /// (unlike [`PlanCache::insert`]). An entry mid-build is left alone:
    /// replacing its slot would strand the builder's waiters, and the
    /// tuner will simply retune the freshly built plan later. Returns
    /// whether the plan was installed.
    pub fn replace(&self, key: PlanKey, plan: Arc<RecBlockSolver<S>>) -> bool {
        let stamp = self.tick.fetch_add(1, Relaxed);
        let mut shard = self.shard_of(&key).lock().unwrap();
        if let Some(entry) = shard.get(&key) {
            let building = entry
                .slot
                .state
                .try_lock()
                .map(|s| matches!(*s, SlotState::Building))
                .unwrap_or(true);
            if building {
                return false;
            }
        }
        let slot = Arc::new(Slot { state: Mutex::new(SlotState::Ready(plan)), cv: Condvar::new() });
        shard.insert(key, Entry { slot, stamp });
        self.evict_over_capacity(&mut shard, &key);
        true
    }

    fn wait_ready(&self, slot: &Slot<S>) -> Result<Arc<RecBlockSolver<S>>, ServeError> {
        let mut state = slot.state.lock().unwrap();
        loop {
            match &*state {
                SlotState::Ready(plan) => {
                    self.metrics
                        .preprocess_saved_ns
                        .fetch_add(plan.preprocess_time().as_nanos() as u64, Relaxed);
                    return Ok(plan.clone());
                }
                SlotState::Failed(msg) => return Err(ServeError::PlanBuild(msg.clone())),
                SlotState::Building => state = slot.cv.wait(state).unwrap(),
            }
        }
    }

    /// Evict least-recently-used resolved entries until the shard fits.
    /// `Building` entries are skipped: their builder and waiters hold the
    /// slot regardless, and evicting one would only duplicate the build.
    fn evict_over_capacity(&self, shard: &mut Shard<S>, keep: &PlanKey) {
        while shard.len() > self.per_shard_capacity {
            let victim = shard
                .iter()
                .filter(|(k, entry)| {
                    *k != keep
                        && entry
                            .slot
                            .state
                            .try_lock()
                            .map(|s| !matches!(*s, SlotState::Building))
                            .unwrap_or(false)
                })
                .min_by_key(|(_, entry)| entry.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    shard.remove(&k);
                    self.metrics.cache_evictions.fetch_add(1, Relaxed);
                }
                // Everything else is mid-build; tolerate transient overshoot.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock::SolverOptions;
    use recblock_matrix::{generate, Csr};

    fn cache(capacity: usize, shards: usize) -> (PlanCache<f64>, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::default());
        (PlanCache::new(capacity, shards, metrics.clone()), metrics)
    }

    fn build_for(l: &Csr<f64>) -> Result<RecBlockSolver<f64>, recblock_matrix::MatrixError> {
        RecBlockSolver::new(l, SolverOptions::default())
    }

    #[test]
    fn hit_returns_same_plan_without_rebuild() {
        let (cache, metrics) = cache(4, 2);
        let l = generate::random_lower::<f64>(200, 3.0, 31);
        let key = PlanKey::of(&l);
        let p1 = cache.get_or_build(key, || build_for(&l)).unwrap();
        let p2 = cache.get_or_build(key, || panic!("must not rebuild")).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(metrics.plan_builds.load(Relaxed), 1);
        assert_eq!(metrics.cache_hits.load(Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Relaxed), 1);
    }

    #[test]
    fn value_change_is_a_different_key() {
        let l = generate::random_lower::<f64>(100, 3.0, 32);
        let mut l2 = l.clone();
        let v0 = l2.vals()[0];
        l2.vals_mut()[0] = v0 * 3.0;
        assert_ne!(PlanKey::of(&l), PlanKey::of(&l2));
        assert_eq!(PlanKey::of(&l).structure, PlanKey::of(&l2).structure);
    }

    #[test]
    fn lru_eviction_under_tiny_capacity() {
        // Single shard so the LRU order is global and deterministic.
        let (cache, metrics) = cache(2, 1);
        let mats: Vec<_> =
            (0..3).map(|i| generate::random_lower::<f64>(120 + i, 3.0, 40 + i as u64)).collect();
        for m in &mats {
            cache.get_or_build(PlanKey::of(m), || build_for(m)).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(metrics.cache_evictions.load(Relaxed), 1);
        // mats[0] was evicted (least recently used) → rebuilding it is a miss.
        cache.get_or_build(PlanKey::of(&mats[0]), || build_for(&mats[0])).unwrap();
        assert_eq!(metrics.cache_misses.load(Relaxed), 4);
        // mats[2] is still resident → hit.
        cache.get_or_build(PlanKey::of(&mats[2]), || panic!("mats[2] should be cached")).unwrap();
        assert_eq!(metrics.cache_hits.load(Relaxed), 1);
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let (cache, _metrics) = cache(2, 1);
        let a = generate::random_lower::<f64>(100, 3.0, 50);
        let b = generate::random_lower::<f64>(101, 3.0, 51);
        let c = generate::random_lower::<f64>(102, 3.0, 52);
        cache.get_or_build(PlanKey::of(&a), || build_for(&a)).unwrap();
        cache.get_or_build(PlanKey::of(&b), || build_for(&b)).unwrap();
        // Touch `a`, making `b` the LRU victim when `c` arrives.
        cache.get_or_build(PlanKey::of(&a), || panic!("a is cached")).unwrap();
        cache.get_or_build(PlanKey::of(&c), || build_for(&c)).unwrap();
        cache.get_or_build(PlanKey::of(&a), || panic!("a must survive")).unwrap();
    }

    #[test]
    fn failed_build_reported_and_retried() {
        let (cache, metrics) = cache(4, 1);
        let l = generate::random_lower::<f64>(80, 3.0, 60);
        let key = PlanKey::of(&l);
        let err = cache
            .get_or_build(key, || Err(recblock_matrix::MatrixError::SingularDiagonal { row: 0 }))
            .unwrap_err();
        assert!(matches!(err, ServeError::PlanBuild(_)));
        assert!(cache.is_empty(), "failures are not cached");
        // Retry succeeds and builds fresh.
        cache.get_or_build(key, || build_for(&l)).unwrap();
        assert_eq!(metrics.plan_builds.load(Relaxed), 1);
    }

    #[test]
    fn replace_displaces_resident_plan_insert_does_not() {
        let (cache, _metrics) = cache(4, 1);
        let l = generate::random_lower::<f64>(150, 3.0, 33);
        let key = PlanKey::of(&l);
        let p1 = cache.get_or_build(key, || build_for(&l)).unwrap();
        // `insert` defers to the resident plan…
        cache.insert(key, Arc::new(build_for(&l).unwrap()));
        assert!(Arc::ptr_eq(&p1, &cache.probe(key).unwrap().unwrap()));
        // …while `replace` displaces it.
        let tuned = Arc::new(build_for(&l).unwrap());
        assert!(cache.replace(key, tuned.clone()));
        assert!(Arc::ptr_eq(&tuned, &cache.probe(key).unwrap().unwrap()));
    }

    #[test]
    fn single_flight_under_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let (cache, metrics) = cache(4, 2);
        let l = generate::random_lower::<f64>(400, 4.0, 61);
        let key = PlanKey::of(&l);
        let builds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let plan = cache
                        .get_or_build(key, || {
                            builds.fetch_add(1, Relaxed);
                            // Widen the race window so waiters really wait.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            build_for(&l)
                        })
                        .unwrap();
                    assert_eq!(plan.n(), 400);
                });
            }
        });
        assert_eq!(builds.load(Relaxed), 1, "exactly one thread builds");
        assert_eq!(metrics.plan_builds.load(Relaxed), 1);
        assert_eq!(metrics.cache_hits.load(Relaxed) + metrics.cache_misses.load(Relaxed), 8);
    }
}
