//! Figure 6: GFlops of the three methods on the 159-matrix corpus, on both
//! devices, plus the speedup summary (the paper: block is on average 4.72×
//! over cuSPARSE and 9.95× over Sync-free, up to 72.03× / 61.08×, and
//! "almost never slower").

use crate::corpus::{corpus_scaled, CorpusEntry};
use crate::harness::{evaluate_methods_with, fmt_gf, fmt_x, HarnessConfig, Table};
use recblock_gpu_sim::TriProfile;
use recblock_matrix::levelset::LevelSets;

/// One matrix's evaluation on one device.
#[derive(Debug, Clone)]
pub struct Figure6Row {
    /// Matrix name.
    pub name: String,
    /// Rows.
    pub n: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Level count.
    pub nlevels: usize,
    /// GFlops (cuSPARSE, Sync-free, block).
    pub gflops: (f64, f64, f64),
    /// Speedups of block (vs cuSPARSE, vs Sync-free).
    pub speedups: (f64, f64),
}

/// Aggregate statistics per device.
#[derive(Debug, Clone)]
pub struct Figure6Summary {
    /// Device name.
    pub device: String,
    /// Arithmetic mean speedup vs cuSPARSE.
    pub avg_vs_cusparse: f64,
    /// Max speedup vs cuSPARSE.
    pub max_vs_cusparse: f64,
    /// Arithmetic mean speedup vs Sync-free.
    pub avg_vs_syncfree: f64,
    /// Max speedup vs Sync-free.
    pub max_vs_syncfree: f64,
    /// Matrices where block was slower than the best competitor by > 10%.
    pub slower_count: usize,
    /// Total matrices.
    pub total: usize,
}

/// Evaluate the corpus (optionally shrunken for tests) on every device.
pub fn evaluate(
    cfg: &HarnessConfig,
    extra_shrink: usize,
) -> Vec<(Vec<Figure6Row>, Figure6Summary)> {
    let entries = corpus_scaled(extra_shrink);
    let mut per_device = Vec::new();
    for dev in &cfg.devices {
        let mut rows = Vec::with_capacity(entries.len());
        for entry in &entries {
            rows.push(eval_entry(entry, dev, cfg));
        }
        rows.sort_by_key(|r: &Figure6Row| r.nnz);
        let summary = summarise(dev.name, &rows);
        per_device.push((rows, summary));
    }
    per_device
}

fn eval_entry(
    entry: &CorpusEntry,
    dev: &recblock_gpu_sim::DeviceSpec,
    cfg: &HarnessConfig,
) -> Figure6Row {
    let l = entry.build::<f64>();
    let levels = LevelSets::analyse_unchecked(&l);
    let profile = TriProfile::analyse(&l, &levels);
    let blocked = crate::harness::build_blocked(&l, dev, cfg);
    let eval = evaluate_methods_with(&profile, &blocked, l.nrows(), 8, dev, cfg);
    Figure6Row {
        name: entry.name.clone(),
        n: l.nrows(),
        nnz: l.nnz(),
        nlevels: levels.nlevels(),
        gflops: eval.gflops(),
        speedups: eval.speedups(),
    }
}

fn summarise(device: &str, rows: &[Figure6Row]) -> Figure6Summary {
    let n = rows.len().max(1) as f64;
    let avg_cu = rows.iter().map(|r| r.speedups.0).sum::<f64>() / n;
    let avg_sf = rows.iter().map(|r| r.speedups.1).sum::<f64>() / n;
    let max_cu = rows.iter().map(|r| r.speedups.0).fold(0.0, f64::max);
    let max_sf = rows.iter().map(|r| r.speedups.1).fold(0.0, f64::max);
    let slower = rows.iter().filter(|r| r.speedups.0 < 0.9 && r.speedups.1 < 0.9).count();
    Figure6Summary {
        device: device.to_string(),
        avg_vs_cusparse: avg_cu,
        max_vs_cusparse: max_cu,
        avg_vs_syncfree: avg_sf,
        max_vs_syncfree: max_sf,
        slower_count: slower,
        total: rows.len(),
    }
}

/// Render the full report.
pub fn run(cfg: &HarnessConfig) -> String {
    render(evaluate(cfg, 1))
}

/// Render a precomputed evaluation.
pub fn render(per_device: Vec<(Vec<Figure6Row>, Figure6Summary)>) -> String {
    let mut out = String::new();
    out.push_str("== Figure 6: SpTRSV performance on the synthetic 159-matrix corpus ==\n");
    for (rows, summary) in &per_device {
        out.push_str(&format!("\n-- {} (double precision, sorted by nnz) --\n", summary.device));
        let mut t = Table::new([
            "matrix", "n", "nnz", "nlevels", "cuSP GF", "Sync GF", "blk GF", "vs cuSP", "vs Sync",
        ]);
        for r in rows {
            t.row([
                r.name.clone(),
                r.n.to_string(),
                r.nnz.to_string(),
                r.nlevels.to_string(),
                fmt_gf(r.gflops.0),
                fmt_gf(r.gflops.1),
                fmt_gf(r.gflops.2),
                fmt_x(r.speedups.0),
                fmt_x(r.speedups.1),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nSummary [{}]: avg speedup vs cuSPARSE {} (max {}), vs Sync-free {} (max {});\n\
             block >10% slower than both on {}/{} matrices.\n",
            summary.device,
            fmt_x(summary.avg_vs_cusparse),
            fmt_x(summary.max_vs_cusparse),
            fmt_x(summary.avg_vs_syncfree),
            fmt_x(summary.max_vs_syncfree),
            summary.slower_count,
            summary.total,
        ));
    }
    out.push_str(
        "\nPaper: avg 4.72x (max 72.03x) vs cuSPARSE, avg 9.95x (max 61.08x) vs Sync-free\n",
    );
    out.push_str("(Titan RTX); Titan X: avg 5.00x (max 113.84x) and 10.34x (max 57.97x).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrunken_corpus_shows_block_advantage() {
        let cfg = HarnessConfig::default();
        let per_device = evaluate(&cfg, 16);
        for (rows, summary) in &per_device {
            assert_eq!(rows.len(), 159);
            assert!(
                summary.avg_vs_cusparse > 1.0,
                "[{}] avg vs cuSPARSE {}",
                summary.device,
                summary.avg_vs_cusparse
            );
            assert!(
                summary.avg_vs_syncfree > 1.0,
                "[{}] avg vs Sync-free {}",
                summary.device,
                summary.avg_vs_syncfree
            );
            // "almost never slower": at most a small fraction.
            assert!(
                summary.slower_count * 5 <= summary.total,
                "[{}] slower on {}/{}",
                summary.device,
                summary.slower_count,
                summary.total
            );
        }
    }
}
