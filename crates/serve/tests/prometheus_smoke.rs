//! Smoke test over the Prometheus text exposition: drive the real service,
//! scrape `render_prometheus()`, and validate the exposition-format syntax
//! that a scraper relies on — one `# TYPE` line per metric family, no
//! duplicate sample names with identical labels, parseable values, and
//! cumulative histograms ending in `+Inf`. CI runs this as its scrape check.

use recblock_matrix::generate;
use recblock_serve::{ServeConfig, SolveService};
use std::collections::{HashMap, HashSet};

/// `name{labels}` → (labels split out) for one sample line.
fn split_sample(line: &str) -> (String, String, f64) {
    let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
    let value: f64 = if value == "+Inf" { f64::INFINITY } else { value.parse().unwrap() };
    match series.split_once('{') {
        Some((name, rest)) => {
            let labels = rest.strip_suffix('}').expect("labels close with }");
            (name.to_string(), labels.to_string(), value)
        }
        None => (series.to_string(), String::new(), value),
    }
}

/// Strip `_bucket`/`_sum`/`_count` so a histogram's series map back to
/// their declared family name.
fn family_of(sample_name: &str) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            return base.to_string();
        }
    }
    sample_name.to_string()
}

#[test]
fn exposition_is_well_formed() {
    let service = SolveService::<f64>::new(ServeConfig::default().with_workers(2));
    // Register tenant slices the way the network front end does, so the
    // labelled per-tenant families are part of the scraped text too.
    for (name, admitted, rejected) in [("alpha", 5u64, 1u64), ("beta", 2, 0)] {
        let t = service.shared_metrics().tenant(name);
        t.admitted.fetch_add(admitted, std::sync::atomic::Ordering::Relaxed);
        t.admission_rejected.fetch_add(rejected, std::sync::atomic::Ordering::Relaxed);
        t.admitted_cost.fetch_add(admitted * 100, std::sync::atomic::Ordering::Relaxed);
    }
    let l = generate::random_lower::<f64>(400, 4.0, 90);
    let mut handles = Vec::new();
    for i in 0..8 {
        let b: Vec<f64> = (0..400).map(|r| ((r + i * 17) as f64 * 0.01).sin()).collect();
        handles.push(service.submit(&l, b).unwrap());
    }
    for h in handles {
        h.wait().unwrap();
    }
    let text = service.metrics().render_prometheus();
    service.shutdown();

    let mut declared: HashMap<String, String> = HashMap::new(); // family → type
    let mut seen_series: HashSet<String> = HashSet::new();
    let mut last_family: Option<String> = None;

    for line in text.lines() {
        assert!(!line.trim().is_empty(), "no blank lines in the exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("# TYPE has name and type");
            assert!(matches!(ty, "counter" | "gauge" | "histogram"), "unknown metric type {ty}");
            let prev = declared.insert(name.to_string(), ty.to_string());
            assert!(prev.is_none(), "duplicate # TYPE for {name}");
            last_family = Some(name.to_string());
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line: {line}");
        let (name, labels, value) = split_sample(line);
        let family = family_of(&name);
        assert!(
            declared.contains_key(&family),
            "sample {name} has no # TYPE declaration for {family}"
        );
        // Samples must follow their own family's declaration block.
        assert_eq!(last_family.as_deref(), Some(family.as_str()), "sample {name} out of order");
        let series = format!("{name}{{{labels}}}");
        assert!(seen_series.insert(series.clone()), "duplicate series {series}");
        assert!(value.is_finite() || value.is_infinite(), "unparseable value on {line}");
        assert!(value >= 0.0, "negative sample {line}");
    }

    // The families the dashboard depends on all exist.
    for family in [
        "recblock_requests_total",
        "recblock_plan_cache_events_total",
        "recblock_store_events_total",
        "recblock_batch_size",
        "recblock_request_latency_seconds",
        "recblock_stage_seconds",
        "recblock_queue_depth",
        "recblock_tenant_requests_total",
        "recblock_tenant_admitted_cost_total",
        "recblock_tenant_queue_depth",
    ] {
        assert!(declared.contains_key(family), "missing family {family}");
    }
    // Tenant samples carry a tenant label and sort deterministically.
    assert!(text.contains("recblock_tenant_requests_total{tenant=\"alpha\",event=\"admitted\"} 5"));
    assert!(text.contains("recblock_tenant_requests_total{tenant=\"beta\",event=\"admitted\"} 2"));
    assert!(text.contains("recblock_tenant_admitted_cost_total{tenant=\"alpha\"} 500"));

    // Histogram invariants: buckets are cumulative (monotone in le) and end
    // with +Inf equal to _count.
    for (family, ty) in &declared {
        if ty != "histogram" {
            continue;
        }
        let mut per_labelset: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        let mut counts: HashMap<String, f64> = HashMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, labels, value) = split_sample(line);
            if name == format!("{family}_bucket") {
                let (rest, le) = labels
                    .rsplit_once("le=\"")
                    .map(|(a, b)| (a.trim_end_matches(','), b.trim_end_matches('"')))
                    .expect("bucket has le label");
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap() };
                per_labelset.entry(rest.to_string()).or_default().push((le, value));
            } else if name == format!("{family}_count") {
                counts.insert(labels, value);
            }
        }
        assert!(!per_labelset.is_empty(), "histogram {family} has no buckets");
        for (labelset, buckets) in per_labelset {
            let mut prev_le = f64::NEG_INFINITY;
            let mut prev_cum = 0.0;
            for &(le, cum) in &buckets {
                assert!(le > prev_le, "{family}{{{labelset}}} le not increasing");
                assert!(cum >= prev_cum, "{family}{{{labelset}}} buckets not cumulative");
                (prev_le, prev_cum) = (le, cum);
            }
            let (last_le, last_cum) = *buckets.last().unwrap();
            assert!(last_le.is_infinite(), "{family}{{{labelset}}} missing +Inf bucket");
            let count = counts
                .get(&labelset)
                .unwrap_or_else(|| panic!("{family}{{{labelset}}} missing _count"));
            assert_eq!(last_cum, *count, "{family}{{{labelset}}} +Inf != _count");
        }
    }
}
