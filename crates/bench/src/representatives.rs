//! Scaled analogues of the paper's six representative matrices (Table 4).
//!
//! Each analogue is generated to match the *structural fingerprint* the
//! paper reports for the original — level count, parallelism profile,
//! nnz/row, and the pathology that drives its result — at ≈ 1/50 scale
//! (1/10 for `tmt_sym`, whose level count must stay above the 20 000
//! cuSPARSE-selection threshold to preserve its behaviour).

use recblock_matrix::generate::{self, LayerShape};
use recblock_matrix::{Csr, Scalar};

/// A representative matrix: the paper's original statistics plus our scaled
/// generator.
#[derive(Debug, Clone)]
pub struct Representative {
    /// Analogue name (`nlpkkt200-s`, …).
    pub name: &'static str,
    /// Original SuiteSparse name.
    pub original: &'static str,
    /// The paper's reported n.
    pub paper_n: usize,
    /// The paper's reported nnz.
    pub paper_nnz: usize,
    /// The paper's reported level count.
    pub paper_levels: usize,
    /// The paper's reported speedup of the block algorithm vs cuSPARSE on
    /// Titan RTX.
    pub paper_speedup_cusparse: f64,
    /// The paper's reported speedup vs Sync-free on Titan RTX.
    pub paper_speedup_syncfree: f64,
    /// Generator seed.
    seed: u64,
    /// Which analogue to build.
    kind: Kind,
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Nlpkkt,
    Mawi,
    KktPower,
    FullChip,
    VasStokes,
    TmtSym,
}

impl Representative {
    /// Build the scaled analogue.
    pub fn build<S: Scalar>(&self) -> Csr<S> {
        self.build_shrunk::<S>(1)
    }

    /// Build with an extra shrink factor (tests use > 1).
    pub fn build_shrunk<S: Scalar>(&self, extra: usize) -> Csr<S> {
        let d = |v: usize| (v / extra).max(64);
        match self.kind {
            // nlpkkt200: 2 levels, each ≈ n/2, nnz/row ≈ 14.3 — a pure
            // two-layer KKT coupling.
            Kind::Nlpkkt => generate::kkt_like(d(324_800), d(324_800) / 2, 27, self.seed),
            // mawi: 19 levels, parallelism up to tens of millions, nnz/row
            // ≈ 2 — hub-dominated with a short serial tail.
            Kind::Mawi => generate::hub_power_law(d(1_377_266), 24, 1, 17, self.seed),
            // kkt_power: 17 levels, avg parallelism ≈ n/17, nnz/row ≈ 4.1,
            // with the moderate heavy-row tail of power-network matrices.
            Kind::KktPower => {
                let n = d(41_270);
                let base = generate::layered(n, 17, 2.1, LayerShape::Geometric(0.85), self.seed);
                generate::with_heavy_rows(&base, 2, n / 64, self.seed)
            }
            // FullChip: 324 levels, min parallelism 1, power-law both ways —
            // hub columns, a long serial chain, and a few enormous rows
            // (the serialized-atomics pathology for sync-free).
            Kind::FullChip => {
                let n = d(59_740);
                let base = generate::hub_power_law(n, 30, 3, 322, self.seed);
                generate::with_heavy_rows(&base, 3, n / 8, self.seed)
            }
            // vas_stokes_4M: 2815 levels, avg parallelism ≈ 31, nnz/row ≈ 22,
            // power-law rows.
            Kind::VasStokes => {
                let n = d(87_645);
                let base =
                    generate::layered(n, 2_815.min(n / 2), 20.0, LayerShape::Uniform, self.seed);
                generate::with_heavy_rows(&base, 2, n / 2, self.seed)
            }
            // tmt_sym: one level per row (avg parallelism exactly 1).
            Kind::TmtSym => generate::chain(d(72_671), self.seed),
        }
    }
}

/// The six analogues in the paper's Table 4 order.
pub fn representatives() -> Vec<Representative> {
    vec![
        Representative {
            name: "nlpkkt200-s",
            original: "nlpkkt200",
            paper_n: 16_240_000,
            paper_nnz: 232_232_816,
            paper_levels: 2,
            paper_speedup_cusparse: 3.45,
            paper_speedup_syncfree: 2.53,
            seed: 9_001,
            kind: Kind::Nlpkkt,
        },
        Representative {
            name: "mawi-s",
            original: "mawi_201512020030",
            paper_n: 68_863_315,
            paper_nnz: 140_570_795,
            paper_levels: 19,
            paper_speedup_cusparse: 72.03,
            paper_speedup_syncfree: 16.02,
            seed: 9_002,
            kind: Kind::Mawi,
        },
        Representative {
            name: "kkt_power-s",
            original: "kkt_power",
            paper_n: 2_063_494,
            paper_nnz: 8_545_814,
            paper_levels: 17,
            paper_speedup_cusparse: 6.48,
            paper_speedup_syncfree: 4.09,
            seed: 9_003,
            kind: Kind::KktPower,
        },
        Representative {
            name: "FullChip-s",
            original: "FullChip",
            paper_n: 2_987_012,
            paper_nnz: 14_804_570,
            paper_levels: 324,
            paper_speedup_cusparse: 2.03,
            paper_speedup_syncfree: 11.05,
            seed: 9_004,
            kind: Kind::FullChip,
        },
        Representative {
            name: "vas_stokes-s",
            original: "vas_stokes_4M",
            paper_n: 4_382_246,
            paper_nnz: 96_836_943,
            paper_levels: 2_815,
            paper_speedup_cusparse: 1.13,
            paper_speedup_syncfree: 61.08,
            seed: 9_005,
            kind: Kind::VasStokes,
        },
        Representative {
            name: "tmt_sym-s",
            original: "tmt_sym",
            paper_n: 726_713,
            paper_nnz: 2_903_837,
            paper_levels: 726_235,
            paper_speedup_cusparse: 1.03,
            paper_speedup_syncfree: 1.77,
            seed: 9_006,
            kind: Kind::TmtSym,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::levelset::LevelSets;

    #[test]
    fn six_representatives() {
        assert_eq!(representatives().len(), 6);
    }

    #[test]
    fn analogues_match_structural_fingerprints() {
        for rep in representatives() {
            // Shrunk builds to keep the test fast; level structure scales.
            let extra = 8;
            let l = rep.build_shrunk::<f64>(extra);
            assert!(l.is_solvable_lower(), "{}", rep.name);
            let ls = LevelSets::analyse_unchecked(&l);
            match rep.name {
                "nlpkkt200-s" => assert_eq!(ls.nlevels(), 2),
                "kkt_power-s" => assert_eq!(ls.nlevels(), 17),
                "tmt_sym-s" => assert_eq!(ls.nlevels(), l.nrows()),
                "mawi-s" => assert!(ls.nlevels() < 40, "{}", ls.nlevels()),
                "FullChip-s" => {
                    assert!((200..500).contains(&ls.nlevels()), "{}", ls.nlevels())
                }
                "vas_stokes-s" => assert!(ls.nlevels() >= 1000, "{}", ls.nlevels()),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn tmt_analogue_exceeds_cusparse_threshold() {
        let rep = &representatives()[5];
        let l = rep.build::<f64>();
        let ls = LevelSets::analyse_unchecked(&l);
        assert!(ls.nlevels() > 20_000, "levels {}", ls.nlevels());
        let (mn, avg, mx) = ls.parallelism();
        assert_eq!((mn, mx), (1, 1));
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fullchip_analogue_has_hub_columns() {
        let rep = &representatives()[3];
        let l = rep.build_shrunk::<f64>(4);
        let csc = l.to_csc();
        let max_col = (0..l.ncols()).map(|j| csc.col_nnz(j)).max().unwrap();
        assert!(max_col > l.nrows() / 20, "max col {} of {}", max_col, l.nrows());
    }
}
