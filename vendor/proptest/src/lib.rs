//! Vendored, API-compatible subset of `proptest`.
//!
//! The workspace builds offline, so the real `proptest` cannot be fetched.
//! This shim keeps the same authoring surface — the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], `prop_assert*` and `prop_assume!` — backed by a
//! deterministic SplitMix64 case generator seeded from the test name, so
//! failures reproduce run-to-run.
//!
//! Deliberately absent relative to the real crate: shrinking, failure
//! persistence files, and `forall` regex/string strategies. A failing case
//! panics with the standard assertion message; the deterministic seed makes
//! it reproducible without persistence.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and the deterministic case RNG.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; unused.
        pub verbose: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, verbose: 0 }
        }
    }

    /// SplitMix64 generator seeded from the property name — deterministic
    /// across runs and independent of declaration order.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name; fixed offset basis keeps runs stable.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Drop-in analogue of `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property; panics with the assertion message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its precondition does not hold.
///
/// Expands to an early `return` from the per-case closure, so the case
/// counts as passed (the shim does not re-draw; with deterministic seeds
/// the retained case density is stable).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declare property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a `#[test]` that draws `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // Closure so `prop_assume!` can skip a case via `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let s = (3usize..10, 0u64..5, 1u32..2);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!((3..10).contains(&a));
            assert!(b < 5);
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let s = (1usize..4).prop_map(|v| v * 100);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == 100 || v == 200 || v == 300);
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let s = collection::vec(0usize..10, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_end_to_end(x in 1usize..50, v in collection::vec(0u32..9, 1..5)) {
            prop_assume!(x > 1);
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 0);
        }
    }
}
