//! The per-node cluster coordinator: ring state, build grants, proxying.
//!
//! One [`Coordinator`] sits behind a node's [`recblock_net::NetServer`]
//! as its [`ClusterHooks`] implementation. It answers three questions:
//!
//! * **routing** — is this node an owner of a fingerprint, and if not,
//!   where should the request go ([`Route::Proxy`] through a pooled
//!   inter-node client, or [`Route::Redirect`] so the client retries
//!   against the owner directly);
//! * **membership** — `Join`/`Leave`/`RingState` frames mutate the
//!   shared [`Ring`] under an epoch that only moves forward, so stale
//!   views lose every merge;
//! * **single-flight** — the primary owner hands out at most one *build
//!   grant* per plan at a time (`PlanPull` with build intent), with a
//!   TTL so a crashed builder cannot wedge the key forever.

use crate::ring::Ring;
use recblock_matrix::Scalar;
use recblock_net::{ClusterHooks, ErrCode, MemberInfo, NetClient, NetError, RingStateMsg, Route};
use recblock_serve::{Metrics, ResponseSink, ServeError, SolveService};
use recblock_store::PlanKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// What a node does with a solve it does not own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonOwnerPolicy {
    /// Relay the request to the owner and stream the answer back —
    /// clients never see the ring.
    Proxy,
    /// Answer [`ErrCode::Redirect`] with the owner's address — clients
    /// that cache owners skip a hop on every later solve.
    Redirect,
}

/// Static configuration of one cluster node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Unique node name (ring identity).
    pub name: String,
    /// Address peers should dial, `host:port`. Leave empty to advertise
    /// the bound listener address (useful with port 0 in tests).
    pub advertise_addr: String,
    /// Ring seed — all members must agree (carried in `RingState`).
    pub seed: u64,
    /// Virtual nodes per member. More vnodes, smoother key balance.
    pub vnodes: u32,
    /// Copies of each plan (primary + replicas - 1).
    pub replicas: u16,
    /// Routing behaviour for fingerprints this node does not own.
    pub non_owner: NonOwnerPolicy,
    /// Threads relaying proxied solves to owner nodes.
    pub proxy_workers: usize,
    /// How long a build grant stays exclusive before another puller may
    /// claim it (recovers from a builder that crashed mid-build).
    pub grant_ttl: Duration,
    /// Backoff between `BuildInProgress` pull retries.
    pub pull_retry: Duration,
    /// Pull attempts before a warming replica gives up waiting and
    /// builds locally.
    pub pull_attempts: u32,
}

impl ClusterConfig {
    /// Sensible defaults for a node called `name`.
    pub fn new(name: impl Into<String>) -> ClusterConfig {
        ClusterConfig {
            name: name.into(),
            advertise_addr: String::new(),
            seed: 0x5EED_C1A5_7E12_0B10,
            vnodes: 128,
            replicas: 2,
            non_owner: NonOwnerPolicy::Proxy,
            proxy_workers: 2,
            grant_ttl: Duration::from_secs(3),
            pull_retry: Duration::from_millis(25),
            pull_attempts: 200,
        }
    }
}

/// One proxied solve travelling to an owner node.
struct ProxyJob<S> {
    addr: String,
    tenant: String,
    key: PlanKey,
    cols: Vec<Vec<S>>,
    base_tag: u64,
    deadline_ms: u32,
    /// Non-zero when the request is traced: the relay uses `SolveTraced`
    /// so the owner's hop lands under the same end-to-end id.
    trace_id: u64,
    sink: Arc<dyn ResponseSink<S>>,
}

/// The node-local cluster brain; implements [`ClusterHooks`] for the
/// network front end. See the module docs for the three roles.
pub struct Coordinator<S: Scalar> {
    config: ClusterConfig,
    ring: RwLock<Ring>,
    /// Outstanding build grants: plan key → grant time (expires after
    /// [`ClusterConfig::grant_ttl`]).
    grants: Mutex<HashMap<PlanKey, Instant>>,
    service: Arc<SolveService<S>>,
    metrics: Arc<Metrics>,
    workers: Vec<Sender<ProxyJob<S>>>,
    next_worker: AtomicUsize,
}

impl<S: Scalar> Coordinator<S> {
    /// Build a coordinator whose ring contains only this node.
    pub fn new(config: ClusterConfig, service: Arc<SolveService<S>>) -> Arc<Coordinator<S>> {
        let mut ring = Ring::new(config.seed, config.vnodes, config.replicas);
        ring.insert(&config.name, &config.advertise_addr);
        let metrics = service.shared_metrics();
        let mut workers = Vec::with_capacity(config.proxy_workers.max(1));
        for _ in 0..config.proxy_workers.max(1) {
            let (tx, rx) = std::sync::mpsc::channel::<ProxyJob<S>>();
            std::thread::spawn(move || run_proxy_worker(rx));
            workers.push(tx);
        }
        let c = Coordinator {
            config,
            ring: RwLock::new(ring),
            grants: Mutex::new(HashMap::new()),
            service,
            metrics,
            workers,
            next_worker: AtomicUsize::new(0),
        };
        c.sync_gauges(&c.ring.read().unwrap());
        Arc::new(c)
    }

    /// This node's ring identity.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The address this node advertises to peers.
    pub fn advertise_addr(&self) -> String {
        self.ring
            .read()
            .unwrap()
            .addr_of(&self.config.name)
            .unwrap_or(&self.config.advertise_addr)
            .to_string()
    }

    /// The configuration this coordinator was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// A point-in-time copy of the ring.
    pub fn ring_snapshot(&self) -> Ring {
        self.ring.read().unwrap().clone()
    }

    /// Owner set of `key` as owned strings (primary first).
    pub fn owners_of(&self, key: &PlanKey) -> Vec<(String, String)> {
        let ring = self.ring.read().unwrap();
        ring.owners(key).iter().map(|(n, a)| (n.to_string(), a.to_string())).collect()
    }

    /// Merge a peer's view unconditionally (our own join/leave results —
    /// not subject to the stale-view fault injection).
    pub fn adopt(&self, msg: &RingStateMsg) -> RingStateMsg {
        let mut ring = self.ring.write().unwrap();
        Self::merge_into(&mut ring, msg, &self.config);
        let out = ring.to_msg();
        self.sync_gauges(&ring);
        out
    }

    /// Drop `name` from our view (a peer observed to be dead).
    pub fn remove_member(&self, name: &str) -> RingStateMsg {
        let mut ring = self.ring.write().unwrap();
        ring.remove(name);
        let out = ring.to_msg();
        self.sync_gauges(&ring);
        out
    }

    /// Claim the local build grant for `key`. `true` means this caller
    /// is the cluster-wide builder; anyone else gets `false` until the
    /// grant clears or its TTL expires.
    pub fn try_grant(&self, key: &PlanKey) -> bool {
        let mut g = self.grants.lock().unwrap();
        let now = Instant::now();
        match g.get(key) {
            Some(&t) if now.duration_since(t) < self.config.grant_ttl => false,
            _ => {
                g.insert(*key, now);
                true
            }
        }
    }

    /// Release the build grant for `key` (build finished or failed).
    pub fn clear_grant(&self, key: &PlanKey) {
        self.grants.lock().unwrap().remove(key);
    }

    fn merge_into(ring: &mut Ring, msg: &RingStateMsg, config: &ClusterConfig) {
        if msg.epoch > ring.epoch() {
            // Their view is strictly newer: adopt it wholesale, then make
            // sure we are still in it (a view predating our join must not
            // evict us).
            *ring = Ring::from_msg(msg);
        }
        // Union any members we have not seen; a no-op when views agree.
        for m in &msg.members {
            ring.insert(&m.name, &m.addr);
        }
        let self_addr = config.advertise_addr.clone();
        if !self_addr.is_empty() && ring.addr_of(&config.name) != Some(self_addr.as_str()) {
            ring.insert(&config.name, &self_addr);
        }
    }

    fn sync_gauges(&self, ring: &Ring) {
        self.metrics.cluster_ring_epoch.store(ring.epoch(), Ordering::Relaxed);
        self.metrics.cluster_members.store(ring.len() as u64, Ordering::Relaxed);
    }
}

impl<S: Scalar> ClusterHooks<S> for Coordinator<S> {
    fn route(&self, key: &PlanKey) -> Route {
        let ring = self.ring.read().unwrap();
        if ring.len() <= 1 {
            return Route::Local;
        }
        let owners = ring.owners(key);
        if owners.iter().any(|(n, _)| *n == self.config.name) {
            return Route::Local;
        }
        let Some(&(_, addr)) = owners.first() else { return Route::Local };
        match self.config.non_owner {
            NonOwnerPolicy::Proxy => Route::Proxy(addr.to_string()),
            NonOwnerPolicy::Redirect => Route::Redirect(addr.to_string()),
        }
    }

    fn handle_join(&self, member: MemberInfo) -> RingStateMsg {
        let mut ring = self.ring.write().unwrap();
        ring.insert(&member.name, &member.addr);
        let out = ring.to_msg();
        self.sync_gauges(&ring);
        out
    }

    fn handle_leave(&self, name: &str) -> RingStateMsg {
        let mut ring = self.ring.write().unwrap();
        ring.remove(name);
        let out = ring.to_msg();
        self.sync_gauges(&ring);
        out
    }

    fn apply_ring(&self, msg: RingStateMsg) -> RingStateMsg {
        // Injected fault: this node misses the broadcast and keeps
        // serving from a stale view. Routing stays *correct* (requests
        // still land on nodes that answer or redirect), just suboptimal
        // until anti-entropy repairs the view.
        if recblock_faults::fires(recblock_faults::FaultPoint::ClusterRing) {
            return self.ring.read().unwrap().to_msg();
        }
        self.adopt(&msg)
    }

    fn ring_state(&self) -> RingStateMsg {
        self.ring.read().unwrap().to_msg()
    }

    fn accept_plan_push(&self, key: PlanKey, bytes: &[u8]) -> Result<(), (ErrCode, String)> {
        // A landed plan settles any outstanding build grant for it.
        self.clear_grant(&key);
        self.service.import_plan_bytes(key, bytes).map_err(|e| match e {
            ServeError::BadRequest { .. } | ServeError::PlanBuild(_) => {
                (ErrCode::BadRequest, format!("plan push rejected: {e}"))
            }
            other => (ErrCode::Internal, format!("plan push failed: {other}")),
        })
    }

    fn plan_data(&self, key: PlanKey, build_intent: bool) -> Result<Vec<u8>, (ErrCode, String)> {
        match self.service.export_plan_bytes(key) {
            Ok(Some(bytes)) => {
                self.clear_grant(&key);
                Ok(bytes)
            }
            Ok(None) if build_intent => {
                if self.try_grant(&key) {
                    // `PlanNotFound` on an intent pull IS the grant: the
                    // puller builds; everyone else waits it out below.
                    Err((
                        ErrCode::PlanNotFound,
                        "no plan here; the build grant is yours".to_string(),
                    ))
                } else {
                    Err((
                        ErrCode::BuildInProgress,
                        "another node holds the build grant; retry after backoff".to_string(),
                    ))
                }
            }
            Ok(None) => {
                Err((ErrCode::PlanNotFound, "no local plan for this fingerprint".to_string()))
            }
            Err(e) => Err((ErrCode::Internal, format!("plan export failed: {e}"))),
        }
    }

    fn proxy_solve(
        &self,
        addr: &str,
        tenant: &str,
        key: PlanKey,
        cols: Vec<Vec<S>>,
        base_tag: u64,
        deadline_ms: u32,
        trace_id: u64,
        sink: &Arc<dyn ResponseSink<S>>,
    ) {
        let k = cols.len();
        let job = ProxyJob {
            addr: addr.to_string(),
            tenant: tenant.to_string(),
            key,
            cols,
            base_tag,
            deadline_ms,
            trace_id,
            sink: sink.clone(),
        };
        let idx = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        if let Err(e) = self.workers[idx].send(job) {
            // Worker gone (shutdown): fail the columns instead of
            // leaving the slot in flight forever.
            let sink = &e.0.sink;
            for j in 0..k {
                sink.deliver(
                    base_tag | j as u64,
                    Err(ServeError::Upstream {
                        code: ErrCode::Internal as u16,
                        message: "proxy worker unavailable".to_string(),
                    }),
                );
            }
        }
    }
}

/// One proxy worker: a private pool of inter-node connections, reused
/// across jobs, torn down on any transport suspicion.
fn run_proxy_worker<S: Scalar>(rx: Receiver<ProxyJob<S>>) {
    let mut clients: HashMap<String, NetClient> = HashMap::new();
    while let Ok(job) = rx.recv() {
        let k = job.cols.len();
        let result = (|| -> Result<Vec<Vec<S>>, NetError> {
            if !clients.contains_key(&job.addr) {
                clients.insert(job.addr.clone(), NetClient::connect(job.addr.as_str())?);
            }
            let client = clients.get_mut(&job.addr).expect("just inserted");
            let refs: Vec<&[S]> = job.cols.iter().map(|c| c.as_slice()).collect();
            if job.trace_id != 0 {
                client.solve_multi_traced(
                    job.trace_id,
                    &job.tenant,
                    &job.key,
                    &refs,
                    job.deadline_ms,
                )
            } else {
                client.solve_multi(&job.tenant, &job.key, &refs, job.deadline_ms)
            }
        })();
        match result {
            Ok(solved) => {
                for (j, col) in solved.into_iter().enumerate() {
                    job.sink.deliver(job.base_tag | j as u64, Ok(col));
                }
            }
            Err(e) => {
                // Typed refusals leave the connection healthy; anything
                // else makes its stream state suspect.
                if !matches!(e, NetError::Remote { .. }) {
                    clients.remove(&job.addr);
                }
                let (code, message) = match e {
                    NetError::Remote { code, message } => (code as u16, message),
                    other => (ErrCode::Internal as u16, format!("proxy to {}: {other}", job.addr)),
                };
                for j in 0..k {
                    job.sink.deliver(
                        job.base_tag | j as u64,
                        Err(ServeError::Upstream { code, message: message.clone() }),
                    );
                }
            }
        }
    }
}
