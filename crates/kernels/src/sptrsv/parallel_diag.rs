//! The "completely parallel" SpTRSV kernel.
//!
//! Section 3.4 of the paper, sparsity structure (1): after recursive
//! level-set reordering, many small triangular blocks contain *only* a
//! diagonal, so every component solves independently with perfect
//! parallelism (`SPTRSV-COMPLETELYPARALLEL` in Algorithm 7).

use crate::exec::ExecPool;
use crate::trace::{EventKind, SolveTrace};
use recblock_matrix::{Csr, MatrixError, Scalar};

/// Entries per parallel chunk of [`parallel_diag_into`] — one division per
/// entry, so a chunk is sized like a `chunk_nnz`-nonzero SpMV chunk.
const DIAG_CHUNK: usize = 8192;

/// `true` if the matrix stores exactly its diagonal (one entry per row at
/// `(i, i)`).
pub fn is_diagonal_only<S: Scalar>(l: &Csr<S>) -> bool {
    l.nrows() == l.ncols()
        && l.nnz() == l.nrows()
        && (0..l.nrows()).all(|i| {
            let (cols, _) = l.row(i);
            cols == [i]
        })
}

/// Solve a purely diagonal system: `x[i] = b[i] / d[i]` in one parallel map.
pub fn parallel_diag<S: Scalar>(l: &Csr<S>, b: &[S]) -> Result<Vec<S>, MatrixError> {
    let mut x = vec![S::ZERO; l.nrows()];
    parallel_diag_into(l, b, &mut x, ExecPool::global())?;
    Ok(x)
}

/// As [`parallel_diag`] into a caller-provided buffer on an explicit pool —
/// the zero-allocation steady-state path. Elementwise divisions commute with
/// chunking, so the result is bit-identical at any concurrency.
pub fn parallel_diag_into<S: Scalar>(
    l: &Csr<S>,
    b: &[S],
    x: &mut [S],
    pool: &ExecPool,
) -> Result<(), MatrixError> {
    let n = l.nrows();
    if b.len() != n || x.len() != n {
        return Err(MatrixError::DimensionMismatch {
            what: "sptrsv buffers",
            expected: n,
            actual: b.len().min(x.len()),
        });
    }
    if !is_diagonal_only(l) {
        return Err(MatrixError::NotTriangular { row: 0, col: 0 });
    }
    let vals = l.vals();
    let t0 = SolveTrace::start();
    if n <= DIAG_CHUNK {
        for i in 0..n {
            x[i] = b[i] / vals[i];
        }
        SolveTrace::finish(t0, EventKind::DiagKernel, 0, n as u32, 0);
        return Ok(());
    }
    let nchunks = n.div_ceil(DIAG_CHUNK);
    let xp = crate::exec::SendPtr(x.as_mut_ptr());
    pool.run(nchunks, &|c| {
        let lo = c * DIAG_CHUNK;
        let hi = (lo + DIAG_CHUNK).min(n);
        for i in lo..hi {
            // SAFETY: chunks partition 0..n, so each x[i] is written by
            // exactly one job and read by none.
            unsafe { *xp.ptr().add(i) = b[i] / vals[i] };
        }
    });
    SolveTrace::finish(
        t0,
        EventKind::DiagKernel,
        0,
        n as u32,
        nchunks.min(u16::MAX as usize) as u16,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;

    #[test]
    fn detects_diagonal_matrix() {
        assert!(is_diagonal_only(&Csr::<f64>::identity(5)));
        assert!(is_diagonal_only(&generate::diagonal::<f64>(100, 1)));
        assert!(!is_diagonal_only(&generate::chain::<f64>(10, 1)));
        assert!(!is_diagonal_only(&Csr::<f64>::zero(3, 3)));
    }

    #[test]
    fn solves_diagonal_system() {
        let l =
            Csr::<f64>::try_new(3, 3, vec![0, 1, 2, 3], vec![0, 1, 2], vec![2., 4., 8.]).unwrap();
        let x = parallel_diag(&l, &[2.0, 8.0, 32.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn matches_serial_reference() {
        let l = generate::diagonal::<f64>(10_000, 7);
        let b: Vec<f64> = (0..10_000).map(|i| (i as f64).cos()).collect();
        let x1 = parallel_diag(&l, &b).unwrap();
        let x2 = super::super::serial_csr(&l, &b).unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn into_matches_allocating_form_above_chunk_size() {
        let n = 3 * DIAG_CHUNK + 17;
        let l = generate::diagonal::<f64>(n, 8);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() + 2.0).collect();
        let pool = ExecPool::new(2);
        let mut x = vec![0.0; n];
        parallel_diag_into(&l, &b, &mut x, &pool).unwrap();
        assert_eq!(x, parallel_diag(&l, &b).unwrap());
    }

    #[test]
    fn rejects_non_diagonal() {
        let l = generate::chain::<f64>(5, 1);
        assert!(parallel_diag(&l, &[1.0; 5]).is_err());
    }

    #[test]
    fn rejects_wrong_rhs() {
        let l = Csr::<f64>::identity(3);
        assert!(parallel_diag(&l, &[1.0]).is_err());
    }
}
