//! Upper-triangular solves (`U x = b`).
//!
//! The paper states the problem as `L x = b` *(or `U x = b`)*; every
//! algorithm transfers to the upper case by index reversal: with the
//! reversal permutation `J` (`J[i] = n−1−i`), `J U Jᵀ` is lower triangular,
//! and `U x = b  ⇔  (J U Jᵀ)(J x) = J b`. [`UpperRecBlockSolver`] wraps the
//! whole lower-triangular machinery behind that transformation, so upper
//! systems get the identical blocked treatment (reordering, adaptive
//! kernels, simulated timing) at the cost of two vector reversals per
//! solve.

use crate::solver::{RecBlockSolver, SolverOptions};
use recblock_gpu_sim::{CostParams, DeviceSpec, KernelTime};
use recblock_matrix::permute::{permute_symmetric, Permutation};
use recblock_matrix::{Csr, MatrixError, Scalar};

/// The index-reversal permutation on `0..n` (`perm[new] = n − 1 − new`).
pub fn reversal(n: usize) -> Permutation {
    Permutation::from_forward((0..n).rev().collect()).expect("reversal is a bijection")
}

/// Validate that `u` is square, upper triangular, with a stored nonzero
/// diagonal as the *first* entry of each row.
pub fn check_solvable_upper<S: Scalar>(u: &Csr<S>) -> Result<(), MatrixError> {
    if u.nrows() != u.ncols() {
        return Err(MatrixError::DimensionMismatch {
            what: "solvable upper check",
            expected: u.nrows(),
            actual: u.ncols(),
        });
    }
    for i in 0..u.nrows() {
        let (cols, vals) = u.row(i);
        match cols.first() {
            Some(&j) if j < i => return Err(MatrixError::NotTriangular { row: i, col: j }),
            Some(&j) if j == i && vals[0] != S::ZERO => {}
            _ => return Err(MatrixError::SingularDiagonal { row: i }),
        }
    }
    Ok(())
}

/// A recursive-block solver for upper-triangular systems.
#[derive(Debug, Clone)]
pub struct UpperRecBlockSolver<S> {
    inner: RecBlockSolver<S>,
    reversal: Permutation,
}

impl<S: Scalar> UpperRecBlockSolver<S> {
    /// Preprocess an upper-triangular matrix: reverse it into a lower
    /// system and run the full lower preprocessing pipeline.
    pub fn new(u: &Csr<S>, opts: SolverOptions) -> Result<Self, MatrixError> {
        check_solvable_upper(u)?;
        let rev = reversal(u.nrows());
        let lower = permute_symmetric(u, &rev)?;
        debug_assert!(lower.is_solvable_lower());
        let inner = RecBlockSolver::new(&lower, opts)?;
        Ok(UpperRecBlockSolver { inner, reversal: rev })
    }

    /// The wrapped lower-triangular solver (for census/traffic queries).
    pub fn inner(&self) -> &RecBlockSolver<S> {
        &self.inner
    }

    /// Solve `U x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        if b.len() != self.reversal.len() {
            return Err(MatrixError::DimensionMismatch {
                what: "upper solve rhs",
                expected: self.reversal.len(),
                actual: b.len(),
            });
        }
        let rb = self.reversal.gather(b);
        let ry = self.inner.solve(&rb)?;
        Ok(self.reversal.scatter(&ry))
    }

    /// Predicted GPU solve time (identical to the reversed lower system's).
    pub fn simulated_time(&self, dev: &DeviceSpec, params: &CostParams) -> KernelTime {
        self.inner.simulated_time(dev, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::DepthRule;
    use recblock_kernels::ilu::serial_csr_upper;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    /// Random solvable upper-triangular matrix (transpose of a lower one).
    fn upper(n: usize, seed: u64) -> Csr<f64> {
        generate::random_lower::<f64>(n, 4.0, seed).transpose()
    }

    fn opts() -> SolverOptions {
        SolverOptions { depth: DepthRule::Fixed(3), ..SolverOptions::default() }
    }

    #[test]
    fn reversal_is_self_inverse() {
        let r = reversal(7);
        for i in 0..7 {
            assert_eq!(r.old_of(r.old_of(i)), i);
        }
    }

    #[test]
    fn check_accepts_valid_upper() {
        assert!(check_solvable_upper(&upper(50, 1)).is_ok());
        assert!(check_solvable_upper(&Csr::<f64>::identity(5)).is_ok());
    }

    #[test]
    fn check_rejects_lower_entry() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![1., 2., 1.]).unwrap();
        assert!(matches!(
            check_solvable_upper(&a),
            Err(MatrixError::NotTriangular { row: 1, col: 0 })
        ));
    }

    #[test]
    fn check_rejects_missing_diag() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 1, 1], vec![1], vec![1.]).unwrap();
        assert!(check_solvable_upper(&a).is_err());
    }

    #[test]
    fn upper_solve_matches_backward_substitution() {
        for seed in [2u64, 3, 4] {
            let u = upper(400, seed);
            let b: Vec<f64> = (0..400).map(|i| ((i % 19) as f64) - 9.0).collect();
            let reference = serial_csr_upper(&u, &b).unwrap();
            let solver = UpperRecBlockSolver::new(&u, opts()).unwrap();
            let x = solver.solve(&b).unwrap();
            assert!(max_rel_diff(&x, &reference) < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn upper_solve_residual() {
        let u = generate::grid2d::<f64>(18, 18, 5).transpose();
        let b = vec![1.0; 324];
        let solver = UpperRecBlockSolver::new(&u, opts()).unwrap();
        let x = solver.solve(&b).unwrap();
        let r = recblock_matrix::vector::residual_inf(&u, &x, &b).unwrap();
        assert!(r < 1e-10);
    }

    #[test]
    fn rejects_wrong_rhs_len() {
        let solver = UpperRecBlockSolver::new(&upper(30, 6), opts()).unwrap();
        assert!(solver.solve(&[1.0]).is_err());
    }

    #[test]
    fn rejects_non_upper_input() {
        let l = generate::random_lower::<f64>(30, 3.0, 7);
        assert!(UpperRecBlockSolver::new(&l, opts()).is_err());
    }

    #[test]
    fn simulated_time_available() {
        let solver = UpperRecBlockSolver::new(&upper(200, 8), opts()).unwrap();
        let t = solver.simulated_time(&DeviceSpec::titan_rtx_turing(), &CostParams::default());
        assert!(t.total_s > 0.0);
    }
}
