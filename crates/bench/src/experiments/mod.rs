//! One module per paper artefact. Every experiment exposes a `run`
//! function returning the rendered report, so binaries stay thin and tests
//! can execute shrunken versions.

pub mod ablation;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod figure7;
pub mod table1_2;
pub mod table3;
pub mod table4;
pub mod table5;
