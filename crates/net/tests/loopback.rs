//! End-to-end loopback tests: a real `NetServer` event loop in front of a
//! real `SolveService`, exercised through `NetClient` and through raw
//! sockets that deliberately misbehave.
//!
//! These are the acceptance tests for the network tier: correctness
//! against the in-process API, weighted fairness under saturating load,
//! typed admission rejections (never a hang or a mid-frame disconnect),
//! robustness to malformed/truncated/slow input, and graceful drain.

use recblock_matrix::{generate, Csr};
use recblock_net::frame::{self, FrameKind, HEADER_LEN};
use recblock_net::{ErrCode, NetClient, NetConfig, NetCtl, NetServer, TenantPolicy};
use recblock_serve::{ServeConfig, SolveService};
use recblock_store::PlanKey;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// A server thread plus everything a test needs to talk to it.
struct TestServer {
    addr: SocketAddr,
    ctl: NetCtl,
    handle: thread::JoinHandle<std::io::Result<()>>,
    service: Arc<SolveService<f64>>,
}

impl TestServer {
    fn start(serve_cfg: ServeConfig, net_cfg: NetConfig) -> TestServer {
        let service = Arc::new(SolveService::<f64>::new(serve_cfg));
        let mut server =
            NetServer::bind("127.0.0.1:0", net_cfg, service.clone()).expect("bind loopback");
        let addr = server.local_addr().unwrap();
        let ctl = server.ctl();
        let handle = thread::spawn(move || server.run());
        TestServer { addr, ctl, handle, service }
    }

    /// Drain the server and join the event-loop thread.
    fn stop(self) {
        self.ctl.shutdown();
        self.handle.join().expect("event loop thread").expect("event loop exits cleanly");
    }
}

/// Build a plan for `l` through the in-process API so the network tier can
/// resolve its fingerprint from the warm cache.
fn warm(service: &SolveService<f64>, l: &Csr<f64>) -> PlanKey {
    let rhs = vec![1.0; l.nrows()];
    service.submit(l, rhs).unwrap().wait().unwrap();
    PlanKey::of(l)
}

fn rhs_for(n: usize, seed: usize) -> Vec<f64> {
    (0..n).map(|r| ((r * 31 + seed * 17 + 1) as f64 * 0.013).sin()).collect()
}

fn connect(addr: SocketAddr) -> NetClient {
    let mut c = NetClient::connect(addr).expect("connect");
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

/// Read one frame off a raw socket; returns `(kind, tag, payload)`.
fn read_raw_frame(stream: &mut TcpStream) -> (FrameKind, u64, Vec<u8>) {
    let mut head = [0u8; HEADER_LEN];
    stream.read_exact(&mut head).expect("frame header");
    let h = frame::decode_header(&head, u32::MAX).expect("valid header").unwrap();
    let mut payload = vec![0u8; h.payload_len as usize];
    stream.read_exact(&mut payload).expect("frame payload");
    (h.kind, h.tag, payload)
}

#[test]
fn solves_match_in_process_results() {
    let srv = TestServer::start(ServeConfig::default().with_workers(2), NetConfig::default());
    let l = generate::random_lower::<f64>(300, 4.0, 11);
    let key = warm(&srv.service, &l);

    let mut client = connect(srv.addr);
    assert!(client.ping().unwrap() < Duration::from_secs(5));

    // Single-column request equals the in-process answer bit for bit.
    let b = rhs_for(300, 0);
    let expected = srv.service.submit(&l, b.clone()).unwrap().wait().unwrap();
    let got = client.solve::<f64>("alpha", &key, &b).unwrap();
    assert_eq!(got, expected);

    // Multi-column request: every column matches its serial counterpart.
    let cols: Vec<Vec<f64>> = (1..=3).map(|i| rhs_for(300, i)).collect();
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let got = client.solve_multi::<f64>("alpha", &key, &refs, 0).unwrap();
    assert_eq!(got.len(), 3);
    for (j, col) in cols.iter().enumerate() {
        let expected = srv.service.submit(&l, col.clone()).unwrap().wait().unwrap();
        assert_eq!(got[j], expected, "column {j}");
    }

    srv.stop();
}

#[test]
fn stat_reports_warm_plans_and_tenants() {
    let srv = TestServer::start(ServeConfig::default().with_workers(1), NetConfig::default());
    let l = generate::random_lower::<f64>(200, 3.0, 21);
    let key = warm(&srv.service, &l);

    let mut client = connect(srv.addr);
    let b = rhs_for(200, 3);
    client.solve::<f64>("alpha", &key, &b).unwrap();
    client.solve::<f64>("beta", &key, &b).unwrap();

    let stat = client.stat().unwrap();
    assert!(!stat.draining);
    assert_eq!(stat.plans_warm, 1, "one distinct fingerprint served");
    let names: Vec<&str> = stat.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(names, ["alpha", "beta"], "sorted tenant slices");
    for t in &stat.tenants {
        assert_eq!(t.admitted, 1);
        assert_eq!(t.completed, 1);
        assert_eq!(t.admission_rejected, 0);
    }

    srv.stop();
}

#[test]
fn unknown_tenant_and_missing_plan_get_typed_errors() {
    let net_cfg = NetConfig::default()
        .with_default_policy(None)
        .with_tenant("alpha", TenantPolicy::default());
    let srv = TestServer::start(ServeConfig::default().with_workers(1), net_cfg);
    let l = generate::random_lower::<f64>(150, 3.0, 31);
    let key = warm(&srv.service, &l);
    let mut client = connect(srv.addr);
    let b = rhs_for(150, 0);

    // Closed tenant universe: unregistered names are refused, typed.
    let err = client.solve::<f64>("ghost", &key, &b).unwrap_err();
    assert_remote(err, ErrCode::UnknownTenant);

    // A fingerprint the server has never built: typed, retryable.
    let cold = generate::random_lower::<f64>(150, 3.0, 32);
    let err = client.solve::<f64>("alpha", &PlanKey::of(&cold), &b).unwrap_err();
    assert_remote(err, ErrCode::PlanNotFound);

    // Right-hand side length disagrees with the plan dimension.
    let short = rhs_for(100, 0);
    let err = client.solve::<f64>("alpha", &key, &short).unwrap_err();
    assert_remote(err, ErrCode::BadRequest);

    // The connection survived all three refusals.
    assert_eq!(client.solve::<f64>("alpha", &key, &b).unwrap().len(), 150);

    srv.stop();
}

#[track_caller]
fn assert_remote(err: recblock_net::NetError, code: ErrCode) {
    match err {
        recblock_net::NetError::Remote { code: c, .. } => assert_eq!(c, code),
        other => panic!("expected typed {code:?} rejection, got {other}"),
    }
}

#[test]
fn malformed_bytes_get_reply_then_close() {
    let srv = TestServer::start(ServeConfig::default().with_workers(1), NetConfig::default());
    let mut raw = TcpStream::connect(srv.addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"XXXXthis is not an RBNET frame at all........").unwrap();

    let (kind, _tag, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, FrameKind::Err);
    let (code, _msg) = frame::parse_err(&payload).unwrap();
    assert_eq!(code, ErrCode::Malformed);

    // After the typed reply the server closes; no further bytes arrive.
    let mut rest = Vec::new();
    assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0, "clean close after reply");

    srv.stop();
}

#[test]
fn oversize_frame_rejected_with_typed_error() {
    let net_cfg = NetConfig::default().with_max_frame_bytes(4096);
    let srv = TestServer::start(ServeConfig::default().with_workers(1), net_cfg);
    let mut raw = TcpStream::connect(srv.addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A syntactically valid header announcing a payload over the limit.
    let mut head = Vec::new();
    frame::encode_header(&mut head, FrameKind::Solve, 7, 1 << 20);
    raw.write_all(&head).unwrap();

    let (kind, _tag, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, FrameKind::Err);
    let (code, _msg) = frame::parse_err(&payload).unwrap();
    assert_eq!(code, ErrCode::Malformed);
    let mut rest = Vec::new();
    assert_eq!(raw.read_to_end(&mut rest).unwrap(), 0);

    srv.stop();
}

#[test]
fn truncated_frame_then_disconnect_is_harmless() {
    let srv = TestServer::start(ServeConfig::default().with_workers(1), NetConfig::default());
    let l = generate::random_lower::<f64>(120, 3.0, 41);
    let key = warm(&srv.service, &l);

    // Send ten bytes of a valid solve frame, then vanish mid-frame.
    {
        let mut whole = Vec::new();
        let b = rhs_for(120, 0);
        frame::encode_solve::<f64>(&mut whole, 1, "alpha", &key, 0, &[&b]);
        let mut raw = TcpStream::connect(srv.addr).unwrap();
        raw.write_all(&whole[..10]).unwrap();
    } // dropped: RST/FIN mid-frame

    // The server shrugs it off and keeps serving other connections.
    let mut client = connect(srv.addr);
    let b = rhs_for(120, 1);
    assert_eq!(client.solve::<f64>("alpha", &key, &b).unwrap().len(), 120);

    srv.stop();
}

#[test]
fn slow_loris_partial_frames_still_served() {
    let srv = TestServer::start(ServeConfig::default().with_workers(1), NetConfig::default());
    let l = generate::random_lower::<f64>(200, 3.0, 51);
    let key = warm(&srv.service, &l);
    let b = rhs_for(200, 9);
    let expected = srv.service.submit(&l, b.clone()).unwrap().wait().unwrap();

    let mut whole = Vec::new();
    frame::encode_solve::<f64>(&mut whole, 42, "alpha", &key, 0, &[&b]);

    let mut raw = TcpStream::connect(srv.addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Drip the frame out in small chunks; the server must reassemble
    // without busy-spinning or giving up.
    for chunk in whole.chunks(23) {
        raw.write_all(chunk).unwrap();
        thread::sleep(Duration::from_millis(1));
    }

    let (kind, tag, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, FrameKind::SolveOk);
    assert_eq!(tag, 42);
    let ok = frame::parse_solve_ok(&payload).unwrap();
    assert_eq!(ok.k, 1);
    let mut got = Vec::new();
    frame::decode_scalars::<f64>(ok.col_bytes(0), ok.width, &mut got).unwrap();
    assert_eq!(got, expected);

    srv.stop();
}

#[test]
fn slow_reader_gets_every_response_intact() {
    // Large responses + a client that does not read for a while: the
    // server must buffer, take partial writes, and never drop mid-frame.
    let srv = TestServer::start(ServeConfig::default().with_workers(2), NetConfig::default());
    let n = 4000;
    let l = generate::random_lower::<f64>(n, 4.0, 61);
    let key = warm(&srv.service, &l);

    let mut client = connect(srv.addr);
    let cols: Vec<Vec<f64>> = (0..8).map(|i| rhs_for(n, i)).collect();
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let mut tags = Vec::new();
    for _ in 0..4 {
        // 4 pipelined requests × 8 columns × 4000 f64 ≈ 1 MiB of reply,
        // well past loopback socket buffers.
        tags.push(client.send_solve::<f64>("alpha", &key, &refs, 0).unwrap());
    }
    thread::sleep(Duration::from_millis(200));

    let mut seen = Vec::new();
    for _ in 0..4 {
        let (tag, outcome) = client.recv::<f64>().unwrap();
        let got = outcome.expect("solve succeeds");
        assert_eq!(got.len(), 8);
        for (j, col) in cols.iter().enumerate() {
            let expected = srv.service.submit(&l, col.clone()).unwrap().wait().unwrap();
            assert_eq!(got[j], expected, "tag {tag} column {j}");
        }
        seen.push(tag);
    }
    seen.sort_unstable();
    assert_eq!(seen, tags, "every pipelined request answered exactly once");

    srv.stop();
}

#[test]
fn over_limit_tenant_rejected_typed_never_dropped() {
    let l = generate::random_lower::<f64>(250, 4.0, 71);
    let cost = l.nnz() as f64; // k = 1 per request
    let net_cfg = NetConfig::default()
        .with_tenant("alpha", TenantPolicy::default())
        .with_tenant("limited", TenantPolicy::default().with_rate(0.0, 2.5 * cost));
    let srv = TestServer::start(ServeConfig::default().with_workers(1), net_cfg);
    let key = warm(&srv.service, &l);

    let mut client = connect(srv.addr);
    let b = rhs_for(250, 0);
    // Burst covers exactly two requests; the third must be refused with a
    // typed RateLimited response on the same healthy connection.
    let t1 = client.send_solve::<f64>("limited", &key, &[&b], 0).unwrap();
    let t2 = client.send_solve::<f64>("limited", &key, &[&b], 0).unwrap();
    let t3 = client.send_solve::<f64>("limited", &key, &[&b], 0).unwrap();

    let mut ok = Vec::new();
    let mut refused = Vec::new();
    for _ in 0..3 {
        let (tag, outcome) = client.recv::<f64>().unwrap();
        match outcome {
            Ok(cols) => {
                assert_eq!(cols[0].len(), 250);
                ok.push(tag);
            }
            Err((code, msg)) => {
                assert_eq!(code, ErrCode::RateLimited, "typed refusal, msg {msg:?}");
                refused.push(tag);
            }
        }
    }
    ok.sort_unstable();
    assert_eq!(ok, vec![t1, t2], "burst admits exactly two");
    assert_eq!(refused, vec![t3], "third is rate limited");

    // Connection still serves other tenants afterwards — no drop, no hang.
    assert_eq!(client.solve::<f64>("alpha", &key, &b).unwrap().len(), 250);
    let stat = client.stat().unwrap();
    let lim = stat.tenants.iter().find(|t| t.tenant == "limited").unwrap();
    assert_eq!(lim.admission_rejected, 1);
    assert_eq!(lim.completed, 2);

    srv.stop();
}

#[test]
fn shed_by_queued_cost_is_typed() {
    let l = generate::random_lower::<f64>(250, 4.0, 81);
    let cost = l.nnz() as f64;
    // Zero workers and a one-slot compute queue: the warm-up request
    // plugs the queue forever, so admitted requests pile up in the fair
    // queue and lane cost accumulates deterministically.
    let net_cfg = NetConfig::default()
        .with_tenant("capped", TenantPolicy::default().with_max_queued_cost(2.5 * cost));
    let srv =
        TestServer::start(ServeConfig::default().with_workers(0).with_queue_capacity(1), net_cfg);
    let key = warm_zero_workers(&srv.service, &l);

    let mut client = connect(srv.addr);
    let b = rhs_for(250, 0);
    for _ in 0..2 {
        client.send_solve::<f64>("capped", &key, &[&b], 0).unwrap();
    }
    let t3 = client.send_solve::<f64>("capped", &key, &[&b], 0).unwrap();
    // With no workers the first two never complete; only the typed shed
    // response for the third arrives.
    let (tag, outcome) = client.recv::<f64>().unwrap();
    assert_eq!(tag, t3);
    match outcome {
        Err((code, _)) => assert_eq!(code, ErrCode::ShedCost),
        Ok(_) => panic!("third request must be shed by queued-cost budget"),
    }

    let stat = client.stat().unwrap();
    let capped = stat.tenants.iter().find(|t| t.tenant == "capped").unwrap();
    assert_eq!(capped.shed, 1);

    // Zero workers also means drain would wait forever on the two queued
    // requests; tear down without the graceful path.
    drop(client);
    srv.ctl.shutdown();
}

/// Warm the plan cache on a zero-worker service. Plan construction runs on
/// the submitting thread before the request is queued, so submitting and
/// dropping the handle (never waiting) builds and caches the plan while
/// the request itself stays parked in the compute queue.
fn warm_zero_workers(service: &SolveService<f64>, l: &Csr<f64>) -> PlanKey {
    let rhs = vec![1.0; l.nrows()];
    drop(service.submit(l, rhs).unwrap());
    PlanKey::of(l)
}

#[test]
fn weighted_fairness_under_saturating_load() {
    // One worker and a tiny compute queue force arbitration to happen in
    // the network tier's DRR queue; 3:1 weights must show up as a ~3:1
    // completion ratio while both tenants stay backlogged. The ratio is
    // measured server-side — per-tenant `completed` deltas between two
    // Stat snapshots taken while both lanes are provably backlogged — so
    // client-thread scheduling jitter cannot skew it.
    let serve_cfg = ServeConfig::default().with_workers(1).with_queue_capacity(4).with_max_batch(1);
    let net_cfg = NetConfig::default()
        .with_tenant("heavy", TenantPolicy::default().with_weight(3.0))
        .with_tenant("light", TenantPolicy::default().with_weight(1.0));
    let srv = TestServer::start(serve_cfg, net_cfg);
    let n = 3000;
    let l = generate::random_lower::<f64>(n, 4.0, 91);
    let key = warm(&srv.service, &l);

    const PER_TENANT: usize = 500;
    let gate = Arc::new(Barrier::new(2));
    let addr = srv.addr;

    let spawn_tenant = |name: &'static str| {
        let gate = gate.clone();
        thread::spawn(move || {
            let mut client = connect(addr);
            let b = rhs_for(n, 5);
            gate.wait();
            for _ in 0..PER_TENANT {
                client.send_solve::<f64>(name, &key, &[&b], 0).unwrap();
            }
            for _ in 0..PER_TENANT {
                let (_tag, outcome) = client.recv::<f64>().unwrap();
                outcome.expect("saturating load is admitted, not refused");
            }
        })
    };
    let heavy = spawn_tenant("heavy");
    let light = spawn_tenant("light");

    // Monitor from a third connection. Snapshot A once both lanes hold a
    // deep backlog; snapshot B after ≥200 more completions. Queue depth
    // only shrinks once the senders finish (they front-load all frames),
    // so depth > 0 at B means both lanes stayed backlogged in between.
    let mut monitor = connect(addr);
    let grab = |m: &mut NetClient| {
        let stat = m.stat().unwrap();
        let get = |name: &str| {
            stat.tenants
                .iter()
                .find(|t| t.tenant == name)
                .map(|t| (t.queue_depth, t.completed))
                .unwrap_or((0, 0))
        };
        (get("heavy"), get("light"))
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    let a = loop {
        let ((hd, hc), (ld, lc)) = grab(&mut monitor);
        if hd >= 100 && ld >= 100 {
            break (hc, lc);
        }
        assert!(std::time::Instant::now() < deadline, "backlog never built up");
        assert!(hc + lc < 2 * PER_TENANT as u64 - 300, "load drained before backlog observed");
    };
    let b = loop {
        let ((hd, hc), (ld, lc)) = grab(&mut monitor);
        if (hc - a.0) + (lc - a.1) >= 200 {
            assert!(hd > 0 && ld > 0, "both lanes must stay backlogged over the window");
            break (hc, lc);
        }
        assert!(std::time::Instant::now() < deadline, "completions stalled");
    };
    let (dh, dl) = ((b.0 - a.0) as f64, (b.1 - a.1).max(1) as f64);
    let ratio = dh / dl;
    assert!(
        (2.4..=3.6).contains(&ratio),
        "3:1 weights must yield completion throughput within 20% of the \
         weight ratio; got {ratio:.2} ({dh} heavy vs {dl} light)"
    );

    heavy.join().unwrap();
    light.join().unwrap();
    srv.stop();
}

#[test]
fn graceful_drain_answers_everything_in_flight() {
    let srv = TestServer::start(ServeConfig::default().with_workers(1), NetConfig::default());
    let n = 500;
    let l = generate::random_lower::<f64>(n, 4.0, 101);
    let key = warm(&srv.service, &l);

    let mut client = connect(srv.addr);
    let b = rhs_for(n, 2);
    const REQUESTS: usize = 30;
    for _ in 0..REQUESTS {
        client.send_solve::<f64>("alpha", &key, &[&b], 0).unwrap();
    }
    // Wait for the first response — guaranteeing admitted work is in
    // flight — then pull the plug mid-stream.
    let (_tag, first) = client.recv::<f64>().unwrap();
    first.expect("first pipelined solve succeeds");
    srv.ctl.shutdown();

    let mut completed = 1usize;
    let mut refused = 0usize;
    for _ in 1..REQUESTS {
        let (_tag, outcome) = client.recv::<f64>().unwrap();
        match outcome {
            Ok(cols) => {
                assert_eq!(cols[0].len(), n);
                completed += 1;
            }
            Err((code, _)) => {
                assert_eq!(code, ErrCode::ShuttingDown, "drain refusals are typed");
                refused += 1;
            }
        }
    }
    assert_eq!(completed + refused, REQUESTS, "every request answered, none dropped");
    assert!(completed > 0, "admitted work completes through the drain");

    // After the last response the server closes the connection cleanly.
    let mut rest = Vec::new();
    assert_eq!(client.stream().read_to_end(&mut rest).unwrap(), 0);
    srv.handle.join().expect("event loop thread").expect("drain exits run()");
}
