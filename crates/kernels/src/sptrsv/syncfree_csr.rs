//! Row-driven (CSR) synchronisation-free SpTRSV.
//!
//! The paper notes that "a CSR version of the Sync-free method is given by
//! Dufrechou and Ezzatti". Where the CSC formulation (Algorithm 3) is
//! *producer-driven* — a solved component pushes atomic updates into its
//! dependents' `left_sum` — the CSR formulation is *consumer-driven*: each
//! component walks its own row, busy-waiting on a per-component ready flag
//! for any dependency that has not been published yet, accumulating the dot
//! product locally. No atomic arithmetic at all; the only shared state is
//! the `x` values and their ready flags.
//!
//! Deadlock freedom on a finite thread pool follows from the same argument
//! as the CSC port (static cyclic assignment, in-order processing — see
//! `syncfree.rs`); here a waiting thread spins *inside* its row walk, which
//! is how the GPU kernel behaves too.

use crate::exec::row_dot_with;
use recblock_matrix::scalar::ScalarAtomic;
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A row-driven sync-free solver (CSR, busy-wait on ready flags).
///
/// Holds the matrix behind an [`Arc`], so building a solver from a shared
/// matrix is O(1) instead of an O(nnz) deep copy. (Audit note: this was the
/// only solver with a wasteful verbatim copy — [`super::LevelSetSolver`] and
/// [`super::CusparseLikeSolver`] take the matrix by value, and
/// [`super::SyncFreeSolver`]'s CSC conversion is a necessary format change,
/// not a copy.)
#[derive(Debug, Clone)]
pub struct SyncFreeCsrSolver<S> {
    l: Arc<Csr<S>>,
    nthreads: usize,
}

impl<S: Scalar> SyncFreeCsrSolver<S> {
    /// Validate the matrix and fix the worker-thread count. Accepts an owned
    /// matrix or an existing `Arc` — either way no element data is copied.
    pub fn with_threads(l: impl Into<Arc<Csr<S>>>, nthreads: usize) -> Result<Self, MatrixError> {
        let l = l.into();
        recblock_matrix::triangular::check_solvable_lower(&l)?;
        Ok(SyncFreeCsrSolver { l, nthreads: nthreads.max(1) })
    }

    /// Preprocess with all available CPU parallelism.
    pub fn new(l: impl Into<Arc<Csr<S>>>) -> Result<Self, MatrixError> {
        Self::with_threads(l, super::syncfree_default_threads())
    }

    /// The matrix being solved.
    pub fn matrix(&self) -> &Csr<S> {
        &self.l
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv rhs",
                expected: n,
                actual: b.len(),
            });
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        let x: Vec<S::Atomic> = (0..n).map(|_| S::Atomic::new(S::ZERO)).collect();
        let ready: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let nthreads = self.nthreads.min(n);
        let l: &Csr<S> = &self.l;
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let x = &x;
                let ready = &ready;
                scope.spawn(move || {
                    let mut i = t;
                    while i < n {
                        let (cols, vals) = l.row(i);
                        let last = cols.len() - 1;
                        // Busy-wait until every dependency is published,
                        // then accumulate with the shared deterministic
                        // reduction — results stay bit-identical to the
                        // serial reference at any thread count.
                        for &j in &cols[..last] {
                            let mut spins = 0u32;
                            while !ready[j].load(Ordering::Acquire) {
                                spins += 1;
                                if spins & 0x3f == 0 {
                                    std::thread::yield_now();
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        let acc = row_dot_with(&cols[..last], &vals[..last], |j| x[j].load());
                        x[i].store((b[i] - acc) / vals[last]);
                        ready[i].store(true, Ordering::Release);
                        i += nthreads;
                    }
                });
            }
        });
        Ok(x.iter().map(|a| a.load()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptrsv::{serial_csr, SyncFreeSolver};
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check(l: Csr<f64>, nthreads: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let solver = SyncFreeCsrSolver::with_threads(l, nthreads).unwrap();
        let x = solver.solve(&b).unwrap();
        assert_eq!(x, reference, "threads {nthreads}: must be bit-identical to serial reference");
    }

    #[test]
    fn matches_serial_single_thread() {
        check(generate::random_lower::<f64>(600, 4.0, 111), 1);
    }

    #[test]
    fn matches_serial_multi_thread() {
        for t in [2usize, 4, 8] {
            check(generate::random_lower::<f64>(1200, 5.0, 112), t);
        }
    }

    #[test]
    fn matches_serial_on_chain() {
        check(generate::chain::<f64>(1500, 113), 8);
    }

    #[test]
    fn matches_serial_on_power_law() {
        check(generate::hub_power_law::<f64>(2500, 10, 3, 60, 114), 8);
    }

    #[test]
    fn matches_serial_with_heavy_rows() {
        let base = generate::layered::<f64>(1500, 12, 2.0, generate::LayerShape::Uniform, 115);
        check(generate::with_heavy_rows(&base, 2, 400, 115), 8);
    }

    #[test]
    fn csc_and_csr_variants_agree() {
        let l = generate::grid2d::<f64>(35, 35, 116);
        let b = vec![1.5; 1225];
        let csc = SyncFreeSolver::with_threads(&l, 4).unwrap().solve(&b).unwrap();
        let csr = SyncFreeCsrSolver::with_threads(l, 4).unwrap().solve(&b).unwrap();
        assert!(max_rel_diff(&csc, &csr) < 1e-10);
    }

    #[test]
    fn csr_variant_is_exactly_deterministic() {
        // No atomic arithmetic → bitwise-identical results across runs and
        // thread counts (unlike the CSC variant, whose atomic accumulation
        // order varies).
        let l = generate::random_lower::<f64>(800, 5.0, 117);
        let b: Vec<f64> = (0..800).map(|i| (i as f64 * 0.37).sin()).collect();
        let l = Arc::new(l);
        let x1 = SyncFreeCsrSolver::with_threads(l.clone(), 1).unwrap().solve(&b).unwrap();
        let x8 = SyncFreeCsrSolver::with_threads(l, 8).unwrap().solve(&b).unwrap();
        assert_eq!(x1, x8);
    }

    #[test]
    fn rejects_bad_inputs() {
        let l = generate::diagonal::<f64>(10, 118);
        let s = SyncFreeCsrSolver::new(l).unwrap();
        assert!(s.solve(&[1.0]).is_err());
        let bad = Csr::<f64>::try_new(2, 2, vec![0, 1, 2], vec![0, 0], vec![1., 1.]).unwrap();
        assert!(SyncFreeCsrSolver::new(bad).is_err());
    }

    #[test]
    fn empty_system() {
        let s = SyncFreeCsrSolver::new(Csr::<f64>::zero(0, 0)).unwrap();
        assert_eq!(s.solve(&[]).unwrap(), Vec::<f64>::new());
    }
}
