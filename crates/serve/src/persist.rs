//! Background write-back of freshly built plans.
//!
//! Serializing a plan costs a full copy of its arrays plus an fsync —
//! work that must not sit on the submit path. A single writer thread
//! drains a channel of `(key, plan)` jobs and persists each via the
//! store's atomic write. A pending-counter/condvar pair makes the tier
//! testable and drainable: [`Persister::flush`] blocks until every
//! enqueued plan is on disk, and shutdown flushes before joining so
//! accepted work is never silently dropped.

use crate::cache::PlanKey;
use crate::metrics::Metrics;
use recblock::RecBlockSolver;
use recblock_matrix::Scalar;
use recblock_store::PlanStore;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Job<S> {
    key: PlanKey,
    plan: Arc<RecBlockSolver<S>>,
}

/// Handle to the background writer thread.
pub(crate) struct Persister<S> {
    tx: Option<mpsc::Sender<Job<S>>>,
    pending: Arc<(Mutex<u64>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl<S: Scalar> Persister<S> {
    pub(crate) fn spawn(store: Arc<PlanStore>, metrics: Arc<Metrics>) -> Self {
        let (tx, rx) = mpsc::channel::<Job<S>>();
        let pending = Arc::new((Mutex::new(0u64), Condvar::new()));
        let pending_worker = pending.clone();
        let handle = std::thread::Builder::new()
            .name("recblock-store-writer".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let cost = job.plan.preprocess_time().as_secs_f64();
                    match store.save(job.plan.blocked(), &job.key, cost) {
                        Ok(_) => {
                            metrics.store_writes.fetch_add(1, Relaxed);
                        }
                        Err(_) => {
                            metrics.store_errors.fetch_add(1, Relaxed);
                        }
                    }
                    let (lock, cv) = &*pending_worker;
                    let mut n = lock.lock().unwrap();
                    *n -= 1;
                    cv.notify_all();
                }
            })
            .expect("spawn store writer");
        Persister { tx: Some(tx), pending, handle: Some(handle) }
    }

    /// Queue a plan for persistence. Never blocks on I/O.
    pub(crate) fn enqueue(&self, key: PlanKey, plan: Arc<RecBlockSolver<S>>) {
        let Some(tx) = &self.tx else { return };
        {
            let (lock, _) = &*self.pending;
            *lock.lock().unwrap() += 1;
        }
        if tx.send(Job { key, plan }).is_err() {
            // Writer thread is gone; undo the reservation.
            let (lock, cv) = &*self.pending;
            *lock.lock().unwrap() -= 1;
            cv.notify_all();
        }
    }

    /// Block until every enqueued plan has been written (or failed).
    pub(crate) fn flush(&self) {
        let (lock, cv) = &*self.pending;
        let mut n = lock.lock().unwrap();
        while *n > 0 {
            n = cv.wait(n).unwrap();
        }
    }

    /// Flush, stop the writer thread and join it.
    pub(crate) fn shutdown(&mut self) {
        self.flush();
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<S> Drop for Persister<S> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
