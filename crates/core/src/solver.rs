//! High-level solver API: preprocess once, solve many right-hand sides.

use crate::blocked::{BlockedOptions, BlockedTri, KernelCensus, SolveWorkspace};
use crate::report::{SimBreakdown, SolveBreakdown};
use crate::traffic::TrafficCounts;
use recblock_gpu_sim::{CostParams, DeviceSpec, KernelTime};
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::time::{Duration, Instant};

/// Options for [`RecBlockSolver`] (a thin re-export of [`BlockedOptions`]
/// so downstream code only needs one import).
pub type SolverOptions = BlockedOptions;

/// The user-facing recursive-block SpTRSV solver.
///
/// Construction runs the full preprocessing stage (recursive level-set
/// reorder, blocked rebuild, adaptive kernel selection) and records how long
/// it took — the quantity Table 5 amortises over repeated solves. Solves
/// may then be issued repeatedly for different right-hand sides.
#[derive(Debug, Clone)]
pub struct RecBlockSolver<S> {
    blocked: BlockedTri<S>,
    preprocess_time: Duration,
}

impl<S: Scalar> RecBlockSolver<S> {
    /// Preprocess the lower-triangular matrix `l`.
    pub fn new(l: &Csr<S>, opts: SolverOptions) -> Result<Self, MatrixError> {
        let t0 = Instant::now();
        let blocked = BlockedTri::build(l, &opts)?;
        Ok(RecBlockSolver { blocked, preprocess_time: t0.elapsed() })
    }

    /// Wrap an already-built blocked structure, recording `preprocess_time`
    /// as its construction cost. Lets a caching layer rebuild a solver from
    /// parts it persisted (or measured) elsewhere.
    pub fn from_blocked(blocked: BlockedTri<S>, preprocess_time: Duration) -> Self {
        RecBlockSolver { blocked, preprocess_time }
    }

    /// Wall-clock preprocessing cost of [`RecBlockSolver::new`].
    pub fn preprocess_time(&self) -> Duration {
        self.preprocess_time
    }

    /// Re-plan every block schedule under `tune`, keeping the reorder,
    /// partition and kernel selection exactly as built
    /// ([`BlockedTri::retuned`]). The preprocessing cost carries over — a
    /// retune is schedule re-planning, not a rebuild.
    pub fn retuned(&self, tune: recblock_kernels::exec::TuneParams) -> Result<Self, MatrixError> {
        Ok(RecBlockSolver {
            blocked: self.blocked.retuned(tune)?,
            preprocess_time: self.preprocess_time,
        })
    }

    /// The underlying blocked structure.
    pub fn blocked(&self) -> &BlockedTri<S> {
        &self.blocked
    }

    /// Rows of the system.
    pub fn n(&self) -> usize {
        self.blocked.n()
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        self.blocked.solve(b)
    }

    /// Solve into a caller-provided buffer with a reusable workspace — the
    /// steady-state path; zero heap allocations once `ws` has warmed up
    /// ([`BlockedTri::solve_into`]).
    pub fn solve_into(
        &self,
        b: &[S],
        x: &mut [S],
        ws: &mut SolveWorkspace<S>,
    ) -> Result<(), MatrixError> {
        self.blocked.solve_into(b, x, ws)
    }

    /// Solve with the wall-clock tri/SpMV split.
    pub fn solve_instrumented(&self, b: &[S]) -> Result<(Vec<S>, SolveBreakdown), MatrixError> {
        self.blocked.solve_instrumented(b)
    }

    /// Solve for several right-hand sides (columns of `B`, column-major),
    /// reusing the preprocessing — the multi-RHS scenario of Table 5. The
    /// block list is walked once with every column processed per block
    /// ([`BlockedTri::solve_multi`]).
    pub fn solve_multi(
        &self,
        b: &recblock_kernels::sptrsm::MultiVector<S>,
    ) -> Result<recblock_kernels::sptrsm::MultiVector<S>, MatrixError> {
        self.blocked.solve_multi(b)
    }

    /// As [`RecBlockSolver::solve_multi`], writing into a caller-provided
    /// output batch ([`BlockedTri::solve_multi_into`]).
    pub fn solve_multi_into(
        &self,
        b: &recblock_kernels::sptrsm::MultiVector<S>,
        out: &mut recblock_kernels::sptrsm::MultiVector<S>,
    ) -> Result<(), MatrixError> {
        self.blocked.solve_multi_into(b, out)
    }

    /// As [`RecBlockSolver::solve_multi_into`] with a caller-held workspace
    /// ([`BlockedTri::solve_multi_ws`]) — zero-allocation batch solves.
    pub fn solve_multi_ws(
        &self,
        b: &recblock_kernels::sptrsm::MultiVector<S>,
        out: &mut recblock_kernels::sptrsm::MultiVector<S>,
        ws: &mut SolveWorkspace<S>,
    ) -> Result<(), MatrixError> {
        self.blocked.solve_multi_ws(b, out, ws)
    }

    /// Which kernels the adaptive selection assigned.
    pub fn census(&self) -> KernelCensus {
        self.blocked.census()
    }

    /// The kernel-selection report: per block, the Algorithm 7 input
    /// statistics, the kernel chosen, the candidates rejected and the
    /// threshold that decided it, plus the level-set shape of triangular
    /// blocks and the plan-wide reorder cost
    /// ([`BlockedTri::selection_report`]).
    pub fn explain(&self) -> &crate::explain::SelectionReport {
        self.blocked.selection_report()
    }

    /// Dense-counted traffic per solve.
    pub fn traffic(&self) -> TrafficCounts {
        self.blocked.traffic()
    }

    /// Predicted GPU time of one solve on `dev`.
    pub fn simulated_time(&self, dev: &DeviceSpec, params: &CostParams) -> KernelTime {
        self.blocked.simulated_time(dev, params)
    }

    /// Predicted GPU tri/SpMV split.
    pub fn simulated_breakdown(&self, dev: &DeviceSpec, params: &CostParams) -> SimBreakdown {
        self.blocked.simulated_breakdown(dev, params)
    }

    /// Predicted GPU preprocessing time (Table 5's first column).
    pub fn simulated_prep_time(&self, params: &CostParams) -> f64 {
        self.blocked.simulated_prep_time(params)
    }

    /// Predicted GPU cost of preprocessing plus `iters` solves (Table 5's
    /// amortisation columns).
    pub fn simulated_amortised_time(
        &self,
        iters: usize,
        dev: &DeviceSpec,
        params: &CostParams,
    ) -> f64 {
        self.simulated_prep_time(params) + iters as f64 * self.simulated_time(dev, params).total_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::DepthRule;
    use recblock_kernels::sptrsm::MultiVector;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn opts() -> SolverOptions {
        SolverOptions { depth: DepthRule::Fixed(3), ..SolverOptions::default() }
    }

    #[test]
    fn end_to_end_solve() {
        let l = generate::layered::<f64>(1000, 12, 2.0, generate::LayerShape::Uniform, 71);
        let b: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let solver = RecBlockSolver::new(&l, opts()).unwrap();
        let x = solver.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &serial_csr(&l, &b).unwrap()) < 1e-10);
        assert!(solver.preprocess_time() > Duration::ZERO);
    }

    #[test]
    fn multi_rhs_solve() {
        let l = generate::grid2d::<f64>(20, 20, 72);
        let solver = RecBlockSolver::new(&l, opts()).unwrap();
        let data: Vec<f64> = (0..400 * 3).map(|i| ((i % 13) as f64) - 6.0).collect();
        let b = MultiVector::from_columns(400, 3, data).unwrap();
        let x = solver.solve_multi(&b).unwrap();
        for j in 0..3 {
            let r = recblock_matrix::vector::residual_inf(&l, x.col(j), b.col(j)).unwrap();
            assert!(r < 1e-10);
        }
    }

    #[test]
    fn multi_rhs_dimension_check() {
        let l = generate::diagonal::<f64>(10, 73);
        let solver = RecBlockSolver::new(&l, opts()).unwrap();
        let b = MultiVector::<f64>::zeros(5, 2);
        assert!(solver.solve_multi(&b).is_err());
    }

    #[test]
    fn amortisation_grows_linearly() {
        let l = generate::random_lower::<f64>(600, 4.0, 74);
        let solver = RecBlockSolver::new(&l, opts()).unwrap();
        let dev = DeviceSpec::titan_rtx_turing();
        let p = CostParams::default();
        let t100 = solver.simulated_amortised_time(100, &dev, &p);
        let t1000 = solver.simulated_amortised_time(1000, &dev, &p);
        let prep = solver.simulated_prep_time(&p);
        let single = solver.simulated_time(&dev, &p).total_s;
        assert!((t100 - (prep + 100.0 * single)).abs() < 1e-12);
        assert!(t1000 > t100);
    }

    #[test]
    fn census_and_traffic_accessible() {
        let l = generate::kkt_like::<f64>(1024, 400, 3, 75);
        let solver = RecBlockSolver::new(&l, opts()).unwrap();
        assert!(!solver.census().tri.is_empty());
        assert!(solver.traffic().b_updates >= 1024);
    }

    #[test]
    fn explain_names_kernel_and_threshold_for_every_block() {
        let l = generate::kkt_like::<f64>(1024, 400, 3, 75);
        let solver = RecBlockSolver::new(&l, opts()).unwrap();
        let report = solver.explain();
        assert_eq!(report.blocks.len(), solver.blocked().nblocks());
        assert!(!report.derived);
        assert!(report.reorder_time.is_some());
        for b in &report.blocks {
            assert!(!b.kernel_name().is_empty());
            assert!(!b.threshold().is_empty());
        }
        // The rendered report mentions every chosen kernel and threshold.
        let text = format!("{report}");
        for b in &report.blocks {
            assert!(text.contains(b.kernel_name()), "missing {} in\n{text}", b.kernel_name());
            assert!(text.contains(b.threshold()), "missing {} in\n{text}", b.threshold());
        }
        assert!(report.detail().contains("rows/level histogram"));
    }
}
