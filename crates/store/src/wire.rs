//! Little-endian wire encoding primitives.
//!
//! The writer appends to a growable buffer; the reader is a cursor over a
//! borrowed slice, so a whole plan file is read with **one** `fs::read`
//! and decoded in place — no intermediate copies beyond the final owned
//! arrays handed to the validating constructors. Bulk arrays decode via
//! `chunks_exact`, which the compiler vectorises.
//!
//! Conventions:
//! - all integers are little-endian; `usize` travels as `u64`,
//! - arrays are length-prefixed (`u64` element count),
//! - scalar values always travel as `f64` bit patterns regardless of the
//!   in-memory type (`f32 → f64` widening is exact, so both precisions
//!   round-trip bit-identically); the file's META section records the
//!   original width so a load under the wrong type is a typed error.

use crate::error::StoreError;
use recblock_matrix::Scalar;
use std::ops::Range;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append raw bytes verbatim.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed `usize` array.
    pub fn put_usize_slice(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&(x as u64).to_le_bytes());
        }
    }

    /// Append a length-prefixed scalar array (widened to `f64` bits).
    pub fn put_scalar_slice<S: Scalar>(&mut self, v: &[S]) {
        self.put_usize(v.len());
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&x.to_f64().to_bits().to_le_bytes());
        }
    }

    /// Append a half-open range as two `u64`s.
    pub fn put_range(&mut self, r: &Range<usize>) {
        self.put_usize(r.start);
        self.put_usize(r.end);
    }
}

/// Cursor over a borrowed byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Wrap `buf`; `what` names the region for `Truncated` errors.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() < n {
            return Err(StoreError::Truncated { what: self.what });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("take(4) returned 4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("take(8) returned 8 bytes")))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting overflow.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::Malformed(format!("{}: value {v} exceeds usize", self.what)))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed `usize` array.
    ///
    /// The byte budget is claimed with `take` *before* allocating, so a
    /// corrupted length field fails as `Truncated` instead of attempting a
    /// huge allocation.
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, StoreError> {
        let len = self.usize()?;
        let bytes =
            self.take(len.checked_mul(8).ok_or(StoreError::Truncated { what: self.what })?)?;
        if usize::BITS >= 64 {
            // `u64 → usize` cannot overflow here, so the conversion is a
            // straight widening and the loop vectorises.
            let out = bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")) as usize)
                .collect();
            return Ok(out);
        }
        let mut out = Vec::with_capacity(len);
        for c in bytes.chunks_exact(8) {
            let v = u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
            out.push(usize::try_from(v).map_err(|_| {
                StoreError::Malformed(format!("{}: index {v} exceeds usize", self.what))
            })?);
        }
        Ok(out)
    }

    /// Read a length-prefixed scalar array (stored as `f64` bits).
    pub fn scalar_vec<S: Scalar>(&mut self) -> Result<Vec<S>, StoreError> {
        let len = self.usize()?;
        let bytes =
            self.take(len.checked_mul(8).ok_or(StoreError::Truncated { what: self.what })?)?;
        let mut out = Vec::with_capacity(len);
        for c in bytes.chunks_exact(8) {
            let bits = u64::from_le_bytes(c.try_into().expect("chunks_exact(8)"));
            out.push(S::from_f64(f64::from_bits(bits)));
        }
        Ok(out)
    }

    /// Read a half-open range; rejects `start > end`.
    pub fn range(&mut self) -> Result<Range<usize>, StoreError> {
        let start = self.usize()?;
        let end = self.usize()?;
        if start > end {
            return Err(StoreError::Malformed(format!(
                "{}: range {start}..{end} runs backwards",
                self.what
            )));
        }
        Ok(start..end)
    }

    /// Assert the region was consumed exactly.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(StoreError::Malformed(format!("{}: {} trailing bytes", self.what, self.buf.len())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_arrays_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_usize_slice(&[0, 1, usize::MAX]);
        w.put_scalar_slice::<f64>(&[1.5, f64::MIN_POSITIVE, -3.25]);
        w.put_range(&(3..9));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.usize_vec().unwrap(), vec![0, 1, usize::MAX]);
        assert_eq!(r.scalar_vec::<f64>().unwrap(), vec![1.5, f64::MIN_POSITIVE, -3.25]);
        assert_eq!(r.range().unwrap(), 3..9);
        r.finish().unwrap();
    }

    #[test]
    fn f32_widening_roundtrips_exactly() {
        let vals: Vec<f32> = vec![1.0e-20, -7.75, f32::MAX, f32::MIN_POSITIVE];
        let mut w = Writer::new();
        w.put_scalar_slice(&vals);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        let back: Vec<f32> = r.scalar_vec().unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = Writer::new();
        w.put_usize_slice(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1], "chopped");
        assert!(matches!(r.usize_vec(), Err(StoreError::Truncated { what: "chopped" })));
    }

    #[test]
    fn huge_length_field_does_not_allocate() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX / 2); // length claiming ~8 EiB of payload
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "bomb");
        assert!(matches!(r.usize_vec(), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "extra");
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn backwards_range_rejected() {
        let mut w = Writer::new();
        w.put_usize(5);
        w.put_usize(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "range");
        assert!(matches!(r.range(), Err(StoreError::Malformed(_))));
    }
}
