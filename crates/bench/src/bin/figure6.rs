//! Regenerate the paper's Figure 6 (159-matrix corpus performance sweep).
//!
//! Pass an integer argument to shrink the corpus by that factor (faster).
use recblock_bench::HarnessConfig;
fn main() {
    let shrink: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let eval = recblock_bench::experiments::figure6::evaluate(&HarnessConfig::default(), shrink);
    print!("{}", recblock_bench::experiments::figure6::render(eval));
}
