//! Multi-tenant QoS primitives: token-bucket admission and deficit
//! round-robin fair dequeue.
//!
//! Both work in **cost units** — one unit of cost is one stored nonzero
//! multiplied through one right-hand side (`nnz × k` per request) — so a
//! tenant sending few huge solves and one sending many small solves are
//! metered on the work they actually impose, not on request counts.

use std::collections::VecDeque;
use std::time::Instant;

/// Classic token bucket over f64 cost units.
///
/// `rate` tokens accrue per second up to `burst`; a request of cost `c` is
/// admitted iff `c` tokens are available. An infinite `rate` disables
/// metering entirely (and never evaluates `∞ × 0`, which would be NaN).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` cost/sec, holding at most `burst`,
    /// starting full.
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        let burst = burst.max(0.0);
        TokenBucket { rate: rate.max(0.0), burst, tokens: burst, last: now }
    }

    /// Credit elapsed time. Monotone: refilling never removes tokens.
    pub fn refill(&mut self, now: Instant) {
        if now <= self.last {
            return;
        }
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        if self.rate.is_infinite() {
            self.tokens = self.burst;
        } else {
            self.tokens = (self.tokens + self.rate * dt).min(self.burst);
        }
    }

    /// Admit a request of `cost` units if the bucket covers it.
    pub fn try_take(&mut self, cost: f64, now: Instant) -> bool {
        if self.rate.is_infinite() {
            return true;
        }
        self.refill(now);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

struct Lane<T> {
    weight: f64,
    deficit: f64,
    queue: VecDeque<(f64, T)>,
    queued_cost: f64,
    in_active: bool,
}

/// Deficit round-robin fair queue across weighted lanes.
///
/// Each rotation credits lane *i* with `quantum × weightᵢ` deficit and
/// serves its head items while the deficit covers their cost, so long-run
/// served **cost** per lane is proportional to its weight under
/// saturation. The quantum adapts to the largest item cost seen, which
/// bounds a `pop` to one extra rotation per `1/min-weight` and keeps the
/// structure allocation-free once lane queues are warm.
pub struct FairQueue<T> {
    lanes: Vec<Lane<T>>,
    active: VecDeque<usize>,
    quantum: f64,
    len: usize,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        FairQueue::new()
    }
}

impl<T> FairQueue<T> {
    /// An empty queue with no lanes.
    pub fn new() -> FairQueue<T> {
        FairQueue { lanes: Vec::new(), active: VecDeque::new(), quantum: 1.0, len: 0 }
    }

    /// Register a lane with `weight > 0`; returns its index.
    pub fn add_lane(&mut self, weight: f64) -> usize {
        assert!(weight > 0.0 && weight.is_finite(), "lane weight must be positive and finite");
        self.lanes.push(Lane {
            weight,
            deficit: 0.0,
            queue: VecDeque::new(),
            queued_cost: 0.0,
            in_active: false,
        });
        self.lanes.len() - 1
    }

    /// Queued items across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no lane holds an item.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items in one lane.
    pub fn lane_depth(&self, lane: usize) -> usize {
        self.lanes[lane].queue.len()
    }

    /// Total queued cost in one lane.
    pub fn lane_cost(&self, lane: usize) -> f64 {
        self.lanes[lane].queued_cost
    }

    /// Append an item of `cost` to `lane`.
    pub fn push(&mut self, lane: usize, cost: f64, item: T) {
        let cost = cost.max(0.0);
        self.quantum = self.quantum.max(cost);
        let l = &mut self.lanes[lane];
        l.queue.push_back((cost, item));
        l.queued_cost += cost;
        if !l.in_active {
            l.in_active = true;
            self.active.push_back(lane);
        }
        self.len += 1;
    }

    /// Put an item back at the head of `lane` (a dispatch that could not
    /// complete), refunding its deficit so it is re-served first.
    pub fn push_front(&mut self, lane: usize, cost: f64, item: T) {
        let cost = cost.max(0.0);
        self.quantum = self.quantum.max(cost);
        let l = &mut self.lanes[lane];
        l.queue.push_front((cost, item));
        l.queued_cost += cost;
        l.deficit += cost;
        if !l.in_active {
            l.in_active = true;
            self.active.push_front(lane);
        }
        self.len += 1;
    }

    /// Dequeue the next item under DRR order: `(lane, cost, item)`.
    pub fn pop(&mut self) -> Option<(usize, f64, T)> {
        loop {
            let &idx = self.active.front()?;
            let lane = &mut self.lanes[idx];
            let Some(&(head_cost, _)) = lane.queue.front() else {
                lane.in_active = false;
                lane.deficit = 0.0;
                self.active.pop_front();
                continue;
            };
            if lane.deficit >= head_cost {
                let (cost, item) = lane.queue.pop_front().expect("head just observed");
                lane.deficit -= cost;
                lane.queued_cost = (lane.queued_cost - cost).max(0.0);
                if lane.queue.is_empty() {
                    lane.in_active = false;
                    lane.deficit = 0.0;
                    self.active.pop_front();
                }
                self.len -= 1;
                return Some((idx, cost, item));
            }
            // Not enough deficit: credit one quantum and rotate onward.
            lane.deficit += self.quantum * lane.weight;
            let front = self.active.pop_front().expect("non-empty");
            self.active.push_back(front);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_admits_within_burst_then_refuses() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 50.0, t0);
        assert!(b.try_take(30.0, t0));
        assert!(b.try_take(20.0, t0));
        assert!(!b.try_take(1.0, t0), "burst exhausted");
        // 0.2 s later 20 tokens have accrued.
        let t1 = t0 + Duration::from_millis(200);
        assert!(b.try_take(15.0, t1));
        assert!(!b.try_take(10.0, t1));
    }

    #[test]
    fn infinite_rate_never_refuses() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(f64::INFINITY, f64::MAX, t0);
        for i in 0..100 {
            assert!(b.try_take(1e300, t0 + Duration::from_nanos(i)));
        }
        assert!(b.tokens().is_finite() || b.tokens() == f64::MAX);
    }

    #[test]
    fn drr_is_fifo_within_one_lane() {
        let mut q = FairQueue::new();
        let a = q.add_lane(1.0);
        for i in 0..5 {
            q.push(a, 10.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn drr_long_run_cost_share_tracks_weights() {
        let mut q = FairQueue::new();
        let heavy = q.add_lane(3.0);
        let light = q.add_lane(1.0);
        for _ in 0..400 {
            q.push(heavy, 5.0, "heavy");
            q.push(light, 5.0, "light");
        }
        // Under saturation, the first 200 pops should split ~3:1 by cost.
        let mut served = [0usize; 2];
        for _ in 0..200 {
            let (lane, _, _) = q.pop().unwrap();
            served[lane] += 1;
        }
        let ratio = served[heavy] as f64 / served[light] as f64;
        assert!((2.4..=3.75).contains(&ratio), "ratio {ratio}, served {served:?}");
    }

    #[test]
    fn push_front_is_served_next() {
        let mut q = FairQueue::new();
        let a = q.add_lane(1.0);
        let b = q.add_lane(1.0);
        q.push(a, 1.0, 1);
        q.push(b, 1.0, 2);
        let (lane, cost, first) = q.pop().unwrap();
        q.push_front(lane, cost, first);
        let (_, _, again) = q.pop().unwrap();
        assert_eq!(first, again, "requeued item comes back first");
    }

    #[test]
    fn mixed_costs_terminate_and_drain() {
        let mut q = FairQueue::new();
        let a = q.add_lane(0.25);
        let b = q.add_lane(4.0);
        for i in 0..50 {
            q.push(a, 1000.0, i);
            q.push(b, 1.0, i + 100);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert!(q.is_empty());
        assert_eq!(q.lane_depth(a) + q.lane_depth(b), 0);
    }
}
