//! Ablation benches for the design choices DESIGN.md calls out:
//! level-set reordering on/off, DCSR storage on/off, adaptive selection vs
//! fixed kernels, and the recursion-depth rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recblock::adaptive::{Selector, TriKernel};
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock_gpu_sim::cost::SpmvKind;
use recblock_matrix::generate;
use std::time::Duration;

fn base_opts(depth: usize) -> BlockedOptions {
    BlockedOptions { depth: DepthRule::Fixed(depth), ..BlockedOptions::default() }
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    let l = generate::hub_power_law::<f64>(25_000, 20, 3, 300, 11);
    let b: Vec<f64> = (0..25_000).map(|i| (i % 23) as f64 - 11.0).collect();

    // ablation_reorder: level-set reordering on/off.
    for (name, reorder) in [("reorder_on", true), ("reorder_off", false)] {
        let opts = BlockedOptions { reorder, ..base_opts(4) };
        let s = BlockedTri::build(&l, &opts).unwrap();
        g.bench_with_input(BenchmarkId::new("ablation_reorder", name), &s, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
    }

    // ablation_dcsr: DCSR storage for hyper-sparse squares on/off.
    for (name, allow_dcsr) in [("dcsr_on", true), ("dcsr_off", false)] {
        let opts = BlockedOptions { allow_dcsr, ..base_opts(4) };
        let s = BlockedTri::build(&l, &opts).unwrap();
        g.bench_with_input(BenchmarkId::new("ablation_dcsr", name), &s, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
    }

    // ablation_adaptive: adaptive selection vs forcing one kernel pair.
    let fixed_variants = [
        ("adaptive", Selector::default()),
        ("fixed_syncfree", Selector::Fixed(TriKernel::SyncFree, SpmvKind::ScalarCsr)),
        ("fixed_levelset", Selector::Fixed(TriKernel::LevelSet, SpmvKind::VectorCsr)),
    ];
    for (name, selector) in fixed_variants {
        let opts = BlockedOptions { selector, ..base_opts(4) };
        let s = BlockedTri::build(&l, &opts).unwrap();
        g.bench_with_input(BenchmarkId::new("ablation_adaptive", name), &s, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
    }

    // ablation_depth: the recursion-depth rule.
    for depth in [1usize, 3, 5] {
        let s = BlockedTri::build(&l, &base_opts(depth)).unwrap();
        g.bench_with_input(BenchmarkId::new("ablation_depth", depth), &s, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
