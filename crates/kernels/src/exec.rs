//! The solve-phase execution engine: preplanned, nnz-balanced,
//! allocation-free parallel execution for the SpTRSV/SpMV hot path.
//!
//! The paper's solve phase is latency-critical — preprocessing is amortised
//! over many solves (Table 5), so everything expensive must happen *before*
//! the first right-hand side arrives. This module provides the pieces the
//! kernels share:
//!
//! * [`TuneParams`] — the scheduling thresholds, kept as data so a stored
//!   plan (recblock-store) carries the tuning it was built with;
//! * [`row_dot`] — the one deterministic lane-unrolled inner reduction used
//!   by the serial reference and every parallel kernel, so results are
//!   bit-reproducible across kernels and thread counts;
//! * [`ExecPool`] — a persistent worker pool whose dispatch path performs no
//!   heap allocation (parked workers, an epoch-tagged atomic cursor, a
//!   type-erased task pointer);
//! * [`LevelSchedule`] — a preplanned level-set schedule with consecutive
//!   cheap levels fused into serial runs and parallel levels split at
//!   nnz-prefix-sum chunk boundaries;
//! * [`SpmvPlan`] — the same nnz-balanced chunking for SpMV blocks;
//! * [`SolveWorkspace`] — reusable gather/scatter buffers for the blocked
//!   executor and multi-RHS batches.

use crate::trace::{EventKind, SolveTrace};
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, Scalar};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Lanes of the deterministic inner reduction ([`row_dot`]). Fixed at
/// compile time; [`TuneParams::lanes`] records it alongside a plan.
pub const LANES: usize = 4;

// ---------------------------------------------------------------------------
// TuneParams
// ---------------------------------------------------------------------------

/// How a level-set solver synchronises between dependent rows at solve time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// Pick per plan: point-to-point when the schedule has enough parallel
    /// launches ([`TuneParams::p2p_min_parallel`]) to make barrier elision
    /// pay, level-synchronous otherwise.
    #[default]
    Auto,
    /// One barrier per parallel level ([`LevelSchedule`]).
    LevelSync,
    /// Dependency-driven tasks with per-task finished flags
    /// ([`TaskSchedule`]) — one dispatch per solve, zero barriers inside.
    PointToPoint,
}

impl ScheduleMode {
    /// Stable on-disk / report encoding.
    pub fn as_index(self) -> usize {
        match self {
            ScheduleMode::Auto => 0,
            ScheduleMode::LevelSync => 1,
            ScheduleMode::PointToPoint => 2,
        }
    }

    /// Inverse of [`as_index`](Self::as_index); unknown values fall back to
    /// `Auto` (forward compatibility for stored plans).
    pub fn from_index(v: usize) -> Self {
        match v {
            1 => ScheduleMode::LevelSync,
            2 => ScheduleMode::PointToPoint,
            _ => ScheduleMode::Auto,
        }
    }
}

/// Scheduling thresholds of the execution engine. Stored with a plan
/// (recblock-store format v3) so a reloaded plan executes with the tuning it
/// was built under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneParams {
    /// A level with at least this many rows runs as a parallel launch.
    pub par_rows: usize,
    /// The fuse budget: a level below `par_rows` rows **and** below this
    /// many nonzeros is cheap enough that forking would cost more than it
    /// buys; consecutive such levels are fused into one serial run with no
    /// barriers between them. A skinny level at/above this budget (few rows,
    /// heavy work) still runs parallel.
    pub fuse_nnz: usize,
    /// Target nonzeros per parallel chunk — chunk boundaries are placed on
    /// the nnz prefix sum, so chunks carry equal *work*, not equal rows.
    pub chunk_nnz: usize,
    /// Lane count of the deterministic reduction the plan was built for
    /// (provenance; the kernels are compiled with [`LANES`]).
    pub lanes: usize,
    /// Which synchronisation scheme the level-set solver executes with.
    pub schedule_mode: ScheduleMode,
    /// Under `ScheduleMode::Auto`, point-to-point is chosen when the
    /// level-sync schedule would pay at least this many barriers per solve.
    pub p2p_min_parallel: usize,
    /// Target nonzeros per point-to-point task — smaller than `chunk_nnz`
    /// because a task costs flag stores, not a barrier.
    pub p2p_chunk_nnz: usize,
}

impl Default for TuneParams {
    fn default() -> Self {
        TuneParams {
            par_rows: 256,
            fuse_nnz: 4096,
            chunk_nnz: 4096,
            lanes: LANES,
            schedule_mode: ScheduleMode::Auto,
            p2p_min_parallel: 4,
            p2p_chunk_nnz: 768,
        }
    }
}

impl TuneParams {
    /// The merged-launch variant used by the cuSPARSE-like solver: levels
    /// only go parallel on row count (`fuse_nnz = usize::MAX` disables the
    /// work-based promotion), mirroring cuSPARSE's row-threshold merging.
    /// The merged schedule is the baseline the p2p mode is measured against,
    /// so it is pinned to level-synchronous execution.
    pub fn merged_launch(self) -> Self {
        TuneParams { fuse_nnz: usize::MAX, schedule_mode: ScheduleMode::LevelSync, ..self }
    }
}

// ---------------------------------------------------------------------------
// Deterministic inner reduction
// ---------------------------------------------------------------------------

/// The shared inner loop of [`row_dot`] and [`row_dot_ptr`], generic over
/// how `x` entries are fetched so both compile to the *same* sequence of
/// floating-point operations.
///
/// Rows shorter than [`LANES`] take a plain sequential accumulation — for
/// the 2–4 nnz rows that dominate sparse triangular factors, the unrolled
/// prologue/epilogue costs more than it saves. Longer rows use four
/// interleaved accumulators over the body plus one tail accumulator,
/// combined as `((a0+a1) + (a2+a3)) + tail`. The branch depends only on
/// the row length, so for a given row every kernel — whichever path — still
/// produces bit-identical results.
#[inline(always)]
pub(crate) fn row_dot_with<S: Scalar>(cols: &[usize], vals: &[S], get: impl Fn(usize) -> S) -> S {
    let n = cols.len();
    if n < LANES {
        let mut acc = S::ZERO;
        for k in 0..n {
            acc += vals[k] * get(cols[k]);
        }
        return acc;
    }
    let mut a0 = S::ZERO;
    let mut a1 = S::ZERO;
    let mut a2 = S::ZERO;
    let mut a3 = S::ZERO;
    let mut k = 0;
    while k + LANES <= n {
        a0 += vals[k] * get(cols[k]);
        a1 += vals[k + 1] * get(cols[k + 1]);
        a2 += vals[k + 2] * get(cols[k + 2]);
        a3 += vals[k + 3] * get(cols[k + 3]);
        k += LANES;
    }
    let mut tail = S::ZERO;
    while k < n {
        tail += vals[k] * get(cols[k]);
        k += 1;
    }
    ((a0 + a1) + (a2 + a3)) + tail
}

/// Deterministic sparse dot product `Σ vals[k]·x[cols[k]]`.
///
/// Every kernel in the suite — the serial reference, the level-scheduled
/// solvers, and all four SpMV variants — reduces through this one function,
/// so for a given row the result is bit-identical no matter which kernel or
/// thread count produced it. The lane-unrolled shape also gives the
/// optimiser independent accumulation chains (SIMD/ILP friendly). On
/// AVX2-capable x86-64 hosts rows of at least [`simd::MIN_SIMD_NNZ`]
/// nonzeros take an explicit gather/multiply/add vector path that performs
/// the *same* IEEE operations in the same order, so the result stays
/// bit-identical to the portable reduction.
#[inline]
pub fn row_dot<S: Scalar>(cols: &[usize], vals: &[S], x: &[S]) -> S {
    #[cfg(target_arch = "x86_64")]
    if cols.len() >= simd::MIN_SIMD_NNZ && simd::avx2() {
        if let Some(r) = simd::row_dot_checked(cols, vals, x) {
            return r;
        }
    }
    row_dot_with(cols, vals, |j| x[j])
}

/// As [`row_dot`], reading `x` through a raw pointer — the in-place parallel
/// form, where other threads are concurrently writing *disjoint* entries of
/// the same vector.
///
/// # Safety
/// Every index in `cols` must be in bounds for the allocation behind `x`,
/// and the entries read must not be written concurrently.
#[inline]
pub unsafe fn row_dot_ptr<S: Scalar>(cols: &[usize], vals: &[S], x: *const S) -> S {
    #[cfg(target_arch = "x86_64")]
    if cols.len() >= simd::MIN_SIMD_NNZ && simd::avx2() {
        if let Some(r) = unsafe { simd::row_dot_raw(cols, vals, x) } {
            return r;
        }
    }
    row_dot_with(cols, vals, |j| unsafe { *x.add(j) })
}

/// Hint the hardware to pull the cache line holding `p` into L1. A plain
/// hint — never faults, no-op off x86-64 — used by the schedules and SpMV
/// kernels to overlap the next row's gather latency with the current row's
/// arithmetic.
#[inline(always)]
pub(crate) fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// How many of the next row's `x`-gather targets to prefetch ahead of
/// solving/multiplying the current row. The gathers are the latency-bound
/// loads of the whole hot path (column indices and values stream, `x[col]`
/// does not); eight covers the common short rows without flooding the
/// load ports on long ones.
const GATHER_PREFETCH: usize = 8;

/// Row lead distance for software prefetch in the triangular row loops.
/// One row of arithmetic (~10–15 ns on typical short rows) is far below a
/// DRAM round trip, so a one-row lead hides almost none of the gather
/// latency; four rows keeps the fetched lines in flight long enough to
/// arrive before the solve reaches them. Prefetches are hints — reading
/// ahead past rows whose `x` entries are still being produced is harmless.
pub(crate) const ROW_PREFETCH_DIST: usize = 4;

/// Prefetch the leading `x`-gather targets of the row described by `cols`,
/// plus the index/value streams themselves.
#[inline(always)]
pub(crate) fn prefetch_row<S>(cols: &[usize], vals: &[S], x: *const S) {
    prefetch_read(cols.as_ptr());
    prefetch_read(vals.as_ptr());
    for &j in cols.iter().take(GATHER_PREFETCH) {
        prefetch_read(x.wrapping_add(j));
    }
}

/// Explicit AVX2 lowering of the [`row_dot_with`] reduction.
///
/// The portable path already exposes four independent accumulator chains;
/// this module maps chain `k` onto vector lane `k` — same multiplies, same
/// adds, same `((a0+a1)+(a2+a3))+tail` combine, no FMA contraction — so the
/// vector result is bit-identical to the portable one and therefore to the
/// serial reference. Dispatch is by `TypeId` (f32/f64 only) behind a cached
/// `is_x86_feature_detected!` probe.
#[cfg(target_arch = "x86_64")]
pub(crate) mod simd {
    use super::LANES;
    use recblock_matrix::Scalar;
    use std::any::TypeId;
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Below this row length the vector prologue costs more than it saves
    /// (and the portable path already takes its sequential branch at
    /// `< LANES`).
    pub(crate) const MIN_SIMD_NNZ: usize = 2 * LANES;

    /// Cached CPUID probe: 0 unknown, 1 available, 2 absent.
    pub(crate) fn avx2() -> bool {
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let has = std::is_x86_feature_detected!("avx2");
                STATE.store(if has { 1 } else { 2 }, Ordering::Relaxed);
                has
            }
        }
    }

    /// Bounds-checked dispatch for the safe slice form: verifies every
    /// gathered index against `x.len()` group by group, falling back to the
    /// portable path (and its panic message) on the first out-of-range
    /// index. Returns `None` for scalar types without a vector lowering.
    #[inline]
    pub(crate) fn row_dot_checked<S: Scalar>(cols: &[usize], vals: &[S], x: &[S]) -> Option<S> {
        if cols.iter().any(|&j| j >= x.len()) {
            return None; // let the portable path raise the slice panic
        }
        // SAFETY: every index was just checked against x.len().
        unsafe { row_dot_raw(cols, vals, x.as_ptr()) }
    }

    /// Raw-pointer dispatch (no bounds information available).
    ///
    /// # Safety
    /// As [`super::row_dot_ptr`].
    #[inline]
    pub(crate) unsafe fn row_dot_raw<S: Scalar>(
        cols: &[usize],
        vals: &[S],
        x: *const S,
    ) -> Option<S> {
        unsafe {
            if TypeId::of::<S>() == TypeId::of::<f64>() {
                let vals = std::slice::from_raw_parts(vals.as_ptr() as *const f64, vals.len());
                let r = dot_f64(cols, vals, x as *const f64);
                Some(*(&r as *const f64 as *const S))
            } else if TypeId::of::<S>() == TypeId::of::<f32>() {
                let vals = std::slice::from_raw_parts(vals.as_ptr() as *const f32, vals.len());
                let r = dot_f32(cols, vals, x as *const f32);
                Some(*(&r as *const f32 as *const S))
            } else {
                None
            }
        }
    }

    /// # Safety
    /// Caller guarantees AVX2 is available and every index in `cols` is in
    /// bounds for the allocation behind `x`.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_f64(cols: &[usize], vals: &[f64], x: *const f64) -> f64 {
        let n = cols.len();
        debug_assert!(n >= LANES);
        let mut acc = _mm256_setzero_pd();
        let mut k = 0;
        unsafe {
            while k + LANES <= n {
                let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
                let xv = _mm256_i64gather_pd::<8>(x, idx);
                let vv = _mm256_loadu_pd(vals.as_ptr().add(k));
                // mul then add, NOT fmadd: the portable path does two
                // roundings per element and bit-identity is the contract.
                acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
                k += LANES;
            }
            let mut lanes = [0.0f64; LANES];
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
            let mut tail = 0.0f64;
            while k < n {
                tail += vals[k] * *x.add(cols[k]);
                k += 1;
            }
            ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
        }
    }

    /// # Safety
    /// As [`dot_f64`].
    #[target_feature(enable = "avx2")]
    unsafe fn dot_f32(cols: &[usize], vals: &[f32], x: *const f32) -> f32 {
        let n = cols.len();
        debug_assert!(n >= LANES);
        let mut acc = _mm_setzero_ps();
        let mut k = 0;
        unsafe {
            while k + LANES <= n {
                let idx = _mm256_loadu_si256(cols.as_ptr().add(k) as *const __m256i);
                let xv = _mm256_i64gather_ps::<4>(x, idx);
                let vv = _mm_loadu_ps(vals.as_ptr().add(k));
                acc = _mm_add_ps(acc, _mm_mul_ps(vv, xv));
                k += LANES;
            }
            let mut lanes = [0.0f32; LANES];
            _mm_storeu_ps(lanes.as_mut_ptr(), acc);
            let mut tail = 0.0f32;
            while k < n {
                tail += vals[k] * *x.add(cols[k]);
                k += 1;
            }
            ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail
        }
    }
}

/// Forward-substitute one row of `L x = b` given all its dependencies
/// solved: `x_i = (b_i − Σ_{j<i} l_ij·x_j) / l_ii`. Requires the diagonal
/// stored last in the row (the suite-wide storage invariant).
#[inline]
pub fn solve_row<S: Scalar>(l: &Csr<S>, b: &[S], x: &[S], i: usize) -> S {
    let (cols, vals) = l.row(i);
    let last = cols.len() - 1;
    debug_assert_eq!(cols[last], i, "diagonal must be last in row");
    (b[i] - row_dot(&cols[..last], &vals[..last], x)) / vals[last]
}

/// As [`solve_row`] with `x` behind a raw pointer (see [`row_dot_ptr`]).
///
/// # Safety
/// As [`row_dot_ptr`]: `x` must cover every column index of row `i`, and no
/// entry this row reads may be written concurrently.
#[inline]
unsafe fn solve_row_ptr<S: Scalar>(l: &Csr<S>, b: &[S], x: *const S, i: usize) -> S {
    let (cols, vals) = l.row(i);
    let last = cols.len() - 1;
    debug_assert_eq!(cols[last], i, "diagonal must be last in row");
    (b[i] - unsafe { row_dot_ptr(&cols[..last], &vals[..last], x) }) / vals[last]
}

/// `Copy` wrapper that lets a raw pointer cross a closure that must be
/// `Sync`. Safety is argued at every use site (disjoint index sets).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub *mut T);
// SAFETY: sharing the wrapper only shares the address; all dereferences are
// unsafe blocks whose disjointness is proven locally.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer. Closures must reach it through this by-value
    /// method, not the field: field access would precision-capture the bare
    /// `*mut T` (which is not `Sync`) instead of the wrapper.
    #[inline(always)]
    pub(crate) fn ptr(self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// ExecPool
// ---------------------------------------------------------------------------

/// Jobs are claimed from a single `AtomicU64` cursor whose low bits are the
/// next job index and high bits the dispatch epoch — a claim from a stale
/// epoch fails instead of stealing a job from the next dispatch.
const IDX_BITS: u32 = 24;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;
const TAG_MASK: u64 = u64::MAX >> IDX_BITS;

/// Type-erased task pointer handed to the workers. Valid strictly for the
/// duration of one [`ExecPool::run`] call (which cannot return while any
/// job of its epoch is unfinished).
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is `Sync` and outlives every dereference (see `run`).
unsafe impl Send for TaskPtr {}

struct TaskSlot {
    epoch: u64,
    njobs: usize,
    task: Option<TaskPtr>,
}

struct Shared {
    slot: Mutex<TaskSlot>,
    work_cv: Condvar,
    done_cv: Condvar,
    cursor: AtomicU64,
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// Set when any job of the current epoch panicked. Workers survive
    /// (the unwind is caught so `pending` always drains); the dispatcher
    /// observes the flag after the drain and re-raises on its own
    /// thread, where callers can contain it per-request.
    panicked: AtomicBool,
}

/// A persistent worker pool with an allocation-free dispatch path.
///
/// The vendored rayon shim spawns a scoped thread team per parallel region —
/// fine for preprocessing, hopeless for a microsecond-scale solve phase.
/// `ExecPool` keeps its workers parked on a condvar; dispatch publishes a
/// borrowed closure (type-erased, no boxing), workers claim jobs from the
/// epoch-tagged cursor, and the caller participates until the counter
/// drains. Steady-state dispatch therefore performs **zero heap
/// allocations**: futex-backed mutex/condvar operations and atomics only.
///
/// Dispatches are serialised by a try-lock; a nested or concurrent `run`
/// simply executes its jobs inline on the calling thread, which keeps the
/// pool deadlock-free by construction.
pub struct ExecPool {
    shared: std::sync::Arc<Shared>,
    submit: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool").field("workers", &self.handles.len()).finish()
    }
}

impl ExecPool {
    /// Spawn a pool with `nworkers` parked worker threads (the calling
    /// thread participates in every dispatch, so total concurrency is
    /// `nworkers + 1`).
    pub fn new(nworkers: usize) -> Self {
        let shared = std::sync::Arc::new(Shared {
            slot: Mutex::new(TaskSlot { epoch: 0, njobs: 0, task: None }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicU64::new(0),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        });
        let handles = (0..nworkers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ExecPool { shared, submit: Mutex::new(()), handles }
    }

    /// The process-wide pool used by the kernels: `min(cores, 16) − 1`
    /// workers plus the calling thread.
    pub fn global() -> &'static ExecPool {
        static POOL: OnceLock<ExecPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(16);
            ExecPool::new(cores.saturating_sub(1))
        })
    }

    /// Threads that participate in a dispatch (workers + caller).
    pub fn concurrency(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `f(0), f(1), …, f(njobs−1)`, each exactly once, across the pool;
    /// returns once all have finished. Falls back to inline serial execution
    /// when the pool has no workers, for a single job, or when another
    /// dispatch is in flight — callers therefore never need their own
    /// "is it worth forking" check beyond job granularity.
    pub fn run(&self, njobs: usize, f: &(dyn Fn(usize) + Sync)) {
        if njobs == 0 {
            return;
        }
        if self.handles.is_empty() || njobs == 1 || njobs as u64 > IDX_MASK {
            for j in 0..njobs {
                job_fault_hooks();
                f(j);
            }
            return;
        }
        // A panic re-raised by a previous dispatch poisons this lock;
        // the poison carries no meaning here (the pool state was already
        // restored before re-raising), so treat it as acquired.
        let _submit = match self.submit.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                for j in 0..njobs {
                    job_fault_hooks();
                    f(j);
                }
                return;
            }
        };
        self.dispatch(njobs, f);
    }

    /// Dispatch for jobs that synchronise *with each other* (the
    /// point-to-point [`TaskSchedule`]): every job must be able to run on
    /// its own thread concurrently, so instead of falling back to inline
    /// serialisation — which would deadlock a job spin-waiting on a sibling
    /// that never starts — this refuses (`false`) when the pool cannot host
    /// `njobs` simultaneously or another dispatch is in flight. The caller
    /// keeps a barrier-style schedule around as the fallback.
    ///
    /// Deadlock-freedom once accepted: a thread only leaves the claim loop
    /// after the cursor is exhausted, so while any job is unclaimed every
    /// non-blocked thread still heads for it; with `njobs ≤ concurrency()`
    /// at most `njobs − 1` threads can be blocked on an unclaimed job, which
    /// leaves one to claim it.
    pub(crate) fn try_run_exclusive(&self, njobs: usize, f: &(dyn Fn(usize) + Sync)) -> bool {
        if njobs == 0 {
            return true;
        }
        if njobs == 1 {
            // A single job synchronises with nobody; run it inline.
            job_fault_hooks();
            f(0);
            return true;
        }
        if njobs > self.concurrency() || njobs as u64 > IDX_MASK {
            return false;
        }
        let _submit = match self.submit.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return false,
        };
        self.dispatch(njobs, f);
        true
    }

    /// `true` while a job of the in-flight dispatch has panicked (cleared
    /// when the dispatcher re-raises). Point-to-point jobs poll this inside
    /// their dependency spin-waits so a dead parent cannot park them
    /// forever.
    #[inline]
    pub(crate) fn dispatch_panicked(&self) -> bool {
        self.shared.panicked.load(Ordering::Acquire)
    }

    /// The dispatch body shared by [`run`](Self::run) and
    /// [`try_run_exclusive`](Self::try_run_exclusive). Must be called with
    /// the `submit` lock held and `2 ≤ njobs ≤ IDX_MASK`.
    fn dispatch(&self, njobs: usize, f: &(dyn Fn(usize) + Sync)) {
        let t0 = SolveTrace::start();
        // SAFETY (lifetime erasure): `run` does not return until `pending`
        // reaches zero, i.e. until no worker can touch the pointer again
        // (stale-epoch claims fail on the tagged cursor), so the borrow
        // outlives every dereference.
        let task = TaskPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f as *const _)
        });
        let epoch;
        {
            let mut g = self.shared.slot.lock().expect("pool mutex");
            g.epoch += 1;
            epoch = g.epoch;
            g.njobs = njobs;
            g.task = Some(task);
            self.shared.pending.store(njobs, Ordering::Release);
            self.shared.cursor.store((epoch & TAG_MASK) << IDX_BITS, Ordering::Release);
            self.shared.work_cv.notify_all();
        }
        while let Some(j) = claim(&self.shared.cursor, epoch, njobs) {
            run_contained(&self.shared, &|j| f(j), j);
        }
        let mut g = self.shared.slot.lock().expect("pool mutex");
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            g = self.shared.done_cv.wait(g).expect("pool condvar");
        }
        g.task = None;
        drop(g);
        SolveTrace::finish(
            t0,
            EventKind::PoolDispatch,
            njobs.min(IDX_MASK as usize) as u32,
            njobs.min(u32::MAX as usize) as u32,
            njobs.min(u16::MAX as usize) as u16,
        );
        if self.shared.panicked.swap(false, Ordering::AcqRel) {
            // Re-raise on the dispatching thread: the pool and its
            // workers are already back in a clean parked state, so a
            // caller that catches this unwind can keep using the pool.
            panic!("exec pool job panicked");
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.slot.lock().expect("pool mutex");
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn claim(cursor: &AtomicU64, epoch: u64, njobs: usize) -> Option<usize> {
    let tag = epoch & TAG_MASK;
    let mut cur = cursor.load(Ordering::Acquire);
    loop {
        if cur >> IDX_BITS != tag {
            return None;
        }
        let idx = (cur & IDX_MASK) as usize;
        if idx >= njobs {
            return None;
        }
        match cursor.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some(idx),
            Err(c) => cur = c,
        }
    }
}

fn finish_one(shared: &Shared) {
    if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last job of the epoch: wake the dispatcher. Taking the lock
        // orders this notify after the dispatcher's pending-check.
        let _g = shared.slot.lock().expect("pool mutex");
        shared.done_cv.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (epoch, njobs, task) = {
            let mut g = shared.slot.lock().expect("pool mutex");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if g.epoch != seen {
                    seen = g.epoch;
                    if let Some(t) = g.task {
                        break (g.epoch, g.njobs, t);
                    }
                    // Missed the whole round; wait for the next epoch.
                }
                g = shared.work_cv.wait(g).expect("pool condvar");
            }
        };
        while let Some(j) = claim(&shared.cursor, epoch, njobs) {
            // SAFETY: a successful claim proves the cursor still carries
            // this epoch's tag, so the dispatcher is still inside `run`
            // (pending > 0) and the pointer is live.
            run_contained(shared, &|j| unsafe { (*task.0)(j) }, j);
        }
    }
}

/// Execute one claimed job, containing any panic so the epoch's `pending`
/// counter always drains (a skipped `finish_one` would park the
/// dispatcher on `done_cv` forever) and worker threads never die.
fn run_contained(shared: &Shared, job: &dyn Fn(usize), j: usize) {
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job_fault_hooks();
        job(j)
    }));
    if r.is_err() {
        shared.panicked.store(true, Ordering::Release);
    }
    finish_one(shared);
}

/// Fault-injection hooks applied to every pool job: an injected slow chunk
/// (straggler) or chunk panic. Called from the per-job containment *and*
/// from the inline serial fallbacks, so an armed plan behaves identically
/// on single-core hosts where the pool has no workers.
#[inline]
fn job_fault_hooks() {
    if recblock_faults::fires(recblock_faults::FaultPoint::ExecSlow) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    if recblock_faults::fires(recblock_faults::FaultPoint::ExecChunk) {
        panic!("injected fault: exec_chunk");
    }
}

// ---------------------------------------------------------------------------
// LevelSchedule
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Run {
    /// Rows executed in order on the calling thread (a fused stretch of
    /// cheap levels — zero barriers inside).
    Serial { rows: Range<u32> },
    /// One level executed as a parallel launch; `chunks` indexes the
    /// boundary array (`chunk c` spans `chunk_ptr[c]..chunk_ptr[c+1]`).
    Parallel { chunks: Range<u32> },
}

/// A preplanned execution schedule for one level decomposition: which levels
/// fuse into serial runs, which run parallel, and where each parallel
/// level's nnz-balanced chunk boundaries fall. Built once at preprocessing
/// time; executing it performs no allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSchedule {
    /// Row indices in execution order (the level sets' item array, u32).
    rows: Vec<u32>,
    runs: Vec<Run>,
    /// Chunk boundaries of all parallel runs, as offsets into `rows`.
    chunk_ptr: Vec<u32>,
    tune: TuneParams,
}

impl LevelSchedule {
    /// Plan the schedule for `l` under `levels` (which must decompose `l`:
    /// `levels.n() == l.nrows()`).
    ///
    /// Classification: a level with `rows ≥ tune.par_rows` **or**
    /// `nnz ≥ tune.fuse_nnz` becomes a parallel run, chunked at
    /// `tune.chunk_nnz` nonzeros on the prefix sum; every maximal stretch of
    /// remaining (cheap) levels is fused into one serial run.
    pub fn plan<S: Scalar>(l: &Csr<S>, levels: &LevelSets, tune: TuneParams) -> Self {
        assert_eq!(l.nrows(), levels.n(), "schedule planned for a mismatched level decomposition");
        let rows: Vec<u32> = levels.items().iter().map(|&i| i as u32).collect();
        let level_ptr = levels.level_ptr();
        let mut runs = Vec::new();
        let mut chunk_ptr: Vec<u32> = Vec::new();
        let mut serial_start: Option<u32> = None;
        for lvl in 0..levels.nlevels() {
            let span = level_ptr[lvl] as u32..level_ptr[lvl + 1] as u32;
            let items = levels.level_items(lvl);
            let lvl_nnz: usize = items.iter().map(|&i| l.row_nnz(i)).sum();
            if items.len() >= tune.par_rows || lvl_nnz >= tune.fuse_nnz {
                if let Some(s) = serial_start.take() {
                    runs.push(Run::Serial { rows: s..span.start });
                }
                let c0 = chunk_ptr.len() as u32;
                chunk_ptr.push(span.start);
                let mut acc = 0usize;
                for (off, &i) in items.iter().enumerate() {
                    acc += l.row_nnz(i);
                    let bound = span.start + off as u32 + 1;
                    if acc >= tune.chunk_nnz && bound < span.end {
                        chunk_ptr.push(bound);
                        acc = 0;
                    }
                }
                chunk_ptr.push(span.end);
                runs.push(Run::Parallel { chunks: c0..chunk_ptr.len() as u32 });
            } else if serial_start.is_none() {
                serial_start = Some(span.start);
            }
        }
        if let Some(s) = serial_start {
            runs.push(Run::Serial { rows: s..rows.len() as u32 });
        }
        LevelSchedule { rows, runs, chunk_ptr, tune }
    }

    /// The thresholds this schedule was planned under.
    pub fn tune(&self) -> &TuneParams {
        &self.tune
    }

    /// Total runs (serial + parallel launches) per solve.
    pub fn nruns(&self) -> usize {
        self.runs.len()
    }

    /// Parallel launches per solve — each costs one barrier; the difference
    /// to the raw level count is what coarsening saved.
    pub fn nparallel(&self) -> usize {
        self.runs.iter().filter(|r| matches!(r, Run::Parallel { .. })).count()
    }

    /// Execute the schedule: forward-substitute `x` from `b` over `l`.
    ///
    /// `l` must be the matrix the schedule was planned for (same shape and
    /// sparsity); `b` and `x` must both have `l.nrows()` entries. Checked by
    /// the callers ([`crate::sptrsv::LevelSetSolver::solve_into`] and
    /// friends), debug-asserted here.
    pub fn solve_into<S: Scalar>(&self, l: &Csr<S>, b: &[S], x: &mut [S], pool: &ExecPool) {
        debug_assert_eq!(l.nrows(), self.rows.len());
        debug_assert_eq!(b.len(), x.len());
        debug_assert_eq!(x.len(), self.rows.len());
        let xp = SendPtr(x.as_mut_ptr());
        for (ri, run) in self.runs.iter().enumerate() {
            let t0 = SolveTrace::start();
            match run {
                Run::Serial { rows } => {
                    let span = &self.rows[rows.start as usize..rows.end as usize];
                    for (k, &i) in span.iter().enumerate() {
                        if let Some(&nx) = span.get(k + ROW_PREFETCH_DIST) {
                            let (ncols, nvals) = l.row(nx as usize);
                            prefetch_row(ncols, nvals, x.as_ptr());
                        }
                        let i = i as usize;
                        x[i] = solve_row(l, b, x, i);
                    }
                    SolveTrace::finish(
                        t0,
                        EventKind::SerialRun,
                        ri as u32,
                        rows.end - rows.start,
                        0,
                    );
                }
                Run::Parallel { chunks } => {
                    let bounds = &self.chunk_ptr[chunks.start as usize..chunks.end as usize];
                    let nchunks = bounds.len() - 1;
                    pool.run(nchunks, &|c| {
                        let lo = bounds[c] as usize;
                        let hi = bounds[c + 1] as usize;
                        let span = &self.rows[lo..hi];
                        for (k, &i) in span.iter().enumerate() {
                            if let Some(&nx) = span.get(k + ROW_PREFETCH_DIST) {
                                let (ncols, nvals) = l.row(nx as usize);
                                prefetch_row(ncols, nvals, xp.ptr() as *const S);
                            }
                            let i = i as usize;
                            // SAFETY: rows of one level are mutually
                            // independent and each appears in exactly one
                            // chunk, so this write is the only access to
                            // x[i] in the launch and every read touches
                            // entries finished in earlier runs.
                            unsafe {
                                *xp.ptr().add(i) = solve_row_ptr(l, b, xp.ptr() as *const S, i)
                            };
                        }
                    });
                    let nrows = bounds[nchunks] - bounds[0];
                    SolveTrace::finish(
                        t0,
                        EventKind::ParallelRun,
                        ri as u32,
                        nrows,
                        nchunks.min(u16::MAX as usize) as u16,
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TaskSchedule (point-to-point)
// ---------------------------------------------------------------------------

/// Shape summary of a compiled [`TaskSchedule`], surfaced through
/// `SelectionReport`/`planctl explain`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskGraphStats {
    /// Compiled tasks (nnz-balanced row groups; fused chains count once).
    pub ntasks: usize,
    /// Cross-thread dependency edges — each is one flag spin-wait per
    /// solve, the p2p replacement for a barrier.
    pub cross_edges: usize,
    /// Longest dependency chain through the task graph (tasks), the lower
    /// bound on solve latency in task units.
    pub critical_path: usize,
    /// Threads the schedule was compiled for (task→thread binding is
    /// static).
    pub nthreads: usize,
}

/// Reset-on-drop for the solve gate so a panicking solve cannot wedge the
/// schedule busy.
struct BusyReset<'a>(&'a AtomicBool);
impl Drop for BusyReset<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// A compiled point-to-point schedule: the SpMP pattern of per-task
/// `finished` flags plus plan-time parent lists, replacing the per-level
/// barrier of [`LevelSchedule`] with dependency-driven spin/yield waits —
/// one pool dispatch per solve, zero barriers inside the level loop.
///
/// Rows are grouped into nnz-balanced tasks bound to fixed threads
/// (segment `k` of a level always runs on thread `k`); consecutive
/// single-segment levels fuse into one task, so a pure chain compiles to a
/// single task with no synchronisation at all. Parent lists keep only
/// cross-thread dependencies (intra-thread order is implied by each
/// thread walking its tasks in level order) and are reduced to at most one
/// parent per other thread — the largest dependee task id — because a
/// thread finishes its tasks in order.
///
/// Dependency flags are epoch-stamped (`finished[t] == epoch` ⇒ done this
/// solve), so repeated solves reuse the same allocation-free state; a
/// `busy` gate refuses overlapped solves on one schedule (the caller falls
/// back to its level-sync schedule instead).
#[derive(Debug)]
pub struct TaskSchedule {
    /// Row indices in task order (tasks are contiguous spans).
    rows: Vec<u32>,
    /// Task `t` solves `rows[task_ptr[t]..task_ptr[t+1]]`.
    task_ptr: Vec<u32>,
    /// Thread `th` owns tasks `thread_ptr[th]..thread_ptr[th+1]`, in level
    /// order.
    thread_ptr: Vec<u32>,
    /// Cross-thread parents of task `t`:
    /// `parents[parent_ptr[t]..parent_ptr[t+1]]`.
    parents: Vec<u32>,
    parent_ptr: Vec<u32>,
    stats: TaskGraphStats,
    /// Monotonic solve counter; flag `t` is set by storing the epoch.
    epoch: AtomicU64,
    finished: Vec<AtomicU64>,
    busy: AtomicBool,
}

impl Clone for TaskSchedule {
    fn clone(&self) -> Self {
        TaskSchedule {
            rows: self.rows.clone(),
            task_ptr: self.task_ptr.clone(),
            thread_ptr: self.thread_ptr.clone(),
            parents: self.parents.clone(),
            parent_ptr: self.parent_ptr.clone(),
            stats: self.stats,
            epoch: AtomicU64::new(0),
            finished: self.finished.iter().map(|_| AtomicU64::new(0)).collect(),
            busy: AtomicBool::new(false),
        }
    }
}

impl PartialEq for TaskSchedule {
    fn eq(&self, other: &Self) -> bool {
        // Structural identity only; the epoch/flag runtime state is
        // solve-count bookkeeping, not part of the plan.
        self.rows == other.rows
            && self.task_ptr == other.task_ptr
            && self.thread_ptr == other.thread_ptr
            && self.parents == other.parents
            && self.parent_ptr == other.parent_ptr
            && self.stats == other.stats
    }
}

impl TaskSchedule {
    /// Compile the task graph for `l` under `levels` for `nthreads` fixed
    /// threads. Each level is cut into at most
    /// `min(nthreads, ⌈level_nnz / tune.p2p_chunk_nnz⌉)` contiguous
    /// nnz-balanced segments.
    pub fn plan<S: Scalar>(
        l: &Csr<S>,
        levels: &LevelSets,
        tune: TuneParams,
        nthreads: usize,
    ) -> Self {
        assert_eq!(l.nrows(), levels.n(), "schedule planned for a mismatched level decomposition");
        let nthreads = nthreads.max(1);
        let level_ptr = levels.level_ptr();
        let items = levels.items();

        // 1. Cut levels into segments; segment k of a level runs on thread
        //    k. Consecutive single-segment levels fuse into one task.
        let mut per_thread: Vec<Vec<Range<u32>>> = vec![Vec::new(); nthreads];
        let mut fusing = false;
        for lvl in 0..levels.nlevels() {
            let span = level_ptr[lvl] as u32..level_ptr[lvl + 1] as u32;
            let lvl_items = levels.level_items(lvl);
            if lvl_items.is_empty() {
                continue;
            }
            let lvl_nnz: usize = lvl_items.iter().map(|&i| l.row_nnz(i)).sum();
            let nseg =
                lvl_nnz.div_ceil(tune.p2p_chunk_nnz.max(1)).clamp(1, nthreads.min(lvl_items.len()));
            if nseg <= 1 {
                if fusing {
                    per_thread[0].last_mut().expect("fusing task exists").end = span.end;
                } else {
                    per_thread[0].push(span);
                    fusing = true;
                }
            } else {
                fusing = false;
                let target = lvl_nnz.div_ceil(nseg);
                let mut seg_start = span.start;
                let mut th = 0usize;
                let mut acc = 0usize;
                for (off, &i) in lvl_items.iter().enumerate() {
                    acc += l.row_nnz(i);
                    let bound = span.start + off as u32 + 1;
                    if acc >= target && bound < span.end && th + 1 < nseg {
                        per_thread[th].push(seg_start..bound);
                        th += 1;
                        seg_start = bound;
                        acc = 0;
                    }
                }
                per_thread[th].push(seg_start..span.end);
            }
        }

        // 2. Number tasks thread-major and record row → owning task.
        let mut thread_ptr = Vec::with_capacity(nthreads + 1);
        thread_ptr.push(0u32);
        for th in 0..nthreads {
            thread_ptr.push(thread_ptr[th] + per_thread[th].len() as u32);
        }
        let ntasks = thread_ptr[nthreads] as usize;
        let mut rows: Vec<u32> = Vec::with_capacity(items.len());
        let mut task_ptr = Vec::with_capacity(ntasks + 1);
        task_ptr.push(0u32);
        let mut task_of_row = vec![0u32; l.nrows()];
        let mut owner = vec![0u32; ntasks];
        let mut start_of = vec![0u32; ntasks];
        let mut t = 0usize;
        for (th, segs) in per_thread.iter().enumerate() {
            for seg in segs {
                for &i in &items[seg.start as usize..seg.end as usize] {
                    task_of_row[i] = t as u32;
                    rows.push(i as u32);
                }
                task_ptr.push(rows.len() as u32);
                owner[t] = th as u32;
                start_of[t] = seg.start;
                t += 1;
            }
        }

        // 3. Parent lists: cross-thread dependencies only, reduced to the
        //    largest dependee per owning thread (its earlier tasks are
        //    implied finished).
        let mut parents: Vec<u32> = Vec::new();
        let mut parent_ptr = Vec::with_capacity(ntasks + 1);
        parent_ptr.push(0u32);
        let mut max_parent: Vec<i64> = vec![-1; nthreads];
        for t in 0..ntasks {
            let th = owner[t] as usize;
            for &i in &rows[task_ptr[t] as usize..task_ptr[t + 1] as usize] {
                let (cols, _) = l.row(i as usize);
                for &j in &cols[..cols.len() - 1] {
                    let d = task_of_row[j];
                    let od = owner[d as usize] as usize;
                    if od != th && d as i64 > max_parent[od] {
                        max_parent[od] = d as i64;
                    }
                }
            }
            for slot in max_parent.iter_mut() {
                if *slot >= 0 {
                    parents.push(*slot as u32);
                    *slot = -1;
                }
            }
            parent_ptr.push(parents.len() as u32);
        }

        // 4. Critical path, walked in level (= item-range) order, which is
        //    topological: parents and same-thread predecessors both start
        //    strictly earlier in the item array.
        let mut order: Vec<u32> = (0..ntasks as u32).collect();
        order.sort_unstable_by_key(|&t| start_of[t as usize]);
        let mut cp = vec![0u32; ntasks];
        let mut critical = 0usize;
        for &t in &order {
            let t = t as usize;
            let th = owner[t] as usize;
            let mut best = 0u32;
            if t as u32 > thread_ptr[th] {
                best = cp[t - 1];
            }
            for &p in &parents[parent_ptr[t] as usize..parent_ptr[t + 1] as usize] {
                best = best.max(cp[p as usize]);
            }
            cp[t] = best + 1;
            critical = critical.max(cp[t] as usize);
        }

        let stats = TaskGraphStats {
            ntasks,
            cross_edges: parents.len(),
            critical_path: critical,
            nthreads,
        };
        let finished = (0..ntasks).map(|_| AtomicU64::new(0)).collect();
        TaskSchedule {
            rows,
            task_ptr,
            thread_ptr,
            parents,
            parent_ptr,
            stats,
            epoch: AtomicU64::new(0),
            finished,
            busy: AtomicBool::new(false),
        }
    }

    /// Shape summary for reports.
    pub fn stats(&self) -> TaskGraphStats {
        self.stats
    }

    /// Execute the schedule: forward-substitute `x` from `b` over `l`,
    /// which must be the matrix the schedule was compiled for.
    ///
    /// Returns `false` — with `x` untouched in any meaningful way — when
    /// the solve could not be dispatched point-to-point: another solve is
    /// in flight on this same schedule, the pool cannot host all
    /// `nthreads` jobs concurrently, or another dispatch holds the pool.
    /// Callers keep their [`LevelSchedule`] and fall back to it.
    pub fn solve_into<S: Scalar>(&self, l: &Csr<S>, b: &[S], x: &mut [S], pool: &ExecPool) -> bool {
        debug_assert_eq!(l.nrows(), self.rows.len());
        debug_assert_eq!(b.len(), x.len());
        debug_assert_eq!(x.len(), self.rows.len());
        if self.busy.swap(true, Ordering::Acquire) {
            return false;
        }
        let _busy = BusyReset(&self.busy);
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let t0 = SolveTrace::start();
        let xp = SendPtr(x.as_mut_ptr());
        let ok = pool.try_run_exclusive(self.stats.nthreads, &|th| {
            for t in self.thread_ptr[th] as usize..self.thread_ptr[th + 1] as usize {
                for &p in
                    &self.parents[self.parent_ptr[t] as usize..self.parent_ptr[t + 1] as usize]
                {
                    let flag = &self.finished[p as usize];
                    let mut spins = 0u32;
                    while flag.load(Ordering::Acquire) != epoch {
                        // A dead parent never sets its flag; bail so the
                        // dispatcher can drain and re-raise the panic.
                        if pool.dispatch_panicked() {
                            return;
                        }
                        spins = spins.wrapping_add(1);
                        if spins < 64 {
                            core::hint::spin_loop();
                        } else {
                            std::thread::yield_now();
                        }
                    }
                }
                let span = &self.rows[self.task_ptr[t] as usize..self.task_ptr[t + 1] as usize];
                for (k, &i) in span.iter().enumerate() {
                    if let Some(&nx) = span.get(k + ROW_PREFETCH_DIST) {
                        let (ncols, nvals) = l.row(nx as usize);
                        prefetch_row(ncols, nvals, xp.ptr() as *const S);
                    }
                    let i = i as usize;
                    // SAFETY: each row belongs to exactly one task, so this
                    // write is the only access to x[i] in the dispatch;
                    // every read sees rows finished by this thread earlier
                    // (program order) or published by the Release store on
                    // a parent's flag that the Acquire spin above observed.
                    unsafe { *xp.ptr().add(i) = solve_row_ptr(l, b, xp.ptr() as *const S, i) };
                }
                self.finished[t].store(epoch, Ordering::Release);
            }
        });
        if ok {
            SolveTrace::finish(
                t0,
                EventKind::P2pRun,
                self.stats.ntasks.min(IDX_MASK as usize) as u32,
                self.rows.len().min(u32::MAX as usize) as u32,
                self.stats.nthreads.min(u16::MAX as usize) as u16,
            );
        }
        ok
    }
}

// ---------------------------------------------------------------------------
// SpmvPlan
// ---------------------------------------------------------------------------

/// Preplanned nnz-balanced chunk boundaries for an SpMV block: boundary `c`
/// to `c+1` delimits the rows (CSR) or stored lanes (DCSR) of one parallel
/// chunk. Planned once per block at preprocessing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmvPlan {
    bounds: Vec<u32>,
}

impl SpmvPlan {
    fn from_nnz(n: usize, row_nnz: impl Fn(usize) -> usize, tune: &TuneParams) -> Self {
        let mut bounds = Vec::with_capacity(2);
        bounds.push(0u32);
        let mut acc = 0usize;
        for i in 0..n {
            acc += row_nnz(i);
            if acc >= tune.chunk_nnz && i + 1 < n {
                bounds.push((i + 1) as u32);
                acc = 0;
            }
        }
        bounds.push(n as u32);
        SpmvPlan { bounds }
    }

    /// Plan chunk boundaries over the rows of a CSR block.
    pub fn for_csr<S: Scalar>(a: &Csr<S>, tune: &TuneParams) -> Self {
        Self::from_nnz(a.nrows(), |i| a.row_nnz(i), tune)
    }

    /// Plan chunk boundaries over the stored lanes of a DCSR block.
    pub fn for_dcsr<S: Scalar>(a: &recblock_matrix::Dcsr<S>, tune: &TuneParams) -> Self {
        Self::from_nnz(a.n_lanes(), |k| a.lane(k).1.len(), tune)
    }

    /// Number of parallel chunks (≥ 1).
    pub fn nchunks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Rows/lanes covered by the plan (its last boundary).
    pub fn len(&self) -> usize {
        *self.bounds.last().expect("plan has at least one boundary") as usize
    }

    /// `true` if the plan covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn bounds(&self) -> &[u32] {
        &self.bounds
    }
}

// ---------------------------------------------------------------------------
// SolveWorkspace
// ---------------------------------------------------------------------------

/// Reusable scratch buffers for the blocked executor: the gathered
/// right-hand side and reordered solution for single solves, plus a pair of
/// wide (`n × k`, column-major) buffers for fused multi-RHS batches. After
/// warm-up on a given shape, repeated solves perform no allocation.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace<S> {
    work: Vec<S>,
    x: Vec<S>,
    wide_work: Vec<S>,
    wide_x: Vec<S>,
}

impl<S: Scalar> SolveWorkspace<S> {
    /// An empty workspace (buffers grow on first use and are kept).
    pub fn new() -> Self {
        SolveWorkspace {
            work: Vec::new(),
            x: Vec::new(),
            wide_work: Vec::new(),
            wide_x: Vec::new(),
        }
    }

    /// The single-solve buffer pair `(work, x)`, each resized to `n`.
    pub fn pair(&mut self, n: usize) -> (&mut [S], &mut [S]) {
        self.work.resize(n, S::ZERO);
        self.x.resize(n, S::ZERO);
        (&mut self.work, &mut self.x)
    }

    /// The multi-RHS buffer pair `(work, x)`, each resized to `len`
    /// (typically `n·k`, column-major).
    pub fn wide_pair(&mut self, len: usize) -> (&mut [S], &mut [S]) {
        self.wide_work.resize(len, S::ZERO);
        self.wide_x.resize(len, S::ZERO);
        (&mut self.wide_work, &mut self.wide_x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;

    #[test]
    fn row_dot_matches_sequential_reduction_in_value() {
        let cols: Vec<usize> = (0..11).collect();
        let vals: Vec<f64> = (0..11).map(|k| 1.0 + k as f64 * 0.5).collect();
        let x: Vec<f64> = (0..11).map(|k| (k as f64 * 0.3).sin()).collect();
        let seq: f64 = cols.iter().zip(&vals).map(|(&j, &v)| v * x[j]).sum();
        assert!((row_dot(&cols, &vals, &x) - seq).abs() < 1e-12);
    }

    #[test]
    fn row_dot_ptr_is_bit_identical_to_slice_form() {
        let cols: Vec<usize> = (0..37).map(|k| (k * 7) % 40).collect();
        let vals: Vec<f32> = (0..37).map(|k| (k as f32 * 0.11).cos()).collect();
        let x: Vec<f32> = (0..40).map(|k| (k as f32 * 0.23).sin()).collect();
        let a = row_dot(&cols, &vals, &x);
        let b = unsafe { row_dot_ptr(&cols, &vals, x.as_ptr()) };
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn pool_runs_every_job_exactly_once() {
        let pool = ExecPool::new(3);
        for njobs in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..njobs).map(|_| AtomicUsize::new(0)).collect();
            pool.run(njobs, &|j| {
                hits[j].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "njobs={njobs}");
        }
    }

    #[test]
    fn pool_back_to_back_dispatches_stay_isolated() {
        let pool = ExecPool::new(2);
        for round in 0..200usize {
            let njobs = 2 + round % 5;
            let sum = AtomicUsize::new(0);
            pool.run(njobs, &|j| {
                sum.fetch_add(j + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), njobs * (njobs + 1) / 2, "round {round}");
        }
    }

    #[test]
    fn pool_contains_job_panics_and_stays_usable() {
        let pool = ExecPool::new(3);
        for round in 0..5usize {
            let done = AtomicUsize::new(0);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(64, &|j| {
                    if j == 17 {
                        panic!("boom in job {j}");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }));
            assert!(r.is_err(), "round {round}: dispatcher must observe the panic");
            assert_eq!(done.load(Ordering::Relaxed), 63, "round {round}");
            // The pool recovers completely: the very next dispatch runs
            // every job on the same (still-alive) workers.
            let ok = AtomicUsize::new(0);
            pool.run(64, &|_| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(ok.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn pool_nested_run_falls_back_inline() {
        let pool = ExecPool::new(2);
        let total = AtomicUsize::new(0);
        pool.run(4, &|_| {
            pool.run(3, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ExecPool::new(0);
        let sum = AtomicUsize::new(0);
        pool.run(10, &|j| {
            sum.fetch_add(j, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
        assert_eq!(pool.concurrency(), 1);
    }

    #[test]
    fn schedule_fuses_chain_into_one_serial_run() {
        let l = generate::chain::<f64>(5000, 11);
        let levels = LevelSets::analyse(&l).unwrap();
        assert_eq!(levels.nlevels(), 5000);
        let sched = LevelSchedule::plan(&l, &levels, TuneParams::default());
        assert_eq!(sched.nruns(), 1, "a pure chain coarsens to a single serial run");
        assert_eq!(sched.nparallel(), 0);
    }

    #[test]
    fn schedule_splits_big_levels_on_nnz_prefix() {
        // One big level: a diagonal matrix, 10k rows of 1 nnz.
        let l = generate::diagonal::<f64>(10_000, 12);
        let levels = LevelSets::analyse(&l).unwrap();
        let tune = TuneParams { chunk_nnz: 1000, ..TuneParams::default() };
        let sched = LevelSchedule::plan(&l, &levels, tune);
        assert_eq!(sched.nruns(), 1);
        assert_eq!(sched.nparallel(), 1);
        let Run::Parallel { chunks } = &sched.runs[0] else { panic!("expected parallel run") };
        let bounds = &sched.chunk_ptr[chunks.start as usize..chunks.end as usize];
        assert_eq!(bounds.len() - 1, 10, "10k nnz at 1k per chunk");
        for w in bounds.windows(2) {
            assert_eq!(w[1] - w[0], 1000);
        }
    }

    #[test]
    fn schedule_solves_correctly_across_structures() {
        let pool = ExecPool::new(2);
        for (l, seed) in [
            (generate::random_lower::<f64>(800, 5.0, 21), 1u64),
            (generate::kkt_like::<f64>(3000, 1200, 3, 22), 2),
            (generate::grid2d::<f64>(30, 30, 23), 3),
        ] {
            let n = l.nrows();
            let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37 + seed as f64).sin()).collect();
            let levels = LevelSets::analyse(&l).unwrap();
            // Tiny thresholds to force parallel runs even on small systems.
            let tune =
                TuneParams { par_rows: 8, fuse_nnz: 64, chunk_nnz: 32, ..Default::default() };
            let sched = LevelSchedule::plan(&l, &levels, tune);
            let mut x = vec![0.0; n];
            sched.solve_into(&l, &b, &mut x, &pool);
            let reference = crate::sptrsv::serial_csr(&l, &b).unwrap();
            assert_eq!(x, reference, "engine must be bit-identical to the serial reference");
        }
    }

    #[test]
    fn task_schedule_fuses_chain_to_single_task() {
        let l = generate::chain::<f64>(5000, 41);
        let levels = LevelSets::analyse(&l).unwrap();
        let ts = TaskSchedule::plan(&l, &levels, TuneParams::default(), 4);
        let stats = ts.stats();
        assert_eq!(stats.ntasks, 1, "a pure chain compiles to one task");
        assert_eq!(stats.cross_edges, 0);
        assert_eq!(stats.critical_path, 1);
        let pool = ExecPool::new(3);
        let b: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut x = vec![0.0; 5000];
        assert!(ts.solve_into(&l, &b, &mut x, &pool));
        assert_eq!(x, crate::sptrsv::serial_csr(&l, &b).unwrap());
    }

    #[test]
    fn task_schedule_matches_serial_across_structures() {
        let pool = ExecPool::new(3);
        for (l, seed) in [
            (generate::random_lower::<f64>(800, 5.0, 21), 1u64),
            (generate::kkt_like::<f64>(3000, 1200, 3, 22), 2),
            (generate::grid2d::<f64>(30, 30, 23), 3),
            (generate::layered::<f64>(2000, 25, 3.0, generate::LayerShape::Uniform, 24), 4),
        ] {
            let n = l.nrows();
            let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37 + seed as f64).sin()).collect();
            let levels = LevelSets::analyse(&l).unwrap();
            // Tiny task budget to force many tasks and cross-thread edges.
            let tune = TuneParams { p2p_chunk_nnz: 16, ..TuneParams::default() };
            let ts = TaskSchedule::plan(&l, &levels, tune, pool.concurrency());
            let mut x = vec![0.0; n];
            // Repeated solves reuse the epoch-stamped flags.
            for _ in 0..3 {
                x.iter_mut().for_each(|v| *v = 0.0);
                assert!(ts.solve_into(&l, &b, &mut x, &pool), "p2p dispatch accepted");
                let reference = crate::sptrsv::serial_csr(&l, &b).unwrap();
                assert_eq!(x, reference, "p2p must be bit-identical to the serial reference");
            }
        }
    }

    #[test]
    fn task_schedule_parent_lists_are_cross_thread_and_reduced() {
        let l = generate::layered::<f64>(2000, 25, 3.0, generate::LayerShape::Uniform, 25);
        let levels = LevelSets::analyse(&l).unwrap();
        let nthreads = 4;
        let tune = TuneParams { p2p_chunk_nnz: 16, ..TuneParams::default() };
        let ts = TaskSchedule::plan(&l, &levels, tune, nthreads);
        let stats = ts.stats();
        assert!(stats.ntasks > nthreads, "wide levels split into many tasks");
        assert!(stats.cross_edges > 0, "layered structure needs cross-thread sync");
        assert!(stats.critical_path <= stats.ntasks);
        // Reduced parent lists: at most one parent per foreign thread.
        for t in 0..stats.ntasks {
            let np = (ts.parent_ptr[t + 1] - ts.parent_ptr[t]) as usize;
            assert!(np < nthreads, "task {t} keeps {np} parents");
        }
    }

    #[test]
    fn task_schedule_refuses_oversized_dispatch_and_reports_it() {
        let l = generate::layered::<f64>(500, 10, 3.0, generate::LayerShape::Uniform, 26);
        let levels = LevelSets::analyse(&l).unwrap();
        let tune = TuneParams { p2p_chunk_nnz: 16, ..TuneParams::default() };
        // Compiled for more threads than the pool can host concurrently:
        // the solve must refuse rather than deadlock on inline jobs.
        let ts = TaskSchedule::plan(&l, &levels, tune, 8);
        let pool = ExecPool::new(1);
        let b = vec![1.0f64; 500];
        let mut x = vec![0.0f64; 500];
        assert!(!ts.solve_into(&l, &b, &mut x, &pool));
    }

    #[test]
    fn task_schedule_concurrent_solves_fall_back_not_corrupt() {
        // Two threads hammering one schedule: the busy gate admits at most
        // one p2p solve at a time, refused calls return false, and every
        // accepted solve is bit-exact.
        let l = generate::layered::<f64>(1500, 20, 3.0, generate::LayerShape::Uniform, 27);
        let levels = LevelSets::analyse(&l).unwrap();
        let tune = TuneParams { p2p_chunk_nnz: 32, ..TuneParams::default() };
        let ts = TaskSchedule::plan(&l, &levels, tune, 2);
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
        let reference = crate::sptrsv::serial_csr(&l, &b).unwrap();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let pool = ExecPool::new(1);
                    let mut x = vec![0.0f64; n];
                    for _ in 0..20 {
                        if ts.solve_into(&l, &b, &mut x, &pool) {
                            assert_eq!(x, reference);
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn spmv_plan_balances_by_nnz() {
        let a = generate::rect_random::<f64>(2000, 500, 8.0, 0.0, 2.0, 31);
        let tune = TuneParams { chunk_nnz: 1024, ..TuneParams::default() };
        let plan = SpmvPlan::for_csr(&a, &tune);
        assert!(plan.nchunks() > 1);
        assert_eq!(plan.len(), 2000);
        // Every chunk except the last reaches the nnz target.
        let b = plan.bounds();
        for c in 0..plan.nchunks() - 1 {
            let nnz: usize = (b[c]..b[c + 1]).map(|i| a.row_nnz(i as usize)).sum();
            assert!(nnz >= 1024, "chunk {c} carries {nnz} nnz");
        }
    }

    #[test]
    fn workspace_reuses_buffers() {
        let mut ws = SolveWorkspace::<f64>::new();
        {
            let (w, x) = ws.pair(100);
            w[0] = 1.0;
            x[99] = 2.0;
        }
        let cap = ws.work.capacity();
        let (w, x) = ws.pair(50);
        assert_eq!(w.len(), 50);
        assert_eq!(x.len(), 50);
        assert_eq!(ws.work.capacity(), cap, "shrinking keeps capacity");
    }
}
