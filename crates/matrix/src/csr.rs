//! Compressed sparse row storage (the paper's Algorithm 1 input format).

use crate::csc::Csc;
use crate::dcsr::Dcsr;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (enforced by [`Csr::try_new`] and preserved by every method):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[nrows] == col_idx.len() == vals.len()`,
/// * `row_ptr` is non-decreasing,
/// * column indices within each row are strictly increasing and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<S> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<S>,
}

impl<S: Scalar> Csr<S> {
    /// Build a CSR matrix, validating all structural invariants.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<S>,
    ) -> Result<Self, MatrixError> {
        if row_ptr.len() != nrows + 1 {
            return Err(MatrixError::MalformedPointer("row_ptr length must be nrows + 1"));
        }
        if row_ptr[0] != 0 {
            return Err(MatrixError::MalformedPointer("row_ptr must start at 0"));
        }
        if *row_ptr.last().expect("non-empty by construction") != col_idx.len() {
            return Err(MatrixError::MalformedPointer("row_ptr must end at nnz"));
        }
        if col_idx.len() != vals.len() {
            return Err(MatrixError::DimensionMismatch {
                what: "col_idx vs vals",
                expected: col_idx.len(),
                actual: vals.len(),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(MatrixError::MalformedPointer("row_ptr must be non-decreasing"));
            }
        }
        for i in 0..nrows {
            let lane = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in lane.windows(2) {
                if w[1] <= w[0] {
                    return Err(MatrixError::UnsortedIndices { lane: i });
                }
            }
            if let Some(&last) = lane.last() {
                if last >= ncols {
                    return Err(MatrixError::IndexOutOfBounds {
                        what: "col_idx",
                        index: last,
                        bound: ncols,
                    });
                }
            }
        }
        Ok(Csr { nrows, ncols, row_ptr, col_idx, vals })
    }

    /// Build without validation. Callers must uphold the invariants listed on
    /// the type; used on hot preprocessing paths where the inputs were just
    /// constructed in sorted order.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<S>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        debug_assert_eq!(col_idx.len(), vals.len());
        Csr { nrows, ncols, row_ptr, col_idx, vals }
    }

    /// An `nrows × ncols` matrix with no stored entries.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        Csr { nrows, ncols, row_ptr: vec![0; nrows + 1], col_idx: Vec::new(), vals: Vec::new() }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![S::ONE; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array (`len == nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// Mutable value array (structure stays frozen).
    pub fn vals_mut(&mut self) -> &mut [S] {
        &mut self.vals
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[S]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Iterate over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, S)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Value at `(i, j)` if stored (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> Option<S> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|k| vals[k])
    }

    /// `y = A x` (dense `x`), serial reference implementation.
    pub fn spmv_dense(&self, x: &[S]) -> Result<Vec<S>, MatrixError> {
        if x.len() != self.ncols {
            return Err(MatrixError::DimensionMismatch {
                what: "spmv input vector",
                expected: self.ncols,
                actual: x.len(),
            });
        }
        let mut y = vec![S::ZERO; self.nrows];
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            let mut acc = S::ZERO;
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[j];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Transpose into CSC *views of the same matrix* — `O(nnz)` counting sort.
    /// The CSC shares the numerical content; `A` in CSR equals `A` in CSC.
    pub fn to_csc(&self) -> Csc<S> {
        let mut col_counts = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            col_counts[j + 1] += 1;
        }
        for j in 0..self.ncols {
            col_counts[j + 1] += col_counts[j];
        }
        let col_ptr = col_counts.clone();
        let nnz = self.nnz();
        let mut row_idx = vec![0usize; nnz];
        let mut vals = vec![S::ZERO; nnz];
        let mut next = col_counts;
        for i in 0..self.nrows {
            let (cols, v) = self.row(i);
            for (&j, &val) in cols.iter().zip(v) {
                let dst = next[j];
                row_idx[dst] = i;
                vals[dst] = val;
                next[j] += 1;
            }
        }
        Csc::from_parts_unchecked(self.nrows, self.ncols, col_ptr, row_idx, vals)
    }

    /// The transposed matrix, still in CSR (`B = Aᵀ`).
    pub fn transpose(&self) -> Csr<S> {
        let csc = self.to_csc();
        // Aᵀ in CSR has exactly A's CSC arrays reinterpreted.
        Csr::from_parts_unchecked(
            self.ncols,
            self.nrows,
            csc.col_ptr().to_vec(),
            csc.row_idx().to_vec(),
            csc.vals().to_vec(),
        )
    }

    /// Compress into [`Dcsr`], dropping empty rows from the pointer array.
    pub fn to_dcsr(&self) -> Dcsr<S> {
        Dcsr::from_csr(self)
    }

    /// Number of rows with no stored entries.
    pub fn empty_rows(&self) -> usize {
        (0..self.nrows).filter(|&i| self.row_nnz(i) == 0).count()
    }

    /// Extract the sub-matrix of `rows × cols` (half-open ranges), reindexed
    /// to start at zero. Entries outside `cols` are dropped.
    pub fn submatrix(&self, rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Csr<S> {
        let nrows = rows.len();
        let ncols = cols.len();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for i in rows {
            let (c, v) = self.row(i);
            // Rows are sorted, so the column window is a contiguous slice.
            let lo = c.partition_point(|&j| j < cols.start);
            let hi = c.partition_point(|&j| j < cols.end);
            for k in lo..hi {
                col_idx.push(c[k] - cols.start);
                vals.push(v[k]);
            }
            row_ptr.push(col_idx.len());
        }
        Csr { nrows, ncols, row_ptr, col_idx, vals }
    }

    /// `true` if every entry lies on or below the diagonal.
    pub fn is_lower_triangular(&self) -> bool {
        self.iter().all(|(i, j, _)| j <= i)
    }

    /// `true` if every entry lies on or above the diagonal.
    pub fn is_upper_triangular(&self) -> bool {
        self.iter().all(|(i, j, _)| j >= i)
    }

    /// `true` if square, lower triangular, and every diagonal entry is stored
    /// and nonzero — the precondition of every SpTRSV kernel in the suite.
    pub fn is_solvable_lower(&self) -> bool {
        self.nrows == self.ncols
            && (0..self.nrows).all(|i| {
                let (cols, vals) = self.row(i);
                match cols.last() {
                    Some(&j) => j == i && vals[cols.len() - 1] != S::ZERO,
                    None => false,
                }
            })
    }

    /// Memory footprint of the three arrays in bytes (used by the GPU model).
    pub fn bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.vals.len() * S::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr<f64> {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        Csr::try_new(3, 3, vec![0, 2, 3, 5], vec![0, 2, 1, 0, 2], vec![1., 2., 3., 4., 5.]).unwrap()
    }

    #[test]
    fn try_new_accepts_valid() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 2), Some(2.0));
        assert_eq!(a.get(0, 1), None);
    }

    #[test]
    fn try_new_rejects_bad_ptr_len() {
        let r = Csr::<f64>::try_new(3, 3, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(r, Err(MatrixError::MalformedPointer(_))));
    }

    #[test]
    fn try_new_rejects_nonzero_start() {
        let r = Csr::<f64>::try_new(1, 1, vec![1, 1], vec![], vec![]);
        assert!(matches!(r, Err(MatrixError::MalformedPointer(_))));
    }

    #[test]
    fn try_new_rejects_decreasing_ptr() {
        let r = Csr::<f64>::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1., 2.]);
        assert!(r.is_err());
    }

    #[test]
    fn try_new_rejects_unsorted_cols() {
        let r = Csr::<f64>::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1., 2.]);
        assert!(matches!(r, Err(MatrixError::UnsortedIndices { lane: 0 })));
    }

    #[test]
    fn try_new_rejects_duplicate_cols() {
        let r = Csr::<f64>::try_new(1, 3, vec![0, 2], vec![1, 1], vec![1., 2.]);
        assert!(matches!(r, Err(MatrixError::UnsortedIndices { lane: 0 })));
    }

    #[test]
    fn try_new_rejects_col_out_of_bounds() {
        let r = Csr::<f64>::try_new(1, 2, vec![0, 1], vec![5], vec![1.]);
        assert!(matches!(r, Err(MatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn identity_is_solvable() {
        let i = Csr::<f64>::identity(4);
        assert!(i.is_solvable_lower());
        assert!(i.is_lower_triangular());
        assert!(i.is_upper_triangular());
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn spmv_dense_matches_hand_computation() {
        let a = small();
        let y = a.spmv_dense(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn spmv_rejects_wrong_length() {
        let a = small();
        assert!(a.spmv_dense(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn to_csc_roundtrip_preserves_entries() {
        let a = small();
        let csc = a.to_csc();
        assert_eq!(csc.nnz(), a.nnz());
        let mut tri_a: Vec<_> = a.iter().collect();
        let mut tri_c: Vec<_> = csc.iter().collect();
        tri_a.sort_by_key(|&(i, j, _)| (i, j));
        tri_c.sort_by_key(|&(i, j, _)| (i, j));
        assert_eq!(tri_a, tri_c);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = small();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_entries() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.get(0, 2), Some(4.0));
    }

    #[test]
    fn submatrix_extracts_window() {
        let a = small();
        let s = a.submatrix(1..3, 0..2);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.get(0, 1), Some(3.0));
        assert_eq!(s.get(1, 0), Some(4.0));
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn submatrix_of_everything_is_self() {
        let a = small();
        assert_eq!(a.submatrix(0..3, 0..3), a);
    }

    #[test]
    fn empty_rows_counts() {
        let a = Csr::<f64>::try_new(3, 3, vec![0, 0, 1, 1], vec![0], vec![1.0]).unwrap();
        assert_eq!(a.empty_rows(), 2);
    }

    #[test]
    fn zero_matrix() {
        let z = Csr::<f64>::zero(4, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.empty_rows(), 4);
        assert_eq!(z.spmv_dense(&[1.0, 1.0]).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn solvable_lower_requires_diagonal() {
        // Missing diagonal at row 1.
        let a = Csr::<f64>::try_new(2, 2, vec![0, 1, 2], vec![0, 0], vec![1., 1.]).unwrap();
        assert!(!a.is_solvable_lower());
        let b = Csr::<f64>::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![1., 1., 1.]).unwrap();
        assert!(b.is_solvable_lower());
    }

    #[test]
    fn bytes_accounts_for_scalar_width() {
        let a64 = Csr::<f64>::identity(8);
        let a32 = Csr::<f32>::identity(8);
        assert_eq!(a64.bytes() - a32.bytes(), 8 * (8 - 4));
    }
}
