//! Preconditioned iterative solver — the headline use case from the paper's
//! introduction: "accelerating convergence of preconditioned sparse
//! iterative solvers".
//!
//! Builds a symmetric diagonally-dominant system `A x = b`, factorises
//! `A ≈ L·U` with ILU(0), and runs preconditioned conjugate gradients where
//! every iteration applies `M⁻¹ = U⁻¹ L⁻¹` via two triangular solves — both
//! served by the recursive block solver (`BlockIlu`). The "preprocess once,
//! solve every iteration" economics of the paper's Table 5 apply directly.
//!
//! Run with: `cargo run --release --example ilu_preconditioner`

use recblock::blocked::DepthRule;
use recblock::precond::BlockIlu;
use recblock::solver::SolverOptions;
use recblock_kernels::ilu::ilu0;
use recblock_kernels::krylov::{pcg, IdentityPreconditioner, KrylovOptions};
use recblock_matrix::coo::Coo;
use recblock_matrix::vector::{norm_inf, sub};
use recblock_matrix::{generate, Csr};

/// Symmetric, diagonally dominant test operator: `A = L + Lᵀ` of a random
/// lower factor.
fn build_spd_like(n: usize, seed: u64) -> Csr<f64> {
    let l = generate::random_lower::<f64>(n, 4.0, seed);
    let lt = l.transpose();
    let mut coo = Coo::<f64>::with_capacity(n, n, 2 * l.nnz());
    for (i, j, v) in l.iter() {
        coo.push(i, j, v).expect("in range");
    }
    for (i, j, v) in lt.iter() {
        coo.push(i, j, v).expect("in range");
    }
    coo.to_csr()
}

fn main() {
    let n = 30_000;
    let a = build_spd_like(n, 7);
    println!("operator: {} rows, {} nonzeros", a.nrows(), a.nnz());

    // Manufactured solution → consistent right-hand side.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 37) as f64) / 37.0 - 0.5).collect();
    let b = a.spmv_dense(&x_true).expect("dimensions match");

    // ILU(0): zero-fill incomplete factors on A's own sparsity pattern.
    let t0 = std::time::Instant::now();
    let f = ilu0(&a).expect("nonzero diagonal");
    println!(
        "ilu(0): L nnz = {}, U nnz = {} ({:.1} ms)",
        f.l.nnz(),
        f.u.nnz(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // Preprocess both factors for blocked triangular solves.
    let opts = SolverOptions { depth: DepthRule::Fixed(3), ..SolverOptions::default() };
    let prec = BlockIlu::new(&f, opts).expect("solvable factors");
    println!(
        "block preprocessing of L and U: {:.1} ms (paid once)",
        prec.preprocess_time().as_secs_f64() * 1e3
    );
    println!("lower factor census: {:?}", prec.lower().census());

    // Plain CG vs ILU-preconditioned CG through the block solver.
    let krylov_opts = KrylovOptions { tolerance: 1e-10, max_iterations: 500 };
    let t1 = std::time::Instant::now();
    let plain = pcg(&a, &b, &IdentityPreconditioner, &krylov_opts).expect("cg runs");
    let plain_ms = t1.elapsed().as_secs_f64() * 1e3;
    let t2 = std::time::Instant::now();
    let with = pcg(&a, &b, &prec, &krylov_opts).expect("pcg runs");
    let with_ms = t2.elapsed().as_secs_f64() * 1e3;

    println!(
        "\nplain CG        : {:3} iterations, residual {:.2e} ({plain_ms:.1} ms)",
        plain.iterations, plain.residual
    );
    println!(
        "block-ILU PCG   : {:3} iterations, residual {:.2e} ({with_ms:.1} ms)",
        with.iterations, with.residual
    );
    assert!(with.converged && plain.converged);
    assert!(with.iterations < plain.iterations, "preconditioning must cut iterations");

    let err = sub(&with.x, &x_true);
    println!("max error vs manufactured solution: {:.3e}", norm_inf(&err));
    assert!(norm_inf(&err) < 1e-6, "converged to the true solution");
    println!(
        "\npreconditioning cut iterations {}x ({} -> {})",
        plain.iterations / with.iterations.max(1),
        plain.iterations,
        with.iterations
    );
}
