//! Typed errors: wire status codes and the client/server API error.

use crate::frame::FrameError;
use std::fmt;
use std::io;

/// Status code carried by an `Err` frame. The numeric values are part of
/// the wire protocol — append only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrCode {
    /// Token-bucket admission refused the request; retry after backoff.
    RateLimited = 1,
    /// The service-wide queue is full; nothing was enqueued.
    Overloaded = 2,
    /// The tenant's queued-cost budget is exhausted; the request was shed.
    ShedCost = 3,
    /// The deadline expired before the request could be dispatched.
    DeadlineExceeded = 4,
    /// No preprocessed plan for the requested fingerprint exists in the
    /// cache or store. Provision one with `planctl precompute`.
    PlanNotFound = 5,
    /// Malformed or inconsistent request contents (dimension mismatch,
    /// unsupported scalar width, zero columns, …).
    BadRequest = 6,
    /// The server is draining and no longer admits new solves.
    ShuttingDown = 7,
    /// The tenant is not configured and no default policy exists.
    UnknownTenant = 8,
    /// The frame itself could not be decoded (bad magic, oversize, …).
    Malformed = 9,
    /// Unexpected server-side failure.
    Internal = 10,
    /// A client-side deadline expired before the operation finished
    /// (connect, write, or waiting for the response).
    Timeout = 11,
    /// This node does not own the requested fingerprint; the message
    /// carries the owner's `host:port` address — retry there.
    Redirect = 12,
    /// Another node holds the cluster-wide build grant for this plan;
    /// retry after backoff (the plan will shortly be pullable).
    BuildInProgress = 13,
}

impl ErrCode {
    /// Decode a wire status code.
    pub fn from_u16(v: u16) -> Option<ErrCode> {
        Some(match v {
            1 => ErrCode::RateLimited,
            2 => ErrCode::Overloaded,
            3 => ErrCode::ShedCost,
            4 => ErrCode::DeadlineExceeded,
            5 => ErrCode::PlanNotFound,
            6 => ErrCode::BadRequest,
            7 => ErrCode::ShuttingDown,
            8 => ErrCode::UnknownTenant,
            9 => ErrCode::Malformed,
            10 => ErrCode::Internal,
            11 => ErrCode::Timeout,
            12 => ErrCode::Redirect,
            13 => ErrCode::BuildInProgress,
            _ => return None,
        })
    }

    /// Short machine-readable name (used in messages and logs).
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::RateLimited => "rate_limited",
            ErrCode::Overloaded => "overloaded",
            ErrCode::ShedCost => "shed_cost",
            ErrCode::DeadlineExceeded => "deadline_exceeded",
            ErrCode::PlanNotFound => "plan_not_found",
            ErrCode::BadRequest => "bad_request",
            ErrCode::ShuttingDown => "shutting_down",
            ErrCode::UnknownTenant => "unknown_tenant",
            ErrCode::Malformed => "malformed",
            ErrCode::Internal => "internal",
            ErrCode::Timeout => "timeout",
            ErrCode::Redirect => "redirect",
            ErrCode::BuildInProgress => "build_in_progress",
        }
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the client API (and server internals) can fail with.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer sent bytes that do not decode as an RBNET frame.
    Frame(FrameError),
    /// The server answered with a typed `Err` frame.
    Remote {
        /// Wire status code.
        code: ErrCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The connection closed before a full response arrived.
    Closed,
    /// The response did not match the request (wrong tag or kind).
    Protocol(&'static str),
    /// A client-side deadline expired (names the phase that timed out).
    Timeout(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
            NetError::Closed => write!(f, "connection closed mid-exchange"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Timeout(what) => write!(f, "timed out: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn err_codes_roundtrip() {
        for v in 1..=13u16 {
            let code = ErrCode::from_u16(v).unwrap();
            assert_eq!(code as u16, v);
            assert!(!code.name().is_empty());
        }
        assert_eq!(ErrCode::from_u16(0), None);
        assert_eq!(ErrCode::from_u16(14), None);
        assert_eq!(ErrCode::from_u16(u16::MAX), None);
    }
}
