//! Property tests over the consistent-hash ring (satellite of the
//! cluster tier): key distribution stays near-ideal, and membership
//! changes remap only the keys the moved points actually cover — with
//! *exact* ownership assertions (every reassigned key's new primary IS
//! the joiner; every orphaned key's old primary WAS the leaver), not
//! just statistical bounds.

use proptest::prelude::*;
use recblock_cluster::Ring;
use recblock_matrix::Fingerprint;
use recblock_store::PlanKey;

const VNODES: u32 = 192;
const KEYS: u64 = 4_000;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn key(i: u64) -> PlanKey {
    PlanKey {
        structure: Fingerprint {
            nrows: (i % 977 + 8) as usize,
            ncols: (i % 977 + 8) as usize,
            nnz: (i % 4093 + 16) as usize,
            hash: splitmix64(i),
        },
        values: splitmix64(i ^ 0x5A5A_5A5A_5A5A_5A5A),
    }
}

fn ring_of(seed: u64, members: usize, replicas: u16) -> Ring {
    let mut r = Ring::new(seed, VNODES, replicas);
    for m in 0..members {
        r.insert(&format!("node-{m:02}"), &format!("10.0.0.{m}:4000"));
    }
    r
}

fn primary_of(r: &Ring, k: &PlanKey) -> String {
    r.primary(k).expect("non-empty ring").0.to_string()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Load balance: with generous vnodes, no member's share of primary
    // ownership exceeds 1.3x the ideal 1/N.
    #[test]
    fn primary_load_stays_within_1_3x_of_ideal(
        seed in 0u64..1_000,
        members in 2usize..12,
    ) {
        let r = ring_of(seed, members, 2);
        let mut counts = std::collections::HashMap::<String, u64>::new();
        for i in 0..KEYS {
            *counts.entry(primary_of(&r, &key(i))).or_insert(0) += 1;
        }
        let ideal = KEYS as f64 / members as f64;
        for (name, count) in &counts {
            prop_assert!(
                (*count as f64) <= ideal * 1.3,
                "{name} owns {count} of {KEYS} keys; ideal {ideal:.0}, cap {:.0}",
                ideal * 1.3
            );
        }
        prop_assert_eq!(counts.len(), members, "every member owns something");
    }

    // Join remaps minimally AND exactly: every key whose primary changed
    // now belongs to the joiner (nothing shuffles between old members),
    // and the moved fraction stays near 1/(N+1).
    #[test]
    fn join_remaps_only_onto_the_joiner(
        seed in 0u64..1_000,
        members in 2usize..10,
    ) {
        let before = ring_of(seed, members, 2);
        let mut after = before.clone();
        after.insert("node-99", "10.0.9.9:4000");

        let mut moved = 0u64;
        for i in 0..KEYS {
            let k = key(i);
            let (old, new) = (primary_of(&before, &k), primary_of(&after, &k));
            if old != new {
                moved += 1;
                prop_assert_eq!(
                    new.as_str(), "node-99",
                    "a key moved between two surviving members on join"
                );
            }
        }
        let ideal = KEYS as f64 / (members + 1) as f64;
        prop_assert!(moved > 0, "the joiner must take some keys");
        prop_assert!(
            (moved as f64) <= ideal * 1.5,
            "join moved {moved} keys; ideal {ideal:.0}"
        );
    }

    // Leave is the mirror image: every key whose primary changed was
    // owned by the leaver, and survivors keep everything else untouched.
    #[test]
    fn leave_remaps_only_the_leavers_keys(
        seed in 0u64..1_000,
        members in 3usize..10,
        victim in 0usize..10,
    ) {
        let before = ring_of(seed, members, 2);
        let victim = format!("node-{:02}", victim % members);
        let mut after = before.clone();
        after.remove(&victim);

        for i in 0..KEYS {
            let k = key(i);
            let (old, new) = (primary_of(&before, &k), primary_of(&after, &k));
            if old != new {
                prop_assert_eq!(
                    old.as_str(), &victim,
                    "a key not owned by the leaver moved on leave"
                );
                prop_assert_ne!(new.as_str(), &victim);
            }
        }
    }

    // Replica sets agree across independently reconstructed rings: the
    // wire message fully determines placement.
    #[test]
    fn wire_roundtrip_preserves_full_owner_sets(
        seed in 0u64..1_000,
        members in 1usize..8,
        replicas in 1u16..4,
    ) {
        let a = ring_of(seed, members, replicas);
        let b = Ring::from_msg(&a.to_msg());
        for i in 0..200 {
            let k = key(i);
            prop_assert_eq!(a.owners(&k), b.owners(&k));
        }
    }

    // Replication never assigns a key the same member twice, and the set
    // size is min(replicas, members).
    #[test]
    fn owner_sets_are_distinct_and_full(
        seed in 0u64..1_000,
        members in 1usize..8,
        replicas in 1u16..5,
    ) {
        let r = ring_of(seed, members, replicas);
        let want = (replicas as usize).min(members);
        for i in 0..500 {
            let owners = r.owners(&key(i));
            prop_assert_eq!(owners.len(), want);
            let mut names: Vec<_> = owners.iter().map(|(n, _)| *n).collect();
            names.sort_unstable();
            names.dedup();
            prop_assert_eq!(names.len(), want, "duplicate member in an owner set");
        }
    }
}
