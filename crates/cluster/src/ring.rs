//! The consistent-hash ring mapping plan fingerprints to owner nodes.
//!
//! Every member contributes `vnodes` seeded virtual points on a `u64`
//! circle; a key's **primary** owner is the member of the first point at
//! or clockwise-after the key's hash, and its replica set is the next
//! `replicas - 1` *distinct* members on the walk. Placement therefore
//! moves only the keys adjacent to the joining/leaving member's points —
//! the classic ~`1/N` minimal-remap property, which
//! `tests/ring_properties.rs` pins down with exact assertions rather
//! than statistics.
//!
//! The ring is **deterministic in its inputs**: the same `(seed, vnodes,
//! replicas, member set)` always reconstructs byte-identical placement,
//! so a `RingState` frame only has to carry the configuration and the
//! member list, never the points.

use recblock_net::{MemberInfo, RingStateMsg};
use recblock_store::PlanKey;
use std::collections::BTreeMap;

/// SplitMix64: the one mixing primitive everything here derives from.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a name, as the stable starting point for vnode hashes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Consistent-hash ring over the current member set.
#[derive(Debug, Clone)]
pub struct Ring {
    seed: u64,
    vnodes: u32,
    replicas: u16,
    epoch: u64,
    /// `name -> addr`, sorted so member indices are reproducible.
    members: BTreeMap<String, String>,
    /// `(point, member index)` sorted by point.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// An empty ring with the given placement configuration.
    pub fn new(seed: u64, vnodes: u32, replicas: u16) -> Ring {
        Ring {
            seed,
            vnodes: vnodes.max(1),
            replicas: replicas.max(1),
            epoch: 0,
            members: BTreeMap::new(),
            points: Vec::new(),
        }
    }

    /// Reconstruct the ring a peer described. Placement is identical on
    /// every node that applies the same message.
    pub fn from_msg(msg: &RingStateMsg) -> Ring {
        let mut ring = Ring::new(msg.seed, msg.vnodes, msg.replicas);
        ring.epoch = msg.epoch;
        for m in &msg.members {
            ring.members.insert(m.name.clone(), m.addr.clone());
        }
        ring.rebuild();
        ring
    }

    /// The wire description of this ring.
    pub fn to_msg(&self) -> RingStateMsg {
        RingStateMsg {
            epoch: self.epoch,
            seed: self.seed,
            vnodes: self.vnodes,
            replicas: self.replicas,
            members: self
                .members
                .iter()
                .map(|(name, addr)| MemberInfo { name: name.clone(), addr: addr.clone() })
                .collect(),
        }
    }

    /// Add or re-address a member. Returns `true` (and bumps the epoch)
    /// when the view actually changed.
    pub fn insert(&mut self, name: &str, addr: &str) -> bool {
        if self.members.get(name).map(String::as_str) == Some(addr) {
            return false;
        }
        self.members.insert(name.to_string(), addr.to_string());
        self.epoch += 1;
        self.rebuild();
        true
    }

    /// Remove a member. Returns `true` (and bumps the epoch) when it was
    /// present.
    pub fn remove(&mut self, name: &str) -> bool {
        if self.members.remove(name).is_none() {
            return false;
        }
        self.epoch += 1;
        self.rebuild();
        true
    }

    /// Monotonic view counter: every membership change bumps it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// No members yet?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Replication factor (primary included).
    pub fn replicas(&self) -> u16 {
        self.replicas
    }

    /// The advertised address of `name`, if it is a member.
    pub fn addr_of(&self, name: &str) -> Option<&str> {
        self.members.get(name).map(String::as_str)
    }

    /// All members as `(name, addr)` in name order.
    pub fn members(&self) -> impl Iterator<Item = (&str, &str)> {
        self.members.iter().map(|(n, a)| (n.as_str(), a.as_str()))
    }

    /// Where on the circle a plan key lands.
    pub fn key_point(&self, key: &PlanKey) -> u64 {
        let f = &key.structure;
        let mut h = splitmix64(self.seed ^ f.hash);
        h = splitmix64(h ^ key.values);
        h = splitmix64(h ^ (f.nrows as u64) ^ (f.nnz as u64).rotate_left(32));
        h
    }

    /// The owner set for `key`: primary first, then up to `replicas - 1`
    /// distinct successors clockwise. Empty only when the ring is empty.
    pub fn owners(&self, key: &PlanKey) -> Vec<(&str, &str)> {
        self.owners_at(self.key_point(key))
    }

    /// Owner set for a raw circle position (the proptest harness walks
    /// synthetic points directly).
    pub fn owners_at(&self, point: u64) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = Vec::new();
        if self.points.is_empty() {
            return out;
        }
        let want = (self.replicas as usize).min(self.members.len());
        let start = self.points.partition_point(|&(p, _)| p < point);
        let names: Vec<&String> = self.members.keys().collect();
        for i in 0..self.points.len() {
            let (_, midx) = self.points[(start + i) % self.points.len()];
            let name = names[midx as usize].as_str();
            if out.iter().any(|(n, _)| *n == name) {
                continue;
            }
            out.push((name, self.members[name].as_str()));
            if out.len() == want {
                break;
            }
        }
        out
    }

    /// The primary owner of `key` (`None` on an empty ring).
    pub fn primary(&self, key: &PlanKey) -> Option<(&str, &str)> {
        self.owners(key).first().copied()
    }

    fn rebuild(&mut self) {
        self.points.clear();
        self.points.reserve(self.members.len() * self.vnodes as usize);
        for (midx, name) in self.members.keys().enumerate() {
            let base = splitmix64(self.seed ^ fnv1a(name.as_bytes()));
            for v in 0..self.vnodes {
                self.points.push((splitmix64(base ^ v as u64), midx as u32));
            }
        }
        self.points.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::Fingerprint;

    fn key(i: u64) -> PlanKey {
        PlanKey {
            structure: Fingerprint { nrows: 100, ncols: 100, nnz: 300, hash: splitmix64(i) },
            values: splitmix64(i ^ 0xDEAD_BEEF),
        }
    }

    #[test]
    fn deterministic_reconstruction_from_msg() {
        let mut a = Ring::new(7, 64, 2);
        a.insert("alpha", "10.0.0.1:4000");
        a.insert("beta", "10.0.0.2:4000");
        a.insert("gamma", "10.0.0.3:4000");
        let b = Ring::from_msg(&a.to_msg());
        for i in 0..200 {
            assert_eq!(a.owners(&key(i)), b.owners(&key(i)));
        }
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    fn owner_sets_are_distinct_and_sized() {
        let mut r = Ring::new(1, 64, 3);
        r.insert("a", "a:1");
        r.insert("b", "b:1");
        assert_eq!(r.owners(&key(5)).len(), 2, "capped by member count");
        r.insert("c", "c:1");
        r.insert("d", "d:1");
        for i in 0..100 {
            let owners = r.owners(&key(i));
            assert_eq!(owners.len(), 3);
            let mut names: Vec<_> = owners.iter().map(|(n, _)| *n).collect();
            names.dedup();
            assert_eq!(names.len(), 3, "owners must be distinct members");
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let r = Ring::new(1, 64, 2);
        assert!(r.owners(&key(1)).is_empty());
        assert!(r.primary(&key(1)).is_none());
    }

    #[test]
    fn readdressing_a_member_bumps_epoch_only_when_changed() {
        let mut r = Ring::new(1, 64, 2);
        assert!(r.insert("a", "a:1"));
        assert!(!r.insert("a", "a:1"), "no-op insert must not churn the view");
        let e = r.epoch();
        assert!(r.insert("a", "a:2"), "re-addressing is a view change");
        assert_eq!(r.epoch(), e + 1);
        assert!(!r.remove("ghost"));
        assert!(r.remove("a"));
        assert!(r.is_empty());
    }
}
