//! Shared timing-report types for the block solvers.

use recblock_gpu_sim::KernelTime;

/// Wall-clock split of one CPU solve into its triangular and SpMV parts —
/// the quantity Figure 4 of the paper plots (its y-axis is the SpMV part).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveBreakdown {
    /// Seconds spent in triangular-block solves.
    pub tri_s: f64,
    /// Seconds spent in square/rectangular SpMV updates.
    pub spmv_s: f64,
}

impl SolveBreakdown {
    /// Total wall time.
    pub fn total_s(&self) -> f64 {
        self.tri_s + self.spmv_s
    }
}

/// Simulated-GPU split of one solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimBreakdown {
    /// Predicted time of the triangular kernels.
    pub tri: KernelTime,
    /// Predicted time of the SpMV kernels.
    pub spmv: KernelTime,
}

impl SimBreakdown {
    /// Combined predicted kernel time.
    pub fn total(&self) -> KernelTime {
        self.tri.seq(self.spmv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total() {
        let b = SolveBreakdown { tri_s: 1.0, spmv_s: 2.5 };
        assert_eq!(b.total_s(), 3.5);
    }
}
