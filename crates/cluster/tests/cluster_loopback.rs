//! Acceptance tests for the cluster tier: a real 3-node in-process
//! cluster (three event loops, three serve tiers, TCP between them).
//!
//! What must hold:
//! * any node accepts a Solve for any fingerprint and answers
//!   **bit-exact** with the single-process path;
//! * a cold start warmed from every node concurrently builds the plan
//!   **exactly once cluster-wide** (asserted by summing `plan_builds`
//!   across all services);
//! * after killing a plan's primary owner, a replica serves from its
//!   **migrated** `.rbplan` without rebuilding;
//! * a graceful leave hands plans to successors first;
//! * no matrix bytes ever cross the wire (requests carry fingerprints,
//!   migration carries plans — enforced here by keying solves off
//!   fingerprints the serving node never saw as a matrix).

use recblock::{RecBlockSolver, SolverOptions};
use recblock_cluster::{ClusterConfig, ClusterNode, NonOwnerPolicy, WarmOutcome};
use recblock_matrix::{generate, Csr};
use recblock_net::frame::{self, FrameKind, HEADER_LEN};
use recblock_net::{ErrCode, NetClient, NetConfig, NetError};
use recblock_serve::{ServeConfig, SolveService};
use recblock_store::PlanKey;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

fn serve_config() -> ServeConfig {
    ServeConfig::default().with_workers(2)
}

/// Start `n` nodes, join them into one ring, return them.
fn start_cluster(n: usize, config: fn(usize) -> ClusterConfig) -> Vec<ClusterNode<f64>> {
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let service = Arc::new(SolveService::<f64>::new(serve_config()));
        let node = ClusterNode::start("127.0.0.1:0", config(i), NetConfig::default(), service)
            .expect("start node");
        nodes.push(node);
    }
    let seed_addr = nodes[0].addr().to_string();
    for node in &nodes[1..] {
        node.join(&seed_addr).expect("join cluster");
    }
    for node in &nodes {
        assert_eq!(node.ring().members.len(), n, "every node sees the full ring");
    }
    nodes
}

fn default_config(i: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(format!("node-{i}"));
    c.replicas = 2;
    c.pull_retry = Duration::from_millis(5);
    c
}

fn rhs_for(n: usize, seed: usize) -> Vec<f64> {
    (0..n).map(|r| ((r * 31 + seed * 17 + 1) as f64 * 0.013).sin()).collect()
}

fn connect(node: &ClusterNode<f64>) -> NetClient {
    let mut c = NetClient::connect(node.addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(30))).unwrap();
    c
}

fn total_builds(nodes: &[ClusterNode<f64>]) -> u64 {
    nodes.iter().map(|n| n.service().metrics().plan_builds).sum()
}

fn warm_everywhere(nodes: &[ClusterNode<f64>], l: &Csr<f64>) {
    for node in nodes {
        node.warm(l).expect("warm");
    }
}

/// The node whose name is `name`.
fn by_name<'a>(nodes: &'a [ClusterNode<f64>], name: &str) -> &'a ClusterNode<f64> {
    nodes.iter().find(|n| n.name() == name).expect("member name resolves to a node")
}

#[test]
fn any_node_answers_any_fingerprint_bit_exact() {
    let nodes = start_cluster(3, default_config);
    let matrices: Vec<Csr<f64>> =
        (0..3).map(|i| generate::random_lower::<f64>(240 + 40 * i, 4.0, 90 + i as u64)).collect();
    for l in &matrices {
        warm_everywhere(&nodes, l);
    }
    assert_eq!(
        total_builds(&nodes),
        matrices.len() as u64,
        "each plan must be built exactly once across the cluster"
    );

    for (mi, l) in matrices.iter().enumerate() {
        let key = PlanKey::of(l);
        let rhs = rhs_for(l.nrows(), mi);
        // The ground truth: the plain single-process solver.
        let reference =
            RecBlockSolver::new(l, SolverOptions::default()).expect("build").solve(&rhs).unwrap();
        for node in &nodes {
            let mut client = connect(node);
            let got = client
                .solve_multi("acme", &key, &[&rhs], 0)
                .unwrap_or_else(|e| panic!("{} failed for matrix {mi}: {e}", node.name()));
            assert_eq!(got.len(), 1);
            let bits_match =
                got[0].iter().zip(reference.iter()).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(bits_match, "{} answer differs from single-process path", node.name());
        }
    }
    // Proxying happened: at least one node did not own some matrix.
    let proxied: u64 = nodes.iter().map(|n| n.service().metrics().cluster_proxied).sum();
    assert!(proxied > 0, "3 matrices x 3 nodes with 2 replicas must proxy at least once");
}

#[test]
fn concurrent_cold_start_builds_exactly_once() {
    let nodes = Arc::new(start_cluster(3, default_config));
    let l = Arc::new(generate::random_lower::<f64>(400, 4.0, 77));
    let barrier = Arc::new(Barrier::new(nodes.len()));
    let mut handles = Vec::new();
    for i in 0..nodes.len() {
        let (nodes, l, barrier) = (nodes.clone(), l.clone(), barrier.clone());
        handles.push(thread::spawn(move || {
            barrier.wait();
            nodes[i].warm(&l).expect("warm")
        }));
    }
    let outcomes: Vec<WarmOutcome> =
        handles.into_iter().map(|h| h.join().expect("warm thread")).collect();
    assert_eq!(
        total_builds(&nodes),
        1,
        "cluster-wide single flight: one build for N concurrent cold warms (outcomes: {outcomes:?})"
    );
    // And the plan actually works from any node afterwards.
    let key = PlanKey::of(&l);
    let rhs = rhs_for(l.nrows(), 3);
    for node in nodes.iter() {
        let mut client = connect(node);
        client.solve_multi("acme", &key, &[&rhs], 0).expect("post-warm solve");
    }
}

#[test]
fn killed_owner_replica_serves_migrated_plan_without_rebuild() {
    let mut nodes = start_cluster(3, default_config);
    let l = generate::random_lower::<f64>(350, 4.0, 123);
    let key = PlanKey::of(&l);
    warm_everywhere(&nodes, &l);
    assert_eq!(total_builds(&nodes), 1);

    let owners = nodes[0].coordinator().owners_of(&key);
    assert_eq!(owners.len(), 2, "replicas = 2");
    let (primary_name, replica_name) = (owners[0].0.clone(), owners[1].0.clone());

    // The replica got its copy over the wire, not by building.
    let replica_before = by_name(&nodes, &replica_name).service().metrics().plan_builds;

    let reference =
        RecBlockSolver::new(&l, SolverOptions::default()).expect("build").solve(&rhs_for(350, 9));

    // Kill the primary abruptly: no leave protocol, peers keep a stale view.
    let pos = nodes.iter().position(|n| n.name() == primary_name).unwrap();
    nodes.remove(pos).stop();

    let replica = by_name(&nodes, &replica_name);
    let mut client = connect(replica);
    let rhs = rhs_for(350, 9);
    let got = client.solve_multi("acme", &key, &[&rhs], 0).expect("replica serves after crash");
    let expected = reference.unwrap();
    assert!(
        got[0].iter().zip(expected.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
        "replica answer must stay bit-exact"
    );
    assert_eq!(
        replica.service().metrics().plan_builds,
        replica_before,
        "the replica must serve its migrated plan, not rebuild"
    );
}

#[test]
fn graceful_leave_hands_plans_to_successors() {
    let mut nodes = start_cluster(3, default_config);
    let l = generate::random_lower::<f64>(300, 4.0, 55);
    let key = PlanKey::of(&l);
    warm_everywhere(&nodes, &l);

    let owners = nodes[0].coordinator().owners_of(&key);
    let primary_name = owners[0].0.clone();
    let pos = nodes.iter().position(|n| n.name() == primary_name).unwrap();
    let leaver = nodes.remove(pos);
    // The survivors must serve from handed-over plans, not rebuild.
    let builds_before = total_builds(&nodes);
    leaver.leave().expect("graceful leave");

    for node in &nodes {
        assert_eq!(node.ring().members.len(), 2, "leave announced to every peer");
        let mut client = connect(node);
        let rhs = rhs_for(300, 4);
        client
            .solve_multi("acme", &key, &[&rhs], 0)
            .unwrap_or_else(|e| panic!("{} cannot serve after the owner left: {e}", node.name()));
    }
    assert_eq!(total_builds(&nodes), builds_before, "the handed-over plans are not rebuilt");
}

#[test]
fn redirect_policy_names_the_owner() {
    let nodes = start_cluster(3, |i| {
        let mut c = default_config(i);
        c.non_owner = NonOwnerPolicy::Redirect;
        c
    });
    let l = generate::random_lower::<f64>(260, 4.0, 42);
    let key = PlanKey::of(&l);
    warm_everywhere(&nodes, &l);

    let owners = nodes[0].coordinator().owners_of(&key);
    let owner_names: Vec<&str> = owners.iter().map(|(n, _)| n.as_str()).collect();
    let outsider = nodes
        .iter()
        .find(|n| !owner_names.contains(&n.name()))
        .expect("3 nodes, 2 replicas: someone is not an owner");

    let mut client = connect(outsider);
    let rhs = rhs_for(260, 7);
    let err = client.solve_multi("acme", &key, &[&rhs], 0).expect_err("outsider must redirect");
    let NetError::Remote { code, message } = err else { panic!("expected typed redirect") };
    assert_eq!(code, ErrCode::Redirect);
    assert_eq!(message, owners[0].1, "redirect message carries the owner's address");
    assert!(outsider.service().metrics().cluster_redirects >= 1);

    // Following the redirect succeeds.
    let mut owner_client = NetClient::connect(message.as_str()).expect("dial redirect target");
    owner_client.solve_multi::<f64>("acme", &key, &[&rhs], 0).expect("owner serves");
}

#[test]
fn v1_stamped_header_on_v2_kind_gets_typed_bad_request() {
    let nodes = start_cluster(2, default_config);
    let mut stream = TcpStream::connect(nodes[0].addr()).expect("raw connect");

    // A well-formed PlanPull whose version byte is forced back to 1: an
    // old client echoing bytes it does not understand must get a typed
    // refusal, not a dropped connection.
    let key = PlanKey::of(&generate::random_lower::<f64>(64, 3.0, 1));
    let mut buf = Vec::new();
    frame::encode_plan_pull(&mut buf, 7, &key, false);
    buf[4] = 1; // version byte: pretend protocol v1
    stream.write_all(&buf).unwrap();

    let mut head = [0u8; HEADER_LEN];
    stream.read_exact(&mut head).expect("typed reply, not a hangup");
    let h = frame::decode_header(&head, u32::MAX).unwrap().unwrap();
    assert_eq!(h.kind, FrameKind::Err);
    assert_eq!(h.tag, 7);
    let mut payload = vec![0u8; h.payload_len as usize];
    stream.read_exact(&mut payload).unwrap();
    let (code, msg) = frame::parse_err(&payload).unwrap();
    assert_eq!(code, ErrCode::BadRequest);
    assert!(msg.contains("v2"), "message explains the version skew: {msg}");

    // The connection survives: a Ping still answers.
    let mut ping = Vec::new();
    frame::encode_header(&mut ping, FrameKind::Ping, 8, 0);
    stream.write_all(&ping).unwrap();
    stream.read_exact(&mut head).expect("pong after typed refusal");
    let h = frame::decode_header(&head, u32::MAX).unwrap().unwrap();
    assert_eq!(h.kind, FrameKind::Pong);
}

#[test]
fn cluster_frames_on_standalone_server_get_typed_refusal() {
    // A server without a coordinator attached must refuse v2 cluster
    // frames with BadRequest, not crash or hang.
    use recblock_net::NetServer;
    let service = Arc::new(SolveService::<f64>::new(serve_config()));
    let mut server = NetServer::bind("127.0.0.1:0", NetConfig::default(), service).expect("bind");
    let addr = server.local_addr().unwrap();
    let ctl = server.ctl();
    let handle = thread::spawn(move || server.run());

    let mut client = NetClient::connect(addr).expect("connect");
    let err = client
        .join(&recblock_net::MemberInfo { name: "x".into(), addr: "y:1".into() })
        .expect_err("standalone server refuses Join");
    match err {
        NetError::Remote { code, message } => {
            assert_eq!(code, ErrCode::BadRequest);
            assert!(message.contains("not part of a cluster"), "{message}");
        }
        other => panic!("expected typed refusal, got {other:?}"),
    }
    ctl.shutdown();
    handle.join().unwrap().unwrap();
}

#[test]
fn membership_health_follows_drain() {
    let nodes = start_cluster(2, default_config);
    let mut client = connect(&nodes[0]);
    let stat = client.stat().expect("stat");
    assert_eq!(stat.health, 0, "healthy while serving");
    assert!(!stat.draining);
    drop(client);
    // `leave` drains the listener; afterwards the port stops answering.
    let addr = nodes[0].addr();
    let mut it = nodes.into_iter();
    it.next().unwrap().leave().expect("leave");
    assert!(NetClient::connect(addr).is_err(), "a departed node's listener must be closed");
    // The survivor's ring no longer lists the departed node.
    let survivor = it.next().unwrap();
    assert_eq!(survivor.ring().members.len(), 1);
}
