//! Row block SpTRSV (the paper's Algorithm 5, Figure 2(b)).
//!
//! The matrix is cut into `nseg` horizontal strips. Strip `si` holds a wide
//! rectangular block covering *all* previously solved columns, followed by a
//! triangular block on the diagonal. Each step first consumes the entire
//! solved prefix of `x` with one SpMV, then solves the strip — which is why
//! the row method's `x`-load traffic explodes with the part count (Table 2).

use crate::adaptive::Selector;
use crate::report::{SimBreakdown, SolveBreakdown};
use crate::sqsolver::SqSolver;
use crate::traffic::TrafficCounts;
use crate::trisolver::TriSolver;
use recblock_gpu_sim::{CostParams, DeviceSpec, TriProfile};
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::ops::Range;
use std::time::Instant;

/// A preprocessed row-block solver.
#[derive(Debug, Clone)]
pub struct RowBlockSolver<S> {
    n: usize,
    segments: Vec<Range<usize>>,
    tris: Vec<(TriSolver<S>, TriProfile)>,
    /// `rects[si - 1]`: rows `segments[si]` × cols `0..segments[si].start`
    /// (absent for the first strip).
    rects: Vec<SqSolver<S>>,
    traffic: TrafficCounts,
}

impl<S: Scalar> RowBlockSolver<S> {
    /// Partition `l` into `nseg` row blocks and preprocess every block.
    pub fn new(
        l: &Csr<S>,
        nseg: usize,
        selector: &Selector,
        syncfree_threads: usize,
    ) -> Result<Self, MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(l)?;
        let n = l.nrows();
        let segments = crate::partition::equal_segments(n, nseg);
        let mut tris = Vec::with_capacity(segments.len());
        let mut rects = Vec::new();
        let mut traffic = TrafficCounts::default();
        for (si, seg) in segments.iter().enumerate() {
            if si > 0 {
                let rect = l.submatrix(seg.clone(), 0..seg.start);
                traffic.spmv(rect.nrows(), rect.ncols());
                rects.push(SqSolver::build(rect, selector, true));
            }
            let tri = l.submatrix(seg.clone(), seg.clone());
            traffic.tri(seg.len());
            tris.push(TriSolver::build_adaptive(tri, selector, syncfree_threads)?);
        }
        Ok(RowBlockSolver { n, segments, tris, rects, traffic })
    }

    /// Number of strips.
    pub fn nseg(&self) -> usize {
        self.segments.len()
    }

    /// Dense-counted traffic of one solve (Tables 1–2 accounting).
    pub fn traffic(&self) -> TrafficCounts {
        self.traffic
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        Ok(self.solve_instrumented(b)?.0)
    }

    /// Solve and report the wall-clock tri/SpMV split.
    pub fn solve_instrumented(&self, b: &[S]) -> Result<(Vec<S>, SolveBreakdown), MatrixError> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "row block rhs",
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut x = vec![S::ZERO; self.n];
        let mut br = SolveBreakdown::default();
        let mut seg_rhs: Vec<S> = Vec::new();
        for (si, seg) in self.segments.iter().enumerate() {
            seg_rhs.clear();
            seg_rhs.extend_from_slice(&b[seg.clone()]);
            if si > 0 {
                let t1 = Instant::now();
                self.rects[si - 1].apply(&x[..seg.start], &mut seg_rhs)?;
                br.spmv_s += t1.elapsed().as_secs_f64();
            }
            let t0 = Instant::now();
            let xs = self.tris[si].0.solve(&seg_rhs)?;
            br.tri_s += t0.elapsed().as_secs_f64();
            x[seg.clone()].copy_from_slice(&xs);
        }
        Ok((x, br))
    }

    /// Predicted GPU time per part under the cost model.
    pub fn simulated_breakdown(&self, dev: &DeviceSpec, params: &CostParams) -> SimBreakdown {
        let mut sim = SimBreakdown::default();
        for (si, (tri, profile)) in self.tris.iter().enumerate() {
            let seg = &self.segments[si];
            let ws = seg.len() * 3 * S::BYTES;
            sim.tri = sim.tri.seq(tri.simulated_time(profile, ws, dev, params));
        }
        for (si, rect) in self.rects.iter().enumerate() {
            let seg = &self.segments[si + 1];
            // The wide SpMV reads the whole solved prefix of x — the row
            // method's huge working set.
            let ws = (seg.len() + rect.ncols()) * 2 * S::BYTES;
            sim.spmv = sim.spmv.seq(rect.simulated_time(ws, dev, params));
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check(l: Csr<f64>, nseg: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 19) as f64) - 9.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let s = RowBlockSolver::new(&l, nseg, &Selector::default(), 4).unwrap();
        let x = s.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10, "nseg={nseg}");
    }

    #[test]
    fn matches_serial_various_segments() {
        let l = generate::random_lower::<f64>(600, 4.0, 21);
        for nseg in [1usize, 2, 3, 4, 8, 16] {
            check(l.clone(), nseg);
        }
    }

    #[test]
    fn matches_serial_on_structures() {
        check(generate::grid2d::<f64>(25, 24, 22), 4);
        check(generate::chain::<f64>(300, 23), 8);
        check(generate::kkt_like::<f64>(1000, 400, 3, 24), 4);
        check(generate::hub_power_law::<f64>(800, 6, 2, 30, 25), 4);
    }

    #[test]
    fn traffic_matches_dense_formula() {
        let n = 256;
        let l = generate::dense_lower::<f64>(n, 26);
        for parts in [4usize, 16] {
            let s = RowBlockSolver::new(&l, parts, &Selector::default(), 2).unwrap();
            let t = s.traffic();
            assert_eq!(t.b_updates as f64, crate::traffic::row_b_updates(n, parts));
            assert_eq!(t.x_loads as f64, crate::traffic::row_x_loads(n, parts));
        }
    }

    #[test]
    fn row_loads_more_x_than_column() {
        let n = 256;
        let l = generate::dense_lower::<f64>(n, 27);
        let row = RowBlockSolver::new(&l, 16, &Selector::default(), 2).unwrap();
        let col = crate::column::ColumnBlockSolver::new(&l, 16, &Selector::default(), 2).unwrap();
        assert!(row.traffic().x_loads > col.traffic().x_loads);
        assert!(col.traffic().b_updates > row.traffic().b_updates);
    }

    #[test]
    fn simulated_breakdown_positive() {
        let l = generate::random_lower::<f64>(500, 4.0, 28);
        let s = RowBlockSolver::new(&l, 4, &Selector::default(), 2).unwrap();
        let sim = s.simulated_breakdown(&DeviceSpec::titan_rtx_turing(), &CostParams::default());
        assert!(sim.tri.total_s > 0.0);
        assert!(sim.spmv.total_s > 0.0);
    }

    #[test]
    fn rejects_wrong_rhs() {
        let l = generate::random_lower::<f64>(100, 3.0, 29);
        let s = RowBlockSolver::new(&l, 4, &Selector::default(), 2).unwrap();
        assert!(s.solve(&[1.0; 5]).is_err());
    }
}
