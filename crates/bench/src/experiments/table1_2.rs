//! Tables 1–2: `b`-update and `x`-load traffic of the three block
//! algorithms — closed-form values plus instrumented counters measured on a
//! dense lower triangle (the setting the paper derives the formulas for).

use crate::harness::Table;
use recblock::adaptive::Selector;
use recblock::column::ColumnBlockSolver;
use recblock::recursive::RecursiveBlockSolver;
use recblock::row::RowBlockSolver;
use recblock::traffic;
use recblock_matrix::generate;

/// Run with the default measured matrix size (`n = 256`).
pub fn run() -> String {
    run_sized(256)
}

/// Run with an explicit dense-matrix size for the measured columns.
pub fn run_sized(n: usize) -> String {
    let mut out = String::new();
    out.push_str("== Table 1: items updated to right-hand side b (formula, coefficient of n) ==\n");
    let parts = [4usize, 16, 256, 65536];
    let mut t = Table::new(["method", "4", "16", "256", "65536"]);
    let coeff = |v: f64| format!("{:.4}n", v / n as f64);
    t.row([
        "col. block".to_string(),
        coeff(traffic::column_b_updates(n, parts[0])),
        coeff(traffic::column_b_updates(n, parts[1])),
        coeff(traffic::column_b_updates(n, parts[2])),
        coeff(traffic::column_b_updates(n, parts[3])),
    ]);
    t.row([
        "row block".to_string(),
        coeff(traffic::row_b_updates(n, parts[0])),
        coeff(traffic::row_b_updates(n, parts[1])),
        coeff(traffic::row_b_updates(n, parts[2])),
        coeff(traffic::row_b_updates(n, parts[3])),
    ]);
    t.row([
        "rec. block".to_string(),
        coeff(traffic::recursive_b_updates(n, parts[0])),
        coeff(traffic::recursive_b_updates(n, parts[1])),
        coeff(traffic::recursive_b_updates(n, parts[2])),
        coeff(traffic::recursive_b_updates(n, parts[3])),
    ]);
    out.push_str(&t.render());

    out.push_str(
        "\n== Table 2: items loaded from solution vector x (formula, coefficient of n) ==\n",
    );
    let mut t = Table::new(["method", "4", "16", "256", "65536"]);
    t.row([
        "col. block".to_string(),
        coeff(traffic::column_x_loads(n, parts[0])),
        coeff(traffic::column_x_loads(n, parts[1])),
        coeff(traffic::column_x_loads(n, parts[2])),
        coeff(traffic::column_x_loads(n, parts[3])),
    ]);
    t.row([
        "row block".to_string(),
        coeff(traffic::row_x_loads(n, parts[0])),
        coeff(traffic::row_x_loads(n, parts[1])),
        coeff(traffic::row_x_loads(n, parts[2])),
        coeff(traffic::row_x_loads(n, parts[3])),
    ]);
    t.row([
        "rec. block".to_string(),
        coeff(traffic::recursive_x_loads(n, parts[0])),
        coeff(traffic::recursive_x_loads(n, parts[1])),
        coeff(traffic::recursive_x_loads(n, parts[2])),
        coeff(traffic::recursive_x_loads(n, parts[3])),
    ]);
    out.push_str(&t.render());

    out.push_str(&format!(
        "\n== Instrumented counters on a dense {n}x{n} lower triangle (must equal formulas) ==\n"
    ));
    let l = generate::dense_lower::<f64>(n, 1234);
    let sel = Selector::default();
    let mut t = Table::new(["parts", "method", "b-updates", "formula", "x-loads", "formula"]);
    for &parts in &[4usize, 16, 64] {
        let depth = parts.trailing_zeros() as usize;
        let col = ColumnBlockSolver::new(&l, parts, &sel, 2).expect("dense is solvable");
        let row = RowBlockSolver::new(&l, parts, &sel, 2).expect("dense is solvable");
        let rec = RecursiveBlockSolver::new(&l, depth, &sel, 2).expect("dense is solvable");
        t.row([
            parts.to_string(),
            "col. block".into(),
            col.traffic().b_updates.to_string(),
            format!("{:.0}", traffic::column_b_updates(n, parts)),
            col.traffic().x_loads.to_string(),
            format!("{:.0}", traffic::column_x_loads(n, parts)),
        ]);
        t.row([
            parts.to_string(),
            "row block".into(),
            row.traffic().b_updates.to_string(),
            format!("{:.0}", traffic::row_b_updates(n, parts)),
            row.traffic().x_loads.to_string(),
            format!("{:.0}", traffic::row_x_loads(n, parts)),
        ]);
        t.row([
            parts.to_string(),
            "rec. block".into(),
            rec.traffic().b_updates.to_string(),
            format!("{:.0}", traffic::recursive_b_updates(n, parts)),
            rec.traffic().x_loads.to_string(),
            format!("{:.0}", traffic::recursive_x_loads(n, parts)),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_paper_coefficients() {
        let report = super::run_sized(64);
        // Table 1 signature values.
        assert!(report.contains("2.5000n"));
        assert!(report.contains("32768.5000n"));
        // Table 2 signature values.
        assert!(report.contains("0.7500n"));
        assert!(report.contains("32767.5000n"));
    }

    #[test]
    fn measured_equals_formula() {
        let report = super::run_sized(64);
        // Every measured row prints count then formula; spot-check one:
        // col block at 4 parts on n=64: 2.5 * 64 = 160.
        assert!(report.contains("160"));
    }
}
