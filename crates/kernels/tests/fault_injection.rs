//! Fault injection against the execution engine itself: chunk panics and
//! straggler chunks, on both the worker-dispatch path and the 0-worker
//! serial fallback (which is what a 1-CPU host always takes).
//!
//! Compiled only with `--features faults`. The fault plan is process
//! global, so these tests live in their own binary and serialize on a
//! mutex, clearing the plan before releasing it.

#![cfg(feature = "faults")]

use recblock_faults::{FaultPlan, FaultPoint, Trigger};
use recblock_kernels::ExecPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn chunk_panic_on_worker_path_is_reraised_and_pool_stays_usable() {
    let _serial = fault_lock();
    let pool = ExecPool::new(2);
    let done = AtomicUsize::new(0);

    FaultPlan::new(41).with(FaultPoint::ExecChunk, Trigger::OneShot).install();
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(64, &|_| {
            done.fetch_add(1, Relaxed);
        })
    }));
    FaultPlan::clear();
    assert!(r.is_err(), "the injected chunk panic re-raises on the dispatcher");
    assert_eq!(done.load(Relaxed), 63, "every other chunk of the epoch still ran");

    // The workers caught the unwind and re-parked: the next dispatch
    // completes normally on the same pool.
    pool.run(64, &|_| {
        done.fetch_add(1, Relaxed);
    });
    assert_eq!(done.load(Relaxed), 63 + 64);
}

#[test]
fn chunk_panic_on_serial_fallback_propagates_and_pool_stays_usable() {
    let _serial = fault_lock();
    // No workers: run() takes the inline serial path, so the panic
    // propagates raw out of run() — the serve tier's catch_unwind is what
    // contains it there. The pool itself must survive for the next call.
    let pool = ExecPool::new(0);
    let done = AtomicUsize::new(0);

    FaultPlan::new(43).with(FaultPoint::ExecChunk, Trigger::OneShot).install();
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(16, &|_| {
            done.fetch_add(1, Relaxed);
        })
    }));
    FaultPlan::clear();
    assert!(r.is_err(), "serial-path chunk panic propagates to the caller");
    assert_eq!(done.load(Relaxed), 0, "one-shot fires before the first chunk");

    pool.run(16, &|_| {
        done.fetch_add(1, Relaxed);
    });
    assert_eq!(done.load(Relaxed), 16);
}

#[test]
fn straggler_chunks_delay_but_lose_no_work() {
    let _serial = fault_lock();
    let pool = ExecPool::new(2);
    let done = AtomicUsize::new(0);

    // Roughly half the chunks sleep. Every chunk must still run exactly
    // once and the dispatch must still drain.
    FaultPlan::new(47).with(FaultPoint::ExecSlow, Trigger::Prob(0.5)).install();
    pool.run(48, &|_| {
        done.fetch_add(1, Relaxed);
    });
    FaultPlan::clear();
    assert_eq!(done.load(Relaxed), 48);
}
