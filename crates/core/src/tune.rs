//! Closed-loop autotuning: replay a built plan under a bounded candidate
//! grid and keep the measured winner.
//!
//! The engine thresholds in [`TuneParams`] (schedule mode, p2p chunk
//! granularity, SpMV chunking, run fusion) are static guesses; the papers
//! this repo tracks show the winning configuration is matrix-family
//! specific, so it has to be *measured*. [`tune_blocked`] does exactly
//! that: every candidate is produced by [`BlockedTri::retuned`] — schedule
//! re-planning only, no reorder / extraction / selection — then timed with
//! warmup and a median over k samples. A candidate must beat the incumbent
//! by a minimum-improvement margin (hysteresis) before it wins, so noise
//! never flips a plan back and forth between near-equal tunings.
//!
//! The driver is deliberately transport-free: `planctl tune` runs it
//! offline against the store, and the serve tier's canary scheduler runs
//! it one-candidate-at-a-time off the critical path. Both persist winners
//! through the store (format v3 carries `TuneParams`), so every later load
//! is pre-tuned.

use crate::blocked::{BlockedTri, SolveWorkspace};
use recblock_kernels::exec::{ScheduleMode, TuneParams};
use recblock_matrix::{MatrixError, Scalar};
use std::time::Instant;

/// One point of the candidate grid.
#[derive(Debug, Clone)]
pub struct TuneCandidate {
    /// Short stable name (shows up in reports, metrics and logs).
    pub name: &'static str,
    /// The tuning to try.
    pub tune: TuneParams,
}

/// The bounded candidate grid explored around `base`: both schedule modes,
/// finer/coarser p2p task granularity, finer/coarser SpMV chunking, and
/// eager/lazy run fusion. Candidates identical to `base` are dropped, so
/// the grid never wastes a measurement re-timing the incumbent.
pub fn candidate_grid(base: TuneParams) -> Vec<TuneCandidate> {
    let all = [
        TuneCandidate {
            name: "level-sync",
            tune: TuneParams { schedule_mode: ScheduleMode::LevelSync, ..base },
        },
        TuneCandidate {
            name: "p2p",
            tune: TuneParams { schedule_mode: ScheduleMode::PointToPoint, ..base },
        },
        TuneCandidate {
            name: "p2p-fine",
            tune: TuneParams {
                schedule_mode: ScheduleMode::PointToPoint,
                p2p_chunk_nnz: 384,
                ..base
            },
        },
        TuneCandidate {
            name: "p2p-coarse",
            tune: TuneParams {
                schedule_mode: ScheduleMode::PointToPoint,
                p2p_chunk_nnz: 1536,
                ..base
            },
        },
        TuneCandidate { name: "chunk-fine", tune: TuneParams { chunk_nnz: 2048, ..base } },
        TuneCandidate { name: "chunk-coarse", tune: TuneParams { chunk_nnz: 8192, ..base } },
        TuneCandidate { name: "fuse-eager", tune: TuneParams { fuse_nnz: 16384, ..base } },
        TuneCandidate { name: "fuse-lazy", tune: TuneParams { fuse_nnz: 1024, ..base } },
    ];
    all.into_iter().filter(|c| c.tune != base).collect()
}

/// Knobs of the measurement loop.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Untimed solves before sampling (cache/branch warmup).
    pub warmup: usize,
    /// Timed samples per candidate; the median is the candidate's score.
    pub samples: usize,
    /// Fractional improvement over the incumbent a candidate must show
    /// before it wins (hysteresis against measurement noise).
    pub min_improvement: f64,
    /// Minimum duration of one timed sample; solves are batched until a
    /// sample takes at least this long, so tiny systems still produce
    /// timings above clock granularity. The batch size is calibrated once
    /// on the incumbent and reused for every candidate.
    pub min_sample_ns: u64,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions { warmup: 2, samples: 5, min_improvement: 0.03, min_sample_ns: 200_000 }
    }
}

/// Measured outcome of one candidate.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Candidate name from the grid.
    pub name: &'static str,
    /// The tuning that was measured.
    pub tune: TuneParams,
    /// Median nanoseconds of one solve under this tuning.
    pub median_ns: u64,
    /// `false` when the candidate's solution differed from the incumbent's
    /// (it is disqualified from winning regardless of its timing).
    pub bit_identical: bool,
}

/// Everything [`tune_blocked`] measured, plus the verdict.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The incumbent tuning the plan arrived with.
    pub base: TuneParams,
    /// Median nanoseconds of one solve under the incumbent.
    pub base_ns: u64,
    /// Per-candidate measurements, in grid order.
    pub outcomes: Vec<TuneOutcome>,
    /// Index into `outcomes` of the winner, when one cleared the
    /// hysteresis margin; `None` keeps the incumbent.
    pub winner: Option<usize>,
}

impl TuneReport {
    /// The winning outcome, when a candidate beat the incumbent.
    pub fn winner_outcome(&self) -> Option<&TuneOutcome> {
        self.winner.map(|i| &self.outcomes[i])
    }

    /// The tuning to persist: the winner's, or `None` to keep the incumbent.
    pub fn winner_tune(&self) -> Option<TuneParams> {
        self.winner_outcome().map(|o| o.tune)
    }

    /// Fractional improvement of the winner over the incumbent (0 when the
    /// incumbent kept its seat).
    pub fn winner_gain(&self) -> f64 {
        match self.winner_outcome() {
            Some(o) if self.base_ns > 0 => 1.0 - o.median_ns as f64 / self.base_ns as f64,
            _ => 0.0,
        }
    }
}

/// How many back-to-back solves one timed sample runs so it stays above
/// clock granularity — calibrated once on the incumbent plan.
fn calibrate_batch<S: Scalar>(
    plan: &BlockedTri<S>,
    b: &[S],
    x: &mut [S],
    ws: &mut SolveWorkspace<S>,
    min_sample_ns: u64,
) -> Result<u32, MatrixError> {
    let t0 = Instant::now();
    plan.solve_into(b, x, ws)?;
    let one = t0.elapsed().as_nanos().max(1) as u64;
    Ok(min_sample_ns.div_ceil(one).clamp(1, 10_000) as u32)
}

/// Median nanoseconds of one solve: `warmup` untimed runs, then `samples`
/// timed batches of `batch` solves each.
fn measure<S: Scalar>(
    plan: &BlockedTri<S>,
    b: &[S],
    x: &mut [S],
    ws: &mut SolveWorkspace<S>,
    opts: &TuneOptions,
    batch: u32,
) -> Result<u64, MatrixError> {
    for _ in 0..opts.warmup {
        plan.solve_into(b, x, ws)?;
    }
    let mut samples = Vec::with_capacity(opts.samples);
    for _ in 0..opts.samples.max(1) {
        let t0 = Instant::now();
        for _ in 0..batch {
            plan.solve_into(b, x, ws)?;
        }
        samples.push(t0.elapsed().as_nanos() as u64 / batch.max(1) as u64);
    }
    samples.sort_unstable();
    Ok(samples[samples.len() / 2])
}

/// Tune `plan` against right-hand side `b`: measure the incumbent, then
/// every grid candidate (each produced by [`BlockedTri::retuned`]), and
/// pick the fastest candidate that both solves bit-identically to the
/// incumbent and clears the hysteresis margin. The plan itself is not
/// modified — apply the verdict with `plan.retuned(report.winner_tune())`.
pub fn tune_blocked<S: Scalar>(
    plan: &BlockedTri<S>,
    b: &[S],
    opts: &TuneOptions,
) -> Result<TuneReport, MatrixError> {
    let base = plan.tune();
    let mut ws = SolveWorkspace::new();
    let mut x = vec![S::ZERO; plan.n()];
    let batch = calibrate_batch(plan, b, &mut x, &mut ws, opts.min_sample_ns)?;
    let base_ns = measure(plan, b, &mut x, &mut ws, opts, batch)?;
    let reference = x.clone();
    let mut outcomes = Vec::new();
    for c in candidate_grid(base) {
        let candidate = plan.retuned(c.tune)?;
        let median_ns = measure(&candidate, b, &mut x, &mut ws, opts, batch)?;
        // The engine's deterministic reduction makes every schedule solve
        // bit-identically; a divergence means something is broken, and a
        // broken candidate must never win on speed.
        let bit_identical = x == reference;
        outcomes.push(TuneOutcome { name: c.name, tune: c.tune, median_ns, bit_identical });
    }
    let bound = (base_ns as f64 * (1.0 - opts.min_improvement)) as u64;
    let winner = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.bit_identical && o.median_ns < bound)
        .min_by_key(|(_, o)| o.median_ns)
        .map(|(i, _)| i);
    Ok(TuneReport { base, base_ns, outcomes, winner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::{BlockedOptions, DepthRule};
    use recblock_matrix::generate;

    fn plan_for(n: usize) -> BlockedTri<f64> {
        let l = generate::layered::<f64>(n, 12, 2.0, generate::LayerShape::Uniform, 91);
        let opts = BlockedOptions { depth: DepthRule::Fixed(2), ..BlockedOptions::default() };
        BlockedTri::build(&l, &opts).unwrap()
    }

    #[test]
    fn grid_is_bounded_and_excludes_base() {
        let grid = candidate_grid(TuneParams::default());
        assert!(grid.len() <= 8);
        for c in &grid {
            assert_ne!(c.tune, TuneParams::default(), "{}", c.name);
        }
        // A base already at one grid point shrinks the grid by exactly it.
        let tuned = TuneParams { schedule_mode: ScheduleMode::LevelSync, ..TuneParams::default() };
        let grid2 = candidate_grid(tuned);
        assert_eq!(grid2.len(), grid.len() - 1);
        assert!(grid2.iter().all(|c| c.name != "level-sync"));
    }

    #[test]
    fn tune_measures_every_candidate_and_stays_correct() {
        let plan = plan_for(600);
        let b: Vec<f64> = (0..600).map(|i| ((i % 23) as f64) - 11.0).collect();
        let opts = TuneOptions { samples: 3, min_sample_ns: 50_000, ..TuneOptions::default() };
        let report = tune_blocked(&plan, &b, &opts).unwrap();
        assert_eq!(report.outcomes.len(), candidate_grid(plan.tune()).len());
        assert!(report.base_ns > 0);
        for o in &report.outcomes {
            assert!(o.median_ns > 0, "{}", o.name);
            assert!(o.bit_identical, "candidate {} diverged from the incumbent", o.name);
        }
        // Whatever won (or not), applying the verdict must solve identically.
        if let Some(t) = report.winner_tune() {
            let tuned = plan.retuned(t).unwrap();
            assert_eq!(tuned.solve(&b).unwrap(), plan.solve(&b).unwrap());
            assert!(report.winner_gain() >= opts.min_improvement);
        }
    }

    #[test]
    fn hysteresis_blocks_marginal_winners() {
        // An impossible margin means nothing can win: the incumbent stays.
        let plan = plan_for(300);
        let b = vec![1.0; 300];
        let opts = TuneOptions {
            samples: 1,
            min_improvement: 1.0,
            min_sample_ns: 10_000,
            ..TuneOptions::default()
        };
        let report = tune_blocked(&plan, &b, &opts).unwrap();
        assert!(report.winner.is_none());
        assert!(report.winner_tune().is_none());
        assert_eq!(report.winner_gain(), 0.0);
    }
}
