//! The improved recursive block data structure (the paper's Section 3.3)
//! and its loop executor (Algorithm 7's driver).
//!
//! [`BlockedTri`] is built once in a preprocessing stage:
//!
//! 1. the matrix is **recursively reordered** by level sets ([`crate::reorder`],
//!    Figure 3),
//! 2. the recursive bisection is **flattened into execution order** — the
//!    in-order sequence `T₀ S₀ T₁ S₁ …` of Figure 3(d) — so the solve phase
//!    is a plain loop rather than a recursion,
//! 3. every triangular block gets the SpTRSV kernel and every square block
//!    the SpMV kernel and storage (CSR or DCSR) the **adaptive selection**
//!    chooses from its statistics (Algorithm 7).
//!
//! Solving then gathers `b` into the reordered space, walks the block list,
//! and scatters the solution back.

use crate::adaptive::{Selector, TriKernel};
use crate::explain::{self, BlockDecision, BlockDecisionKind, LevelShape, SelectionReport};
use crate::partition::{self, PlanNode};
use crate::report::{SimBreakdown, SolveBreakdown};
use crate::sqsolver::SqSolver;
use crate::traffic::TrafficCounts;
use crate::trisolver::TriSolver;
use recblock_gpu_sim::cost::SpmvKind;
use recblock_gpu_sim::TriProfile;
use recblock_gpu_sim::{CostParams, DeviceSpec, KernelTime};
use recblock_kernels::exec::TuneParams;
use recblock_kernels::trace::{EventKind, SolveTrace};
use recblock_matrix::permute::Permutation;
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::ops::Range;
use std::time::{Duration, Instant};

pub use recblock_kernels::exec::SolveWorkspace;

/// How the recursion depth is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum DepthRule {
    /// The paper's rule: halve until the next block would drop below
    /// `20 × cuda_cores` rows of the given device.
    Auto(DeviceSpec),
    /// Fixed depth (`2^depth` leaves).
    Fixed(usize),
}

/// Preprocessing options for [`BlockedTri`].
#[derive(Debug, Clone)]
pub struct BlockedOptions {
    /// Recursion-depth rule.
    pub depth: DepthRule,
    /// Apply the recursive level-set reordering (Section 3.3). Disabling it
    /// is the `ablation_reorder` baseline.
    pub reorder: bool,
    /// Kernel selection policy (adaptive Algorithm 7 by default).
    pub selector: Selector,
    /// Allow DCSR storage for hyper-sparse squares. Disabling it is the
    /// `ablation_dcsr` baseline.
    pub allow_dcsr: bool,
    /// Worker threads for sync-free blocks.
    pub syncfree_threads: usize,
    /// Execution-engine thresholds (level coarsening, nnz chunking) applied
    /// to every block's preplanned schedule.
    pub tune: TuneParams,
}

impl Default for BlockedOptions {
    fn default() -> Self {
        BlockedOptions {
            depth: DepthRule::Auto(DeviceSpec::titan_rtx_turing()),
            reorder: true,
            selector: Selector::default(),
            allow_dcsr: true,
            syncfree_threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .min(16),
            tune: TuneParams::default(),
        }
    }
}

/// The payload of one block in execution order.
// The Tri variant carries the inline level schedule and is much larger than
// Square, but there are only a handful of blocks per plan (one per tree
// node), so boxing would add an indirection to the hot walk for no savings.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum BlockData<S> {
    Tri { solver: TriSolver<S>, profile: TriProfile },
    Square(SqSolver<S>),
}

/// One block of the execution-order list.
#[derive(Debug, Clone)]
struct Block<S> {
    rows: Range<usize>,
    cols: Range<usize>,
    data: BlockData<S>,
}

/// Public structural summary of one block (see
/// [`BlockedTri::block_summaries`]).
#[derive(Debug, Clone)]
pub struct BlockSummary {
    /// Row range in the reordered matrix.
    pub rows: Range<usize>,
    /// Column range in the reordered matrix.
    pub cols: Range<usize>,
    /// Shape-specific payload.
    pub kind: BlockKindSummary,
}

/// Shape-specific part of a [`BlockSummary`].
#[derive(Debug, Clone)]
pub enum BlockKindSummary {
    /// Triangular block: selected SpTRSV kernel and cost-model profile.
    Tri {
        /// The kernel the selection assigned.
        kernel: TriKernel,
        /// The block's structural profile.
        profile: recblock_gpu_sim::TriProfile,
    },
    /// Square block: selected SpMV kernel and profile.
    Square {
        /// The kernel the selection assigned.
        kernel: SpmvKind,
        /// The block's structural profile.
        profile: recblock_gpu_sim::SpmvProfile,
    },
}

/// Borrowed view of one block's full solver state, in execution order —
/// the read side of the persistence surface (see [`BlockedTri::block_views`]).
#[derive(Debug)]
pub struct BlockView<'a, S> {
    /// Row range in the reordered matrix.
    pub rows: Range<usize>,
    /// Column range in the reordered matrix.
    pub cols: Range<usize>,
    /// Shape-specific solver state.
    pub kind: BlockViewKind<'a, S>,
}

/// Shape-specific part of a [`BlockView`].
#[derive(Debug)]
pub enum BlockViewKind<'a, S> {
    /// Triangular block: its solver (kernel + preprocessed state) and
    /// cost-model profile.
    Tri {
        /// The preprocessed per-block solver.
        solver: &'a TriSolver<S>,
        /// The block's structural profile.
        profile: &'a TriProfile,
    },
    /// Square block: its SpMV solver (kernel + storage + profile).
    Square(&'a SqSolver<S>),
}

/// Owned deconstruction of one block — the write side of the persistence
/// surface (see [`BlockedTri::from_parts`]).
#[derive(Debug, Clone)]
pub struct BlockParts<S> {
    /// Row range in the reordered matrix.
    pub rows: Range<usize>,
    /// Column range in the reordered matrix.
    pub cols: Range<usize>,
    /// Shape-specific solver state.
    pub kind: BlockPartsKind<S>,
}

/// Shape-specific part of a [`BlockParts`].
// Mirrors `BlockData` (few instances, boxing buys nothing — see there).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum BlockPartsKind<S> {
    /// Triangular block.
    Tri {
        /// The preprocessed per-block solver.
        solver: TriSolver<S>,
        /// The block's structural profile.
        profile: TriProfile,
    },
    /// Square block.
    Square(SqSolver<S>),
}

/// Everything needed to reconstruct a [`BlockedTri`] without re-running
/// preprocessing: permutation, block ranges in execution order, and each
/// block's fully-preprocessed solver state.
#[derive(Debug, Clone)]
pub struct BlockedTriParts<S> {
    /// Rows of the system.
    pub n: usize,
    /// Nonzeros of the system.
    pub nnz: usize,
    /// Recursion depth used by the original build.
    pub depth: usize,
    /// The reordering permutation (`perm[new] = old`).
    pub perm: Permutation,
    /// Engine tuning the blocks' schedules were planned under. Persisted so
    /// a reload reproduces the original plan exactly.
    pub tune: TuneParams,
    /// Blocks in execution order.
    pub blocks: Vec<BlockParts<S>>,
}

/// Census of which kernels the adaptive selection assigned.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelCensus {
    /// `(kernel, block count)` for the triangular blocks.
    pub tri: Vec<(TriKernel, usize)>,
    /// `(kernel, block count)` for the square blocks.
    pub spmv: Vec<(SpmvKind, usize)>,
}

/// The improved recursive block structure: reordered, flattened, with
/// per-block kernels selected — ready to solve many right-hand sides.
#[derive(Debug, Clone)]
pub struct BlockedTri<S> {
    n: usize,
    nnz: usize,
    depth: usize,
    perm: Permutation,
    /// `true` when `perm` is the identity — gather/scatter degrade to plain
    /// copies (or are skipped entirely) on the solve hot path.
    ident: bool,
    tune: TuneParams,
    blocks: Vec<Block<S>>,
    traffic: TrafficCounts,
    report: SelectionReport,
}

/// Is `perm[new] = old` the identity map?
fn perm_is_identity(perm: &Permutation) -> bool {
    perm.forward().iter().enumerate().all(|(new, &old)| new == old)
}

impl<S: Scalar> BlockedTri<S> {
    /// Preprocess `l` (the paper's whole preprocessing stage).
    pub fn build(l: &Csr<S>, opts: &BlockedOptions) -> Result<Self, MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(l)?;
        let n = l.nrows();
        let depth = match &opts.depth {
            DepthRule::Auto(dev) => partition::depth_for(n, dev.min_block_rows()),
            DepthRule::Fixed(d) => *d,
        };
        let t_reorder = Instant::now();
        let (matrix, perm) = if opts.reorder {
            crate::reorder::recursive_levelset_reorder(l, depth)?
        } else {
            (l.clone(), Permutation::identity(n))
        };
        let reorder_time = opts.reorder.then(|| t_reorder.elapsed());
        let plan = partition::recursive_plan(n, depth);
        let mut traffic = TrafficCounts::default();
        for node in &plan {
            match node {
                PlanNode::Tri { rows } => traffic.tri(rows.len()),
                PlanNode::Square { rows, cols } => traffic.spmv(rows.len(), cols.len()),
            }
        }
        // Blocks are independent once the matrix is reordered: extract,
        // profile and preprocess them in parallel (this is the bulk of the
        // Table 5 preprocessing cost).
        use rayon::prelude::*;
        let blocks: Vec<Block<S>> = plan
            .into_par_iter()
            .map(|node| -> Result<Block<S>, MatrixError> {
                match node {
                    PlanNode::Tri { rows } => {
                        let tri = matrix.submatrix(rows.clone(), rows.clone());
                        let (solver, profile) = TriSolver::build_adaptive_tuned(
                            tri,
                            &opts.selector,
                            opts.syncfree_threads,
                            opts.tune,
                        )?;
                        Ok(Block {
                            rows: rows.clone(),
                            cols: rows,
                            data: BlockData::Tri { solver, profile },
                        })
                    }
                    PlanNode::Square { rows, cols } => {
                        let sq = matrix.submatrix(rows.clone(), cols.clone());
                        let solver =
                            SqSolver::build_tuned(sq, &opts.selector, opts.allow_dcsr, opts.tune);
                        Ok(Block { rows, cols, data: BlockData::Square(solver) })
                    }
                }
            })
            .collect::<Result<_, _>>()?;
        let report = make_report(
            n,
            l.nnz(),
            depth,
            &blocks,
            &opts.selector,
            Some(opts.allow_dcsr),
            &opts.tune,
            reorder_time,
            false,
        );
        let ident = perm_is_identity(&perm);
        Ok(BlockedTri {
            n,
            nnz: l.nnz(),
            depth,
            perm,
            ident,
            tune: opts.tune,
            blocks,
            traffic,
            report,
        })
    }

    /// Rows of the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros of the system.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Recursion depth used.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of blocks in execution order (`2^(d+1) − 1`).
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// The reordering permutation (`perm[new] = old`).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Engine tuning every block schedule was planned under.
    pub fn tune(&self) -> TuneParams {
        self.tune
    }

    /// Dense-counted traffic of one solve (Tables 1–2 accounting).
    pub fn traffic(&self) -> TrafficCounts {
        self.traffic
    }

    /// The per-block kernel-selection report recorded when this plan was
    /// built (or re-derived when it was reloaded from persisted parts).
    pub fn selection_report(&self) -> &SelectionReport {
        &self.report
    }

    /// Structural summaries of every block in execution order — the
    /// introspection surface for tuning/agreement studies (Figure 5's data
    /// collection over real blocks).
    pub fn block_summaries(&self) -> Vec<BlockSummary> {
        self.blocks
            .iter()
            .map(|b| match &b.data {
                BlockData::Tri { solver, profile } => BlockSummary {
                    rows: b.rows.clone(),
                    cols: b.cols.clone(),
                    kind: BlockKindSummary::Tri {
                        kernel: solver.kernel(),
                        profile: profile.clone(),
                    },
                },
                BlockData::Square(sq) => BlockSummary {
                    rows: b.rows.clone(),
                    cols: b.cols.clone(),
                    kind: BlockKindSummary::Square { kernel: sq.kind(), profile: *sq.profile() },
                },
            })
            .collect()
    }

    /// Borrowed views of every block's full solver state in execution
    /// order — what a persistence layer serializes (matrices in their final
    /// storage formats, level schedules, profiles), so reloading skips the
    /// whole preprocessing stage.
    pub fn block_views(&self) -> impl Iterator<Item = BlockView<'_, S>> + '_ {
        self.blocks.iter().map(|b| BlockView {
            rows: b.rows.clone(),
            cols: b.cols.clone(),
            kind: match &b.data {
                BlockData::Tri { solver, profile } => BlockViewKind::Tri { solver, profile },
                BlockData::Square(sq) => BlockViewKind::Square(sq),
            },
        })
    }

    /// Reconstruct a structure from persisted parts, skipping the reorder /
    /// extraction / profiling / selection work of [`BlockedTri::build`].
    ///
    /// Validates the shape invariants the solve loop relies on: the
    /// permutation covers `n`, every block range lies inside `0..n`,
    /// triangular blocks sit on the diagonal, each block's solver matches
    /// its range, and block nonzeros sum to `nnz`. Traffic counters are
    /// recomputed from the block shapes (they are structure-independent).
    pub fn from_parts(parts: BlockedTriParts<S>) -> Result<Self, MatrixError> {
        let BlockedTriParts { n, nnz, depth, perm, tune, blocks } = parts;
        if perm.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "blocked parts permutation",
                expected: n,
                actual: perm.len(),
            });
        }
        let mut traffic = TrafficCounts::default();
        let mut block_nnz = 0usize;
        let mut out = Vec::with_capacity(blocks.len());
        for b in blocks {
            if b.rows.start > b.rows.end
                || b.cols.start > b.cols.end
                || b.rows.end > n
                || b.cols.end > n
            {
                return Err(MatrixError::IndexOutOfBounds {
                    what: "blocked parts range",
                    index: b.rows.end.max(b.cols.end),
                    bound: n,
                });
            }
            let data = match b.kind {
                BlockPartsKind::Tri { solver, profile } => {
                    if b.rows != b.cols {
                        return Err(MatrixError::DimensionMismatch {
                            what: "blocked parts tri block off the diagonal",
                            expected: b.rows.start,
                            actual: b.cols.start,
                        });
                    }
                    if solver.n() != b.rows.len() {
                        return Err(MatrixError::DimensionMismatch {
                            what: "blocked parts tri solver size",
                            expected: b.rows.len(),
                            actual: solver.n(),
                        });
                    }
                    block_nnz += solver.nnz();
                    traffic.tri(b.rows.len());
                    BlockData::Tri { solver, profile }
                }
                BlockPartsKind::Square(sq) => {
                    if sq.nrows() != b.rows.len() || sq.ncols() != b.cols.len() {
                        return Err(MatrixError::DimensionMismatch {
                            what: "blocked parts square solver size",
                            expected: b.rows.len(),
                            actual: sq.nrows(),
                        });
                    }
                    block_nnz += sq.profile().nnz;
                    traffic.spmv(b.rows.len(), b.cols.len());
                    BlockData::Square(sq)
                }
            };
            out.push(Block { rows: b.rows, cols: b.cols, data });
        }
        if block_nnz != nnz {
            return Err(MatrixError::DimensionMismatch {
                what: "blocked parts nonzero conservation",
                expected: nnz,
                actual: block_nnz,
            });
        }
        // The original selector and options are not persisted: re-derive the
        // decision trail with the defaults and let the reconciliation in
        // `explain` note any block where the stored kernel disagrees. The
        // persisted tune *is* known and is named in those messages.
        let report =
            make_report(n, nnz, depth, &out, &Selector::default(), None, &tune, None, true);
        let ident = perm_is_identity(&perm);
        Ok(BlockedTri { n, nnz, depth, perm, ident, tune, blocks: out, traffic, report })
    }

    /// Re-plan every block's execution schedule under `tune`, keeping the
    /// reorder permutation, the block partition, and each block's selected
    /// kernel and storage exactly as built. This is the autotuner's
    /// replay primitive: trying a candidate tuning costs only schedule
    /// re-planning (`O(nnz)` worst case), not the full preprocessing stage
    /// — no reorder, no extraction, no profiling, no selection. The
    /// decision trail is re-derived so [`BlockedTri::selection_report`]
    /// reconciles against the retained kernels under the new tuning.
    pub fn retuned(&self, tune: TuneParams) -> Result<Self, MatrixError> {
        let blocks = self
            .blocks
            .iter()
            .map(|b| -> Result<Block<S>, MatrixError> {
                let data = match &b.data {
                    BlockData::Tri { solver, profile } => {
                        BlockData::Tri { solver: solver.retuned(tune)?, profile: profile.clone() }
                    }
                    BlockData::Square(sq) => BlockData::Square(sq.retuned(tune)),
                };
                Ok(Block { rows: b.rows.clone(), cols: b.cols.clone(), data })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let report = make_report(
            self.n,
            self.nnz,
            self.depth,
            &blocks,
            &Selector::default(),
            None,
            &tune,
            self.report.reorder_time,
            true,
        );
        Ok(BlockedTri {
            n: self.n,
            nnz: self.nnz,
            depth: self.depth,
            perm: self.perm.clone(),
            ident: self.ident,
            tune,
            blocks,
            traffic: self.traffic,
            report,
        })
    }

    /// Which kernels the selection assigned, per block count.
    pub fn census(&self) -> KernelCensus {
        let mut census = KernelCensus::default();
        for b in &self.blocks {
            match &b.data {
                BlockData::Tri { solver, .. } => bump_tri(&mut census.tri, solver.kernel()),
                BlockData::Square(sq) => bump_spmv(&mut census.spmv, sq.kind()),
            }
        }
        census
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        Ok(self.solve_instrumented(b)?.0)
    }

    /// Solve into caller-provided buffers, reusing a [`SolveWorkspace`] so
    /// repeated solves (the iterative scenario) run the whole block walk —
    /// gather, every per-block kernel, scatter — without a single heap
    /// allocation once the workspace has warmed up. Each triangular block
    /// executes its preplanned schedule in place via
    /// [`TriSolver::solve_into`]; each square block applies its preplanned
    /// SpMV chunking via [`SqSolver::apply`].
    pub fn solve_into(
        &self,
        b: &[S],
        x_out: &mut [S],
        ws: &mut SolveWorkspace<S>,
    ) -> Result<(), MatrixError> {
        if b.len() != self.n || x_out.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "blocked solve buffers",
                expected: self.n,
                actual: b.len().min(x_out.len()),
            });
        }
        let (work, x) = ws.pair(self.n);
        // Gather b into the reordered space. An identity permutation (the
        // reorder found nothing to move, or reordering was disabled)
        // degrades to a straight memcpy.
        let t0 = SolveTrace::start();
        if self.ident {
            work.copy_from_slice(b);
        } else {
            for (new, &old) in self.perm.forward().iter().enumerate() {
                work[new] = b[old];
            }
        }
        SolveTrace::finish(t0, EventKind::Gather, 0, self.n as u32, 0);
        if self.ident {
            // Identity fast path: solve straight into the caller's buffer
            // and skip the scatter pass (and its extra n-vector of traffic)
            // entirely.
            self.walk_blocks(work, x_out)?;
            let t0 = SolveTrace::start();
            SolveTrace::finish(t0, EventKind::Scatter, 0, 0, 0);
            return Ok(());
        }
        self.walk_blocks(work, x)?;
        // Scatter back to the original ordering.
        let t0 = SolveTrace::start();
        for (new, &old) in self.perm.forward().iter().enumerate() {
            x_out[old] = x[new];
        }
        SolveTrace::finish(t0, EventKind::Scatter, 0, self.n as u32, 0);
        Ok(())
    }

    /// The block walk shared by [`BlockedTri::solve_into`]'s permuted and
    /// identity paths: `work` holds the gathered right-hand side (mutated by
    /// square blocks), `x` receives the solution in reordered space.
    fn walk_blocks(&self, work: &mut [S], x: &mut [S]) -> Result<(), MatrixError> {
        for (bi, block) in self.blocks.iter().enumerate() {
            let t0 = SolveTrace::start();
            match &block.data {
                BlockData::Tri { solver, .. } => {
                    solver.solve_into(&work[block.rows.clone()], &mut x[block.rows.clone()])?;
                    SolveTrace::finish(
                        t0,
                        EventKind::BlockTri,
                        bi as u32,
                        block.rows.len() as u32,
                        0,
                    );
                }
                BlockData::Square(sq) => {
                    sq.apply(&x[block.cols.clone()], &mut work[block.rows.clone()])?;
                    SolveTrace::finish(
                        t0,
                        EventKind::BlockSquare,
                        bi as u32,
                        block.rows.len() as u32,
                        sq.plan().nchunks().min(u16::MAX as usize) as u16,
                    );
                }
            }
        }
        Ok(())
    }

    /// Solve and report the wall-clock tri/SpMV split.
    pub fn solve_instrumented(&self, b: &[S]) -> Result<(Vec<S>, SolveBreakdown), MatrixError> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "blocked rhs",
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut work = self.perm.gather(b);
        let mut x = vec![S::ZERO; self.n];
        let mut br = SolveBreakdown::default();
        for block in &self.blocks {
            match &block.data {
                BlockData::Tri { solver, .. } => {
                    let t0 = Instant::now();
                    let xs = solver.solve(&work[block.rows.clone()])?;
                    br.tri_s += t0.elapsed().as_secs_f64();
                    x[block.rows.clone()].copy_from_slice(&xs);
                }
                BlockData::Square(sq) => {
                    let t1 = Instant::now();
                    sq.apply(&x[block.cols.clone()], &mut work[block.rows.clone()])?;
                    br.spmv_s += t1.elapsed().as_secs_f64();
                }
            }
        }
        Ok((self.perm.scatter(&x), br))
    }

    /// Fused multi-right-hand-side solve: the block list is walked **once**,
    /// each block processing every column before the next block starts —
    /// so block data is loaded once per solve batch instead of once per
    /// column (the cache behaviour that makes the paper's multi-RHS
    /// amortisation argument work).
    pub fn solve_multi(
        &self,
        b: &recblock_kernels::sptrsm::MultiVector<S>,
    ) -> Result<recblock_kernels::sptrsm::MultiVector<S>, MatrixError> {
        let mut out = recblock_kernels::sptrsm::MultiVector::zeros(self.n, b.k());
        self.solve_multi_into(b, &mut out)?;
        Ok(out)
    }

    /// As [`BlockedTri::solve_multi`], writing into a caller-provided
    /// output batch — a serving layer reuses the same output buffer across
    /// requests instead of allocating per batch. Allocates a throwaway
    /// workspace; use [`BlockedTri::solve_multi_ws`] to reuse one.
    pub fn solve_multi_into(
        &self,
        b: &recblock_kernels::sptrsm::MultiVector<S>,
        out: &mut recblock_kernels::sptrsm::MultiVector<S>,
    ) -> Result<(), MatrixError> {
        let mut ws = SolveWorkspace::new();
        self.solve_multi_ws(b, out, &mut ws)
    }

    /// As [`BlockedTri::solve_multi_into`] with a caller-held
    /// [`SolveWorkspace`]: after the workspace has warmed up to the batch
    /// shape, repeated batches run with zero heap allocations. Both regimes
    /// drive every column through the same per-block `solve_into`/`apply`
    /// calls, so the fused walk is bit-identical to per-column solves.
    pub fn solve_multi_ws(
        &self,
        b: &recblock_kernels::sptrsm::MultiVector<S>,
        out: &mut recblock_kernels::sptrsm::MultiVector<S>,
        ws: &mut SolveWorkspace<S>,
    ) -> Result<(), MatrixError> {
        if b.n() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "blocked multi-rhs rows",
                expected: self.n,
                actual: b.n(),
            });
        }
        if out.n() != self.n || out.k() != b.k() {
            return Err(MatrixError::DimensionMismatch {
                what: "blocked multi-rhs output shape",
                expected: self.n * b.k(),
                actual: out.n() * out.k(),
            });
        }
        let n = self.n;
        let k = b.k();
        // Strategy: walking the block list once with all columns amortises
        // the *matrix* traffic; iterating whole solves keeps the *vector*
        // working set (one column) hot. Pick by which is bigger — matrix
        // bytes versus the k-column batch.
        let matrix_bytes = self.nnz * (std::mem::size_of::<usize>() + S::BYTES);
        let batch_bytes = 2 * k * n * S::BYTES;
        if matrix_bytes < batch_bytes {
            for j in 0..k {
                self.solve_into(b.col(j), out.col_mut(j), ws)?;
            }
            return Ok(());
        }
        // Fused walk over a column-major `n × k` workspace: column `j`
        // occupies `j*n..(j+1)*n` of both buffers.
        let (work, x) = ws.wide_pair(n * k);
        for j in 0..k {
            let bj = b.col(j);
            let wj = &mut work[j * n..(j + 1) * n];
            if self.ident {
                wj.copy_from_slice(bj);
            } else {
                for (new, &old) in self.perm.forward().iter().enumerate() {
                    wj[new] = bj[old];
                }
            }
        }
        for block in &self.blocks {
            match &block.data {
                BlockData::Tri { solver, .. } => {
                    for j in 0..k {
                        let wj = &work[j * n..(j + 1) * n];
                        let xj = &mut x[j * n..(j + 1) * n];
                        solver.solve_into(&wj[block.rows.clone()], &mut xj[block.rows.clone()])?;
                    }
                }
                BlockData::Square(sq) => {
                    for j in 0..k {
                        let xj = &x[j * n..(j + 1) * n];
                        let wj = &mut work[j * n..(j + 1) * n];
                        sq.apply(&xj[block.cols.clone()], &mut wj[block.rows.clone()])?;
                    }
                }
            }
        }
        for j in 0..k {
            let xj = &x[j * n..(j + 1) * n];
            let oj = out.col_mut(j);
            if self.ident {
                oj.copy_from_slice(xj);
            } else {
                for (new, &old) in self.perm.forward().iter().enumerate() {
                    oj[old] = xj[new];
                }
            }
        }
        Ok(())
    }

    /// Predicted GPU time per part under the cost model.
    pub fn simulated_breakdown(&self, dev: &DeviceSpec, params: &CostParams) -> SimBreakdown {
        self.simulated_breakdown_bytes(S::BYTES, dev, params)
    }

    /// As [`BlockedTri::simulated_breakdown`] with an explicit element
    /// width, so one built structure prices both precisions (Figure 7).
    pub fn simulated_breakdown_bytes(
        &self,
        scalar_bytes: usize,
        dev: &DeviceSpec,
        params: &CostParams,
    ) -> SimBreakdown {
        let mut sim = SimBreakdown::default();
        for block in &self.blocks {
            match &block.data {
                BlockData::Tri { solver, profile } => {
                    let ws = block.rows.len() * 3 * scalar_bytes;
                    sim.tri = sim.tri.seq(solver.simulated_time_bytes(
                        profile,
                        scalar_bytes,
                        ws,
                        dev,
                        params,
                    ));
                }
                BlockData::Square(sq) => {
                    let ws = (block.rows.len() + block.cols.len()) * 2 * scalar_bytes;
                    sim.spmv = sim.spmv.seq(sq.simulated_time_bytes(scalar_bytes, ws, dev, params));
                }
            }
        }
        sim
    }

    /// Total predicted GPU solve time.
    pub fn simulated_time(&self, dev: &DeviceSpec, params: &CostParams) -> KernelTime {
        self.simulated_breakdown(dev, params).total()
    }

    /// Predicted GPU preprocessing time (reorder + rebuild; Table 5).
    pub fn simulated_prep_time(&self, params: &CostParams) -> f64 {
        recblock_gpu_sim::cost::block_prep_time(self.nnz, params)
    }
}

/// Assemble the explainability report for a built (or reloaded) block list.
/// `allow_dcsr = None` and `derived = true` mark a persisted plan whose
/// original options are unknown; `tune` is the engine tuning the plan's
/// schedules were actually planned under, so reconciliation messages can
/// name a persisted tuning instead of misreporting process defaults.
#[allow(clippy::too_many_arguments)]
fn make_report<S: Scalar>(
    n: usize,
    nnz: usize,
    depth: usize,
    blocks: &[Block<S>],
    selector: &Selector,
    allow_dcsr: Option<bool>,
    tune: &TuneParams,
    reorder_time: Option<Duration>,
    derived: bool,
) -> SelectionReport {
    let decisions = blocks
        .iter()
        .enumerate()
        .map(|(index, b)| match &b.data {
            BlockData::Tri { solver, profile } => BlockDecision {
                index,
                rows: b.rows.clone(),
                cols: b.cols.clone(),
                nnz: solver.nnz(),
                kind: BlockDecisionKind::Tri {
                    decision: explain::tri_decision(selector, profile, solver.kernel(), tune),
                    nnz_per_row: profile.nnz_per_row(),
                    nlevels: profile.nlevels(),
                    shape: LevelShape::from_level_rows(&profile.level_rows),
                    schedule: solver.schedule_stats(),
                    schedule_mode: solver.schedule_mode(),
                    tasks: solver.task_stats(),
                },
            },
            BlockData::Square(sq) => BlockDecision {
                index,
                rows: b.rows.clone(),
                cols: b.cols.clone(),
                nnz: sq.profile().nnz,
                kind: BlockDecisionKind::Square {
                    decision: explain::spmv_decision(
                        selector,
                        sq.profile(),
                        sq.kind(),
                        allow_dcsr,
                        tune,
                    ),
                    nnz_per_row: sq.profile().nnz_per_row(),
                    empty_ratio: sq.profile().empty_ratio(),
                    nchunks: sq.plan().nchunks(),
                },
            },
        })
        .collect();
    SelectionReport { n, nnz, depth, reorder_time, derived, blocks: decisions }
}

fn bump_tri(v: &mut Vec<(TriKernel, usize)>, k: TriKernel) {
    if let Some(e) = v.iter_mut().find(|(kk, _)| *kk == k) {
        e.1 += 1;
    } else {
        v.push((k, 1));
    }
}

fn bump_spmv(v: &mut Vec<(SpmvKind, usize)>, k: SpmvKind) {
    if let Some(e) = v.iter_mut().find(|(kk, _)| *kk == k) {
        e.1 += 1;
    } else {
        v.push((k, 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn opts(depth: usize) -> BlockedOptions {
        BlockedOptions { depth: DepthRule::Fixed(depth), ..BlockedOptions::default() }
    }

    fn check(l: Csr<f64>, depth: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 29) as f64) - 14.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let s = BlockedTri::build(&l, &opts(depth)).unwrap();
        let x = s.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10, "depth={depth}");
    }

    #[test]
    fn matches_serial_various_depths() {
        let l = generate::random_lower::<f64>(700, 4.0, 51);
        for depth in 0..6usize {
            check(l.clone(), depth);
        }
    }

    #[test]
    fn matches_serial_on_structures() {
        check(generate::grid2d::<f64>(26, 25, 52), 3);
        check(generate::chain::<f64>(400, 53), 4);
        check(generate::kkt_like::<f64>(1200, 500, 3, 54), 3);
        check(generate::hub_power_law::<f64>(900, 7, 2, 40, 55), 3);
        check(generate::layered::<f64>(800, 15, 2.0, generate::LayerShape::Uniform, 56), 3);
    }

    #[test]
    fn no_reorder_still_correct() {
        let l = generate::layered::<f64>(600, 10, 2.0, generate::LayerShape::Uniform, 57);
        let o = BlockedOptions { reorder: false, ..opts(3) };
        let s = BlockedTri::build(&l, &o).unwrap();
        let b = vec![1.5; 600];
        assert!(max_rel_diff(&s.solve(&b).unwrap(), &serial_csr(&l, &b).unwrap()) < 1e-10);
    }

    #[test]
    fn no_dcsr_still_correct() {
        let l = generate::hub_power_law::<f64>(800, 6, 2, 0, 58);
        let o = BlockedOptions { allow_dcsr: false, ..opts(3) };
        let s = BlockedTri::build(&l, &o).unwrap();
        let b = vec![0.5; 800];
        assert!(max_rel_diff(&s.solve(&b).unwrap(), &serial_csr(&l, &b).unwrap()) < 1e-10);
        for (k, _) in s.census().spmv {
            assert!(!matches!(k, SpmvKind::ScalarDcsr | SpmvKind::VectorDcsr));
        }
    }

    #[test]
    fn block_count_matches_plan() {
        let l = generate::random_lower::<f64>(512, 3.0, 59);
        let s = BlockedTri::build(&l, &opts(3)).unwrap();
        assert_eq!(s.nblocks(), (1 << 4) - 1);
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn auto_depth_follows_device_rule() {
        let l = generate::random_lower::<f64>(2000, 3.0, 60);
        let dev = DeviceSpec::titan_rtx_turing();
        let o = BlockedOptions { depth: DepthRule::Auto(dev.clone()), ..BlockedOptions::default() };
        let s = BlockedTri::build(&l, &o).unwrap();
        // 2000 rows ≪ 92160: no split.
        assert_eq!(s.depth(), 0);
        assert_eq!(s.nblocks(), 1);
    }

    #[test]
    fn reordering_creates_diagonal_leaves() {
        // Two-level KKT: after reorder, early leaves are pure diagonal and
        // take the completely-parallel kernel.
        let l = generate::kkt_like::<f64>(2048, 800, 3, 61);
        let s = BlockedTri::build(&l, &opts(2)).unwrap();
        let census = s.census();
        let diag_blocks = census
            .tri
            .iter()
            .find(|(k, _)| *k == TriKernel::CompletelyParallel)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert!(diag_blocks >= 1, "census: {:?}", census);
    }

    #[test]
    fn repeated_solves_consistent() {
        let l = generate::grid2d::<f64>(30, 30, 62);
        let s = BlockedTri::build(&l, &opts(3)).unwrap();
        let b: Vec<f64> = (0..900).map(|i| (i as f64 * 0.1).cos()).collect();
        let x1 = s.solve(&b).unwrap();
        let x2 = s.solve(&b).unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn traffic_matches_recursive_formula_on_dense() {
        let n = 256;
        let l = generate::dense_lower::<f64>(n, 63);
        let o = BlockedOptions { reorder: false, ..opts(3) };
        let s = BlockedTri::build(&l, &o).unwrap();
        let t = s.traffic();
        assert_eq!(t.b_updates as f64, crate::traffic::recursive_b_updates(n, 8));
        assert_eq!(t.x_loads as f64, crate::traffic::recursive_x_loads(n, 8));
    }

    #[test]
    fn simulated_times_positive_and_composed() {
        let l = generate::layered::<f64>(1000, 8, 2.0, generate::LayerShape::Uniform, 64);
        let s = BlockedTri::build(&l, &opts(3)).unwrap();
        let dev = DeviceSpec::titan_rtx_turing();
        let params = CostParams::default();
        let sim = s.simulated_breakdown(&dev, &params);
        assert!(sim.tri.total_s > 0.0 && sim.spmv.total_s > 0.0);
        let total = s.simulated_time(&dev, &params);
        assert!((total.total_s - sim.total().total_s).abs() < 1e-12);
        assert!(s.simulated_prep_time(&params) > 0.0);
    }

    #[test]
    fn solve_multi_matches_per_column_solve() {
        use recblock_kernels::sptrsm::MultiVector;
        let l = generate::kkt_like::<f64>(900, 350, 3, 72);
        let s = BlockedTri::build(&l, &opts(3)).unwrap();
        let k = 5;
        let data: Vec<f64> = (0..900 * k).map(|i| ((i % 41) as f64) - 20.0).collect();
        let b = MultiVector::from_columns(900, k, data).unwrap();
        let fused = s.solve_multi(&b).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut xj = vec![0.0; 900];
        for j in 0..k {
            // Fused and per-column walks run the same per-block kernels in
            // the same order, so they are bit-identical.
            s.solve_into(b.col(j), &mut xj, &mut ws).unwrap();
            assert_eq!(fused.col(j), &xj[..], "column {j}");
        }
    }

    #[test]
    fn solve_multi_checks_rows() {
        use recblock_kernels::sptrsm::MultiVector;
        let l = generate::diagonal::<f64>(40, 73);
        let s = BlockedTri::build(&l, &opts(1)).unwrap();
        assert!(s.solve_multi(&MultiVector::<f64>::zeros(30, 2)).is_err());
    }

    #[test]
    fn solve_into_matches_solve() {
        let l = generate::layered::<f64>(600, 9, 2.0, generate::LayerShape::Uniform, 70);
        let s = BlockedTri::build(&l, &opts(3)).unwrap();
        let b: Vec<f64> = (0..600).map(|i| (i % 7) as f64 - 3.0).collect();
        let expected = s.solve(&b).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut x = vec![0.0; 600];
        s.solve_into(&b, &mut x, &mut ws).unwrap();
        assert_eq!(x, expected);
        // Workspace reuse across different right-hand sides.
        let b2: Vec<f64> = b.iter().map(|v| v * 2.0).collect();
        s.solve_into(&b2, &mut x, &mut ws).unwrap();
        assert_eq!(x, s.solve(&b2).unwrap());
    }

    #[test]
    fn solve_into_checks_buffer_sizes() {
        let l = generate::diagonal::<f64>(50, 71);
        let s = BlockedTri::build(&l, &opts(1)).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut x = vec![0.0; 49];
        assert!(s.solve_into(&vec![1.0; 50], &mut x, &mut ws).is_err());
    }

    fn parts_of(s: &BlockedTri<f64>) -> BlockedTriParts<f64> {
        BlockedTriParts {
            n: s.n(),
            nnz: s.nnz(),
            depth: s.depth(),
            perm: s.permutation().clone(),
            tune: s.tune(),
            blocks: s
                .block_views()
                .map(|v| BlockParts {
                    rows: v.rows.clone(),
                    cols: v.cols.clone(),
                    kind: match v.kind {
                        BlockViewKind::Tri { solver, profile } => {
                            BlockPartsKind::Tri { solver: solver.clone(), profile: profile.clone() }
                        }
                        BlockViewKind::Square(sq) => BlockPartsKind::Square(sq.clone()),
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn parts_roundtrip_solves_identically() {
        let l = generate::kkt_like::<f64>(1000, 400, 3, 74);
        let s = BlockedTri::build(&l, &opts(3)).unwrap();
        let rebuilt = BlockedTri::from_parts(parts_of(&s)).unwrap();
        assert_eq!(rebuilt.nblocks(), s.nblocks());
        assert_eq!(rebuilt.traffic(), s.traffic());
        assert_eq!(rebuilt.census(), s.census());
        let b: Vec<f64> = (0..1000).map(|i| ((i % 17) as f64) - 8.0).collect();
        // Bit-identical: the rebuilt structure holds the same matrices and
        // schedules, so the arithmetic runs in exactly the same order.
        assert_eq!(rebuilt.solve(&b).unwrap(), s.solve(&b).unwrap());
    }

    #[test]
    fn retuned_keeps_structure_and_solves_identically() {
        use recblock_kernels::exec::ScheduleMode;
        let l = generate::layered::<f64>(800, 14, 2.0, generate::LayerShape::Uniform, 76);
        let s = BlockedTri::build(&l, &opts(2)).unwrap();
        let b: Vec<f64> = (0..800).map(|i| ((i % 19) as f64) - 9.0).collect();
        let expected = s.solve(&b).unwrap();
        for mode in [ScheduleMode::LevelSync, ScheduleMode::PointToPoint] {
            let tune = TuneParams { schedule_mode: mode, chunk_nnz: 2048, ..s.tune() };
            let r = s.retuned(tune).unwrap();
            // Partition, permutation and kernel selection are untouched.
            assert_eq!(r.nblocks(), s.nblocks());
            assert_eq!(r.census(), s.census());
            assert_eq!(r.permutation().forward(), s.permutation().forward());
            assert_eq!(r.tune(), tune);
            assert_eq!(r.traffic(), s.traffic());
            // The deterministic reduction makes every schedule bit-identical.
            assert_eq!(r.solve(&b).unwrap(), expected, "{mode:?}");
        }
    }

    #[test]
    fn from_parts_report_is_derived_but_names_stored_kernels() {
        let l = generate::kkt_like::<f64>(1000, 400, 3, 74);
        let s = BlockedTri::build(&l, &opts(3)).unwrap();
        let rebuilt = BlockedTri::from_parts(parts_of(&s)).unwrap();
        let (orig, derived) = (s.selection_report(), rebuilt.selection_report());
        assert!(!orig.derived && derived.derived);
        assert!(derived.reorder_time.is_none(), "reorder cost is not persisted");
        assert_eq!(orig.blocks.len(), derived.blocks.len());
        // The derived report must agree on every chosen kernel (it is
        // reconciled against the stored solvers, whatever the thresholds).
        for (a, b) in orig.blocks.iter().zip(&derived.blocks) {
            assert_eq!(a.kernel_name(), b.kernel_name(), "block {}", a.index);
        }
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        let l = generate::random_lower::<f64>(300, 3.0, 75);
        let s = BlockedTri::build(&l, &opts(2)).unwrap();
        // Wrong total nonzeros.
        let mut p = parts_of(&s);
        p.nnz += 1;
        assert!(BlockedTri::from_parts(p).is_err());
        // Permutation of the wrong length.
        let mut p = parts_of(&s);
        p.perm = recblock_matrix::permute::Permutation::identity(299);
        assert!(BlockedTri::from_parts(p).is_err());
        // Block range beyond n.
        let mut p = parts_of(&s);
        p.blocks[0].rows.end = 301;
        assert!(BlockedTri::from_parts(p).is_err());
        // Tri block moved off the diagonal.
        let mut p = parts_of(&s);
        p.blocks[0].cols = 1..1 + p.blocks[0].cols.len();
        assert!(BlockedTri::from_parts(p).is_err());
    }

    #[test]
    fn f32_blocked_solve() {
        let l = generate::random_lower::<f32>(500, 4.0, 65);
        let s = BlockedTri::build(&l, &opts(2)).unwrap();
        let b = vec![1.0f32; 500];
        let x = s.solve(&b).unwrap();
        let r = recblock_matrix::vector::residual_inf(&l, &x, &b).unwrap();
        assert!(r < 1e-4);
    }

    #[test]
    fn rejects_bad_inputs() {
        let l = generate::random_lower::<f64>(100, 3.0, 66);
        let s = BlockedTri::build(&l, &opts(2)).unwrap();
        assert!(s.solve(&[1.0; 99]).is_err());
        let bad =
            Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 1., 1.]).unwrap();
        assert!(BlockedTri::build(&bad, &opts(1)).is_err());
    }
}
