//! Throughput of the batched solve service versus naive per-request
//! serving. The service amortises two things: preprocessing (plan cache —
//! one build instead of one per request) and matrix traffic (multi-RHS
//! batches walk the block list once per batch instead of once per column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recblock::{RecBlockSolver, SolverOptions};
use recblock_matrix::generate;
use recblock_serve::{ServeConfig, SolveService};
use std::time::Duration;

const N: usize = 20_000;
const REQUESTS: usize = 16;

fn rhs(j: usize) -> Vec<f64> {
    (0..N).map(|i| ((i + 17 * j) as f64 * 0.007).sin() + 2.0).collect()
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_throughput");
    g.measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    let l = generate::random_lower::<f64>(N, 6.0, 11);
    let bs: Vec<Vec<f64>> = (0..REQUESTS).map(rhs).collect();

    // Naive per-request serving: every request preprocesses from scratch,
    // then solves one column.
    g.bench_function(BenchmarkId::new("naive", format!("prep+solve x{REQUESTS}")), |bench| {
        bench.iter(|| {
            for b in &bs {
                let solver = RecBlockSolver::new(&l, SolverOptions::default()).unwrap();
                criterion::black_box(solver.solve(b).unwrap());
            }
        })
    });

    // Shared-plan serving without batching: preprocessing amortised, each
    // column still walks the matrix alone.
    g.bench_function(BenchmarkId::new("shared_plan", format!("solve x{REQUESTS}")), |bench| {
        let solver = RecBlockSolver::new(&l, SolverOptions::default()).unwrap();
        bench.iter(|| {
            for b in &bs {
                criterion::black_box(solver.solve(b).unwrap());
            }
        })
    });

    // The full service: plan cache + coalesced multi-RHS batches.
    for max_batch in [1usize, 8] {
        g.bench_function(BenchmarkId::new("service", format!("max_batch={max_batch}")), |bench| {
            let service = SolveService::<f64>::new(
                ServeConfig::default()
                    .with_workers(1)
                    .with_max_batch(max_batch)
                    .with_queue_capacity(64),
            );
            service.warm(&l).unwrap();
            bench.iter(|| {
                let handles: Vec<_> =
                    bs.iter().map(|b| service.submit(&l, b.clone()).unwrap()).collect();
                for h in handles {
                    criterion::black_box(h.wait().unwrap());
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
