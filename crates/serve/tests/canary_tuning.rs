//! Canary autotuning integration: the background tuner works through the
//! candidate grid on real traffic, reaches a verdict, and the tune
//! generation stabilises — while answers stay bit-identical throughout.

use recblock_matrix::generate;
use recblock_serve::{PlanKey, PlanSource, ServeConfig, SolveService, StoreOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rbtune-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn canary_converges_and_generation_stabilises() {
    let tmp = TempDir::new("converge");
    let service = SolveService::<f64>::new(
        ServeConfig::default()
            .with_workers(1)
            .with_canary_tune(true)
            .with_store_options(StoreOptions::new(&tmp.0).with_warm_start(false)),
    );
    let l = generate::layered::<f64>(700, 10, 2.0, generate::LayerShape::Uniform, 91);
    let b: Vec<f64> = (0..700).map(|i| ((i % 23) as f64) - 11.0).collect();
    let key = PlanKey::of(&l);

    let expected = service.submit(&l, b.clone()).unwrap().wait().unwrap();
    // Each observed solve funds one canary measurement (base first, then
    // one grid candidate each); flushing between submits makes the
    // schedule deterministic. Answers must never change mid-tuning.
    for _ in 0..16 {
        let x = service.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert_eq!(x, expected, "tuning must be invisible in the answers");
        service.flush_tuning();
    }
    let snap = service.metrics();
    let st = snap
        .tune_states
        .iter()
        .find(|s| s.key == key)
        .expect("the canary must have looked at the plan");
    assert!(st.done, "verdict must be in after enough observed solves: {st:?}");
    assert_eq!(st.tried, st.total);
    assert!(st.total >= 1, "default tuning has a non-empty candidate grid");
    assert!(snap.tune_candidates_tried >= st.total as u64);
    assert_eq!(snap.tune_generation, snap.tune_winners_installed);
    let generation = snap.tune_generation;
    assert!(generation <= 1, "one fingerprint tunes at most once");
    if let Some(winner) = &st.winner {
        assert_eq!(generation, 1, "a named winner must have been installed");
        assert!(st.gain > 0.0, "winner {winner} must report its gain");
    }

    // Converged: further traffic changes neither the generation nor the
    // number of measured candidates.
    for _ in 0..6 {
        let x = service.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert_eq!(x, expected);
    }
    service.flush_tuning();
    let snap2 = service.metrics();
    assert_eq!(snap2.tune_generation, generation, "generation must stabilise");
    assert_eq!(snap2.tune_candidates_tried, snap.tune_candidates_tried);

    // The tune block shows up in both human and Prometheus renderings.
    let text = snap2.to_string();
    assert!(text.contains("tuning: generation"), "{text}");
    let prom = snap2.render_prometheus();
    assert!(prom.contains("recblock_tune_generation"), "{prom}");

    // Whatever was persisted (tuned or incumbent) reloads and solves
    // bit-identically in a fresh service.
    service.flush_store();
    drop(service);
    let second = SolveService::<f64>::new(
        ServeConfig::default()
            .with_workers(1)
            .with_store_options(StoreOptions::new(&tmp.0).with_warm_start(false)),
    );
    assert_eq!(second.warm_status(&l).unwrap(), PlanSource::Store);
    let x = second.submit(&l, b).unwrap().wait().unwrap();
    assert_eq!(x, expected, "persisted (possibly tuned) plan must solve identically");
    second.shutdown();
}

#[test]
fn canary_off_by_default_keeps_exposition_clean() {
    let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
    let l = generate::random_lower::<f64>(200, 3.0, 92);
    service.submit(&l, vec![1.0; 200]).unwrap().wait().unwrap();
    service.flush_tuning(); // no-op without the canary thread
    let snap = service.shutdown();
    assert_eq!(snap.tune_candidates_tried, 0);
    assert!(snap.tune_states.is_empty());
    assert!(!snap.render_prometheus().contains("recblock_tune_"));
}
