//! Allocation-regression guard for the kernel hot path.
//!
//! A counting [`GlobalAlloc`] wraps the system allocator; after one warm-up
//! solve (which spins up the global [`ExecPool`] and sizes every reusable
//! buffer), the steady-state `solve_into`/planned-SpMV calls must perform
//! **zero** heap allocations. Any future change that sneaks a `Vec` or a
//! `collect` back into the hot loop fails this test immediately.
//!
//! The sync-free solvers are deliberately out of scope: their per-solve
//! atomic state is allocated by design (see `TriSolver::solve_into`).
//!
//! Everything runs inside a single `#[test]` so no concurrently running
//! test can pollute the allocation counter.

use recblock_kernels::exec::{ExecPool, SolveWorkspace, SpmvPlan, TuneParams};
use recblock_kernels::spmv;
use recblock_kernels::sptrsm::{sptrsm_levelset_into, MultiVector};
use recblock_kernels::sptrsv::{parallel_diag_into, CusparseLikeSolver, LevelSetSolver};
use recblock_matrix::generate;
use recblock_matrix::levelset::LevelSets;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count heap allocations performed while `f` runs.
fn allocations_during(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_solves_do_not_allocate() {
    let pool = ExecPool::global();

    // Tiny thresholds force real parallel runs and multi-chunk plans, so
    // the zero-allocation claim covers the scheduled paths, not just the
    // fused-serial fast path.
    let tune = TuneParams { par_rows: 16, fuse_nnz: 256, chunk_nnz: 512, ..TuneParams::default() };

    let l = generate::layered::<f64>(3000, 40, 3.0, generate::LayerShape::Uniform, 901);
    let n = l.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
    let mut x = vec![0.0f64; n];

    // --- level-set solver -------------------------------------------------
    let levels = LevelSets::analyse(&l).unwrap();
    let ls = LevelSetSolver::with_tune(l.clone(), levels.clone(), tune);
    ls.solve_into(&b, &mut x).unwrap(); // warm-up: pool spin-up etc.
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            ls.solve_into(&b, &mut x).unwrap();
        }
    });
    assert_eq!(allocs, 0, "LevelSetSolver::solve_into allocated in steady state");

    // --- level-set solver, point-to-point schedule --------------------------
    // The task graph reuses epoch-stamped flags across solves; a multi-thread
    // pool is created up front so its spin-up is outside the counted window.
    let p2p_pool = ExecPool::new(2);
    let p2p_tune = TuneParams {
        schedule_mode: recblock_kernels::ScheduleMode::PointToPoint,
        p2p_chunk_nnz: 256,
        ..tune
    };
    let lp = LevelSetSolver::with_tune_threads(
        l.clone(),
        levels.clone(),
        p2p_tune,
        p2p_pool.concurrency(),
    );
    assert_eq!(lp.schedule_mode(), "p2p", "p2p schedule must have compiled");
    lp.solve_into_pooled(&b, &mut x, &p2p_pool).unwrap(); // warm-up
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            lp.solve_into_pooled(&b, &mut x, &p2p_pool).unwrap();
        }
    });
    assert_eq!(allocs, 0, "p2p LevelSetSolver::solve_into allocated in steady state");

    // --- cuSPARSE-like solver ---------------------------------------------
    let cu = CusparseLikeSolver::with_levels_tuned(l.clone(), levels.clone(), tune).unwrap();
    cu.solve_into(&b, &mut x).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            cu.solve_into(&b, &mut x).unwrap();
        }
    });
    assert_eq!(allocs, 0, "CusparseLikeSolver::solve_into allocated in steady state");

    // --- diagonal kernel --------------------------------------------------
    let d = generate::diagonal::<f64>(20_000, 902);
    let bd = vec![2.5f64; 20_000];
    let mut xd = vec![0.0f64; 20_000];
    parallel_diag_into(&d, &bd, &mut xd, pool).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            parallel_diag_into(&d, &bd, &mut xd, pool).unwrap();
        }
    });
    assert_eq!(allocs, 0, "parallel_diag_into allocated in steady state");

    // --- planned SpMV (CSR and DCSR) --------------------------------------
    let a = generate::random_lower::<f64>(2000, 6.0, 903);
    let plan = SpmvPlan::for_csr(&a, &tune);
    let xs = vec![1.0f64; 2000];
    let mut ys = vec![0.0f64; 2000];
    spmv::csr_update_planned(&a, &plan, &xs, &mut ys, pool).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            spmv::csr_update_planned(&a, &plan, &xs, &mut ys, pool).unwrap();
        }
    });
    assert_eq!(allocs, 0, "csr_update_planned allocated in steady state");

    let ad = recblock_matrix::Dcsr::from_csr(&a);
    let dplan = SpmvPlan::for_dcsr(&ad, &tune);
    spmv::dcsr_update_planned(&ad, &dplan, &xs, &mut ys, pool).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            spmv::dcsr_update_planned(&ad, &dplan, &xs, &mut ys, pool).unwrap();
        }
    });
    assert_eq!(allocs, 0, "dcsr_update_planned allocated in steady state");

    // --- multi-RHS level-set solve ----------------------------------------
    let k = 4;
    let data: Vec<f64> = (0..n * k).map(|i| ((i % 31) as f64) - 15.0).collect();
    let bm = MultiVector::from_columns(n, k, data).unwrap();
    let mut xm = MultiVector::zeros(n, k);
    sptrsm_levelset_into(&l, &levels, &bm, &mut xm, pool).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..5 {
            sptrsm_levelset_into(&l, &levels, &bm, &mut xm, pool).unwrap();
        }
    });
    assert_eq!(allocs, 0, "sptrsm_levelset_into allocated in steady state");

    // --- workspace reuse is allocation-free once warmed -------------------
    let mut ws = SolveWorkspace::<f64>::new();
    ws.pair(n);
    ws.wide_pair(n * k);
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            let (w, xw) = ws.pair(n);
            w[0] = 1.0;
            xw[0] = 2.0;
            let (ww, xx) = ws.wide_pair(n * k);
            ww[0] = 3.0;
            xx[0] = 4.0;
        }
    });
    assert_eq!(allocs, 0, "warmed SolveWorkspace allocated on reuse");

    // --- tracing *enabled* is still allocation-free ------------------------
    // Recording writes packed words into the pre-allocated ring; enabling
    // the trace must not reintroduce heap traffic on the hot path. (The
    // ring itself is allocated by `enable`, outside the counted window.)
    use recblock_kernels::trace::SolveTrace;
    SolveTrace::enable();
    ls.solve_into(&b, &mut x).unwrap(); // warm-up with tracing on
    let allocs = allocations_during(|| {
        for _ in 0..10 {
            ls.solve_into(&b, &mut x).unwrap();
            spmv::csr_update_planned(&a, &plan, &xs, &mut ys, pool).unwrap();
        }
    });
    SolveTrace::disable();
    let events = SolveTrace::drain();
    assert_eq!(allocs, 0, "solve with tracing enabled allocated in steady state");
    assert!(!events.is_empty(), "tracing was on, events should have been recorded");
}
