//! Symmetric permutations `B = P A Pᵀ`.
//!
//! The improved recursive block data structure (Section 3.3 of the paper)
//! reorders "the components, i.e., both rows and columns, of any triangular
//! matrix according to its level-set order". That is a symmetric permutation,
//! implemented here together with the vector scatter/gather needed to map
//! right-hand sides and solutions between orderings.

use crate::csr::Csr;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// A permutation of `0..n`, stored as `perm[new_index] = old_index`.
///
/// Applying it to a matrix produces `B[i][j] = A[perm[i]][perm[j]]`; applying
/// it to a vector produces `y[i] = x[perm[i]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>, // forward[new] = old
    inverse: Vec<usize>, // inverse[old] = new
}

impl Permutation {
    /// Build from `perm[new] = old`, validating bijectivity.
    pub fn from_forward(forward: Vec<usize>) -> Result<Self, MatrixError> {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (new, &old) in forward.iter().enumerate() {
            if old >= n {
                return Err(MatrixError::InvalidPermutation("index out of range"));
            }
            if inverse[old] != usize::MAX {
                return Err(MatrixError::InvalidPermutation("duplicate index"));
            }
            inverse[old] = new;
        }
        Ok(Permutation { forward, inverse })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation { forward: (0..n).collect(), inverse: (0..n).collect() }
    }

    /// Length of the permuted index range.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// `perm[new] = old` mapping.
    pub fn forward(&self) -> &[usize] {
        &self.forward
    }

    /// `inv[old] = new` mapping.
    pub fn inverse(&self) -> &[usize] {
        &self.inverse
    }

    /// Old index at new position `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.forward[new]
    }

    /// New position of old index `old`.
    pub fn new_of(&self, old: usize) -> usize {
        self.inverse[old]
    }

    /// Compose with another permutation applied *after* this one on the new
    /// index space: `result.old_of(i) = self.old_of(next.old_of(i))`.
    pub fn then(&self, next: &Permutation) -> Permutation {
        debug_assert_eq!(self.len(), next.len());
        let forward: Vec<usize> = next.forward.iter().map(|&mid| self.forward[mid]).collect();
        Permutation::from_forward(forward).expect("composition of bijections is a bijection")
    }

    /// Compose with a permutation of a sub-range `range` of the new index
    /// space (identity elsewhere). Used by the recursive reordering, which
    /// reorders the two triangular halves independently.
    pub fn then_local(&self, start: usize, local: &Permutation) -> Permutation {
        let mut forward = self.forward.clone();
        for (k, &l) in local.forward.iter().enumerate() {
            forward[start + k] = self.forward[start + l];
        }
        Permutation::from_forward(forward).expect("local composition preserves bijectivity")
    }

    /// Gather a vector into the new ordering: `out[new] = x[old]`.
    pub fn gather<S: Scalar>(&self, x: &[S]) -> Vec<S> {
        self.forward.iter().map(|&old| x[old]).collect()
    }

    /// Scatter a vector back to the old ordering: `out[old] = y[new]`.
    pub fn scatter<S: Scalar>(&self, y: &[S]) -> Vec<S> {
        let mut out = vec![S::ZERO; y.len()];
        for (new, &old) in self.forward.iter().enumerate() {
            out[old] = y[new];
        }
        out
    }
}

/// Symmetric permutation of a square CSR matrix: `B = P A Pᵀ`, i.e.
/// `B[new_i][new_j] = A[perm[new_i]][perm[new_j]]`, with rows re-sorted.
pub fn permute_symmetric<S: Scalar>(a: &Csr<S>, p: &Permutation) -> Result<Csr<S>, MatrixError> {
    if a.nrows() != a.ncols() {
        return Err(MatrixError::DimensionMismatch {
            what: "symmetric permutation (matrix must be square)",
            expected: a.nrows(),
            actual: a.ncols(),
        });
    }
    if p.len() != a.nrows() {
        return Err(MatrixError::DimensionMismatch {
            what: "permutation length",
            expected: a.nrows(),
            actual: p.len(),
        });
    }
    let n = a.nrows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::with_capacity(a.nnz());
    let mut vals = Vec::with_capacity(a.nnz());
    let mut scratch: Vec<(usize, S)> = Vec::new();
    for new_i in 0..n {
        let old_i = p.old_of(new_i);
        let (cols, v) = a.row(old_i);
        scratch.clear();
        scratch.extend(cols.iter().zip(v).map(|(&old_j, &val)| (p.new_of(old_j), val)));
        scratch.sort_unstable_by_key(|&(j, _)| j);
        for &(j, val) in &scratch {
            col_idx.push(j);
            vals.push(val);
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Csr::from_parts_unchecked(n, n, row_ptr, col_idx, vals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_permutation_is_noop() {
        let a = Csr::<f64>::identity(4);
        let p = Permutation::identity(4);
        assert_eq!(permute_symmetric(&a, &p).unwrap(), a);
    }

    #[test]
    fn from_forward_rejects_duplicates() {
        assert!(Permutation::from_forward(vec![0, 0, 1]).is_err());
    }

    #[test]
    fn from_forward_rejects_out_of_range() {
        assert!(Permutation::from_forward(vec![0, 5]).is_err());
    }

    #[test]
    fn forward_inverse_consistency() {
        let p = Permutation::from_forward(vec![2, 0, 1]).unwrap();
        for new in 0..3 {
            assert_eq!(p.new_of(p.old_of(new)), new);
        }
        for old in 0..3 {
            assert_eq!(p.old_of(p.new_of(old)), old);
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
        let x = vec![10.0, 11.0, 12.0, 13.0];
        let y = p.gather(&x);
        assert_eq!(y, vec![12.0, 10.0, 13.0, 11.0]);
        assert_eq!(p.scatter(&y), x);
    }

    #[test]
    fn symmetric_permutation_moves_entries() {
        // A = [[1,0],[5,2]]; swap rows/cols.
        let a = Csr::<f64>::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![1., 5., 2.]).unwrap();
        let p = Permutation::from_forward(vec![1, 0]).unwrap();
        let b = permute_symmetric(&a, &p).unwrap();
        // B[0][0] = A[1][1] = 2, B[0][1] = A[1][0] = 5, B[1][1] = A[0][0] = 1.
        assert_eq!(b.get(0, 0), Some(2.0));
        assert_eq!(b.get(0, 1), Some(5.0));
        assert_eq!(b.get(1, 1), Some(1.0));
        assert_eq!(b.get(1, 0), None);
    }

    #[test]
    fn permutation_composition() {
        let p = Permutation::from_forward(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_forward(vec![2, 1, 0]).unwrap();
        let r = p.then(&q);
        for i in 0..3 {
            assert_eq!(r.old_of(i), p.old_of(q.old_of(i)));
        }
    }

    #[test]
    fn local_composition_touches_only_range() {
        let p = Permutation::identity(5);
        let local = Permutation::from_forward(vec![1, 0]).unwrap();
        let r = p.then_local(2, &local);
        assert_eq!(r.forward(), &[0, 1, 3, 2, 4]);
    }

    #[test]
    fn permute_preserves_solution_correspondence() {
        // If B = P A Pᵀ and y solves B y = P b, then x = Pᵀ y solves A x = b.
        let a = Csr::<f64>::try_new(
            3,
            3,
            vec![0, 1, 3, 5],
            vec![0, 0, 1, 1, 2],
            vec![2., 1., 4., 3., 5.],
        )
        .unwrap();
        let p = Permutation::from_forward(vec![0, 2, 1]).unwrap();
        // Pick x, compute b = A x; then check B (P x) == P b.
        let x = vec![1.0, 2.0, 3.0];
        let b = a.spmv_dense(&x).unwrap();
        let bp = permute_symmetric(&a, &p).unwrap();
        let bx = bp.spmv_dense(&p.gather(&x)).unwrap();
        assert_eq!(bx, p.gather(&b));
    }
}
