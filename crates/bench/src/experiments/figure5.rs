//! Figure 5: best-kernel heatmaps for SpTRSV (`nnz/row × nlevels`) and SpMV
//! (`nnz/row × emptyratio`) sub-matrices.
//!
//! The paper measured 373,814 kernel timings and coloured each parameter
//! cell with its fastest kernel. Here the cost model prices each cell's
//! synthetic profile (and, in measured mode, the real CPU kernels run on
//! generated matrices) and the same aggregation picks the winner; the
//! derived thresholds are compared against the paper's (15/20/20000 for
//! SpTRSV, 12/50%/15% for SpMV).

use crate::harness::{scale_device, HarnessConfig};
use recblock::adaptive::tuning::BestKernelGrid;
use recblock::adaptive::TriKernel;
use recblock_gpu_sim::cost::{self, SpmvKind};
use recblock_gpu_sim::{DeviceSpec, SpmvProfile, TriProfile};

/// Rows of the synthetic sub-matrix profile each cell represents (a typical
/// leaf block of the scaled corpus).
const CELL_ROWS: usize = 4096;

/// Build the synthetic triangular profile for a cell.
fn tri_profile(nnz_per_row: f64, nlevels: usize) -> TriProfile {
    let nlevels = nlevels.clamp(1, CELL_ROWS);
    let rows = CELL_ROWS / nlevels;
    let per_level_rows = vec![rows.max(1); nlevels];
    let row_len = nnz_per_row.max(1.0);
    let level_nnz = vec![(rows as f64 * row_len) as usize; nlevels];
    let max_row = row_len.ceil() as usize;
    TriProfile::from_levels(
        per_level_rows,
        level_nnz,
        vec![max_row; nlevels],
        vec![max_row; nlevels],
    )
}

/// Build the synthetic square profile for a cell.
fn sq_profile(nnz_per_row: f64, empty_ratio: f64) -> SpmvProfile {
    let lanes = ((1.0 - empty_ratio) * CELL_ROWS as f64).round().max(1.0) as usize;
    let nnz = (nnz_per_row * CELL_ROWS as f64) as usize;
    let avg_lane = nnz as f64 / lanes as f64;
    SpmvProfile {
        nrows: CELL_ROWS,
        ncols: CELL_ROWS,
        nnz,
        lanes,
        max_row: (avg_lane * 2.0).ceil() as usize,
    }
}

/// Price one SpTRSV kernel for a cell (total time: per-level launches are a
/// real cost of the level-scheduled kernels inside the blocked execution).
fn tri_time(
    k: TriKernel,
    nnz_per_row: f64,
    nlevels: f64,
    dev: &DeviceSpec,
    cfg: &HarnessConfig,
) -> f64 {
    let p = tri_profile(nnz_per_row, nlevels as usize);
    let ws = p.n * 3 * 8;
    match k {
        TriKernel::CompletelyParallel => {
            if p.nlevels() <= 1 {
                cost::sptrsv_diag(p.n, 8, ws, dev, &cfg.params).total_s
            } else {
                f64::INFINITY // not applicable
            }
        }
        TriKernel::LevelSet => cost::sptrsv_levelset(&p, 8, ws, dev, &cfg.params).total_s,
        TriKernel::SyncFree => cost::sptrsv_syncfree(&p, 8, ws, dev, &cfg.params).total_s,
        TriKernel::CusparseLike => cost::sptrsv_cusparse(&p, 8, ws, dev, &cfg.params).total_s,
    }
}

/// Price one SpMV kernel for a cell.
fn sq_time(
    k: SpmvKind,
    nnz_per_row: f64,
    empty_ratio: f64,
    dev: &DeviceSpec,
    cfg: &HarnessConfig,
) -> f64 {
    let p = sq_profile(nnz_per_row, empty_ratio);
    let ws = p.nrows * 2 * 8;
    cost::spmv(k, &p, 8, ws, dev, &cfg.params).total_s
}

/// The SpTRSV selection grid under the cost model.
pub fn sptrsv_grid(cfg: &HarnessConfig) -> BestKernelGrid<TriKernel> {
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    let x = vec![1.0, 2.0, 4.0, 8.0, 15.0, 25.0, 50.0, 100.0];
    let y = vec![1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 2_000.0];
    BestKernelGrid::collect(
        x,
        y,
        &[
            TriKernel::CompletelyParallel,
            TriKernel::LevelSet,
            TriKernel::SyncFree,
            TriKernel::CusparseLike,
        ],
        |k, nnz_per_row, nlevels| tri_time(k, nnz_per_row, nlevels, &dev, cfg),
    )
}

/// The SpMV selection grid under the cost model.
pub fn spmv_grid(cfg: &HarnessConfig) -> BestKernelGrid<SpmvKind> {
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    let x = vec![1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 48.0, 96.0];
    let y = vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    BestKernelGrid::collect(x, y, &SpmvKind::ALL, |k, nnz_per_row, empty| {
        sq_time(k, nnz_per_row, empty, &dev, cfg)
    })
}

fn tri_code(k: TriKernel) -> char {
    match k {
        TriKernel::CompletelyParallel => 'P',
        TriKernel::LevelSet => 'L',
        TriKernel::SyncFree => 'S',
        TriKernel::CusparseLike => 'C',
    }
}

fn spmv_code(k: SpmvKind) -> char {
    match k {
        SpmvKind::ScalarCsr => 's',
        SpmvKind::VectorCsr => 'v',
        SpmvKind::ScalarDcsr => 'd',
        SpmvKind::VectorDcsr => 'D',
    }
}

/// Render both heatmaps and the threshold comparison.
pub fn run(cfg: &HarnessConfig) -> String {
    let mut out = String::new();
    out.push_str("== Figure 5(a): best SpTRSV kernel per (nnz/row, nlevels) cell ==\n");
    out.push_str("   codes: P completely-parallel, L level-set, S sync-free, C cuSPARSE-like\n");
    let g = sptrsv_grid(cfg);
    out.push_str("   nlevels \\ nnz/row: ");
    for x in &g.x_values {
        out.push_str(&format!("{x:>6.0}"));
    }
    out.push('\n');
    for (yi, y) in g.y_values.iter().enumerate() {
        out.push_str(&format!("   {y:>16.0}  "));
        for xi in 0..g.x_values.len() {
            out.push_str(&format!("{:>6}", tri_code(g.at(xi, yi))));
        }
        out.push('\n');
    }

    out.push_str("\n== Figure 5(b): best SpMV kernel per (nnz/row, emptyratio) cell ==\n");
    out.push_str("   codes: s scalar-CSR, v vector-CSR, d scalar-DCSR, D vector-DCSR\n");
    let g = spmv_grid(cfg);
    out.push_str("   empty \\ nnz/row:  ");
    for x in &g.x_values {
        out.push_str(&format!("{x:>6.0}"));
    }
    out.push('\n');
    for (yi, y) in g.y_values.iter().enumerate() {
        out.push_str(&format!("   {:>16.0}%  ", y * 100.0));
        for xi in 0..g.x_values.len() {
            out.push_str(&format!("{:>6}", spmv_code(g.at(xi, yi))));
        }
        out.push('\n');
    }

    out.push_str("\nPaper thresholds: SpTRSV level-set iff (nnz/row<=15 & nlevels<=20) or\n");
    out.push_str("(nnz/row=1 & nlevels<=100); cuSPARSE iff nlevels>20000; else sync-free.\n");
    out.push_str(
        "SpMV: scalar iff nnz/row<=12; DCSR iff emptyratio>50% (scalar) / >15% (vector).\n",
    );
    out.push_str(&threshold_summary(cfg));
    out
}

/// Derive the model's SpMV crossovers and compare to the paper's.
pub fn threshold_summary(cfg: &HarnessConfig) -> String {
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    // Scalar→vector crossover at emptyratio 0.
    let mut scalar_vector = None;
    for r in 1..200usize {
        let rf = r as f64;
        if sq_time(SpmvKind::VectorCsr, rf, 0.0, &dev, cfg)
            < sq_time(SpmvKind::ScalarCsr, rf, 0.0, &dev, cfg)
        {
            scalar_vector = Some(r);
            break;
        }
    }
    // CSR→DCSR crossover for scalar kernels at nnz/row 4.
    let mut scalar_dcsr = None;
    for e in 1..100usize {
        let ef = e as f64 / 100.0;
        if sq_time(SpmvKind::ScalarDcsr, 4.0, ef, &dev, cfg)
            < sq_time(SpmvKind::ScalarCsr, 4.0, ef, &dev, cfg)
        {
            scalar_dcsr = Some(e);
            break;
        }
    }
    // CSR→DCSR crossover for vector kernels at nnz/row 48.
    let mut vector_dcsr = None;
    for e in 1..100usize {
        let ef = e as f64 / 100.0;
        if sq_time(SpmvKind::VectorDcsr, 48.0, ef, &dev, cfg)
            < sq_time(SpmvKind::VectorCsr, 48.0, ef, &dev, cfg)
        {
            vector_dcsr = Some(e);
            break;
        }
    }
    format!(
        "Model-derived SpMV crossovers: scalar->vector at nnz/row ~{} (paper: 12),\n\
         scalar CSR->DCSR at emptyratio ~{}% (paper: 50%), vector CSR->DCSR at ~{}% (paper: 15%).\n",
        scalar_vector.map_or("none".into(), |v| v.to_string()),
        scalar_dcsr.map_or("none".into(), |v| v.to_string()),
        vector_dcsr.map_or("none".into(), |v| v.to_string()),
    )
}

/// Selection-agreement study over real corpus blocks: for every block the
/// blocked preprocessing produced (the analogue of the paper's 373,814
/// sub-matrix samples), compare the kernel Algorithm 7's thresholds chose
/// against the kernel the cost model prices fastest, and report agreement
/// rates. Values near 1.0 mean the published thresholds transfer to this
/// substrate; gaps localise where they do not.
pub fn corpus_agreement(cfg: &HarnessConfig, extra_shrink: usize, stride: usize) -> String {
    use recblock::blocked::BlockKindSummary;

    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    let mut tri_total = 0usize;
    let mut tri_agree = 0usize;
    let mut sq_total = 0usize;
    let mut sq_agree = 0usize;
    for entry in crate::corpus::corpus_scaled(extra_shrink).iter().step_by(stride.max(1)) {
        let l = entry.build::<f64>();
        let blocked = crate::harness::build_blocked(&l, &dev, cfg);
        for summary in blocked.block_summaries() {
            match summary.kind {
                BlockKindSummary::Tri { kernel, profile } => {
                    let ws = summary.rows.len() * 3 * 8;
                    let fastest = fastest_tri(&profile, ws, &dev, cfg);
                    tri_total += 1;
                    if fastest == kernel {
                        tri_agree += 1;
                    }
                }
                BlockKindSummary::Square { kernel, profile } => {
                    let ws = (summary.rows.len() + summary.cols.len()) * 2 * 8;
                    let fastest = SpmvKind::ALL
                        .into_iter()
                        .min_by(|&a, &b| {
                            let ta = cost::spmv(a, &profile, 8, ws, &dev, &cfg.params).total_s;
                            let tb = cost::spmv(b, &profile, 8, ws, &dev, &cfg.params).total_s;
                            ta.partial_cmp(&tb).expect("finite times")
                        })
                        .expect("non-empty kernel list");
                    sq_total += 1;
                    if fastest == kernel {
                        sq_agree += 1;
                    }
                }
            }
        }
    }
    format!(
        "== Figure 5 agreement: Algorithm 7 thresholds vs cost-model-fastest over corpus blocks ==\n\
         SpTRSV blocks: {}/{} agree ({:.0}%)\n\
         SpMV blocks:   {}/{} agree ({:.0}%)\n\
         (The paper derived its thresholds from measured data on its own substrate;\n\
         disagreements localise where those thresholds do not transfer to this model.)\n",
        tri_agree,
        tri_total,
        100.0 * tri_agree as f64 / tri_total.max(1) as f64,
        sq_agree,
        sq_total,
        100.0 * sq_agree as f64 / sq_total.max(1) as f64,
    )
}

/// Fastest SpTRSV kernel for a block profile under the cost model.
fn fastest_tri(
    profile: &TriProfile,
    ws: usize,
    dev: &DeviceSpec,
    cfg: &HarnessConfig,
) -> TriKernel {
    let mut best = TriKernel::SyncFree;
    let mut best_t = f64::INFINITY;
    let candidates = [
        TriKernel::CompletelyParallel,
        TriKernel::LevelSet,
        TriKernel::SyncFree,
        TriKernel::CusparseLike,
    ];
    for k in candidates {
        let t = match k {
            TriKernel::CompletelyParallel => {
                if profile.is_diagonal() {
                    cost::sptrsv_diag(profile.n, 8, ws, dev, &cfg.params).total_s
                } else {
                    continue;
                }
            }
            TriKernel::LevelSet => cost::sptrsv_levelset(profile, 8, ws, dev, &cfg.params).total_s,
            TriKernel::SyncFree => cost::sptrsv_syncfree(profile, 8, ws, dev, &cfg.params).total_s,
            TriKernel::CusparseLike => {
                cost::sptrsv_cusparse(profile, 8, ws, dev, &cfg.params).total_s
            }
        };
        if t < best_t {
            best_t = t;
            best = k;
        }
    }
    best
}

/// CPU-measured variant of the sweep: run the *real* kernels on generated
/// sub-matrices and pick the wall-clock winner per cell (the paper's actual
/// methodology, with this machine in place of the Titan RTX). Grids are
/// smaller than the model sweep because every cell costs real solves.
pub fn run_measured(cell_rows: usize, repeats: usize) -> String {
    use recblock::adaptive::tuning::BestKernelGrid;
    use recblock_kernels::{spmv, sptrsv};
    use recblock_matrix::generate;
    use std::time::Instant;

    let mut out = String::new();
    out.push_str(&format!(
        "== Figure 5 (CPU-measured): best kernels by wall clock, {cell_rows}-row cells ==\n"
    ));

    // SpTRSV grid over generated layered blocks.
    let tri_time = |k: TriKernel, nnz_per_row: f64, nlevels: f64| -> f64 {
        let nlevels = (nlevels as usize).clamp(1, cell_rows);
        let extra = (nnz_per_row - 1.0).max(0.0);
        let l = if nlevels == 1 {
            generate::diagonal::<f64>(cell_rows, 77)
        } else {
            generate::layered::<f64>(cell_rows, nlevels, extra, generate::LayerShape::Uniform, 77)
        };
        let b = vec![1.0f64; cell_rows];
        let run = |f: &dyn Fn()| -> f64 {
            let t0 = Instant::now();
            for _ in 0..repeats {
                f();
            }
            t0.elapsed().as_secs_f64() / repeats as f64
        };
        match k {
            TriKernel::CompletelyParallel => {
                if nlevels == 1 {
                    run(&|| {
                        sptrsv::parallel_diag(&l, &b).unwrap();
                    })
                } else {
                    f64::INFINITY
                }
            }
            TriKernel::LevelSet => {
                let s = sptrsv::LevelSetSolver::new(l.clone()).unwrap();
                run(&|| {
                    s.solve(&b).unwrap();
                })
            }
            TriKernel::SyncFree => {
                let s = sptrsv::SyncFreeSolver::new(&l).unwrap();
                run(&|| {
                    s.solve(&b).unwrap();
                })
            }
            TriKernel::CusparseLike => {
                let s = sptrsv::CusparseLikeSolver::analyse(l.clone()).unwrap();
                run(&|| {
                    s.solve(&b).unwrap();
                })
            }
        }
    };
    let g = BestKernelGrid::collect(
        vec![1.0, 4.0, 15.0, 50.0],
        vec![1.0, 10.0, 100.0, 1000.0],
        &[
            TriKernel::CompletelyParallel,
            TriKernel::LevelSet,
            TriKernel::SyncFree,
            TriKernel::CusparseLike,
        ],
        tri_time,
    );
    out.push_str("SpTRSV (nlevels rows, nnz/row cols):\n");
    for (yi, y) in g.y_values.iter().enumerate() {
        out.push_str(&format!("  {y:>8.0}: "));
        for xi in 0..g.x_values.len() {
            out.push(tri_code(g.at(xi, yi)));
            out.push(' ');
        }
        out.push('\n');
    }

    // SpMV grid over generated rectangular blocks.
    let sq_time = |k: SpmvKind, nnz_per_row: f64, empty: f64| -> f64 {
        let a = generate::rect_random::<f64>(cell_rows, cell_rows, nnz_per_row, empty, 0.0, 78);
        let d = a.to_dcsr();
        let x = vec![1.0f64; cell_rows];
        let mut y = vec![0.0f64; cell_rows];
        let t0 = Instant::now();
        for _ in 0..repeats {
            match k {
                SpmvKind::ScalarCsr => spmv::scalar_csr(&a, &x, &mut y).unwrap(),
                SpmvKind::VectorCsr => spmv::vector_csr(&a, &x, &mut y).unwrap(),
                SpmvKind::ScalarDcsr => spmv::scalar_dcsr(&d, &x, &mut y).unwrap(),
                SpmvKind::VectorDcsr => spmv::vector_dcsr(&d, &x, &mut y).unwrap(),
            }
        }
        t0.elapsed().as_secs_f64() / repeats as f64
    };
    let g = BestKernelGrid::collect(
        vec![2.0, 8.0, 24.0, 64.0],
        vec![0.0, 0.3, 0.6, 0.9],
        &SpmvKind::ALL,
        sq_time,
    );
    out.push_str("SpMV (emptyratio rows, nnz/row cols):\n");
    for (yi, y) in g.y_values.iter().enumerate() {
        out.push_str(&format!("  {:>7.0}%: ", y * 100.0));
        for xi in 0..g.x_values.len() {
            out.push(spmv_code(g.at(xi, yi)));
            out.push(' ');
        }
        out.push('\n');
    }
    out.push_str("\nNote: CPU regions differ from the GPU maps (different cost structure);\n");
    out.push_str("the blocked solver's selector keeps the paper's published thresholds.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HarnessConfig {
        HarnessConfig::default()
    }

    #[test]
    fn measured_mode_runs() {
        let report = run_measured(512, 1);
        assert!(report.contains("SpTRSV"));
        assert!(report.contains("SpMV"));
    }

    #[test]
    fn corpus_agreement_is_substantial() {
        let report = corpus_agreement(&cfg(), 24, 16);
        assert!(report.contains("agree"));
        // Extract the two percentages and require meaningful agreement —
        // the thresholds and the model come from independent sources.
        let pcts: Vec<f64> = report
            .split('(')
            .skip(1)
            .filter_map(|s| s.split('%').next().and_then(|p| p.trim().parse().ok()))
            .collect();
        assert!(pcts.len() >= 2, "report: {report}");
        assert!(pcts[0] > 50.0, "SpTRSV agreement only {}%", pcts[0]);
    }

    #[test]
    fn diagonal_cell_picks_completely_parallel() {
        let g = sptrsv_grid(&cfg());
        // nlevels = 1 row of the grid.
        for xi in 0..g.x_values.len() {
            assert_eq!(g.at(xi, 0), TriKernel::CompletelyParallel);
        }
    }

    #[test]
    fn spmv_grid_has_all_four_regions() {
        let g = spmv_grid(&cfg());
        for kind in SpmvKind::ALL {
            assert!(g.share(kind) > 0.0, "{:?} never wins", kind);
        }
    }

    #[test]
    fn scalar_wins_short_rows_vector_wins_long_rows() {
        let g = spmv_grid(&cfg());
        // At emptyratio 0: short rows → scalar, long rows → vector.
        assert_eq!(g.at(0, 0), SpmvKind::ScalarCsr);
        let last = g.x_values.len() - 1;
        assert_eq!(g.at(last, 0), SpmvKind::VectorCsr);
    }

    #[test]
    fn dcsr_wins_at_high_empty_ratio() {
        let g = spmv_grid(&cfg());
        let last_y = g.y_values.len() - 1; // emptyratio 0.9
        let k = g.at(0, last_y);
        assert!(
            matches!(k, SpmvKind::ScalarDcsr | SpmvKind::VectorDcsr),
            "expected DCSR at 90% empty, got {:?}",
            k
        );
    }

    #[test]
    fn report_renders() {
        let r = run(&cfg());
        assert!(r.contains("Figure 5(a)"));
        assert!(r.contains("Figure 5(b)"));
        assert!(r.contains("crossovers"));
    }
}
