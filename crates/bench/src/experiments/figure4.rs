//! Figure 4: execution time of the **SpMV part** of the three block
//! algorithms versus the number of triangular parts, on the `kkt_power` and
//! `FullChip` analogues (the third and fourth matrices of Table 4), Titan
//! RTX.

use crate::harness::{fmt_ms, scale_device, HarnessConfig, Table};
use crate::representatives::representatives;
use recblock::adaptive::Selector;
use recblock::column::ColumnBlockSolver;
use recblock::recursive::RecursiveBlockSolver;
use recblock::row::RowBlockSolver;
use recblock_gpu_sim::DeviceSpec;
use recblock_matrix::{Csr, Scalar};

/// Part counts swept (powers of two, as in the figure).
pub const PART_COUNTS: [usize; 8] = [4, 8, 16, 32, 64, 128, 256, 512];

/// Run at full harness scale.
pub fn run(cfg: &HarnessConfig) -> String {
    run_shrunk(cfg, 1, &PART_COUNTS)
}

/// Run with an extra shrink factor and custom part counts (tests).
pub fn run_shrunk(cfg: &HarnessConfig, extra: usize, parts: &[usize]) -> String {
    let reps = representatives();
    let mut out = String::new();
    out.push_str(
        "== Figure 4: simulated SpMV-part time (ms) of the three block algorithms, Titan RTX ==\n",
    );
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    for rep in [&reps[2], &reps[3]] {
        let l = rep.build_shrunk::<f64>(extra);
        out.push_str(&format!(
            "\n-- {} (analogue of {}): n = {}, nnz = {} --\n",
            rep.name,
            rep.original,
            l.nrows(),
            l.nnz()
        ));
        out.push_str(&sweep(&l, parts, &dev, cfg).render());
    }
    out.push_str("\nExpected shape: the recursive block SpMV time grows logarithmically with\n");
    out.push_str("the part count while column/row grow linearly, so recursive is lowest at\n");
    out.push_str("every nontrivial part count (paper Fig. 4).\n");
    out
}

fn sweep<S: Scalar>(l: &Csr<S>, parts: &[usize], dev: &DeviceSpec, cfg: &HarnessConfig) -> Table {
    let sel = Selector::default();
    let mut t = Table::new(["parts", "col (ms)", "row (ms)", "rec (ms)"]);
    for &p in parts {
        let depth = p.trailing_zeros() as usize;
        let col = ColumnBlockSolver::new(l, p, &sel, 4).expect("solvable");
        let row = RowBlockSolver::new(l, p, &sel, 4).expect("solvable");
        let rec = RecursiveBlockSolver::new(l, depth, &sel, 4).expect("solvable");
        let c = col.simulated_breakdown(dev, &cfg.params).spmv.total_s;
        let r = row.simulated_breakdown(dev, &cfg.params).spmv.total_s;
        let q = rec.simulated_breakdown(dev, &cfg.params).spmv.total_s;
        t.row([p.to_string(), fmt_ms(c), fmt_ms(r), fmt_ms(q)]);
    }
    t
}

/// The machine-checkable claim of Figure 4: at larger part counts the
/// recursive SpMV time is the smallest of the three. Returns `(col, row,
/// rec)` simulated SpMV seconds at the given part count.
pub fn spmv_times_at<S: Scalar>(l: &Csr<S>, parts: usize, cfg: &HarnessConfig) -> (f64, f64, f64) {
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    let sel = Selector::default();
    let depth = parts.trailing_zeros() as usize;
    let col = ColumnBlockSolver::new(l, parts, &sel, 4).expect("solvable");
    let row = RowBlockSolver::new(l, parts, &sel, 4).expect("solvable");
    let rec = RecursiveBlockSolver::new(l, depth, &sel, 4).expect("solvable");
    (
        col.simulated_breakdown(&dev, &cfg.params).spmv.total_s,
        row.simulated_breakdown(&dev, &cfg.params).spmv.total_s,
        rec.simulated_breakdown(&dev, &cfg.params).spmv.total_s,
    )
}

/// CPU-measured variant: wall-clock SpMV-part times of the three block
/// algorithms on this machine (the paper's Figure 4 methodology, CPU
/// substrate). Each cell averages `repeats` instrumented solves.
pub fn run_measured(extra: usize, parts: &[usize], repeats: usize) -> String {
    let reps = representatives();
    let mut out = String::new();
    out.push_str("== Figure 4 (CPU-measured): wall-clock SpMV-part time (ms) ==\n");
    let sel = Selector::default();
    for rep in [&reps[2], &reps[3]] {
        let l = rep.build_shrunk::<f64>(extra);
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        out.push_str(&format!("\n-- {} (n = {}, nnz = {}) --\n", rep.name, n, l.nnz()));
        let mut t = Table::new(["parts", "col (ms)", "row (ms)", "rec (ms)"]);
        for &p in parts {
            let depth = p.trailing_zeros() as usize;
            let col = ColumnBlockSolver::new(&l, p, &sel, 4).expect("solvable");
            let row = RowBlockSolver::new(&l, p, &sel, 4).expect("solvable");
            let rec = RecursiveBlockSolver::new(&l, depth, &sel, 4).expect("solvable");
            let avg = |f: &dyn Fn() -> f64| -> f64 {
                (0..repeats).map(|_| f()).sum::<f64>() / repeats as f64
            };
            let c = avg(&|| col.solve_instrumented(&b).expect("solve").1.spmv_s);
            let r = avg(&|| row.solve_instrumented(&b).expect("solve").1.spmv_s);
            let q = avg(&|| rec.solve_instrumented(&b).expect("solve").1.spmv_s);
            t.row([p.to_string(), fmt_ms(c), fmt_ms(r), fmt_ms(q)]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_spmv_wins_at_scale() {
        let cfg = HarnessConfig::default();
        let rep = &representatives()[2]; // kkt_power analogue
        let l = rep.build_shrunk::<f64>(2);
        let (col, row, rec) = spmv_times_at(&l, 256, &cfg);
        assert!(rec <= col, "rec {rec} vs col {col}");
        assert!(rec <= row, "rec {rec} vs row {row}");
    }

    #[test]
    fn measured_mode_runs() {
        let r = run_measured(16, &[4, 8], 1);
        assert!(r.contains("CPU-measured"));
        assert!(r.contains("kkt_power-s"));
    }

    #[test]
    fn report_renders() {
        let cfg = HarnessConfig::default();
        let r = run_shrunk(&cfg, 16, &[4, 16]);
        assert!(r.contains("kkt_power-s"));
        assert!(r.contains("FullChip-s"));
    }
}
