//! Emit `BENCH_sptrsv.json`: median ns/solve per kernel × matrix, plus the
//! legacy-versus-engine speedup of the execution engine on the solve hot
//! path (preprocessing excluded — the repeated-solve regime of Table 5).
//!
//! The corpus is level-heavy on purpose: hundreds of levels, each wide
//! enough that the legacy path dispatched it in parallel — allocating a
//! `Vec<(row, value)>`, collecting through rayon and scattering back, every
//! level, every solve. The engine's preplanned schedules write disjoint
//! `x` sub-slices in place instead, so that per-level overhead vanishes.
//! `chain_5k` is the opposite extreme: one row per level, where every
//! implementation sits on the same dependency-chain floor and the engine
//! can only match, not beat, the legacy serial loop.
//!
//! Run with `cargo run --release -p recblock-bench --bin bench_sptrsv`.
//!
//! `--gate <baseline.json>` instead re-measures the two cheapest corpus
//! matrices and exits nonzero if the recblock solve regressed more than 25%
//! against the committed baseline — the CI perf gate. Nothing is written.
//!
//! `--tune-smoke` is the closed-loop CI job: tune the cheap corpus subset
//! offline, persist any winner through the store, reload it, and exit
//! nonzero if the tuned plan solves worse than the untuned one beyond the
//! gate tolerance — the autotuner must never cost more than it saves.

use recblock::blocked::{BlockedOptions, BlockedTri, SolveWorkspace};
use recblock::explain::BlockDecisionKind;
use recblock::{tune_blocked, TuneOptions};
use recblock_kernels::sptrsv::{serial_csr, CusparseLikeSolver, LevelSetSolver};
use recblock_kernels::trace::{EventKind, SolveTrace};
use recblock_kernels::ExecPool;
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{generate, Csr};
use recblock_store::{PlanKey, PlanStore};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Regression factor versus the committed baseline that fails the gate.
const GATE_TOLERANCE: f64 = 1.25;

const WARMUP: usize = 3;
const SAMPLES: usize = 15;
const TARGET_SAMPLE: Duration = Duration::from_millis(2);

/// Median nanoseconds per call of `f`, measured over [`SAMPLES`] batches
/// sized so each batch runs at least [`TARGET_SAMPLE`].
fn median_ns(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_nanos().max(1);
    let per_sample = (TARGET_SAMPLE.as_nanos() / once).clamp(1, 10_000) as usize;
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            t.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn corpus() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        // 250 levels × 320 rows: deep AND wide — every level historically
        // took the parallel collect/scatter path.
        (
            "deep_layered_80k",
            generate::layered::<f64>(80_000, 250, 2.5, generate::LayerShape::Uniform, 4),
        ),
        // 100 levels × 300 rows: moderate depth, same regime.
        (
            "layered_30k_100",
            generate::layered::<f64>(30_000, 100, 3.0, generate::LayerShape::Uniform, 5),
        ),
        // Pure chain: one row per level, the fully serial extreme — parity
        // with the legacy loop is the best any schedule can do here.
        ("chain_5k", generate::chain::<f64>(5_000, 6)),
        // Shallow, wide control case.
        ("kkt_20k", generate::kkt_like::<f64>(20_000, 8_000, 4, 1)),
    ]
}

/// The subset of the corpus cheap enough to re-measure on every CI run.
fn gate_corpus() -> Vec<(&'static str, Csr<f64>)> {
    corpus().into_iter().filter(|(name, _)| *name == "chain_5k" || *name == "kkt_20k").collect()
}

struct MatrixReport {
    name: &'static str,
    n: usize,
    nnz: usize,
    nlevels: usize,
    /// Engine synchronisation scheme of the recblock plan's level-set
    /// blocks: `"p2p"`, `"level-sync"`, or `"none"` when no block runs an
    /// engine schedule.
    schedule_mode: &'static str,
    /// `true` when the autotuner found a candidate that beat the incumbent
    /// (the `recblock_tuned` row then measures the retuned plan).
    tuned: bool,
    /// Winning grid candidate, or `"incumbent"` when none cleared the
    /// hysteresis margin.
    tune_winner: &'static str,
    kernels: Vec<(&'static str, f64)>,
    /// `(stage label, events, total ns)` from one traced `recblock` solve,
    /// largest total first. Collected in a separate pass so the timing
    /// loops above run with tracing off.
    trace: Vec<(String, u64, u64)>,
}

/// Run one traced blocked solve and fold the event stream into per-stage
/// totals. `BlockTri` events are attributed to the kernel the selector
/// chose for that block (via the plan's [`SelectionReport`]), so the
/// breakdown reads `block_tri:level-set` rather than an opaque block index.
fn trace_blocked_solve(
    blocked: &BlockedTri<f64>,
    b: &[f64],
    x: &mut [f64],
    ws: &mut SolveWorkspace<f64>,
) -> Vec<(String, u64, u64)> {
    SolveTrace::enable();
    SolveTrace::reset();
    blocked.solve_into(b, x, ws).unwrap();
    let events = SolveTrace::drain();
    SolveTrace::disable();

    let report = blocked.selection_report();
    let mut agg: Vec<(String, u64, u64)> = Vec::new();
    for e in &events {
        let label = match e.kind {
            EventKind::BlockTri => {
                let kernel = report
                    .blocks
                    .iter()
                    .find(|d| d.index == e.id as usize)
                    .map(|d| d.kernel_name())
                    .unwrap_or("unknown");
                format!("block_tri:{kernel}")
            }
            EventKind::BlockSquare => {
                let kernel = report
                    .blocks
                    .iter()
                    .find(|d| d.index == e.id as usize)
                    .map(|d| d.kernel_name())
                    .unwrap_or("unknown");
                format!("block_square:{kernel}")
            }
            k => k.name().to_string(),
        };
        match agg.iter_mut().find(|(l, _, _)| *l == label) {
            Some(slot) => {
                slot.1 += 1;
                slot.2 += e.ns;
            }
            None => agg.push((label, 1, e.ns)),
        }
    }
    agg.sort_by_key(|a| std::cmp::Reverse(a.2));
    agg
}

/// Build the recblock plan the way `main` and the gate both measure it:
/// the production-default adaptive depth rule, exactly what `planctl` and
/// the serve tier produce for an untuned matrix.
fn build_blocked(l: &Csr<f64>) -> BlockedTri<f64> {
    BlockedTri::build(l, &BlockedOptions::default()).unwrap()
}

/// Dominant engine schedule mode across the plan's tri blocks.
fn plan_schedule_mode(blocked: &BlockedTri<f64>) -> &'static str {
    let mut mode = "none";
    for b in blocked.selection_report().tri_blocks() {
        if let BlockDecisionKind::Tri { schedule_mode: Some(m), .. } = &b.kind {
            if *m == "p2p" {
                return "p2p";
            }
            mode = m;
        }
    }
    mode
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Pull `kernels.<kernel>` for matrix `name` out of the committed baseline
/// JSON. The file is written by this binary, so the shape is known; a tiny
/// scan keeps the bench crate dependency-free.
fn baseline_ns(json: &str, name: &str, kernel: &str) -> Option<f64> {
    let entry = json.split("\"name\": ").find(|s| s.starts_with(&format!("\"{name}\"")))?;
    let entry = &entry[..entry.find('\n').unwrap_or(entry.len())];
    let key = format!("\"{kernel}\": ");
    let at = entry.find(&key)? + key.len();
    let num: String =
        entry[at..].chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    num.parse().ok()
}

/// CI perf gate: re-measure the cheap corpus subset and compare the
/// recblock solve against the committed baseline. Exits 1 on regression.
fn run_gate(baseline_path: &str) {
    let json = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let mut failed = false;
    for (name, l) in gate_corpus() {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
        let mut x = vec![0.0f64; n];
        let blocked = build_blocked(&l);
        let mut ws = SolveWorkspace::new();
        let measured = median_ns(|| blocked.solve_into(&b, black_box(&mut x), &mut ws).unwrap());
        let Some(base) = baseline_ns(&json, name, "recblock") else {
            println!("gate {name}: no recblock baseline in {baseline_path}, skipping");
            continue;
        };
        let ratio = measured / base;
        let verdict = if ratio > GATE_TOLERANCE { "FAIL" } else { "ok" };
        println!(
            "gate {name}: recblock {measured:.0} ns vs baseline {base:.0} ns \
             ({ratio:.2}x, limit {GATE_TOLERANCE:.2}x) {verdict}"
        );
        failed |= ratio > GATE_TOLERANCE;
    }
    if failed {
        println!("bench gate FAILED: recblock regressed more than {GATE_TOLERANCE:.2}x");
        std::process::exit(1);
    }
    println!("bench gate passed");
}

/// CI tuner smoke: tune the cheap corpus subset offline, persist the winner
/// through the store, reload it, and require the tuned plan to solve no
/// worse than the untuned one beyond [`GATE_TOLERANCE`]. Exits 1 when the
/// autotuner made anything slower — the closed loop must never regress.
fn run_tune_smoke() {
    let dir = std::env::temp_dir().join(format!("rb-tune-smoke-{}", std::process::id()));
    let store = PlanStore::open(&dir).expect("open smoke store");
    let mut failed = false;
    for (name, l) in gate_corpus() {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
        let mut x = vec![0.0f64; n];
        let blocked = build_blocked(&l);
        let mut ws = SolveWorkspace::new();
        let untuned = median_ns(|| blocked.solve_into(&b, black_box(&mut x), &mut ws).unwrap());

        let report = tune_blocked(&blocked, &b, &TuneOptions::default()).expect("tune");
        let key = PlanKey::of(&l);
        let loaded = match report.winner_tune() {
            Some(win) => {
                // Round-trip the winner through the store: what CI measures
                // is the plan a later process would actually load.
                let retuned = blocked.retuned(win).expect("retune");
                store.save(&retuned, &key, 0.0).expect("persist tuned plan");
                let back = store.load::<f64>(&key).expect("reload").expect("plan just saved");
                assert_eq!(back.blocked.tune(), win, "store must round-trip the tuned params");
                Some(back.blocked)
            }
            None => None,
        };
        let plan = loaded.as_ref().unwrap_or(&blocked);
        let tuned = median_ns(|| plan.solve_into(&b, black_box(&mut x), &mut ws).unwrap());

        let ratio = tuned / untuned;
        let verdict = if ratio > GATE_TOLERANCE { "FAIL" } else { "ok" };
        println!(
            "tune-smoke {name}: winner {} — untuned {untuned:.0} ns vs tuned {tuned:.0} ns \
             ({ratio:.2}x, limit {GATE_TOLERANCE:.2}x) {verdict}",
            report.winner_outcome().map_or("incumbent", |o| o.name),
        );
        failed |= ratio > GATE_TOLERANCE;
    }
    let _ = std::fs::remove_dir_all(&dir);
    if failed {
        println!("tuner smoke FAILED: a tuned plan regressed more than {GATE_TOLERANCE:.2}x");
        std::process::exit(1);
    }
    println!("tuner smoke passed");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--gate" {
        run_gate(&args[2]);
        return;
    }
    if args.len() == 2 && args[1] == "--tune-smoke" {
        run_tune_smoke();
        return;
    }
    let mut reports = Vec::new();
    for (name, l) in corpus() {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
        let mut x = vec![0.0f64; n];
        let levels = LevelSets::analyse(&l).unwrap();
        let nlevels = levels.nlevels();
        let mut kernels: Vec<(&'static str, f64)> = Vec::new();

        kernels.push((
            "serial",
            median_ns(|| {
                black_box(serial_csr(&l, &b).unwrap());
            }),
        ));

        let ls = LevelSetSolver::with_levels(l.clone(), levels.clone());
        kernels.push((
            "levelset_legacy",
            median_ns(|| ls.solve_into_unscheduled(&b, black_box(&mut x)).unwrap()),
        ));
        kernels
            .push(("levelset_engine", median_ns(|| ls.solve_into(&b, black_box(&mut x)).unwrap())));

        let cu = CusparseLikeSolver::with_levels(l.clone(), levels.clone()).unwrap();
        kernels.push((
            "cusparse_like_legacy",
            median_ns(|| {
                black_box(cu.solve_legacy(&b).unwrap());
            }),
        ));
        kernels.push((
            "cusparse_like_engine",
            median_ns(|| cu.solve_into(&b, black_box(&mut x)).unwrap()),
        ));

        let blocked = build_blocked(&l);
        let schedule_mode = plan_schedule_mode(&blocked);
        let mut ws = SolveWorkspace::new();
        kernels.push((
            "recblock",
            median_ns(|| blocked.solve_into(&b, black_box(&mut x), &mut ws).unwrap()),
        ));

        // Closed-loop pass: tune the plan offline and measure what a
        // post-`planctl tune` load would run. When no candidate clears the
        // hysteresis margin the incumbent is re-measured, so the row always
        // exists and the gate can compare tuned against untuned.
        let report = tune_blocked(&blocked, &b, &TuneOptions::default()).unwrap();
        let retuned = report.winner_tune().map(|w| blocked.retuned(w).unwrap());
        let measured = retuned.as_ref().unwrap_or(&blocked);
        kernels.push((
            "recblock_tuned",
            median_ns(|| measured.solve_into(&b, black_box(&mut x), &mut ws).unwrap()),
        ));
        let tuned = retuned.is_some();
        let tune_winner = report.winner_outcome().map_or("incumbent", |o| o.name);

        // Separate traced pass, after every timing loop: the medians above
        // are measured with tracing disabled.
        let trace = trace_blocked_solve(&blocked, &b, &mut x, &mut ws);

        let get = |k: &str| kernels.iter().find(|(kk, _)| *kk == k).unwrap().1;
        println!(
            "{name}: n={n} nnz={} levels={nlevels} schedule_mode={schedule_mode} \
             tuned={tuned} ({tune_winner})",
            l.nnz()
        );
        for (k, ns) in &kernels {
            println!("  {k:<22} {:>12.0} ns/solve", ns);
        }
        println!(
            "  speedup levelset legacy/engine:      {:.2}x",
            get("levelset_legacy") / get("levelset_engine")
        );
        println!(
            "  speedup cusparse_like legacy/engine: {:.2}x",
            get("cusparse_like_legacy") / get("cusparse_like_engine")
        );
        println!("  recblock stage breakdown (one traced solve):");
        for (label, count, ns) in &trace {
            println!("    {label:<28} {count:>5} events {ns:>12} ns");
        }

        reports.push(MatrixReport {
            name,
            n,
            nnz: l.nnz(),
            nlevels,
            schedule_mode,
            tuned,
            tune_winner,
            kernels,
            trace,
        });
    }

    let mut json = format!(
        "{{\n  \"unit\": \"ns_per_solve\",\n  \"threads\": {},\n  \"git_rev\": \"{}\",\n  \
         \"matrices\": [\n",
        ExecPool::global().concurrency(),
        git_rev()
    );
    for (mi, r) in reports.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"n\": {}, \"nnz\": {}, \"nlevels\": {}, \
             \"schedule_mode\": \"{}\", \"tuned\": {}, \"tune_winner\": \"{}\", \"kernels\": {{",
            r.name, r.n, r.nnz, r.nlevels, r.schedule_mode, r.tuned, r.tune_winner
        );
        for (ki, (k, ns)) in r.kernels.iter().enumerate() {
            let _ = write!(
                json,
                "\"{}\": {:.1}{}",
                k,
                ns,
                if ki + 1 < r.kernels.len() { ", " } else { "" }
            );
        }
        let _ = write!(json, "}}, \"trace\": {{");
        for (ti, (label, count, ns)) in r.trace.iter().enumerate() {
            let _ = write!(
                json,
                "\"{}\": {{\"events\": {}, \"ns\": {}}}{}",
                label,
                count,
                ns,
                if ti + 1 < r.trace.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(json, "}}}}{}", if mi + 1 < reports.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sptrsv.json", &json).expect("write BENCH_sptrsv.json");
    println!("\nwrote BENCH_sptrsv.json");
}
