//! Regenerate the paper's Tables 1–2 (traffic formulas and counters).
fn main() {
    print!("{}", recblock_bench::experiments::table1_2::run());
}
