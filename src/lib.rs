//! Workspace facade for the recblock suite: re-exports the public crates so
//! examples and integration tests have a single import root.

pub use recblock;
pub use recblock_bench as bench;
pub use recblock_gpu_sim as gpu_sim;
pub use recblock_kernels as kernels;
pub use recblock_matrix as matrix;
