//! Vendored, API-compatible subset of `criterion`.
//!
//! The workspace builds offline, so the real `criterion` cannot be fetched.
//! This shim keeps the authoring surface the benches use —
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `Bencher::iter_batched`, [`BenchmarkId`] and [`BatchSize`] — and performs
//! a straightforward warm-up + timed-sampling measurement, reporting
//! min/mean/max per benchmark to stdout.
//!
//! Not implemented: HTML reports, statistical regression analysis, plotting
//! and baseline comparison. Numbers printed here are honest wall-clock
//! samples, good enough for the relative comparisons the suite makes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for compatibility;
/// the shim always times routine-only, per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Identifier `function_name/parameter` for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// New id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// New id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

// Lets `bench_function(impl Into<String>, ..)` accept a `BenchmarkId` too,
// matching upstream's `impl IntoBenchmarkId` flexibility.
impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

/// Per-iteration timing hook handed to benchmark closures.
pub struct Bencher {
    /// Accumulated `(total_elapsed, iterations)` samples.
    samples: Vec<(Duration, u64)>,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Bencher {
    fn new(measurement_time: Duration, warm_up_time: Duration, sample_size: usize) -> Self {
        Bencher { samples: Vec::new(), measurement_time, warm_up_time, sample_size }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters.max(1) as u32)
            .unwrap_or(Duration::from_nanos(1));
        // Aim for `sample_size` samples within the measurement budget.
        let iters_per_sample = (self.measurement_time.as_nanos()
            / (per_iter.as_nanos().max(1) * self.sample_size.max(1) as u128))
            .clamp(1, u64::MAX as u128) as u64;
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((t0.elapsed(), iters_per_sample));
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut measured = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter =
            measured.checked_div(warm_iters.max(1) as u32).unwrap_or(Duration::from_nanos(1));
        let total_iters = (self.measurement_time.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, u64::MAX as u128) as u64;
        let iters = total_iters.min(10 * self.sample_size.max(1) as u64).max(1);
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push((t0.elapsed(), 1));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let per_iter: Vec<f64> =
            self.samples.iter().map(|(d, n)| d.as_secs_f64() / (*n).max(1) as f64).collect();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!("{id:<50} time: [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set the target sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.measurement_time, self.warm_up_time, self.sample_size);
        f(&mut b);
        b.report(&id);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        let mut b = Bencher::new(self.measurement_time, self.warm_up_time, self.sample_size);
        f(&mut b, input);
        b.report(&id);
        self
    }

    /// Finish the group (reporting is immediate; this is a no-op marker).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(Duration::from_secs(1), Duration::from_millis(300), 10);
        f(&mut b);
        b.report(id);
        self
    }
}

/// Declare a benchmark group function (compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3);
        g.bench_function("iter", |b| b.iter(|| black_box(3u64).pow(7)));
        g.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &x| {
            b.iter_batched(|| vec![x; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        let id = BenchmarkId::new("f", 8);
        assert_eq!(id.id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
