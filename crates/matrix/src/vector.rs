//! Dense-vector helpers: norms, residuals and solution verification.

use crate::csr::Csr;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// Infinity norm `max |v_i|` (as `f64` for reporting).
pub fn norm_inf<S: Scalar>(v: &[S]) -> f64 {
    v.iter().map(|x| x.abs().to_f64()).fold(0.0, f64::max)
}

/// Euclidean norm (as `f64`).
pub fn norm2<S: Scalar>(v: &[S]) -> f64 {
    v.iter().map(|x| x.to_f64() * x.to_f64()).sum::<f64>().sqrt()
}

/// `a - b` elementwise.
pub fn sub<S: Scalar>(a: &[S], b: &[S]) -> Vec<S> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Relative infinity-norm residual `||A x − b||∞ / max(||b||∞, 1)`.
pub fn residual_inf<S: Scalar>(a: &Csr<S>, x: &[S], b: &[S]) -> Result<f64, MatrixError> {
    let ax = a.spmv_dense(x)?;
    if ax.len() != b.len() {
        return Err(MatrixError::DimensionMismatch {
            what: "residual rhs",
            expected: ax.len(),
            actual: b.len(),
        });
    }
    let num = norm_inf(&sub(&ax, b));
    Ok(num / norm_inf(b).max(1.0))
}

/// `true` if a candidate solution solves `A x = b` to the given relative
/// tolerance — the acceptance test every solver in the suite is held to.
pub fn verify_solution<S: Scalar>(
    a: &Csr<S>,
    x: &[S],
    b: &[S],
    tol: f64,
) -> Result<bool, MatrixError> {
    Ok(residual_inf(a, x, b)? <= tol)
}

/// Maximum relative component-wise difference between two vectors, used to
/// compare a solver's output against the serial reference.
pub fn max_rel_diff<S: Scalar>(x: &[S], y: &[S]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let denom = a.abs().to_f64().max(b.abs().to_f64()).max(1.0);
            (a.to_f64() - b.to_f64()).abs() / denom
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let v = [3.0f64, -4.0];
        assert_eq!(norm_inf(&v), 4.0);
        assert!((norm2(&v) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Csr::<f64>::identity(3);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(residual_inf(&a, &x, &x).unwrap(), 0.0);
        assert!(verify_solution(&a, &x, &x, 1e-14).unwrap());
    }

    #[test]
    fn residual_detects_wrong_solution() {
        let a = Csr::<f64>::identity(2);
        let x = [1.0, 1.0];
        let b = [1.0, 2.0];
        assert!(residual_inf(&a, &x, &b).unwrap() > 0.4);
        assert!(!verify_solution(&a, &x, &b, 1e-6).unwrap());
    }

    #[test]
    fn max_rel_diff_behaviour() {
        assert_eq!(max_rel_diff::<f64>(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(max_rel_diff::<f64>(&[1.0], &[1.1]) > 0.09);
        // Small absolute values use an absolute floor of 1.
        assert!(max_rel_diff::<f64>(&[0.0], &[1e-9]) < 1e-8);
    }

    #[test]
    fn residual_rejects_dim_mismatch() {
        let a = Csr::<f64>::identity(2);
        assert!(residual_inf(&a, &[1.0, 1.0], &[1.0]).is_err());
    }
}
