//! Shared harness utilities: scaled devices, method evaluation, table
//! printing.

use crate::corpus::SCALE;
use recblock::adaptive::Selector;
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock::partition::depth_for;
use recblock_gpu_sim::cost;
use recblock_gpu_sim::{CostParams, DeviceSpec, KernelTime, TriProfile};
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, Scalar};

/// Configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Cost-model constants.
    pub params: CostParams,
    /// The two evaluation devices, L2-scaled to match the corpus scale.
    pub devices: Vec<DeviceSpec>,
    /// Row/nnz scale factor of the corpus relative to the paper's dataset.
    pub scale: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            params: CostParams { data_scale: SCALE as f64, ..CostParams::default() },
            devices: vec![
                scale_device(&DeviceSpec::titan_x_pascal(), SCALE),
                scale_device(&DeviceSpec::titan_rtx_turing(), SCALE),
            ],
            scale: SCALE,
        }
    }
}

/// Shrink a device's cache to match a corpus scaled down by `factor`,
/// preserving the working-set/L2 boundary that drives the locality effects.
/// Compute resources stay untouched — the corpus keeps its matrices large
/// enough to saturate them.
pub fn scale_device(dev: &DeviceSpec, factor: usize) -> DeviceSpec {
    DeviceSpec { l2_cache_bytes: (dev.l2_cache_bytes / factor.max(1)).max(16 << 10), ..dev.clone() }
}

/// The recursion-stop rule scaled with the corpus: the paper's
/// `20 × cores` rows divided by the corpus scale.
pub fn scaled_min_block_rows(dev: &DeviceSpec, scale: usize) -> usize {
    (dev.min_block_rows() / scale.max(1)).max(512)
}

/// Depth rule the harness uses for a matrix of `n` rows on `dev`.
pub fn harness_depth(n: usize, dev: &DeviceSpec, scale: usize) -> usize {
    depth_for(n, scaled_min_block_rows(dev, scale))
}

/// Predicted timings of the three compared methods on one matrix/device.
#[derive(Debug, Clone)]
pub struct MethodEval {
    /// cuSPARSE-v2-like solve.
    pub cusparse: KernelTime,
    /// Sync-free solve.
    pub syncfree: KernelTime,
    /// Recursive block solve.
    pub block: KernelTime,
    /// cuSPARSE analysis time (s).
    pub cusparse_prep: f64,
    /// Sync-free preprocessing (s).
    pub syncfree_prep: f64,
    /// Block-algorithm preprocessing (s).
    pub block_prep: f64,
    /// Nonzeros (for GFlops conversion).
    pub nnz: usize,
}

impl MethodEval {
    /// GFlops of the three methods `(cusparse, syncfree, block)`.
    pub fn gflops(&self) -> (f64, f64, f64) {
        (
            cost::gflops(self.nnz, self.cusparse.total_s),
            cost::gflops(self.nnz, self.syncfree.total_s),
            cost::gflops(self.nnz, self.block.total_s),
        )
    }

    /// Speedups of the block algorithm `(vs cusparse, vs syncfree)`.
    pub fn speedups(&self) -> (f64, f64) {
        (self.cusparse.total_s / self.block.total_s, self.syncfree.total_s / self.block.total_s)
    }
}

/// Evaluate the three methods on `l` with the cost model (builds the
/// blocked structure internally; use [`evaluate_methods_with`] to reuse
/// one build across devices/precisions).
pub fn evaluate_methods<S: Scalar>(
    l: &Csr<S>,
    dev: &DeviceSpec,
    cfg: &HarnessConfig,
) -> MethodEval {
    let levels = LevelSets::analyse_unchecked(l);
    let profile = TriProfile::analyse(l, &levels);
    let blocked = build_blocked(l, dev, cfg);
    evaluate_methods_with(&profile, &blocked, l.nrows(), S::BYTES, dev, cfg)
}

/// Evaluate the three methods from a precomputed profile and blocked
/// structure, at an explicit element width.
pub fn evaluate_methods_with<S: Scalar>(
    profile: &TriProfile,
    blocked: &BlockedTri<S>,
    n: usize,
    scalar_bytes: usize,
    dev: &DeviceSpec,
    cfg: &HarnessConfig,
) -> MethodEval {
    // Whole-matrix solvers touch x and b across the full index range.
    let ws = n * 2 * scalar_bytes;
    let cusparse = cost::sptrsv_cusparse(profile, scalar_bytes, ws, dev, &cfg.params);
    let syncfree = cost::sptrsv_syncfree(profile, scalar_bytes, ws, dev, &cfg.params);
    let block = blocked.simulated_breakdown_bytes(scalar_bytes, dev, &cfg.params).total();
    MethodEval {
        cusparse,
        syncfree,
        block,
        cusparse_prep: cost::cusparse_analysis_time(profile, &cfg.params),
        syncfree_prep: cost::syncfree_prep_time(profile, &cfg.params),
        block_prep: blocked.simulated_prep_time(&cfg.params),
        // GFlops are reported for the full-scale structure the model priced.
        nnz: (profile.nnz as f64 * cfg.params.data_scale) as usize,
    }
}

/// Build the blocked structure the way the harness evaluates it.
pub fn build_blocked<S: Scalar>(
    l: &Csr<S>,
    dev: &DeviceSpec,
    cfg: &HarnessConfig,
) -> BlockedTri<S> {
    // Level counts of chain-like matrices scale with n, so the corpus scale
    // divides the paper's 20000-level cuSPARSE threshold the same way it
    // divides the recursion-stop row count.
    let thresholds = recblock::adaptive::Thresholds {
        cusparse_levels: (20_000 / cfg.scale.max(1)).max(100),
        ..recblock::adaptive::Thresholds::default()
    };
    let opts = BlockedOptions {
        depth: DepthRule::Fixed(harness_depth(l.nrows(), dev, cfg.scale)),
        reorder: true,
        selector: Selector::Adaptive(thresholds),
        allow_dcsr: true,
        syncfree_threads: 4,
        tune: recblock_kernels::exec::TuneParams::default(),
    };
    BlockedTri::build(l, &opts).expect("corpus matrices are solvable")
}

/// Minimal fixed-width table printer for harness output.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<I: IntoIterator<Item = T>, T: Into<String>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row<I: IntoIterator<Item = T>, T: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                let pad = widths[c] - cells[c].len();
                line.push_str(&" ".repeat(pad));
                line.push_str(&cells[c]);
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format seconds as milliseconds with sensible precision.
pub fn fmt_ms(s: f64) -> String {
    if s >= 1.0 {
        format!("{:.1}", s * 1e3)
    } else if s >= 1e-3 {
        format!("{:.2}", s * 1e3)
    } else {
        format!("{:.4}", s * 1e3)
    }
}

/// Format a GFlops value.
pub fn fmt_gf(g: f64) -> String {
    if g >= 10.0 {
        format!("{g:.1}")
    } else if g >= 0.1 {
        format!("{g:.2}")
    } else {
        format!("{g:.4}")
    }
}

/// Format a speedup factor.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

/// Quartile summary used by the Figure 7 box plots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute box-plot statistics of a sample (panics on empty input).
pub fn box_stats(values: &[f64]) -> BoxStats {
    assert!(!values.is_empty());
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let q = |p: f64| -> f64 {
        let idx = p * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            v[lo]
        } else {
            v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
        }
    };
    BoxStats { min: v[0], q1: q(0.25), median: q(0.5), q3: q(0.75), max: *v.last().unwrap() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;

    #[test]
    fn scaled_device_shrinks_l2_only() {
        let base = DeviceSpec::titan_rtx_turing();
        let s = scale_device(&base, 50);
        assert_eq!(s.cuda_cores, base.cuda_cores);
        assert!(s.l2_cache_bytes < base.l2_cache_bytes);
        assert!(s.l2_cache_bytes >= 16 << 10);
    }

    #[test]
    fn harness_depth_splits_large_matrices() {
        let dev = DeviceSpec::titan_rtx_turing();
        assert!(harness_depth(100_000, &dev, SCALE) >= 4);
        assert_eq!(harness_depth(1_000, &dev, SCALE), 0);
    }

    #[test]
    fn evaluate_methods_produces_ordering_on_kkt() {
        // High-parallelism matrix: the block algorithm should win.
        let l = generate::kkt_like::<f64>(60_000, 30_000, 8, 1);
        let cfg = HarnessConfig::default();
        let eval = evaluate_methods(&l, &cfg.devices[1], &cfg);
        let (s_cu, s_sf) = eval.speedups();
        assert!(s_cu > 1.0, "block should beat cusparse, got {s_cu}");
        assert!(s_sf > 1.0, "block should beat syncfree, got {s_sf}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "22"]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn box_stats_quartiles() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(0.0123), "12.30");
        assert_eq!(fmt_x(2.0), "2.00x");
        assert_eq!(fmt_gf(45.75), "45.8");
    }
}
