//! Discrete-event warp-level micro-simulator for the sync-free dataflow.
//!
//! The analytic model in [`crate::cost`] charges the sync-free kernel a
//! critical path of `Σ_levels (dep_latency + fanout_chunks · chunk)`. This
//! module validates that abstraction: it *executes* the sync-free schedule —
//! one warp per component, static cyclic assignment over a finite warp pool,
//! dependency-driven start times — as a discrete-event simulation and
//! reports the exact makespan. Tests check the analytic critical path is a
//! lower bound and becomes tight as the warp pool grows.
//!
//! The simulation exploits the same property as the CPU port: components are
//! processed per-warp in ascending order, so a single ascending pass
//! computes every start/finish time exactly.

use crate::device::DeviceSpec;
use recblock_matrix::{Csr, Scalar};

/// Timing constants of the simulated warp machine (nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct MicrosimParams {
    /// Fixed cost of one component's solve (busy-wait exit, divide, store).
    pub solve_ns: f64,
    /// Cost per 32-element chunk of the component's notification column.
    pub chunk_ns: f64,
    /// Latency from a producer's finish to a consumer observing it.
    pub notify_ns: f64,
}

impl Default for MicrosimParams {
    fn default() -> Self {
        MicrosimParams { solve_ns: 400.0, chunk_ns: 250.0, notify_ns: 600.0 }
    }
}

/// Result of one simulated sync-free execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrosimReport {
    /// Simulated end-to-end kernel time (ns).
    pub makespan_ns: f64,
    /// Dependency-only lower bound (infinite warps) (ns).
    pub critical_path_ns: f64,
    /// Warps simulated.
    pub warps: usize,
    /// Average warp busy fraction.
    pub occupancy: f64,
}

/// Simulate the sync-free solve of lower-triangular `l` on `warps` warps.
pub fn simulate_syncfree<S: Scalar>(
    l: &Csr<S>,
    warps: usize,
    params: &MicrosimParams,
) -> MicrosimReport {
    assert!(warps > 0, "need at least one warp");
    let n = l.nrows();
    let csc = l.to_csc();
    // Processing time of component i: solve + notification of its column.
    let proc = |i: usize| -> f64 {
        let fanout = csc.col_nnz(i).saturating_sub(1);
        params.solve_ns + (fanout as f64 / 32.0).ceil() * params.chunk_ns
    };

    let mut ready = vec![0.0f64; n]; // earliest time deps are satisfied
    let mut finish = vec![0.0f64; n];
    let mut warp_avail = vec![0.0f64; warps.min(n.max(1))];
    let nwarps = warp_avail.len();
    let mut busy = 0.0f64;
    let mut crit_finish = vec![0.0f64; n]; // infinite-warp finish times

    for i in 0..n {
        let w = i % nwarps;
        let start = warp_avail[w].max(ready[i]);
        let f = start + proc(i);
        finish[i] = f;
        warp_avail[w] = f;
        busy += proc(i);
        let crit = ready_crit(&crit_finish, l, i, params) + proc(i);
        crit_finish[i] = crit;
        // Propagate readiness to dependents down column i.
        let (rows, _) = csc.col(i);
        for &r in rows.iter().skip(1) {
            let t = f + params.notify_ns;
            if t > ready[r] {
                ready[r] = t;
            }
        }
    }
    let makespan = finish.iter().copied().fold(0.0, f64::max);
    let critical = crit_finish.iter().copied().fold(0.0, f64::max);
    let occupancy = if makespan > 0.0 { busy / (makespan * nwarps as f64) } else { 1.0 };
    MicrosimReport { makespan_ns: makespan, critical_path_ns: critical, warps: nwarps, occupancy }
}

/// Infinite-warp readiness of component `i` (dependencies only).
fn ready_crit<S: Scalar>(
    crit_finish: &[f64],
    l: &Csr<S>,
    i: usize,
    params: &MicrosimParams,
) -> f64 {
    let (cols, _) = l.row(i);
    let mut r = 0.0f64;
    for &j in cols {
        if j < i {
            let t = crit_finish[j] + params.notify_ns;
            if t > r {
                r = t;
            }
        }
    }
    r
}

/// Convenience: simulate with one warp per resident-warp slot of a device.
pub fn simulate_on_device<S: Scalar>(l: &Csr<S>, dev: &DeviceSpec) -> MicrosimReport {
    simulate_syncfree(l, dev.max_resident_warps(), &MicrosimParams::default())
}

/// Timing constants of the simulated level-scheduled machine.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelsimParams {
    /// Kernel launch overhead per level (ns).
    pub launch_ns: f64,
    /// Fixed solve cost per component (ns).
    pub solve_ns: f64,
    /// Cost per 32-element chunk of a row traversal (ns).
    pub chunk_ns: f64,
}

impl Default for LevelsimParams {
    fn default() -> Self {
        LevelsimParams { launch_ns: 4_000.0, solve_ns: 400.0, chunk_ns: 250.0 }
    }
}

/// Result of one simulated level-scheduled execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelsimReport {
    /// Simulated end-to-end time (ns).
    pub makespan_ns: f64,
    /// Portion spent in kernel launches (ns).
    pub launch_ns: f64,
    /// Levels executed.
    pub levels: usize,
}

/// Simulate a level-scheduled solve (one launch per level, a warp per
/// component, waves when a level exceeds the warp pool). Each level's time
/// is the number of scheduling waves times the slowest row in the level —
/// the barrier semantics the analytic `sptrsv_levelset` formula abstracts.
pub fn simulate_levelset<S: Scalar>(
    l: &Csr<S>,
    warps: usize,
    params: &LevelsimParams,
) -> LevelsimReport {
    assert!(warps > 0, "need at least one warp");
    let levels = recblock_matrix::levelset::LevelSets::analyse_unchecked(l);
    let mut makespan = 0.0f64;
    let mut launch_total = 0.0f64;
    for lv in 0..levels.nlevels() {
        let items = levels.level_items(lv);
        launch_total += params.launch_ns;
        makespan += params.launch_ns;
        // Rows are dispatched in waves of `warps`; each wave lasts as long
        // as its slowest row.
        for wave in items.chunks(warps) {
            let slowest = wave
                .iter()
                .map(|&i| {
                    let r = l.row_nnz(i);
                    params.solve_ns + (r as f64 / 32.0).ceil() * params.chunk_ns
                })
                .fold(0.0f64, f64::max);
            makespan += slowest;
        }
    }
    LevelsimReport { makespan_ns: makespan, launch_ns: launch_total, levels: levels.nlevels() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;

    fn params() -> MicrosimParams {
        MicrosimParams::default()
    }

    #[test]
    fn diagonal_matrix_is_embarrassingly_parallel() {
        let l = generate::diagonal::<f64>(1024, 1);
        let r = simulate_syncfree(&l, 1024, &params());
        // Every component independent: makespan = one solve.
        assert_eq!(r.makespan_ns, params().solve_ns);
        assert_eq!(r.critical_path_ns, params().solve_ns);
    }

    #[test]
    fn chain_is_fully_serial() {
        let n = 200;
        let l = generate::chain::<f64>(n, 2);
        let r = simulate_syncfree(&l, 64, &params());
        // n solves + (n-1) notifications + per-component fanout chunk.
        let per = params().solve_ns + params().chunk_ns;
        let expected = n as f64 * per - params().chunk_ns + (n - 1) as f64 * params().notify_ns;
        assert!((r.makespan_ns - expected).abs() < 1.0, "{} vs {}", r.makespan_ns, expected);
        // More warps cannot help a chain.
        let r1 = simulate_syncfree(&l, 1, &params());
        assert!((r.makespan_ns - r1.makespan_ns).abs() < 1.0);
    }

    #[test]
    fn critical_path_is_lower_bound() {
        for warps in [1usize, 4, 32, 256] {
            let l = generate::random_lower::<f64>(600, 4.0, 3);
            let r = simulate_syncfree(&l, warps, &params());
            assert!(
                r.makespan_ns >= r.critical_path_ns - 1e-6,
                "warps={warps}: makespan {} < crit {}",
                r.makespan_ns,
                r.critical_path_ns
            );
        }
    }

    #[test]
    fn makespan_monotone_in_warps() {
        let l = generate::grid2d::<f64>(30, 30, 4);
        let mut prev = f64::INFINITY;
        for warps in [1usize, 2, 8, 64, 1024] {
            let r = simulate_syncfree(&l, warps, &params());
            assert!(r.makespan_ns <= prev + 1e-6, "warps={warps} regressed");
            prev = r.makespan_ns;
        }
    }

    #[test]
    fn converges_to_critical_path_with_many_warps() {
        let l = generate::layered::<f64>(800, 10, 2.0, generate::LayerShape::Uniform, 5);
        let r = simulate_syncfree(&l, 4096, &params());
        // With far more warps than rows the schedule is dependency-bound.
        assert!(
            r.makespan_ns <= r.critical_path_ns * 1.05,
            "makespan {} crit {}",
            r.makespan_ns,
            r.critical_path_ns
        );
    }

    #[test]
    fn hub_fanout_appears_on_critical_path() {
        // One hub with huge fan-out: its notification chunks serialize.
        // Compare against a two-level KKT structure of the same size and
        // depth whose fan-outs are uniform and tiny.
        let few_hubs = generate::hub_power_law::<f64>(2000, 2, 1, 0, 6);
        let uniform = generate::kkt_like::<f64>(2000, 667, 1, 6);
        let rh = simulate_syncfree(&few_hubs, 4096, &params());
        let rs = simulate_syncfree(&uniform, 4096, &params());
        assert!(
            rh.critical_path_ns > 2.0 * rs.critical_path_ns,
            "hub {} vs uniform {}",
            rh.critical_path_ns,
            rs.critical_path_ns
        );
    }

    #[test]
    fn occupancy_bounded() {
        let l = generate::random_lower::<f64>(500, 3.0, 7);
        let r = simulate_syncfree(&l, 8, &params());
        assert!(r.occupancy > 0.0 && r.occupancy <= 1.0);
    }

    #[test]
    fn levelset_sim_chain_is_launch_bound() {
        let n = 100;
        let l = generate::chain::<f64>(n, 10);
        let r = simulate_levelset(&l, 64, &LevelsimParams::default());
        assert_eq!(r.levels, n);
        // One launch per level dominates a chain.
        assert!(r.launch_ns / r.makespan_ns > 0.8, "launch share {}", r.launch_ns / r.makespan_ns);
    }

    #[test]
    fn levelset_sim_diagonal_single_launch() {
        let l = generate::diagonal::<f64>(256, 11);
        let p = LevelsimParams::default();
        let r = simulate_levelset(&l, 256, &p);
        assert_eq!(r.levels, 1);
        assert!((r.makespan_ns - (p.launch_ns + p.solve_ns + p.chunk_ns)).abs() < 1.0);
    }

    #[test]
    fn levelset_sim_waves_scale_with_warp_pool() {
        let l = generate::kkt_like::<f64>(2048, 1024, 2, 12);
        let p = LevelsimParams::default();
        let small = simulate_levelset(&l, 64, &p);
        let big = simulate_levelset(&l, 4096, &p);
        assert!(small.makespan_ns > big.makespan_ns);
        assert_eq!(small.levels, big.levels);
    }

    #[test]
    fn syncfree_beats_levelset_on_many_small_levels() {
        // The structural reason the paper's mid-range selects sync-free:
        // level launches dominate when levels are many and small.
        let l = generate::layered::<f64>(1000, 100, 1.0, generate::LayerShape::Uniform, 13);
        let lv = simulate_levelset(&l, 2304, &LevelsimParams::default());
        let sf = simulate_syncfree(&l, 2304, &params());
        assert!(sf.makespan_ns < lv.makespan_ns, "sf {} vs lv {}", sf.makespan_ns, lv.makespan_ns);
    }

    #[test]
    fn device_helper_runs() {
        let l = generate::banded::<f64>(300, 3, 0.5, 8);
        let r = simulate_on_device(&l, &DeviceSpec::titan_rtx_turing());
        assert!(r.makespan_ns > 0.0);
        assert_eq!(r.warps, DeviceSpec::titan_rtx_turing().max_resident_warps().min(300));
    }
}
