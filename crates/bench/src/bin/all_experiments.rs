//! Run every table/figure harness in paper order.
//!
//! Optional integer argument: corpus shrink factor (default 1 = full scale).
use recblock_bench::{experiments, HarnessConfig};
fn main() {
    let shrink: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let cfg = HarnessConfig::default();
    print!("{}", experiments::table1_2::run());
    println!();
    print!("{}", experiments::table3::run());
    println!();
    print!("{}", experiments::figure4::run(&cfg));
    println!();
    print!("{}", experiments::figure5::run(&cfg));
    println!();
    let f6 = experiments::figure6::evaluate(&cfg, shrink);
    print!("{}", experiments::figure6::render(f6));
    println!();
    let f7 = experiments::figure7::evaluate(&cfg, shrink);
    print!("{}", experiments::figure7::render(&f7));
    println!();
    let t4 = experiments::table4::evaluate(&cfg, shrink);
    print!("{}", experiments::table4::render(&t4));
    println!();
    let t5 = experiments::table5::evaluate(&cfg, shrink, 4);
    print!("{}", experiments::table5::render(&t5));
    println!();
    let ab = experiments::ablation::evaluate(&cfg, shrink);
    print!("{}", experiments::ablation::render(&ab));
}
