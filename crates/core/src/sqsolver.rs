//! Per-block SpMV solver: a square/rectangular block bound to its selected
//! kernel and storage format.

use crate::adaptive::Selector;
use recblock_gpu_sim::cost::{self, SpmvKind};
use recblock_gpu_sim::{CostParams, DeviceSpec, KernelTime, SpmvProfile};
use recblock_kernels::exec::{ExecPool, SpmvPlan, TuneParams};
use recblock_kernels::spmv;
use recblock_matrix::{Csr, Dcsr, MatrixError, Scalar};

/// Storage actually materialised for the block. Public so a persistence
/// layer can serialize the exact arrays and rebuild the solver without
/// re-running selection ([`SqSolver::from_parts`]).
#[derive(Debug, Clone)]
pub enum SqStorage<S> {
    /// Compressed sparse rows.
    Csr(Csr<S>),
    /// Doubly-compressed sparse rows (empty rows elided).
    Dcsr(Dcsr<S>),
}

impl<S: Scalar> SqStorage<S> {
    fn nrows(&self) -> usize {
        match self {
            SqStorage::Csr(a) => a.nrows(),
            SqStorage::Dcsr(a) => a.nrows(),
        }
    }

    fn ncols(&self) -> usize {
        match self {
            SqStorage::Csr(a) => a.ncols(),
            SqStorage::Dcsr(a) => a.ncols(),
        }
    }

    fn nnz(&self) -> usize {
        match self {
            SqStorage::Csr(a) => a.nnz(),
            SqStorage::Dcsr(a) => a.nnz(),
        }
    }
}

/// A square/rectangular block ready to apply `y ← y − A·x` with the kernel
/// the adaptive selection chose for it.
#[derive(Debug, Clone)]
pub struct SqSolver<S> {
    kind: SpmvKind,
    storage: SqStorage<S>,
    profile: SpmvProfile,
    plan: SpmvPlan,
}

impl<S: Scalar> SqSolver<S> {
    /// Profile the block, select its kernel, and materialise the matching
    /// storage. With `allow_dcsr = false` (ablation) DCSR selections are
    /// downgraded to their CSR counterparts.
    pub fn build(a: Csr<S>, selector: &Selector, allow_dcsr: bool) -> Self {
        Self::build_tuned(a, selector, allow_dcsr, TuneParams::default())
    }

    /// As [`SqSolver::build`] with explicit engine tuning: the apply-side
    /// chunk plan ([`SpmvPlan`]) is computed under `tune.chunk_nnz`.
    pub fn build_tuned(a: Csr<S>, selector: &Selector, allow_dcsr: bool, tune: TuneParams) -> Self {
        let profile = SpmvProfile::analyse(&a);
        let mut kind = selector.spmv(profile.nnz_per_row(), profile.empty_ratio());
        // Load-imbalance guard (small extension over the paper's Algorithm 7,
        // which keys on averages only): a block whose longest row dwarfs the
        // average would strand one thread of the scalar kernel for the whole
        // launch; give such blocks a warp per row instead.
        let avg = profile.nnz_per_row().max(1.0);
        if profile.max_row as f64 > 32.0 * avg {
            kind = match kind {
                SpmvKind::ScalarCsr => SpmvKind::VectorCsr,
                SpmvKind::ScalarDcsr => SpmvKind::VectorDcsr,
                k => k,
            };
        }
        if !allow_dcsr {
            kind = match kind {
                SpmvKind::ScalarDcsr => SpmvKind::ScalarCsr,
                SpmvKind::VectorDcsr => SpmvKind::VectorCsr,
                k => k,
            };
        }
        let storage = match kind {
            SpmvKind::ScalarDcsr | SpmvKind::VectorDcsr => SqStorage::Dcsr(a.to_dcsr()),
            _ => SqStorage::Csr(a),
        };
        let plan = Self::plan_for(&storage, &tune);
        SqSolver { kind, storage, profile, plan }
    }

    fn plan_for(storage: &SqStorage<S>, tune: &TuneParams) -> SpmvPlan {
        match storage {
            SqStorage::Csr(a) => SpmvPlan::for_csr(a, tune),
            SqStorage::Dcsr(a) => SpmvPlan::for_dcsr(a, tune),
        }
    }

    /// Rebuild a solver from persisted parts, skipping profiling and
    /// selection. Validates that the storage format matches the kernel and
    /// that the profile's dimensions match the stored arrays.
    pub fn from_parts(
        kind: SpmvKind,
        storage: SqStorage<S>,
        profile: SpmvProfile,
    ) -> Result<Self, MatrixError> {
        Self::from_parts_tuned(kind, storage, profile, TuneParams::default())
    }

    /// As [`SqSolver::from_parts`] with explicit engine tuning (the plan
    /// store passes the tuning the plan was persisted with). The chunk plan
    /// is re-derived from the storage — it is cheap (`O(rows)`) and
    /// deterministic, so identical tuning reproduces the identical plan.
    pub fn from_parts_tuned(
        kind: SpmvKind,
        storage: SqStorage<S>,
        profile: SpmvProfile,
        tune: TuneParams,
    ) -> Result<Self, MatrixError> {
        let dcsr_kind = matches!(kind, SpmvKind::ScalarDcsr | SpmvKind::VectorDcsr);
        let dcsr_storage = matches!(storage, SqStorage::Dcsr(_));
        if dcsr_kind != dcsr_storage {
            return Err(MatrixError::DimensionMismatch {
                what: "sq solver storage format vs kernel",
                expected: dcsr_kind as usize,
                actual: dcsr_storage as usize,
            });
        }
        if profile.nrows != storage.nrows()
            || profile.ncols != storage.ncols()
            || profile.nnz != storage.nnz()
        {
            return Err(MatrixError::DimensionMismatch {
                what: "sq solver profile vs storage",
                expected: storage.nrows(),
                actual: profile.nrows,
            });
        }
        let plan = Self::plan_for(&storage, &tune);
        Ok(SqSolver { kind, storage, profile, plan })
    }

    /// Re-plan this block under different engine tuning, keeping the
    /// selected kernel and materialised storage. Only the apply-side chunk
    /// plan depends on [`TuneParams`], and it is cheap (`O(rows)`) and
    /// deterministic — the autotuner uses this to try candidate tunings
    /// without re-running profiling or selection.
    pub fn retuned(&self, tune: TuneParams) -> Self {
        SqSolver {
            kind: self.kind,
            storage: self.storage.clone(),
            profile: self.profile,
            plan: Self::plan_for(&self.storage, &tune),
        }
    }

    /// The materialised storage (the persistence surface matching
    /// [`SqSolver::from_parts`]).
    pub fn storage(&self) -> &SqStorage<S> {
        &self.storage
    }

    /// The selected kernel.
    pub fn kind(&self) -> SpmvKind {
        self.kind
    }

    /// The block's structural profile.
    pub fn profile(&self) -> &SpmvProfile {
        &self.profile
    }

    /// Rows of the block.
    pub fn nrows(&self) -> usize {
        self.profile.nrows
    }

    /// Columns of the block.
    pub fn ncols(&self) -> usize {
        self.profile.ncols
    }

    /// The preplanned nnz-balanced chunk boundaries used by
    /// [`SqSolver::apply`].
    pub fn plan(&self) -> &SpmvPlan {
        &self.plan
    }

    /// Apply `y ← y − A·x` over the selected storage.
    ///
    /// Executes the preplanned chunk schedule on the global [`ExecPool`] —
    /// zero heap allocations, and bit-identical across kernel kinds because
    /// every row reduces through the shared deterministic reduction. The
    /// scalar/vector kind distinction keeps driving storage selection and
    /// the GPU cost model; on the CPU engine both execute the same planned
    /// schedule.
    pub fn apply(&self, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
        let pool = ExecPool::global();
        match &self.storage {
            SqStorage::Csr(a) => spmv::csr_update_planned(a, &self.plan, x, y, pool),
            SqStorage::Dcsr(a) => spmv::dcsr_update_planned(a, &self.plan, x, y, pool),
        }
    }

    /// Predicted GPU time of this block's SpMV under the cost model.
    pub fn simulated_time(
        &self,
        working_set: usize,
        dev: &DeviceSpec,
        params: &CostParams,
    ) -> KernelTime {
        self.simulated_time_bytes(S::BYTES, working_set, dev, params)
    }

    /// As [`SqSolver::simulated_time`] with an explicit element width.
    pub fn simulated_time_bytes(
        &self,
        scalar_bytes: usize,
        working_set: usize,
        dev: &DeviceSpec,
        params: &CostParams,
    ) -> KernelTime {
        cost::spmv(self.kind, &self.profile, scalar_bytes, working_set, dev, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    #[test]
    fn build_selects_and_applies() {
        // Dense-ish short rows, no empties → scalar-CSR.
        let a = generate::rect_random::<f64>(300, 200, 4.0, 0.0, 0.0, 1);
        let expect: Vec<f64> = a.spmv_dense(&vec![1.0; 200]).unwrap();
        let s = SqSolver::build(a, &Selector::default(), true);
        assert_eq!(s.kind(), SpmvKind::ScalarCsr);
        let mut y = vec![0.0; 300];
        s.apply(&vec![1.0; 200], &mut y).unwrap();
        let neg: Vec<f64> = expect.iter().map(|v| -v).collect();
        assert!(max_rel_diff(&y, &neg) < 1e-12);
    }

    #[test]
    fn hypersparse_block_goes_dcsr() {
        let a = generate::rect_random::<f64>(1000, 1000, 2.0, 0.8, 0.0, 2);
        let s = SqSolver::build(a, &Selector::default(), true);
        assert_eq!(s.kind(), SpmvKind::ScalarDcsr);
    }

    #[test]
    fn dcsr_downgrade_when_disallowed() {
        let a = generate::rect_random::<f64>(1000, 1000, 2.0, 0.8, 0.0, 3);
        let s = SqSolver::build(a, &Selector::default(), false);
        assert_eq!(s.kind(), SpmvKind::ScalarCsr);
    }

    #[test]
    fn long_rows_go_vector() {
        let a = generate::rect_random::<f64>(400, 4000, 40.0, 0.0, 0.0, 4);
        let s = SqSolver::build(a, &Selector::default(), true);
        assert_eq!(s.kind(), SpmvKind::VectorCsr);
    }

    #[test]
    fn all_kernels_apply_identically() {
        let a = generate::rect_random::<f64>(500, 400, 6.0, 0.3, 1.0, 5);
        let x: Vec<f64> = (0..400).map(|i| (i as f64 * 0.01).sin()).collect();
        let mut reference = vec![0.0; 500];
        spmv::scalar_csr(&a, &x, &mut reference).unwrap();
        for kind in SpmvKind::ALL {
            let s = SqSolver::build(
                a.clone(),
                &Selector::Fixed(crate::adaptive::TriKernel::SyncFree, kind),
                true,
            );
            assert_eq!(s.kind(), kind);
            let mut y = vec![0.0; 500];
            s.apply(&x, &mut y).unwrap();
            assert!(max_rel_diff(&y, &reference) < 1e-12, "{:?}", kind);
        }
    }

    #[test]
    fn from_parts_roundtrips_and_validates() {
        let a = generate::rect_random::<f64>(300, 250, 4.0, 0.2, 0.0, 7);
        let built = SqSolver::build(a, &Selector::default(), true);
        let rebuilt =
            SqSolver::from_parts(built.kind(), built.storage().clone(), *built.profile()).unwrap();
        let x: Vec<f64> = (0..250).map(|i| (i as f64 * 0.03).cos()).collect();
        let (mut y1, mut y2) = (vec![0.0; 300], vec![0.0; 300]);
        built.apply(&x, &mut y1).unwrap();
        rebuilt.apply(&x, &mut y2).unwrap();
        assert_eq!(y1, y2);
        // Mismatched storage format for the kernel is rejected.
        assert!(SqSolver::from_parts(
            SpmvKind::ScalarDcsr,
            built.storage().clone(),
            *built.profile()
        )
        .is_err());
        // Mismatched profile dimensions are rejected.
        let bad = SpmvProfile { nrows: 1, ..*built.profile() };
        assert!(SqSolver::from_parts(built.kind(), built.storage().clone(), bad).is_err());
    }

    #[test]
    fn simulated_time_positive() {
        let a = generate::rect_random::<f64>(200, 200, 3.0, 0.2, 0.0, 6);
        let s = SqSolver::build(a, &Selector::default(), true);
        let t = s.simulated_time(1 << 20, &DeviceSpec::titan_rtx_turing(), &CostParams::default());
        assert!(t.total_s > 0.0);
        assert_eq!(t.launches, 1);
    }
}
