//! `recblock-serve`: a concurrent SpTRSV solve service.
//!
//! The paper's central economics: preprocessing a triangular factor costs
//! about 9× one solve (Table 5), so the win comes from *reusing* the
//! preprocessed plan across many right-hand sides. This crate turns that
//! observation into a serving layer in front of
//! [`recblock::RecBlockSolver`]:
//!
//! * a sharded, capacity-bounded, single-flight **plan cache** keyed by
//!   matrix fingerprint ([`cache::PlanCache`]) — each distinct matrix is
//!   preprocessed once, no matter how many threads submit it concurrently;
//! * a **batching engine** ([`batch`]) that coalesces queued right-hand
//!   sides for the same matrix into one fused multi-RHS solve
//!   ([`recblock::RecBlockSolver::solve_multi`]), amortising matrix traffic
//!   the same way the paper's multi-RHS runs do;
//! * **bounded queues with backpressure** — [`SolveService::try_submit`]
//!   fails fast with [`ServeError::Overloaded`] instead of letting latency
//!   grow without bound, and [`SolveService::shutdown`] drains everything
//!   already accepted;
//! * built-in lock-free **metrics** ([`MetricsSnapshot`]): cache hit/miss,
//!   preprocessing time saved, batch-size and latency histograms, queue
//!   depth.
//!
//! ```
//! use recblock_serve::{ServeConfig, SolveService};
//! use recblock_matrix::generate;
//!
//! let service = SolveService::<f64>::new(ServeConfig::default().with_workers(2));
//! let l = generate::random_lower::<f64>(500, 4.0, 7);
//! let b = vec![1.0; 500];
//! let handle = service.submit(&l, b).unwrap();
//! let x = handle.wait().unwrap();
//! assert_eq!(x.len(), 500);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod config;
pub mod error;
pub mod metrics;
mod worker;

pub use cache::{PlanCache, PlanKey};
pub use config::ServeConfig;
pub use error::ServeError;
pub use metrics::{Metrics, MetricsSnapshot};

use batch::{BatchQueue, Pending};
use recblock::RecBlockSolver;
use recblock_matrix::{Csr, Scalar};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// The receiving end of one submitted solve.
///
/// Dropping the handle abandons the result (the solve still runs; the
/// answer is discarded).
#[derive(Debug)]
pub struct SolveHandle<S> {
    rx: mpsc::Receiver<Result<Vec<S>, ServeError>>,
}

impl<S> SolveHandle<S> {
    /// Block until the solution (or error) arrives.
    pub fn wait(self) -> Result<Vec<S>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Cancelled))
    }

    /// Non-blocking poll: `None` while the solve is still in flight.
    pub fn try_wait(&self) -> Option<Result<Vec<S>, ServeError>> {
        self.rx.try_recv().ok()
    }
}

/// Multithreaded solve service. See the crate docs for the architecture.
pub struct SolveService<S: Scalar> {
    config: ServeConfig,
    cache: Arc<PlanCache<S>>,
    queue: Arc<BatchQueue<S>>,
    metrics: Arc<Metrics>,
    workers: Vec<JoinHandle<()>>,
}

impl<S: Scalar> SolveService<S> {
    /// Start the service: allocates the cache and queue, spawns
    /// `config.workers` solver threads.
    pub fn new(config: ServeConfig) -> Self {
        let metrics = Arc::new(Metrics::default());
        let cache =
            Arc::new(PlanCache::new(config.cache_capacity, config.cache_shards, metrics.clone()));
        let queue = Arc::new(BatchQueue::new(config.queue_capacity, metrics.clone()));
        let workers = (0..config.workers)
            .map(|i| {
                let (q, m, mb) = (queue.clone(), metrics.clone(), config.max_batch);
                std::thread::Builder::new()
                    .name(format!("recblock-serve-{i}"))
                    .spawn(move || worker::run(q, m, mb))
                    .expect("spawn solve worker")
            })
            .collect();
        SolveService { config, cache, queue, metrics, workers }
    }

    /// Submit a solve, failing fast with [`ServeError::Overloaded`] when
    /// the queue is at capacity. The plan is looked up (or built, on the
    /// calling thread, single-flight) before the request is enqueued.
    pub fn try_submit(&self, l: &Csr<S>, rhs: Vec<S>) -> Result<SolveHandle<S>, ServeError> {
        self.submit_inner(l, rhs, false)
    }

    /// Submit a solve, blocking while the queue is full (still fails with
    /// [`ServeError::ShuttingDown`] once shutdown begins).
    pub fn submit(&self, l: &Csr<S>, rhs: Vec<S>) -> Result<SolveHandle<S>, ServeError> {
        self.submit_inner(l, rhs, true)
    }

    fn submit_inner(
        &self,
        l: &Csr<S>,
        rhs: Vec<S>,
        block: bool,
    ) -> Result<SolveHandle<S>, ServeError> {
        if rhs.len() != l.nrows() {
            return Err(ServeError::BadRequest { expected: l.nrows(), actual: rhs.len() });
        }
        let key = PlanKey::of(l);
        let plan =
            self.cache.get_or_build(key, || RecBlockSolver::new(l, self.config.solver.clone()))?;
        let (tx, rx) = mpsc::channel();
        let req = Pending { rhs, tx, submitted: Instant::now() };
        if block {
            self.queue.push_blocking(key, &plan, req)?;
        } else {
            self.queue.try_push(key, &plan, req)?;
        }
        Ok(SolveHandle { rx })
    }

    /// Preprocess (or fetch the cached plan for) `l` without solving —
    /// useful to warm the cache before traffic arrives.
    pub fn warm(&self, l: &Csr<S>) -> Result<(), ServeError> {
        let key = PlanKey::of(l);
        self.cache
            .get_or_build(key, || RecBlockSolver::new(l, self.config.solver.clone()))
            .map(|_| ())
    }

    /// Point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Plans currently resident in the cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Queued right-hand sides right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful shutdown: new submits are refused, workers drain every
    /// accepted request, threads are joined. Returns the final metrics.
    /// With zero workers, whatever is still queued is cancelled (each
    /// requester receives [`ServeError::ShuttingDown`]).
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.metrics.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.queue.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Only reachable work left is the zero-worker case.
        self.queue.cancel_remaining();
    }
}

impl<S: Scalar> Drop for SolveService<S> {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    #[test]
    fn single_request_round_trip() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        let l = generate::random_lower::<f64>(400, 4.0, 80);
        let b: Vec<f64> = (0..400).map(|i| (i as f64 * 0.02).sin()).collect();
        let x = service.submit(&l, b.clone()).unwrap().wait().unwrap();
        assert!(max_rel_diff(&x, &serial_csr(&l, &b).unwrap()) < 1e-10);
        let stats = service.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.plan_builds, 1);
    }

    #[test]
    fn bad_rhs_length_is_rejected_up_front() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        let l = generate::diagonal::<f64>(10, 81);
        let err = service.submit(&l, vec![1.0; 9]).unwrap_err();
        assert_eq!(err, ServeError::BadRequest { expected: 10, actual: 9 });
    }

    #[test]
    fn backpressure_overloaded_instead_of_blocking() {
        // Zero workers: nothing drains, so the bound is hit deterministically.
        let service =
            SolveService::<f64>::new(ServeConfig::default().with_workers(0).with_queue_capacity(2));
        let l = generate::diagonal::<f64>(8, 82);
        let _h1 = service.try_submit(&l, vec![1.0; 8]).unwrap();
        let _h2 = service.try_submit(&l, vec![2.0; 8]).unwrap();
        let err = service.try_submit(&l, vec![3.0; 8]).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { depth: 2, capacity: 2 }));
        let stats = service.metrics();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queue_depth, 2);
    }

    #[test]
    fn zero_worker_shutdown_cancels_pending() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(0));
        let l = generate::diagonal::<f64>(8, 83);
        let h = service.try_submit(&l, vec![1.0; 8]).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(h.wait().unwrap_err(), ServeError::ShuttingDown);
    }

    #[test]
    fn warm_then_submit_hits_cache() {
        let service = SolveService::<f64>::new(ServeConfig::default().with_workers(1));
        let l = generate::random_lower::<f64>(300, 3.0, 84);
        service.warm(&l).unwrap();
        let x = service.submit(&l, vec![1.0; 300]).unwrap().wait().unwrap();
        assert_eq!(x.len(), 300);
        let stats = service.shutdown();
        assert_eq!(stats.plan_builds, 1);
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.preprocess_time_saved > std::time::Duration::ZERO);
    }
}
