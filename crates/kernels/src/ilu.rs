//! ILU(0) factorisation — the substrate for the paper's headline use case.
//!
//! The paper's introduction motivates SpTRSV with "incomplete factorization
//! preconditioners": each iteration of a preconditioned Krylov solver applies
//! `M⁻¹ = (LU)⁻¹` via one lower and one upper triangular solve. This module
//! provides the zero-fill incomplete LU factorisation (IKJ variant) so the
//! examples can run that exact scenario end-to-end.

use recblock_matrix::{Csr, MatrixError, Scalar};

/// An ILU(0) factorisation `A ≈ L·U` with `L` unit-lower-triangular (unit
/// diagonal stored explicitly so the SpTRSV kernels apply unchanged) and `U`
/// upper triangular with the pivots on its diagonal.
#[derive(Debug, Clone)]
pub struct Ilu0<S> {
    /// Unit lower triangular factor (diagonal stored, all ones).
    pub l: Csr<S>,
    /// Upper triangular factor (diagonal first in each row).
    pub u: Csr<S>,
}

/// Compute the ILU(0) factorisation of a square CSR matrix whose diagonal is
/// fully stored and nonzero. Fill-in is restricted to the sparsity pattern
/// of `A` (that is the "0" in ILU(0)).
pub fn ilu0<S: Scalar>(a: &Csr<S>) -> Result<Ilu0<S>, MatrixError> {
    let n = a.nrows();
    if n != a.ncols() {
        return Err(MatrixError::DimensionMismatch {
            what: "ilu0 (square matrix required)",
            expected: n,
            actual: a.ncols(),
        });
    }
    // Factor in place on a copy of the values.
    let row_ptr = a.row_ptr().to_vec();
    let col_idx = a.col_idx().to_vec();
    let mut vals = a.vals().to_vec();

    // Position of the diagonal within each row.
    let mut diag_pos = vec![usize::MAX; n];
    for i in 0..n {
        // Parallel col_idx/vals walks keep the absolute position `p`, which
        // diag_pos must record.
        #[allow(clippy::needless_range_loop)]
        for p in row_ptr[i]..row_ptr[i + 1] {
            if col_idx[p] == i {
                diag_pos[i] = p;
            }
        }
        if diag_pos[i] == usize::MAX || vals[diag_pos[i]] == S::ZERO {
            return Err(MatrixError::SingularDiagonal { row: i });
        }
    }

    // pos_of_col[j] = position of column j within the current row (scratch).
    let mut pos_of_col = vec![usize::MAX; n];
    for i in 0..n {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        for p in lo..hi {
            pos_of_col[col_idx[p]] = p;
        }
        // Eliminate columns k < i in ascending order.
        for p in lo..hi {
            let k = col_idx[p];
            if k >= i {
                break;
            }
            let pivot = vals[diag_pos[k]];
            if pivot == S::ZERO {
                return Err(MatrixError::SingularDiagonal { row: k });
            }
            let lik = vals[p] / pivot;
            vals[p] = lik;
            // Subtract lik · row_k restricted to the pattern of row i.
            for q in diag_pos[k] + 1..row_ptr[k + 1] {
                let j = col_idx[q];
                let dst = pos_of_col[j];
                if dst != usize::MAX && dst >= lo && dst < hi {
                    let upd = lik * vals[q];
                    vals[dst] -= upd;
                }
            }
        }
        if vals[diag_pos[i]] == S::ZERO {
            return Err(MatrixError::SingularDiagonal { row: i });
        }
        for p in lo..hi {
            pos_of_col[col_idx[p]] = usize::MAX;
        }
    }

    // Split into L (strictly lower + unit diag) and U (diag + strictly upper).
    let mut l_ptr = Vec::with_capacity(n + 1);
    let mut u_ptr = Vec::with_capacity(n + 1);
    l_ptr.push(0usize);
    u_ptr.push(0usize);
    let mut l_cols = Vec::new();
    let mut l_vals = Vec::new();
    let mut u_cols = Vec::new();
    let mut u_vals = Vec::new();
    for i in 0..n {
        for p in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[p];
            if j < i {
                l_cols.push(j);
                l_vals.push(vals[p]);
            } else {
                u_cols.push(j);
                u_vals.push(vals[p]);
            }
        }
        l_cols.push(i);
        l_vals.push(S::ONE);
        l_ptr.push(l_cols.len());
        u_ptr.push(u_cols.len());
    }
    Ok(Ilu0 {
        l: Csr::from_parts_unchecked(n, n, l_ptr, l_cols, l_vals),
        u: Csr::from_parts_unchecked(n, n, u_ptr, u_cols, u_vals),
    })
}

/// Serial backward substitution for an upper-triangular CSR matrix whose
/// diagonal is the first entry of each row (as produced by [`ilu0`]).
pub fn serial_csr_upper<S: Scalar>(u: &Csr<S>, b: &[S]) -> Result<Vec<S>, MatrixError> {
    let n = u.nrows();
    if b.len() != n {
        return Err(MatrixError::DimensionMismatch {
            what: "upper sptrsv rhs",
            expected: n,
            actual: b.len(),
        });
    }
    let mut x = vec![S::ZERO; n];
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        if cols.first() != Some(&i) || vals[0] == S::ZERO {
            return Err(MatrixError::SingularDiagonal { row: i });
        }
        let mut right_sum = S::ZERO;
        for k in 1..cols.len() {
            right_sum += vals[k] * x[cols[k]];
        }
        x[i] = (b[i] - right_sum) / vals[0];
    }
    Ok(x)
}

impl<S: Scalar> Ilu0<S> {
    /// Apply the preconditioner: solve `L U z = r` by a forward then a
    /// backward substitution (both serial; examples swap the forward solve
    /// for the recblock solver to show the speedup where it matters).
    pub fn apply(&self, r: &[S]) -> Result<Vec<S>, MatrixError> {
        let y = crate::sptrsv::serial_csr(&self.l, r)?;
        serial_csr_upper(&self.u, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;
    use recblock_matrix::vector::{max_rel_diff, norm_inf, sub};

    /// Symmetric-ish diagonally dominant test matrix with both triangles.
    fn spd_like(n: usize, seed: u64) -> Csr<f64> {
        let l = generate::random_lower::<f64>(n, 3.0, seed);
        // A = L + Lᵀ with doubled diagonal: symmetric, diagonally dominant.
        let lt = l.transpose();
        let mut coo = recblock_matrix::coo::Coo::<f64>::new(n, n);
        for (i, j, v) in l.iter() {
            coo.push(i, j, v).unwrap();
        }
        for (i, j, v) in lt.iter() {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn ilu0_of_triangular_matrix_is_exact() {
        // If A is already lower triangular, ILU(0) reproduces it exactly:
        // L = unit(A), U = diag(A).
        let a = generate::random_lower::<f64>(200, 4.0, 91);
        let f = ilu0(&a).unwrap();
        let b: Vec<f64> = (0..200).map(|i| (i as f64).sin()).collect();
        let z = f.apply(&b).unwrap();
        let x = crate::sptrsv::serial_csr(&a, &b).unwrap();
        assert!(max_rel_diff(&z, &x) < 1e-12);
    }

    #[test]
    fn factors_have_expected_shape() {
        let a = spd_like(100, 92);
        let f = ilu0(&a).unwrap();
        assert!(f.l.is_solvable_lower());
        assert!(f.u.is_upper_triangular());
        // Unit diagonal on L.
        for i in 0..100 {
            assert_eq!(f.l.get(i, i), Some(1.0));
        }
    }

    #[test]
    fn lu_product_approximates_a_on_pattern() {
        let a = spd_like(80, 93);
        let f = ilu0(&a).unwrap();
        // For every stored entry (i,j) of A, (L·U)[i,j] should equal A[i,j]
        // (the defining property of ILU(0)).
        for (i, j, v) in a.iter() {
            let mut lu = 0.0;
            let (lc, lv) = f.l.row(i);
            for (&k, &lik) in lc.iter().zip(lv) {
                if let Some(ukj) = f.u.get(k, j) {
                    lu += lik * ukj;
                }
            }
            assert!((lu - v).abs() < 1e-9, "LU({i},{j}) = {lu}, A = {v}");
        }
    }

    #[test]
    fn preconditioner_reduces_residual() {
        // One Richardson step with M = ILU(0) should shrink the residual of
        // a diagonally dominant system substantially.
        let a = spd_like(150, 94);
        let x_true: Vec<f64> = (0..150).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = a.spmv_dense(&x_true).unwrap();
        let f = ilu0(&a).unwrap();
        let x0 = vec![0.0; 150];
        let r0 = sub(&b, &a.spmv_dense(&x0).unwrap());
        let z = f.apply(&r0).unwrap();
        let x1: Vec<f64> = x0.iter().zip(&z).map(|(&x, &z)| x + z).collect();
        let r1 = sub(&b, &a.spmv_dense(&x1).unwrap());
        assert!(norm_inf(&r1) < 0.5 * norm_inf(&r0), "{} vs {}", norm_inf(&r1), norm_inf(&r0));
    }

    #[test]
    fn upper_solve_reference() {
        // U = [2 1; 0 4], b = [4, 8] => x = [1, 2]... check: x2=2, x1=(4-2)/2=1.
        let u = Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![2., 1., 4.]).unwrap();
        let x = serial_csr_upper(&u, &[4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn rejects_missing_diagonal() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![1., 1.]).unwrap();
        assert!(ilu0(&a).is_err());
    }

    #[test]
    fn rejects_non_square() {
        let a = Csr::<f64>::zero(2, 3);
        assert!(ilu0(&a).is_err());
    }
}
