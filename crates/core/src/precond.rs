//! Blocked ILU preconditioner: both triangular applications of
//! `M⁻¹ = U⁻¹ L⁻¹` served by the recursive block solver.
//!
//! This is the end-to-end shape of the paper's iterative scenario: one
//! preprocessing pass over each factor, then two blocked SpTRSVs per
//! Krylov iteration.

use crate::solver::{RecBlockSolver, SolverOptions};
use crate::upper::UpperRecBlockSolver;
use recblock_kernels::ilu::Ilu0;
use recblock_kernels::krylov::Preconditioner;
use recblock_matrix::{MatrixError, Scalar};

/// An ILU(0) factorisation with both factors preprocessed for blocked
/// triangular solves.
#[derive(Debug, Clone)]
pub struct BlockIlu<S> {
    lower: RecBlockSolver<S>,
    upper: UpperRecBlockSolver<S>,
}

impl<S: Scalar> BlockIlu<S> {
    /// Preprocess both factors of an ILU(0) factorisation.
    pub fn new(factors: &Ilu0<S>, opts: SolverOptions) -> Result<Self, MatrixError> {
        let lower = RecBlockSolver::new(&factors.l, opts.clone())?;
        let upper = UpperRecBlockSolver::new(&factors.u, opts)?;
        Ok(BlockIlu { lower, upper })
    }

    /// Total wall-clock preprocessing time of both factors.
    pub fn preprocess_time(&self) -> std::time::Duration {
        // The upper solver's preprocessing is inside its wrapped lower
        // solver.
        self.lower.preprocess_time() + self.upper.inner().preprocess_time()
    }

    /// The lower-factor solver.
    pub fn lower(&self) -> &RecBlockSolver<S> {
        &self.lower
    }

    /// The upper-factor solver.
    pub fn upper(&self) -> &UpperRecBlockSolver<S> {
        &self.upper
    }
}

impl<S: Scalar> Preconditioner<S> for BlockIlu<S> {
    fn apply(&self, r: &[S]) -> Result<Vec<S>, MatrixError> {
        let y = self.lower.solve(r)?;
        self.upper.solve(&y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::DepthRule;
    use recblock_kernels::ilu::ilu0;
    use recblock_kernels::krylov::{bicgstab, pcg, IdentityPreconditioner, KrylovOptions};
    use recblock_matrix::coo::Coo;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;
    use recblock_matrix::Csr;

    fn spd(n: usize, seed: u64) -> Csr<f64> {
        let l = generate::random_lower::<f64>(n, 3.0, seed);
        let lt = l.transpose();
        let mut coo = Coo::<f64>::with_capacity(n, n, 2 * l.nnz());
        for (i, j, v) in l.iter() {
            coo.push(i, j, v).unwrap();
        }
        for (i, j, v) in lt.iter() {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    fn opts() -> SolverOptions {
        SolverOptions { depth: DepthRule::Fixed(2), ..SolverOptions::default() }
    }

    #[test]
    fn blocked_apply_matches_serial_apply() {
        let a = spd(400, 1);
        let f = ilu0(&a).unwrap();
        let blocked = BlockIlu::new(&f, opts()).unwrap();
        let r: Vec<f64> = (0..400).map(|i| ((i % 13) as f64) - 6.0).collect();
        let z_serial = f.apply(&r).unwrap();
        let z_blocked = recblock_kernels::krylov::Preconditioner::apply(&blocked, &r).unwrap();
        assert!(max_rel_diff(&z_serial, &z_blocked) < 1e-9);
    }

    #[test]
    fn pcg_with_blocked_ilu_converges_faster_than_plain() {
        let a = spd(700, 2);
        let xt: Vec<f64> = (0..700).map(|i| ((i % 23) as f64) / 11.5 - 1.0).collect();
        let b = a.spmv_dense(&xt).unwrap();
        let f = ilu0(&a).unwrap();
        let prec = BlockIlu::new(&f, opts()).unwrap();
        let with = pcg(&a, &b, &prec, &KrylovOptions::default()).unwrap();
        let without = pcg(&a, &b, &IdentityPreconditioner, &KrylovOptions::default()).unwrap();
        assert!(with.converged && without.converged);
        assert!(with.iterations < without.iterations);
        assert!(max_rel_diff(&with.x, &xt) < 1e-6);
    }

    #[test]
    fn bicgstab_with_blocked_ilu() {
        // Nonsymmetric dominant operator.
        let l = generate::random_lower::<f64>(500, 3.0, 3);
        let u = generate::random_lower::<f64>(500, 2.0, 4).transpose();
        let mut coo = Coo::<f64>::new(500, 500);
        for (i, j, v) in l.iter() {
            coo.push(i, j, v).unwrap();
        }
        for (i, j, v) in u.iter() {
            coo.push(i, j, v).unwrap();
        }
        let a = coo.to_csr();
        let xt: Vec<f64> = (0..500).map(|i| (i as f64 * 0.02).cos()).collect();
        let b = a.spmv_dense(&xt).unwrap();
        let f = ilu0(&a).unwrap();
        let prec = BlockIlu::new(&f, opts()).unwrap();
        let res = bicgstab(&a, &b, &prec, &KrylovOptions::default()).unwrap();
        assert!(res.converged, "residual {}", res.residual);
        assert!(max_rel_diff(&res.x, &xt) < 1e-6);
    }

    #[test]
    fn accessors() {
        let a = spd(100, 5);
        let f = ilu0(&a).unwrap();
        let p = BlockIlu::new(&f, opts()).unwrap();
        assert_eq!(p.lower().n(), 100);
        assert!(p.preprocess_time() > std::time::Duration::ZERO);
    }
}
