//! Demo of the `recblock-serve` solve service: three matrices, a burst of
//! interleaved requests, and the built-in metrics at the end.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Pass `--metrics` to also dump the Prometheus text exposition — the same
//! output a `/metrics` endpoint would serve — after the burst completes.
//!
//! The network tier rides on the same service:
//!
//! ```text
//! serve_demo --listen 127.0.0.1:7700    warm the demo matrices, serve RBNET
//! serve_demo --connect 127.0.0.1:7700   solve the demo matrices over TCP
//! ```
//!
//! `--listen` registers three tenants — `alpha` (weight 3), `beta`
//! (weight 1) and `limited` (tight rate budget) — and prints each demo
//! matrix's plan key. `--connect` regenerates the same matrices (same
//! seeds, same fingerprints), pings, runs a burst as `alpha`/`beta`, shows
//! `limited` being refused with a typed error, and finishes with the
//! server's per-tenant stat frame.
//!
//! The cluster tier rides on the same binary:
//!
//! ```text
//! serve_demo --cluster node-a 127.0.0.1:7701                  first node
//! serve_demo --cluster node-b 127.0.0.1:7702 127.0.0.1:7701   join via node-a
//! serve_demo --cluster node-c 127.0.0.1:7703 127.0.0.1:7701   join via node-a
//! serve_demo --connect 127.0.0.1:7702                         solve via any node
//! ```
//!
//! Each `--cluster` node warms its *owned* shard of the demo plans (the
//! consistent-hash ring decides; plans are built once cluster-wide and
//! migrated as `.rbplan` bytes), then serves. A client may dial any
//! node: owners answer locally, everyone else proxies to the owner.

use recblock_cluster::{ClusterConfig, ClusterNode, WarmOutcome};
use recblock_matrix::{generate, Csr};
use recblock_net::{ErrCode, NetClient, NetConfig, NetError, NetServer, TenantPolicy};
use recblock_serve::{ServeConfig, SolveService};
use recblock_store::PlanKey;
use std::sync::Arc;

/// The three demo factors. `--listen` and `--connect` both call this, so
/// fingerprints agree across processes without shipping any matrix bytes.
fn demo_matrices() -> Vec<Csr<f64>> {
    vec![
        generate::random_lower::<f64>(20_000, 6.0, 1),
        generate::grid2d::<f64>(120, 120, 2),
        generate::layered::<f64>(15_000, 24, 3.0, generate::LayerShape::Uniform, 3),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--listen") if args.len() == 2 => listen(&args[1]),
        Some("--connect") if args.len() == 2 => connect(&args[1]),
        Some("--cluster") if args.len() == 3 || args.len() == 4 => {
            cluster(&args[1], &args[2], args.get(3).map(String::as_str))
        }
        _ => {
            in_process(args.iter().any(|a| a == "--metrics"));
            Ok(())
        }
    };
    if let Err(e) = result {
        eprintln!("serve_demo: {e}");
        std::process::exit(1);
    }
}

/// The original in-process demo.
fn in_process(prometheus: bool) {
    let config = ServeConfig::default().with_max_batch(8).with_queue_capacity(128);
    println!(
        "starting service: {} workers, max batch {}, queue {}",
        config.workers, config.max_batch, config.queue_capacity
    );
    let service = SolveService::<f64>::new(config);

    // Three triangular factors the service will see. The first request for
    // each pays the preprocessing; everything after hits the plan cache.
    let matrices = demo_matrices();
    for (i, l) in matrices.iter().enumerate() {
        service.warm(l).expect("preprocessing failed");
        println!("warmed matrix {i}: {} ({} nnz)", l.fingerprint(), l.nnz());
    }

    // A burst of 60 requests round-robining over the matrices. Same-matrix
    // requests that queue together are coalesced into one multi-RHS solve.
    let handles: Vec<_> = (0..60)
        .map(|j| {
            let l = &matrices[j % matrices.len()];
            let b: Vec<f64> =
                (0..l.nrows()).map(|i| ((i + j) as f64 * 0.003).sin() + 2.0).collect();
            (j, service.submit(l, b).expect("submit failed"))
        })
        .collect();
    for (j, h) in handles {
        let x = h.wait().expect("solve failed");
        if j < 3 {
            println!("request {j}: |x| = {}, x[0] = {:.6}", x.len(), x[0]);
        }
    }

    let stats = service.shutdown();
    println!("\n--- service metrics ---\n{stats}");
    if prometheus {
        println!("\n--- prometheus exposition ---\n{}", stats.render_prometheus());
    }
    println!(
        "\npreprocessing amortisation: {:?} spent building plans once, {:?} saved by reuse",
        stats.preprocess_time, stats.preprocess_time_saved
    );
}

/// `--listen <addr>`: warm the demo matrices and serve RBNET until killed.
fn listen(addr: &str) -> Result<(), String> {
    let service = Arc::new(SolveService::<f64>::new(
        ServeConfig::default().with_max_batch(8).with_queue_capacity(128),
    ));
    println!("warming demo plans...");
    for (i, l) in demo_matrices().iter().enumerate() {
        service.warm(l).map_err(|e| format!("preprocessing failed: {e}"))?;
        println!("  matrix {i}: key {} ({} nnz)", PlanKey::of(l), l.nnz());
    }

    let net_cfg = NetConfig::default()
        .with_tenant("alpha", TenantPolicy::default().with_weight(3.0))
        .with_tenant("beta", TenantPolicy::default().with_weight(1.0))
        .with_tenant("limited", TenantPolicy::default().with_rate(50_000.0, 300_000.0));
    let mut server =
        NetServer::bind(addr, net_cfg, service).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "listening on {} — tenants: alpha (w3), beta (w1), limited (rate-capped); \
         Ctrl-C to stop",
        server.local_addr().map_err(|e| e.to_string())?
    );
    server.run().map_err(|e| format!("event loop: {e}"))
}

/// `--cluster <name> <bind-addr> [seed-addr]`: run one node of a sharded
/// cluster. Without a seed address the node starts a new single-member
/// ring; with one it joins the cluster reachable there. Either way it
/// then warms its owned shard of the demo plans and serves until killed.
fn cluster(name: &str, bind: &str, seed: Option<&str>) -> Result<(), String> {
    let service = Arc::new(SolveService::<f64>::new(
        ServeConfig::default().with_max_batch(8).with_queue_capacity(128),
    ));
    let net_cfg = NetConfig::default()
        .with_tenant("alpha", TenantPolicy::default().with_weight(3.0))
        .with_tenant("beta", TenantPolicy::default().with_weight(1.0))
        .with_tenant("limited", TenantPolicy::default().with_rate(50_000.0, 300_000.0));
    let node = ClusterNode::start(bind, ClusterConfig::new(name), net_cfg, service)
        .map_err(|e| format!("start node on {bind}: {e}"))?;
    println!("node {name} listening on {}", node.addr());

    if let Some(seed) = seed {
        let ring = node.join(seed).map_err(|e| format!("join via {seed}: {e}"))?;
        println!("joined ring (epoch {}): {} members", ring.epoch, ring.members.len());
    }

    // Warm only the shard this node owns; plans build once cluster-wide
    // (the grant protocol dedupes concurrent cold starts) and replicas
    // receive migrated `.rbplan` bytes instead of rebuilding.
    for (i, l) in demo_matrices().iter().enumerate() {
        let outcome = node.warm(l).map_err(|e| format!("warm matrix {i}: {e}"))?;
        let verdict = match outcome {
            WarmOutcome::NotOwner => "not owned here (solves will proxy)".to_string(),
            other => format!("{other:?}"),
        };
        println!("  matrix {i}: key {} — {verdict}", PlanKey::of(l));
    }
    println!("serving; dial any cluster node with --connect. Ctrl-C to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `--connect <addr>`: exercise a running `--listen` server over TCP.
fn connect(addr: &str) -> Result<(), String> {
    let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    println!("ping: {:?}", client.ping().map_err(|e| e.to_string())?);

    let matrices = demo_matrices();
    for (i, l) in matrices.iter().enumerate() {
        let key = PlanKey::of(l);
        let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
        let b: Vec<f64> = (0..l.nrows()).map(|r| ((r + i) as f64 * 0.003).sin() + 2.0).collect();
        let t0 = std::time::Instant::now();
        let x =
            client.solve::<f64>(tenant, &key, &b).map_err(|e| format!("solve as {tenant}: {e}"))?;
        println!(
            "matrix {i} as {tenant:6}: n = {}, x[0] = {:.6}, round trip {:.2?}",
            x.len(),
            x[0],
            t0.elapsed()
        );
    }

    // Push `limited` past its rate budget to show the typed refusal.
    let l = &matrices[0];
    let key = PlanKey::of(l);
    let b: Vec<f64> = (0..l.nrows()).map(|r| (r as f64 * 0.003).cos() + 2.0).collect();
    let mut admitted = 0;
    for _ in 0..8 {
        match client.solve::<f64>("limited", &key, &b) {
            Ok(_) => admitted += 1,
            Err(NetError::Remote { code: ErrCode::RateLimited, .. }) => {
                println!("limited tenant: {admitted} solves admitted, then typed RateLimited");
                break;
            }
            Err(e) => return Err(format!("solve as limited: {e}")),
        }
    }

    let stat = client.stat().map_err(|e| e.to_string())?;
    println!(
        "\nserver stat: {} plans warm, {} columns in flight{}",
        stat.plans_warm,
        stat.inflight,
        if stat.draining { ", draining" } else { "" }
    );
    for t in &stat.tenants {
        println!(
            "  {:8} queued {:3}  admitted {:4}  completed {:4}  rejected {:3}  shed {:3}",
            t.tenant, t.queue_depth, t.admitted, t.completed, t.admission_rejected, t.shed
        );
    }
    Ok(())
}
