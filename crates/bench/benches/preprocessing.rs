//! CPU wall-clock cost of the preprocessing stages (Table 5's first
//! column): level analysis, sync-free in-degree counting, cuSPARSE-like
//! analysis, recursive level-set reorder, and the full blocked build.

use criterion::{criterion_group, criterion_main, Criterion};
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock::reorder::recursive_levelset_reorder;
use recblock_kernels::sptrsv::{CusparseLikeSolver, SyncFreeSolver};
use recblock_matrix::generate;
use recblock_matrix::levelset::LevelSets;
use std::time::Duration;

fn bench_prep(c: &mut Criterion) {
    let mut g = c.benchmark_group("preprocessing");
    g.measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    let l = generate::layered::<f64>(30_000, 25, 3.0, generate::LayerShape::Uniform, 9);

    g.bench_function("levelset_analysis", |bench| bench.iter(|| LevelSets::analyse_unchecked(&l)));
    g.bench_function("syncfree_prep", |bench| {
        bench.iter(|| SyncFreeSolver::with_threads(&l, 4).unwrap())
    });
    g.bench_function("cusparse_analysis", |bench| {
        bench.iter(|| CusparseLikeSolver::analyse(l.clone()).unwrap())
    });
    g.bench_function("recursive_reorder_d4", |bench| {
        bench.iter(|| recursive_levelset_reorder(&l, 4).unwrap())
    });
    g.bench_function("blocked_build_d4", |bench| {
        let opts = BlockedOptions { depth: DepthRule::Fixed(4), ..BlockedOptions::default() };
        bench.iter(|| BlockedTri::build(&l, &opts).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_prep);
criterion_main!(benches);
