//! Table 4: the six representative matrices — structure, parallelism,
//! per-method GFlops and the block algorithm's speedups, next to the
//! paper's reported speedups (Titan RTX).

use crate::harness::{evaluate_methods_with, fmt_gf, fmt_x, scale_device, HarnessConfig, Table};
use crate::representatives::{representatives, Representative};
use recblock_gpu_sim::{DeviceSpec, TriProfile};
use recblock_matrix::levelset::LevelSets;

/// One evaluated representative.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Analogue name.
    pub name: String,
    /// Rows / nonzeros / level count of the analogue.
    pub n: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Level count.
    pub nlevels: usize,
    /// (min, avg, max) parallelism.
    pub parallelism: (usize, f64, usize),
    /// GFlops (cuSPARSE, Sync-free, block).
    pub gflops: (f64, f64, f64),
    /// Block speedups (vs cuSPARSE, vs Sync-free).
    pub speedups: (f64, f64),
    /// The paper's speedups for the original matrix.
    pub paper_speedups: (f64, f64),
}

/// Evaluate all six analogues on the (scaled) Titan RTX.
pub fn evaluate(cfg: &HarnessConfig, extra_shrink: usize) -> Vec<Table4Row> {
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    representatives().iter().map(|rep| eval_one(rep, extra_shrink, &dev, cfg)).collect()
}

fn eval_one(
    rep: &Representative,
    extra_shrink: usize,
    dev: &DeviceSpec,
    cfg: &HarnessConfig,
) -> Table4Row {
    let l = rep.build_shrunk::<f64>(extra_shrink);
    let levels = LevelSets::analyse_unchecked(&l);
    let profile = TriProfile::analyse(&l, &levels);
    let blocked = crate::harness::build_blocked(&l, dev, cfg);
    let eval = evaluate_methods_with(&profile, &blocked, l.nrows(), 8, dev, cfg);
    Table4Row {
        name: rep.name.to_string(),
        n: l.nrows(),
        nnz: l.nnz(),
        nlevels: levels.nlevels(),
        parallelism: levels.parallelism(),
        gflops: eval.gflops(),
        speedups: eval.speedups(),
        paper_speedups: (rep.paper_speedup_cusparse, rep.paper_speedup_syncfree),
    }
}

/// Render the report.
pub fn run(cfg: &HarnessConfig) -> String {
    render(&evaluate(cfg, 1))
}

/// Render precomputed rows.
pub fn render(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    out.push_str("== Table 4: six representative matrices (scaled analogues), Titan RTX ==\n");
    let mut t = Table::new([
        "matrix", "n", "nnz", "levels", "par min", "par avg", "par max", "cuSP GF", "Sync GF",
        "blk GF", "vs cuSP", "paper", "vs Sync", "paper",
    ]);
    for r in rows {
        t.row([
            r.name.clone(),
            r.n.to_string(),
            r.nnz.to_string(),
            r.nlevels.to_string(),
            r.parallelism.0.to_string(),
            format!("{:.0}", r.parallelism.1),
            r.parallelism.2.to_string(),
            fmt_gf(r.gflops.0),
            fmt_gf(r.gflops.1),
            fmt_gf(r.gflops.2),
            fmt_x(r.speedups.0),
            fmt_x(r.paper_speedups.0),
            fmt_x(r.speedups.1),
            fmt_x(r.paper_speedups.1),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nShape checks: block never materially slower; biggest vs-Sync-free win on\n");
    out.push_str("the power-law matrices (FullChip/vas_stokes); tmt_sym near-parity (~1x).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_shape_holds() {
        let cfg = HarnessConfig::default();
        let rows = evaluate(&cfg, 2);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();

        // Block is never materially slower than either baseline.
        for r in &rows {
            assert!(r.speedups.0 > 0.85, "{}: vs cuSPARSE {}", r.name, r.speedups.0);
            assert!(r.speedups.1 > 0.85, "{}: vs Sync-free {}", r.name, r.speedups.1);
        }

        // tmt_sym: near-parity with cuSPARSE (paper: 1.03x).
        let tmt = by_name("tmt_sym-s");
        assert!(tmt.speedups.0 < 3.0, "tmt vs cuSPARSE {}", tmt.speedups.0);

        // Power-law matrices: sync-free suffers most (paper: 11x and 61x).
        let fullchip = by_name("FullChip-s");
        assert!(
            fullchip.speedups.1 > fullchip.speedups.0,
            "FullChip should hurt Sync-free more: {:?}",
            fullchip.speedups
        );
        let vas = by_name("vas_stokes-s");
        assert!(vas.speedups.1 > 2.0, "vas_stokes vs Sync-free {}", vas.speedups.1);

        // High-parallelism KKT: solid speedup over both (paper: 3.45/2.53).
        let nlp = by_name("nlpkkt200-s");
        assert!(nlp.speedups.0 > 1.2, "nlpkkt vs cuSPARSE {}", nlp.speedups.0);
        assert!(nlp.speedups.1 > 1.2, "nlpkkt vs Sync-free {}", nlp.speedups.1);
    }
}
