//! Partition plans: how a triangular matrix is cut into blocks.

use std::ops::Range;

/// Split `0..n` into `parts` contiguous segments of (near-)equal size.
/// Earlier segments take the remainder, so sizes differ by at most one.
pub fn equal_segments(n: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts >= 1, "need at least one segment");
    let parts = parts.min(n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The paper's recursion-depth rule: halve until the *next* split would
/// produce blocks smaller than `min_rows` ("less than 20 times the GPU core
/// counts"). Returns the recursion depth (0 = no split).
pub fn depth_for(n: usize, min_rows: usize) -> usize {
    let mut depth = 0usize;
    let mut rows = n;
    while rows / 2 >= min_rows.max(1) {
        rows /= 2;
        depth += 1;
    }
    depth
}

/// One node of the recursive bisection, flattened in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanNode {
    /// A leaf triangular block over `rows` (equal column range).
    Tri {
        /// Row (= column) range of the leaf.
        rows: Range<usize>,
    },
    /// A square/near-square block: `rows × cols`, with `cols` immediately
    /// preceding `rows` on the diagonal.
    Square {
        /// Row range (the bottom half of its parent).
        rows: Range<usize>,
        /// Column range (the top half of its parent).
        cols: Range<usize>,
    },
}

/// Flatten the recursive bisection of `0..n` at `depth` into execution
/// order: in-order traversal, each internal node contributing its square
/// block between its two halves. `2^depth` leaves, `2^depth − 1` squares.
pub fn recursive_plan(n: usize, depth: usize) -> Vec<PlanNode> {
    let mut out = Vec::with_capacity((1usize << depth.min(30)) * 2);
    rec(0..n, depth, &mut out);
    out
}

fn rec(range: Range<usize>, depth: usize, out: &mut Vec<PlanNode>) {
    if depth == 0 || range.len() < 2 {
        out.push(PlanNode::Tri { rows: range });
        return;
    }
    let mid = range.start + range.len() / 2;
    rec(range.start..mid, depth - 1, out);
    out.push(PlanNode::Square { rows: mid..range.end, cols: range.start..mid });
    rec(mid..range.end, depth - 1, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_segments_cover_exactly() {
        for (n, parts) in [(10usize, 3usize), (7, 7), (100, 4), (5, 10)] {
            let segs = equal_segments(n, parts);
            assert_eq!(segs.first().unwrap().start, 0);
            assert_eq!(segs.last().unwrap().end, n);
            for w in segs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let sizes: Vec<usize> = segs.iter().map(|r| r.len()).collect();
            let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn segments_clamped_to_n() {
        // More parts than rows: one row per segment.
        let segs = equal_segments(3, 10);
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn depth_rule_matches_paper_example() {
        // Titan RTX: min block 92160. A 16.24M-row matrix (nlpkkt200) can be
        // halved 7 times before the halves drop below 92160 · 2 ... check
        // the invariant rather than a specific constant:
        let d = depth_for(16_240_000, 92_160);
        assert!(16_240_000 >> d >= 92_160);
        assert!(16_240_000 >> (d + 1) < 92_160);
    }

    #[test]
    fn depth_zero_for_small_matrices() {
        assert_eq!(depth_for(1000, 92_160), 0);
        assert_eq!(depth_for(0, 10), 0);
    }

    #[test]
    fn plan_counts_blocks() {
        for depth in 0..5usize {
            let plan = recursive_plan(1 << 10, depth);
            let tris = plan.iter().filter(|p| matches!(p, PlanNode::Tri { .. })).count();
            let sqs = plan.iter().filter(|p| matches!(p, PlanNode::Square { .. })).count();
            assert_eq!(tris, 1 << depth);
            assert_eq!(sqs, (1 << depth) - 1);
        }
    }

    #[test]
    fn plan_is_executable_in_order() {
        // Every square's columns must be fully covered by tri leaves that
        // appear before it.
        let plan = recursive_plan(64, 3);
        let mut solved = 0usize; // tri leaves cover a prefix in-order
        for node in &plan {
            match node {
                PlanNode::Tri { rows } => {
                    assert_eq!(rows.start, solved, "leaves must tile in order");
                    solved = rows.end;
                }
                PlanNode::Square { rows, cols } => {
                    assert!(cols.end <= solved, "square consumed unsolved x");
                    assert_eq!(cols.end, rows.start, "square sits under its columns");
                }
            }
        }
        assert_eq!(solved, 64);
    }

    #[test]
    fn plan_squares_partition_strictly_lower_area() {
        // At depth d the union of squares plus leaf triangles must tile the
        // full lower triangle: check row/col ranges are disjoint per level
        // by verifying total covered area.
        let n = 128usize;
        let depth = 3usize;
        let plan = recursive_plan(n, depth);
        let mut sq_area = 0usize;
        for node in &plan {
            if let PlanNode::Square { rows, cols } = node {
                sq_area += rows.len() * cols.len();
            }
        }
        // Dense lower triangle below the leaf diagonal blocks:
        let leaf = n >> depth;
        let tri_strict = n * (n + 1) / 2 - (1 << depth) * (leaf * (leaf + 1) / 2);
        assert_eq!(sq_area, tri_strict);
    }

    #[test]
    fn odd_sizes_still_tile() {
        let plan = recursive_plan(101, 4);
        let covered: usize = plan
            .iter()
            .filter_map(|p| match p {
                PlanNode::Tri { rows } => Some(rows.len()),
                _ => None,
            })
            .sum();
        assert_eq!(covered, 101);
    }
}
