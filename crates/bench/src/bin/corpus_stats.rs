//! Summarise the synthetic 159-matrix corpus: per-family counts and the
//! ranges of the structural features that drive the paper's results
//! (rows, nonzeros, level counts, average parallelism, row-length skew).
//!
//! Optional integer argument: extra shrink factor (default 1).

use recblock_bench::corpus::{corpus_scaled, MatrixFamily};
use recblock_bench::harness::Table;
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::stats::MatrixStats;

fn main() {
    let shrink: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let entries = corpus_scaled(shrink);
    println!("== Synthetic corpus: {} matrices (shrink {shrink}) ==\n", entries.len());

    let families = [
        MatrixFamily::FemBanded,
        MatrixFamily::Grid,
        MatrixFamily::Kkt,
        MatrixFamily::Circuit,
        MatrixFamily::Network,
        MatrixFamily::Layered,
    ];
    let mut table = Table::new([
        "family",
        "count",
        "n range",
        "nnz range",
        "levels range",
        "avg nnz/row",
        "max row skew",
    ]);
    for fam in families {
        let mut count = 0usize;
        let mut n = (usize::MAX, 0usize);
        let mut nnz = (usize::MAX, 0usize);
        let mut levels = (usize::MAX, 0usize);
        let mut nnz_row_sum = 0.0f64;
        let mut skew_max = 0.0f64;
        for entry in entries.iter().filter(|e| e.family == fam) {
            let l = entry.build::<f64>();
            let ls = LevelSets::analyse_unchecked(&l);
            let s = MatrixStats::of_lower_triangular(&l, &ls);
            count += 1;
            n = (n.0.min(s.nrows), n.1.max(s.nrows));
            nnz = (nnz.0.min(s.nnz), nnz.1.max(s.nnz));
            levels = (levels.0.min(ls.nlevels()), levels.1.max(ls.nlevels()));
            nnz_row_sum += s.nnz_per_row;
            skew_max = skew_max.max(s.max_row_nnz as f64 / s.nnz_per_row.max(1.0));
        }
        table.row([
            fam.name().to_string(),
            count.to_string(),
            format!("{}..{}", n.0, n.1),
            format!("{}..{}", nnz.0, nnz.1),
            format!("{}..{}", levels.0, levels.1),
            format!("{:.2}", nnz_row_sum / count.max(1) as f64),
            format!("{skew_max:.0}x"),
        ]);
    }
    print!("{}", table.render());
    println!("\nThe family mix mirrors the SuiteSparse population in the paper's size band");
    println!("(n >= 500k, 5M <= nnz <= 500M), scaled by 1/50; see DESIGN.md section 2.");
}
