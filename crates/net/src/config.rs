//! Server configuration: frame limits, connection limits and per-tenant
//! QoS policies.

/// Admission and scheduling policy for one tenant.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Deficit-round-robin weight (> 0). Under saturation a tenant's
    /// long-run dispatched cost is proportional to its weight.
    pub weight: f64,
    /// Token-bucket refill in cost units (`nnz × rhs count`) per second.
    /// `f64::INFINITY` disables rate admission.
    pub rate_cost_per_sec: f64,
    /// Token-bucket capacity in cost units.
    pub burst_cost: f64,
    /// Maximum cost queued ahead of dispatch before further requests are
    /// shed with `ShedCost`.
    pub max_queued_cost: f64,
    /// Deadline applied when a request carries `deadline_ms = 0`;
    /// 0 means "no deadline".
    pub default_deadline_ms: u32,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            weight: 1.0,
            rate_cost_per_sec: f64::INFINITY,
            burst_cost: f64::MAX,
            max_queued_cost: f64::MAX,
            default_deadline_ms: 0,
        }
    }
}

impl TenantPolicy {
    /// Set the DRR weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Set token-bucket rate and burst, both in cost units.
    pub fn with_rate(mut self, cost_per_sec: f64, burst: f64) -> Self {
        self.rate_cost_per_sec = cost_per_sec;
        self.burst_cost = burst;
        self
    }

    /// Set the queued-cost ceiling.
    pub fn with_max_queued_cost(mut self, cost: f64) -> Self {
        self.max_queued_cost = cost;
        self
    }

    /// Set the default deadline for requests that do not carry one.
    pub fn with_default_deadline_ms(mut self, ms: u32) -> Self {
        self.default_deadline_ms = ms;
        self
    }
}

/// Network-tier configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Largest accepted frame payload; bigger announcements get a typed
    /// `Malformed` error and the connection closes.
    pub max_frame_bytes: u32,
    /// Most right-hand-side columns one solve request may carry.
    pub max_rhs_per_request: u16,
    /// Connection cap; excess accepts are closed immediately.
    pub max_connections: usize,
    /// Cap on right-hand-side columns admitted but not yet answered
    /// (queued + dispatched). Excess requests get `Overloaded`.
    pub max_inflight: usize,
    /// Most queued solves handed to the compute tier per event-loop turn.
    /// Small values make the fair queue (rather than the compute queue)
    /// the arbiter of inter-tenant order.
    pub dispatch_burst: usize,
    /// Per-connection write-buffer cap; a peer that reads slower than it
    /// submits is disconnected once this many bytes are pending.
    pub max_write_buffer: usize,
    /// Statically configured tenants.
    pub tenants: Vec<(String, TenantPolicy)>,
    /// Policy applied to tenants not listed in `tenants`. `None` refuses
    /// them with `UnknownTenant`.
    pub default_policy: Option<TenantPolicy>,
    /// Name this node stamps on trace hops. Cluster deployments set it to
    /// the ring identity so `planctl trace` can tell hops apart.
    pub node_name: String,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_bytes: 16 << 20,
            max_rhs_per_request: 64,
            max_connections: 1024,
            max_inflight: 4096,
            dispatch_burst: 256,
            max_write_buffer: 64 << 20,
            tenants: Vec::new(),
            default_policy: Some(TenantPolicy::default()),
            node_name: "solo".to_string(),
        }
    }
}

impl NetConfig {
    /// Register a tenant with an explicit policy.
    pub fn with_tenant(mut self, name: impl Into<String>, policy: TenantPolicy) -> Self {
        self.tenants.push((name.into(), policy));
        self
    }

    /// Set (or disable, with `None`) the policy for unlisted tenants.
    pub fn with_default_policy(mut self, policy: Option<TenantPolicy>) -> Self {
        self.default_policy = policy;
        self
    }

    /// Set the frame payload ceiling.
    pub fn with_max_frame_bytes(mut self, bytes: u32) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Set the in-flight column cap.
    pub fn with_max_inflight(mut self, columns: usize) -> Self {
        self.max_inflight = columns;
        self
    }

    /// Set the per-turn dispatch burst.
    pub fn with_dispatch_burst(mut self, solves: usize) -> Self {
        self.dispatch_burst = solves;
        self
    }

    /// Set the per-connection write-buffer cap.
    pub fn with_max_write_buffer(mut self, bytes: usize) -> Self {
        self.max_write_buffer = bytes;
        self
    }

    /// Set the node name stamped on trace hops.
    pub fn with_node_name(mut self, name: impl Into<String>) -> Self {
        self.node_name = name.into();
        self
    }
}
