//! Multi-right-hand-side triangular solve (SpTRSM).
//!
//! The paper motivates block SpTRSV with "direct solvers with multiple
//! right-hand sides" and amortises preprocessing over many solves (its
//! Table 5). This module provides the multi-RHS counterpart used by the
//! direct-solver example: `L X = B` with `B` an `n × k` dense matrix stored
//! column-major, solved either column-by-column or with the level schedule
//! shared across all columns (one analysis, `k` solves' worth of work, and
//! per-level parallelism `level_size × k`).

use crate::exec::{solve_row, ExecPool, SendPtr};
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, MatrixError, Scalar};

/// Dense `n × k` multi-vector, column-major (`col(j)` is contiguous).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVector<S> {
    n: usize,
    k: usize,
    data: Vec<S>,
}

impl<S: Scalar> MultiVector<S> {
    /// Zero-filled `n × k` multi-vector.
    pub fn zeros(n: usize, k: usize) -> Self {
        MultiVector { n, k, data: vec![S::ZERO; n * k] }
    }

    /// Build from column-major data (`data.len() == n·k`).
    pub fn from_columns(n: usize, k: usize, data: Vec<S>) -> Result<Self, MatrixError> {
        if data.len() != n * k {
            return Err(MatrixError::DimensionMismatch {
                what: "multivector data",
                expected: n * k,
                actual: data.len(),
            });
        }
        Ok(MultiVector { n, k, data })
    }

    /// Number of rows.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of columns (right-hand sides).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[S] {
        &self.data[j * self.n..(j + 1) * self.n]
    }

    /// Column `j` as a mutable slice.
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        &mut self.data[j * self.n..(j + 1) * self.n]
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> S {
        self.data[j * self.n + i]
    }

    /// The whole column-major backing slice (column `j` occupies
    /// `j*n..(j+1)*n`).
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable column-major backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Set entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        self.data[j * self.n + i] = v;
    }
}

/// Solve `L X = B` column-by-column with the serial kernel (reference).
pub fn sptrsm_serial<S: Scalar>(
    l: &Csr<S>,
    b: &MultiVector<S>,
) -> Result<MultiVector<S>, MatrixError> {
    if b.n() != l.nrows() {
        return Err(MatrixError::DimensionMismatch {
            what: "sptrsm rhs rows",
            expected: l.nrows(),
            actual: b.n(),
        });
    }
    let mut x = MultiVector::zeros(b.n(), b.k());
    for j in 0..b.k() {
        let xj = crate::sptrsv::serial_csr(l, b.col(j))?;
        x.col_mut(j).copy_from_slice(&xj);
    }
    Ok(x)
}

/// Solve `L X = B` with one shared level analysis: columns are independent,
/// so they run in parallel, and within each column levels run in order.
///
/// With `k` right-hand sides every level has `k ×` the parallelism of the
/// single-RHS case, which is exactly why the paper's preprocessing cost
/// "can be easily amortized" in multi-RHS scenarios.
pub fn sptrsm_levelset<S: Scalar>(
    l: &Csr<S>,
    levels: &LevelSets,
    b: &MultiVector<S>,
) -> Result<MultiVector<S>, MatrixError> {
    let mut x = MultiVector::zeros(b.n(), b.k());
    sptrsm_levelset_into(l, levels, b, &mut x, ExecPool::global())?;
    Ok(x)
}

/// As [`sptrsm_levelset`] into a caller-provided multi-vector on an explicit
/// pool — the zero-allocation steady-state path. Columns are fully
/// independent, so each becomes one pool job writing its own contiguous
/// column slice; within a column levels run in order, every row reducing
/// through [`crate::exec::row_dot`], so each column is bit-identical to the
/// serial reference regardless of how columns were scheduled.
pub fn sptrsm_levelset_into<S: Scalar>(
    l: &Csr<S>,
    levels: &LevelSets,
    b: &MultiVector<S>,
    x: &mut MultiVector<S>,
    pool: &ExecPool,
) -> Result<(), MatrixError> {
    if b.n() != l.nrows() {
        return Err(MatrixError::DimensionMismatch {
            what: "sptrsm rhs rows",
            expected: l.nrows(),
            actual: b.n(),
        });
    }
    if x.n() != b.n() || x.k() != b.k() {
        return Err(MatrixError::DimensionMismatch {
            what: "sptrsm output shape",
            expected: b.n() * b.k(),
            actual: x.n() * x.k(),
        });
    }
    let n = b.n();
    let k = b.k();
    let xp = SendPtr(x.as_mut_slice().as_mut_ptr());
    pool.run(k, &|j| {
        // SAFETY: column slices are disjoint (column-major layout), so job
        // j is the only writer and reader of x[j*n..(j+1)*n].
        let xj = unsafe { std::slice::from_raw_parts_mut(xp.ptr().add(j * n), n) };
        let bj = b.col(j);
        for lvl in 0..levels.nlevels() {
            for &i in levels.level_items(lvl) {
                xj[i] = solve_row(l, bj, xj, i);
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn rhs(n: usize, k: usize) -> MultiVector<f64> {
        let data: Vec<f64> = (0..n * k).map(|i| ((i * 31 % 97) as f64) - 48.0).collect();
        MultiVector::from_columns(n, k, data).unwrap()
    }

    #[test]
    fn multivector_accessors() {
        let mut m = MultiVector::<f64>::zeros(3, 2);
        m.set(1, 1, 5.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.col(1), &[0.0, 5.0, 0.0]);
        m.col_mut(0)[2] = 7.0;
        assert_eq!(m.get(2, 0), 7.0);
    }

    #[test]
    fn from_columns_validates_len() {
        assert!(MultiVector::<f64>::from_columns(3, 2, vec![0.0; 5]).is_err());
    }

    #[test]
    fn serial_and_levelset_agree() {
        let l = generate::random_lower::<f64>(400, 4.0, 81);
        let levels = LevelSets::analyse(&l).unwrap();
        let b = rhs(400, 6);
        let x1 = sptrsm_serial(&l, &b).unwrap();
        let x2 = sptrsm_levelset(&l, &levels, &b).unwrap();
        for j in 0..6 {
            assert_eq!(x1.col(j), x2.col(j), "column {j} must be bit-identical");
        }
    }

    #[test]
    fn into_variant_matches_and_validates_shape() {
        let l = generate::grid2d::<f64>(15, 15, 84);
        let levels = LevelSets::analyse(&l).unwrap();
        let b = rhs(225, 4);
        let pool = ExecPool::new(2);
        let mut x = MultiVector::zeros(225, 4);
        sptrsm_levelset_into(&l, &levels, &b, &mut x, &pool).unwrap();
        assert_eq!(x, sptrsm_serial(&l, &b).unwrap());
        let mut bad = MultiVector::zeros(225, 3);
        assert!(sptrsm_levelset_into(&l, &levels, &b, &mut bad, &pool).is_err());
    }

    #[test]
    fn each_column_solves_its_system() {
        let l = generate::grid2d::<f64>(12, 12, 82);
        let levels = LevelSets::analyse(&l).unwrap();
        let b = rhs(144, 3);
        let x = sptrsm_levelset(&l, &levels, &b).unwrap();
        for j in 0..3 {
            let r = recblock_matrix::vector::residual_inf(&l, x.col(j), b.col(j)).unwrap();
            assert!(r < 1e-12, "column {j} residual {r}");
        }
    }

    #[test]
    fn rejects_mismatched_rows() {
        let l = Csr::<f64>::identity(4);
        let b = MultiVector::<f64>::zeros(3, 2);
        assert!(sptrsm_serial(&l, &b).is_err());
        let levels = LevelSets::analyse(&l).unwrap();
        assert!(sptrsm_levelset(&l, &levels, &b).is_err());
    }

    #[test]
    fn single_column_matches_sptrsv() {
        let l = generate::chain::<f64>(100, 83);
        let levels = LevelSets::analyse(&l).unwrap();
        let b = rhs(100, 1);
        let x = sptrsm_levelset(&l, &levels, &b).unwrap();
        let x_ref = crate::sptrsv::serial_csr(&l, b.col(0)).unwrap();
        assert!(max_rel_diff(x.col(0), &x_ref) < 1e-13);
    }
}
