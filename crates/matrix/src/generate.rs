//! Deterministic synthetic matrix generators.
//!
//! The paper evaluates on 159 SuiteSparse matrices spanning a handful of
//! structural families; its analysis attributes each result to a structural
//! feature (number of level sets, parallelism per level, row/column length
//! skew, empty-row ratio). These generators produce matrices with those
//! features *directly controllable*, which is what lets the benchmark
//! harness reproduce the shape of every experiment without the original
//! dataset:
//!
//! | generator | SuiteSparse family it mimics | key features |
//! |---|---|---|
//! | [`diagonal`] | trivially parallel triangles | 1 level |
//! | [`kkt_like`] | `nlpkkt200` (optimisation) | 2 levels, huge parallelism |
//! | [`hub_power_law`] | `mawi_*`, `FullChip` (network/circuit) | few levels, extreme column-length skew |
//! | [`layered`] | `kkt_power`, `vas_stokes_4M` | exact level count, tunable parallelism |
//! | [`banded`] | FEM/structural | bandwidth-bound levels |
//! | [`grid2d`] | structured grids | wavefront levels |
//! | [`chain`] | `tmt_sym` | fully serial (n levels) |
//! | [`random_lower`] | generic irregular | uniform randomness |
//! | [`rect_random`] | square/rect sub-blocks | controlled `emptyratio` and row skew |
//! | [`dense_lower`] | the paper's Tables 1–2 analysis | dense traffic counting |
//!
//! All triangular generators return CSR lower-triangular matrices with a full
//! diagonally-dominant diagonal (`d_ii = 1 + Σ|l_ij|`), so every generated
//! system is well conditioned and solver comparisons are numerically clean.
//! Every generator is deterministic in its seed.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::scalar::Scalar;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Finish a lower-triangular matrix: collect off-diagonal triplets, add a
/// dominant diagonal and convert to CSR.
fn finish_lower<S: Scalar>(n: usize, offdiag: Vec<(usize, usize)>, seed: u64) -> Csr<S> {
    let mut r = rng(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut coo = Coo::<S>::with_capacity(n, n, offdiag.len() + n);
    let mut row_abs = vec![0.0f64; n];
    for (i, j) in offdiag {
        debug_assert!(j < i, "off-diagonal entries must be strictly lower");
        let v = r.gen_range(0.1..1.0);
        row_abs[i] += v;
        coo.push(i, j, S::from_f64(v)).expect("generator indices in range");
    }
    for (i, &acc) in row_abs.iter().enumerate() {
        coo.push(i, i, S::from_f64(1.0 + acc)).expect("diagonal in range");
    }
    coo.to_csr()
}

/// Purely diagonal lower-triangular matrix — one level set, perfect
/// parallelism (the paper's "completely parallel" case).
pub fn diagonal<S: Scalar>(n: usize, seed: u64) -> Csr<S> {
    finish_lower(n, Vec::new(), seed)
}

/// Dense lower triangle (all `j ≤ i` stored). Used by the traffic-formula
/// experiments (Tables 1–2), which the paper derives for dense cases.
pub fn dense_lower<S: Scalar>(n: usize, seed: u64) -> Csr<S> {
    let mut off = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in 0..i {
            off.push((i, j));
        }
    }
    finish_lower(n, off, seed)
}

/// Bidiagonal chain: row `i` depends on row `i−1`. Exactly `n` level sets of
/// size 1 — the `tmt_sym` analogue (parallelism min = avg = max = 1).
pub fn chain<S: Scalar>(n: usize, seed: u64) -> Csr<S> {
    let off = (1..n).map(|i| (i, i - 1)).collect();
    finish_lower(n, off, seed)
}

/// Banded lower triangle: entries `(i, i−k)` for `k ≤ bandwidth` kept with
/// probability `fill`. FEM-like structure whose level count tracks `n /
/// bandwidth`-ish wavefronts.
pub fn banded<S: Scalar>(n: usize, bandwidth: usize, fill: f64, seed: u64) -> Csr<S> {
    let mut r = rng(seed);
    let mut off = Vec::new();
    for i in 1..n {
        for k in 1..=bandwidth.min(i) {
            if r.gen_bool(fill) {
                off.push((i, i - k));
            }
        }
    }
    finish_lower(n, off, seed)
}

/// Lower triangle of the 5-point stencil on an `nx × ny` grid (row-major
/// numbering): row `(x, y)` depends on `(x−1, y)` and `(x, y−1)`. Level sets
/// are the anti-diagonal wavefronts: `nx + ny − 1` levels.
pub fn grid2d<S: Scalar>(nx: usize, ny: usize, seed: u64) -> Csr<S> {
    let n = nx * ny;
    let mut off = Vec::with_capacity(2 * n);
    for y in 0..ny {
        for x in 0..nx {
            let i = y * nx + x;
            if x > 0 {
                off.push((i, i - 1));
            }
            if y > 0 {
                off.push((i, i - nx));
            }
        }
    }
    finish_lower(n, off, seed)
}

/// Uniform random lower triangle: each row `i > 0` gets
/// `~avg_row_nnz` off-diagonal entries drawn uniformly from `0..i`.
pub fn random_lower<S: Scalar>(n: usize, avg_row_nnz: f64, seed: u64) -> Csr<S> {
    let mut r = rng(seed);
    let mut off = Vec::new();
    let mut cols = Vec::new();
    for i in 1..n {
        let k = sample_count(&mut r, avg_row_nnz).min(i);
        cols.clear();
        while cols.len() < k {
            let j = r.gen_range(0..i);
            if !cols.contains(&j) {
                cols.push(j);
            }
        }
        off.extend(cols.iter().map(|&j| (i, j)));
    }
    finish_lower(n, off, seed)
}

/// KKT-like two-level structure (the `nlpkkt200` analogue): the first
/// `n_top` rows are pure diagonal; every later row depends on `deps` random
/// columns inside the top block. Exactly 2 level sets, each huge.
pub fn kkt_like<S: Scalar>(n: usize, n_top: usize, deps: usize, seed: u64) -> Csr<S> {
    assert!(n_top > 0 && n_top < n, "top block must be a proper prefix");
    let mut r = rng(seed);
    let mut off = Vec::new();
    let mut cols = Vec::new();
    for i in n_top..n {
        cols.clear();
        while cols.len() < deps.min(n_top) {
            let j = r.gen_range(0..n_top);
            if !cols.contains(&j) {
                cols.push(j);
            }
        }
        off.extend(cols.iter().map(|&j| (i, j)));
    }
    finish_lower(n, off, seed)
}

/// Hub-dominated power-law structure (the `mawi`/`FullChip` analogue): a
/// small set of `n_hubs` early "hub" rows carry almost all dependencies, so
/// a few *columns* become extremely long (the load-imbalance pathology the
/// paper's Section 2.2 calls out), while the level count stays small.
///
/// `extra_chain` appends a serial chain over the last `extra_chain` rows to
/// push the level count up without adding parallel work (FullChip has 324
/// levels with min parallelism 1).
pub fn hub_power_law<S: Scalar>(
    n: usize,
    n_hubs: usize,
    links_per_row: usize,
    extra_chain: usize,
    seed: u64,
) -> Csr<S> {
    assert!(n_hubs > 0 && n_hubs < n);
    let mut r = rng(seed);
    let mut off = Vec::new();
    let mut cols = Vec::new();
    let chain_start = n - extra_chain.min(n.saturating_sub(n_hubs + 1));
    for i in n_hubs..n {
        cols.clear();
        // Zipf-ish hub choice: hub h with weight 1/(h+1).
        let k = links_per_row.min(n_hubs);
        while cols.len() < k {
            let u: f64 = r.gen_range(0.0f64..1.0);
            // Inverse-CDF of the 1/(h+1) weights over 0..n_hubs.
            let h = (((n_hubs as f64 + 1.0).powf(u)) - 1.0).floor() as usize;
            let h = h.min(n_hubs - 1);
            if !cols.contains(&h) {
                cols.push(h);
            }
        }
        off.extend(cols.iter().map(|&j| (i, j)));
        if i > chain_start && i >= 1 {
            off.push((i, i - 1));
        }
    }
    finish_lower(n, off, seed)
}

/// Shape of the per-layer sizes used by [`layered`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerShape {
    /// All layers the same size.
    Uniform,
    /// Layer sizes decay geometrically by the given ratio (< 1.0 front-loads
    /// parallelism, > 1.0 back-loads it).
    Geometric(f64),
}

/// DAG with an exact number of level sets (the workhorse generator for
/// `kkt_power`/`vas_stokes` analogues and for the Figure 5 selector sweep).
///
/// Rows are partitioned into `nlayers` layers; each row in layer `l > 0`
/// receives one dependency pinned to layer `l−1` (so the level count is
/// exactly `nlayers`) plus `avg_extra_deps` further dependencies drawn
/// uniformly from all earlier rows.
pub fn layered<S: Scalar>(
    n: usize,
    nlayers: usize,
    avg_extra_deps: f64,
    shape: LayerShape,
    seed: u64,
) -> Csr<S> {
    assert!(nlayers >= 1 && nlayers <= n, "need 1 <= nlayers <= n");
    let sizes = layer_sizes(n, nlayers, shape);
    let mut starts = Vec::with_capacity(nlayers + 1);
    starts.push(0usize);
    for &s in &sizes {
        starts.push(starts.last().unwrap() + s);
    }
    let mut r = rng(seed);
    let mut off = Vec::new();
    for l in 1..nlayers {
        let (prev_lo, prev_hi) = (starts[l - 1], starts[l]);
        for i in starts[l]..starts[l + 1] {
            // Pin the level.
            off.push((i, r.gen_range(prev_lo..prev_hi)));
            let extra = sample_count(&mut r, avg_extra_deps);
            for _ in 0..extra {
                let j = r.gen_range(0..starts[l]);
                off.push((i, j));
            }
        }
    }
    // Duplicate (i, j) pairs are merged by the COO→CSR conversion; values sum
    // but diagonal dominance keeps the system solvable.
    finish_lower_dedup(n, off, seed)
}

/// Rectangular (or square) random matrix with controlled empty-row ratio and
/// row-length skew. `skew = 0` gives uniform row lengths; larger values give
/// a heavier tail (`max_row ≈ avg · e^skew`). Used for SpMV kernel tests and
/// the Figure 5(b) sweep.
pub fn rect_random<S: Scalar>(
    nrows: usize,
    ncols: usize,
    avg_row_nnz: f64,
    empty_ratio: f64,
    skew: f64,
    seed: u64,
) -> Csr<S> {
    assert!((0.0..=1.0).contains(&empty_ratio));
    let mut r = rng(seed);
    let mut coo = Coo::<S>::new(nrows, ncols);
    if ncols == 0 || nrows == 0 {
        return coo.to_csr();
    }
    let filled_target = ((1.0 - empty_ratio) * nrows as f64).round() as usize;
    // Choose which rows are non-empty deterministically spread out.
    let mut rows: Vec<usize> = (0..nrows).collect();
    rows.shuffle(&mut r);
    let filled = &rows[..filled_target.min(nrows)];
    // Compensate average so overall nnz/nrows matches `avg_row_nnz`.
    let per_filled =
        if filled.is_empty() { 0.0 } else { avg_row_nnz * nrows as f64 / filled.len() as f64 };
    let mut seen = Vec::new();
    for &i in filled {
        let boost = if skew > 0.0 && r.gen_bool(0.05) { skew.exp() } else { 1.0 };
        let k = sample_count(&mut r, per_filled * boost).clamp(1, ncols);
        seen.clear();
        while seen.len() < k {
            let j = r.gen_range(0..ncols);
            if !seen.contains(&j) {
                seen.push(j);
            }
        }
        for &j in &seen {
            coo.push(i, j, S::from_f64(r.gen_range(0.1..1.0))).expect("in range");
        }
    }
    coo.to_csr()
}

/// Add a few extremely long rows to an existing lower-triangular matrix —
/// the power-law *in-degree* pathology of circuit matrices (`FullChip`,
/// `vas_stokes_4M`), which serializes the sync-free method's atomic
/// accumulation into those rows' `left_sum`.
///
/// `n_heavy` rows are chosen from the last quarter of the index range (so
/// plenty of columns exist below them) and receive ≈`degree` uniformly
/// random dependencies each. The diagonal is re-dominated afterwards so the
/// system stays well conditioned.
///
/// The added dependencies are restricted to rows on strictly **shallower
/// level sets** than the heavy row, so the transformation lengthens rows
/// without deepening the dependency DAG: the level-set structure of `l` is
/// preserved exactly, for any seed. (Heavy rows model hub *bandwidth*
/// pressure, not extra serialisation.)
pub fn with_heavy_rows<S: Scalar>(l: &Csr<S>, n_heavy: usize, degree: usize, seed: u64) -> Csr<S> {
    let n = l.nrows();
    if n < 8 || n_heavy == 0 || degree == 0 {
        return l.clone();
    }
    let levels = crate::levelset::LevelSets::analyse_unchecked(l);
    let mut r = rng(seed ^ 0x5bd1_e995);
    let mut coo = Coo::<S>::with_capacity(n, n, l.nnz() + n_heavy * degree);
    let mut row_abs = vec![0.0f64; n];
    for (i, j, v) in l.iter() {
        if i != j {
            coo.push(i, j, v).expect("existing entries in range");
            row_abs[i] += v.abs().to_f64();
        }
    }
    // Pick distinct heavy rows in the last quarter.
    let lo = n - n / 4;
    let mut heavy: Vec<usize> = Vec::with_capacity(n_heavy);
    while heavy.len() < n_heavy.min(n / 4) {
        let i = r.gen_range(lo..n);
        if !heavy.contains(&i) {
            heavy.push(i);
        }
    }
    for &i in &heavy {
        let d = degree.min(i);
        // Dense sampling without replacement via a shuffled stride walk.
        let stride = (i / d).max(1);
        let offset = r.gen_range(0..stride);
        let mut added = 0usize;
        let mut j = offset;
        while j < i && added < d {
            // Only depend on strictly shallower levels, so the heavy row's
            // own level — and hence the whole level-set profile — is
            // unchanged.
            if levels.level_of(j) < levels.level_of(i) {
                let v = r.gen_range(0.01..0.1);
                // Duplicates with existing entries are merged by the CSR
                // build.
                coo.push(i, j, S::from_f64(v)).expect("heavy entry in range");
                row_abs[i] += v;
                added += 1;
            }
            j += stride;
        }
    }
    for (i, &acc) in row_abs.iter().enumerate() {
        coo.push(i, i, S::from_f64(1.0 + acc)).expect("diagonal in range");
    }
    coo.to_csr()
}

/// Split `n` into `nlayers` positive sizes with the requested shape.
fn layer_sizes(n: usize, nlayers: usize, shape: LayerShape) -> Vec<usize> {
    match shape {
        LayerShape::Uniform => {
            let base = n / nlayers;
            let rem = n % nlayers;
            (0..nlayers).map(|l| base + usize::from(l < rem)).collect()
        }
        LayerShape::Geometric(ratio) => {
            assert!(ratio > 0.0, "geometric ratio must be positive");
            let mut weights: Vec<f64> = Vec::with_capacity(nlayers);
            let mut w = 1.0;
            for _ in 0..nlayers {
                weights.push(w);
                w *= ratio;
            }
            let total: f64 = weights.iter().sum();
            let mut sizes: Vec<usize> = weights
                .iter()
                .map(|w| ((w / total) * n as f64).floor().max(1.0) as usize)
                .collect();
            // Fix up rounding drift while keeping every layer non-empty.
            let mut assigned: usize = sizes.iter().sum();
            let mut l = 0usize;
            while assigned < n {
                sizes[l % nlayers] += 1;
                assigned += 1;
                l += 1;
            }
            while assigned > n {
                let idx = sizes
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &s)| s)
                    .map(|(i, _)| i)
                    .expect("nlayers >= 1");
                assert!(sizes[idx] > 1, "cannot shrink below one row per layer");
                sizes[idx] -= 1;
                assigned -= 1;
            }
            sizes
        }
    }
}

/// Poisson-like small-count sampler around `avg` (geometric tail, cheap and
/// deterministic enough for structure generation).
fn sample_count<R: Rng>(r: &mut R, avg: f64) -> usize {
    if avg <= 0.0 {
        return 0;
    }
    let base = avg.floor() as usize;
    let frac = avg - base as f64;
    base + usize::from(r.gen_bool(frac.clamp(0.0, 1.0)))
}

/// Like [`finish_lower`] but tolerant of duplicate `(i, j)` pairs.
fn finish_lower_dedup<S: Scalar>(n: usize, mut offdiag: Vec<(usize, usize)>, seed: u64) -> Csr<S> {
    offdiag.sort_unstable();
    offdiag.dedup();
    finish_lower(n, offdiag, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelset::LevelSets;
    use crate::stats::MatrixStats;

    #[test]
    fn diagonal_has_one_level() {
        let l = diagonal::<f64>(100, 1);
        assert!(l.is_solvable_lower());
        assert_eq!(LevelSets::analyse(&l).unwrap().nlevels(), 1);
    }

    #[test]
    fn chain_has_n_levels() {
        let l = chain::<f64>(50, 2);
        assert!(l.is_solvable_lower());
        assert_eq!(LevelSets::analyse(&l).unwrap().nlevels(), 50);
    }

    #[test]
    fn dense_lower_is_dense() {
        let l = dense_lower::<f64>(10, 3);
        assert_eq!(l.nnz(), 10 * 11 / 2);
        assert!(l.is_solvable_lower());
        assert_eq!(LevelSets::analyse(&l).unwrap().nlevels(), 10);
    }

    #[test]
    fn grid2d_wavefront_levels() {
        let l = grid2d::<f64>(7, 5, 4);
        assert!(l.is_solvable_lower());
        assert_eq!(LevelSets::analyse(&l).unwrap().nlevels(), 7 + 5 - 1);
    }

    #[test]
    fn kkt_like_has_two_levels() {
        let l = kkt_like::<f64>(1000, 400, 3, 5);
        assert!(l.is_solvable_lower());
        let ls = LevelSets::analyse(&l).unwrap();
        assert_eq!(ls.nlevels(), 2);
        assert_eq!(ls.level_size(0), 400);
        assert_eq!(ls.level_size(1), 600);
    }

    #[test]
    fn layered_hits_exact_level_count() {
        for &nl in &[1usize, 2, 7, 33] {
            let l = layered::<f64>(600, nl, 1.5, LayerShape::Uniform, 6);
            assert!(l.is_solvable_lower());
            assert_eq!(LevelSets::analyse(&l).unwrap().nlevels(), nl, "nlayers={nl}");
        }
    }

    #[test]
    fn layered_geometric_shape() {
        let l = layered::<f64>(1000, 10, 0.5, LayerShape::Geometric(0.7), 7);
        assert!(l.is_solvable_lower());
        let ls = LevelSets::analyse(&l).unwrap();
        assert_eq!(ls.nlevels(), 10);
        // Front-loaded: first layer larger than last.
        assert!(ls.level_size(0) > ls.level_size(9));
    }

    #[test]
    fn hub_power_law_has_long_columns() {
        let l = hub_power_law::<f64>(2000, 10, 2, 0, 8);
        assert!(l.is_solvable_lower());
        let csc = l.to_csc();
        let max_col = (0..2000).map(|j| csc.col_nnz(j)).max().unwrap();
        // Hub columns collect a large share of the ~4000 links.
        assert!(max_col > 400, "max column length {max_col} not hub-like");
        let ls = LevelSets::analyse(&l).unwrap();
        assert!(ls.nlevels() <= 3, "hubs only: {} levels", ls.nlevels());
    }

    #[test]
    fn hub_power_law_chain_extends_levels() {
        let l = hub_power_law::<f64>(500, 8, 1, 100, 9);
        let ls = LevelSets::analyse(&l).unwrap();
        assert!(ls.nlevels() > 50, "chain tail should add levels, got {}", ls.nlevels());
    }

    #[test]
    fn random_lower_avg_degree() {
        let l = random_lower::<f64>(2000, 4.0, 10);
        assert!(l.is_solvable_lower());
        let s = MatrixStats::of_matrix(&l);
        // avg includes the diagonal: expect ≈ 5.
        assert!((s.nnz_per_row - 5.0).abs() < 0.5, "nnz/row = {}", s.nnz_per_row);
    }

    #[test]
    fn rect_random_controls_empty_ratio() {
        let a = rect_random::<f64>(1000, 500, 2.0, 0.6, 0.0, 11);
        let s = MatrixStats::of_matrix(&a);
        assert!((s.empty_ratio - 0.6).abs() < 0.02, "emptyratio = {}", s.empty_ratio);
    }

    #[test]
    fn rect_random_skew_creates_long_rows() {
        let uniform = rect_random::<f64>(2000, 2000, 4.0, 0.0, 0.0, 12);
        let skewed = rect_random::<f64>(2000, 2000, 4.0, 0.0, 3.0, 12);
        let m_u = MatrixStats::of_matrix(&uniform).max_row_nnz;
        let m_s = MatrixStats::of_matrix(&skewed).max_row_nnz;
        assert!(m_s > m_u, "skewed max row {m_s} should exceed uniform {m_u}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(random_lower::<f64>(300, 3.0, 42), random_lower::<f64>(300, 3.0, 42));
        assert_eq!(
            layered::<f64>(300, 5, 1.0, LayerShape::Uniform, 42),
            layered::<f64>(300, 5, 1.0, LayerShape::Uniform, 42)
        );
        assert_ne!(random_lower::<f64>(300, 3.0, 1), random_lower::<f64>(300, 3.0, 2));
    }

    #[test]
    fn heavy_rows_inflate_max_row() {
        let base = layered::<f64>(2000, 20, 2.0, LayerShape::Uniform, 15);
        let heavy = with_heavy_rows(&base, 2, 800, 15);
        assert!(heavy.is_solvable_lower());
        let base_max = (0..2000).map(|i| base.row_nnz(i)).max().unwrap();
        let heavy_max = (0..2000).map(|i| heavy.row_nnz(i)).max().unwrap();
        assert!(heavy_max > 500, "heavy max {heavy_max}");
        assert!(heavy_max > 5 * base_max, "{heavy_max} vs {base_max}");
        // Still diagonally dominant.
        for i in 0..2000 {
            let (cols, vals) = heavy.row(i);
            let mut off = 0.0;
            let mut diag = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} lost dominance");
        }
    }

    #[test]
    fn heavy_rows_noop_cases() {
        let base = chain::<f64>(100, 16);
        assert_eq!(with_heavy_rows(&base, 0, 50, 1), base);
        assert_eq!(with_heavy_rows(&base, 2, 0, 1), base);
    }

    #[test]
    fn banded_respects_bandwidth() {
        let l = banded::<f64>(200, 5, 0.8, 13);
        assert!(l.is_solvable_lower());
        for (i, j, _) in l.iter() {
            assert!(i - j <= 5);
        }
    }

    #[test]
    fn diagonal_dominance_holds() {
        let l = random_lower::<f64>(500, 6.0, 14);
        for i in 0..500 {
            let (cols, vals) = l.row(i);
            let mut off = 0.0;
            let mut diag = 0.0;
            for (&j, &v) in cols.iter().zip(vals) {
                if j == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i} not diagonally dominant");
        }
    }
}
