//! CPU wall-clock comparison of the SpTRSV methods (solve phase only,
//! preprocessing excluded — the repeated-solve regime of Table 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recblock::blocked::DepthRule;
use recblock::solver::{RecBlockSolver, SolverOptions};
use recblock_kernels::sptrsv::{serial_csr, CusparseLikeSolver, LevelSetSolver, SyncFreeSolver};
use recblock_matrix::{generate, Csr};
use std::time::Duration;

fn matrices() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("kkt_20k", generate::kkt_like::<f64>(20_000, 8_000, 4, 1)),
        (
            "layered_20k",
            generate::layered::<f64>(20_000, 40, 3.0, generate::LayerShape::Uniform, 2),
        ),
        ("hub_20k", generate::hub_power_law::<f64>(20_000, 16, 3, 200, 3)),
        // Level-heavy case: 100 levels wide enough (~300 rows) that the
        // legacy path dispatched each one in parallel (allocate + collect +
        // scatter per level) — the regime where the execution engine's
        // preplanned in-place schedules pay off.
        (
            "deep_layered_30k",
            generate::layered::<f64>(30_000, 100, 3.0, generate::LayerShape::Uniform, 5),
        ),
    ]
}

fn bench_sptrsv(c: &mut Criterion) {
    let mut g = c.benchmark_group("sptrsv_solve");
    g.measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    for (name, l) in matrices() {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();

        g.bench_with_input(BenchmarkId::new("serial", name), &l, |bench, l| {
            bench.iter(|| serial_csr(l, &b).unwrap())
        });

        let levelset = LevelSetSolver::new(l.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("levelset", name), &levelset, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });

        // Before/after pair for the execution engine: the legacy per-level
        // dispatch (collect + scatter) versus the preplanned zero-allocation
        // schedule, on the same analysed solver.
        let mut x = vec![0.0f64; n];
        g.bench_with_input(
            BenchmarkId::new("levelset_legacy_into", name),
            &levelset,
            |bench, s| bench.iter(|| s.solve_into_unscheduled(&b, &mut x).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("levelset_engine_into", name),
            &levelset,
            |bench, s| bench.iter(|| s.solve_into(&b, &mut x).unwrap()),
        );

        let syncfree = SyncFreeSolver::new(&l).unwrap();
        g.bench_with_input(BenchmarkId::new("syncfree", name), &syncfree, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });

        let cusparse = CusparseLikeSolver::analyse(l.clone()).unwrap();
        g.bench_with_input(BenchmarkId::new("cusparse_like", name), &cusparse, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("cusparse_like_legacy", name),
            &cusparse,
            |bench, s| bench.iter(|| s.solve_legacy(&b).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("cusparse_like_engine_into", name),
            &cusparse,
            |bench, s| bench.iter(|| s.solve_into(&b, &mut x).unwrap()),
        );

        let opts = SolverOptions { depth: DepthRule::Fixed(4), ..SolverOptions::default() };
        let block = RecBlockSolver::new(&l, opts).unwrap();
        g.bench_with_input(BenchmarkId::new("recblock", name), &block, |bench, s| {
            bench.iter(|| s.solve(&b).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sptrsv);
criterion_main!(benches);
