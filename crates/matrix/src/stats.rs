//! Per-matrix structural statistics.
//!
//! These are exactly the features the paper's adaptive kernel selector keys
//! on: `nnz/row` and `nlevels` for SpTRSV kernels (Figure 5(a)), `nnz/row`
//! and `emptyratio` for SpMV kernels (Figure 5(b)), plus the parallelism
//! profile reported in Table 4.

use crate::csr::Csr;
use crate::levelset::LevelSets;
use crate::scalar::Scalar;

/// Structural statistics of a sparse matrix (triangular or rectangular).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// Average row length (`nnz / nrows`), the paper's `nnz/row`.
    pub nnz_per_row: f64,
    /// Longest row.
    pub max_row_nnz: usize,
    /// Number of rows with no stored entries.
    pub empty_rows: usize,
    /// `empty_rows / nrows`, the paper's `emptyratio`.
    pub empty_ratio: f64,
    /// Number of level sets (only meaningful for triangular matrices;
    /// `None` for rectangular inputs).
    pub nlevels: Option<usize>,
    /// (min, avg, max) components per level, the paper's "Parallelism".
    pub parallelism: Option<(usize, f64, usize)>,
}

impl MatrixStats {
    /// Statistics of a rectangular/square matrix (no level analysis).
    pub fn of_matrix<S: Scalar>(a: &Csr<S>) -> Self {
        let nrows = a.nrows();
        let nnz = a.nnz();
        let mut max_row_nnz = 0usize;
        let mut empty_rows = 0usize;
        for i in 0..nrows {
            let r = a.row_nnz(i);
            max_row_nnz = max_row_nnz.max(r);
            if r == 0 {
                empty_rows += 1;
            }
        }
        MatrixStats {
            nrows,
            ncols: a.ncols(),
            nnz,
            nnz_per_row: if nrows == 0 { 0.0 } else { nnz as f64 / nrows as f64 },
            max_row_nnz,
            empty_rows,
            empty_ratio: if nrows == 0 { 0.0 } else { empty_rows as f64 / nrows as f64 },
            nlevels: None,
            parallelism: None,
        }
    }

    /// Statistics of a solvable lower-triangular matrix, including the level
    /// decomposition.
    pub fn of_lower_triangular<S: Scalar>(l: &Csr<S>, levels: &LevelSets) -> Self {
        let mut s = Self::of_matrix(l);
        s.nlevels = Some(levels.nlevels());
        s.parallelism = Some(levels.parallelism());
        s
    }

    /// Convenience: analyse levels and compute statistics in one call.
    pub fn analyse_lower<S: Scalar>(l: &Csr<S>) -> Self {
        let levels = LevelSets::analyse_unchecked(l);
        Self::of_lower_triangular(l, &levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn rectangular_stats() {
        let mut coo = Coo::<f64>::new(4, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        let a = coo.to_csr();
        let s = MatrixStats::of_matrix(&a);
        assert_eq!(s.nnz, 3);
        assert_eq!(s.max_row_nnz, 2);
        assert_eq!(s.empty_rows, 2);
        assert!((s.empty_ratio - 0.5).abs() < 1e-12);
        assert!((s.nnz_per_row - 0.75).abs() < 1e-12);
        assert_eq!(s.nlevels, None);
    }

    #[test]
    fn triangular_stats_include_levels() {
        let l = Csr::<f64>::identity(6);
        let s = MatrixStats::analyse_lower(&l);
        assert_eq!(s.nlevels, Some(1));
        assert_eq!(s.parallelism, Some((6, 6.0, 6)));
        assert_eq!(s.empty_rows, 0);
    }

    #[test]
    fn empty_matrix_stats() {
        let a = Csr::<f64>::zero(0, 0);
        let s = MatrixStats::of_matrix(&a);
        assert_eq!(s.nnz_per_row, 0.0);
        assert_eq!(s.empty_ratio, 0.0);
    }
}
