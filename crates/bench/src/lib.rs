//! Benchmark harness for the recblock reproduction.
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (see `DESIGN.md` §4 for the experiment index):
//!
//! | target | paper artefact |
//! |---|---|
//! | `table1_2` | Tables 1–2: traffic formulas vs instrumented counters |
//! | `table3` | Table 3: the two simulated GPUs and three algorithms |
//! | `figure4` | Fig. 4: SpMV time of the 3 block algorithms vs #parts |
//! | `figure5` | Fig. 5: best-kernel heatmaps and derived thresholds |
//! | `figure6` | Fig. 6: GFlops of the 3 methods on the 159-matrix corpus |
//! | `figure7` | Fig. 7: double/single precision ratio box plots |
//! | `table4` | Table 4: the six representative matrices |
//! | `table5` | Table 5: preprocessing amortisation |
//!
//! Each experiment lives in [`experiments`] as a library function so the
//! binaries stay thin and integration tests can run shrunken versions.

#![warn(missing_docs)]

pub mod corpus;
pub mod experiments;
pub mod harness;
pub mod representatives;

pub use corpus::{corpus_159, CorpusEntry, MatrixFamily};
pub use harness::HarnessConfig;
pub use representatives::{representatives, Representative};
