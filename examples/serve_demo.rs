//! Demo of the `recblock-serve` solve service: three matrices, a burst of
//! interleaved requests, and the built-in metrics at the end.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Pass `--metrics` to also dump the Prometheus text exposition — the same
//! output a `/metrics` endpoint would serve — after the burst completes.

use recblock_matrix::generate;
use recblock_serve::{ServeConfig, SolveService};

fn main() {
    let prometheus = std::env::args().skip(1).any(|a| a == "--metrics");
    let config = ServeConfig::default().with_max_batch(8).with_queue_capacity(128);
    println!(
        "starting service: {} workers, max batch {}, queue {}",
        config.workers, config.max_batch, config.queue_capacity
    );
    let service = SolveService::<f64>::new(config);

    // Three triangular factors the service will see. The first request for
    // each pays the preprocessing; everything after hits the plan cache.
    let matrices = [
        generate::random_lower::<f64>(20_000, 6.0, 1),
        generate::grid2d::<f64>(120, 120, 2),
        generate::layered::<f64>(15_000, 24, 3.0, generate::LayerShape::Uniform, 3),
    ];
    for (i, l) in matrices.iter().enumerate() {
        service.warm(l).expect("preprocessing failed");
        println!("warmed matrix {i}: {} ({} nnz)", l.fingerprint(), l.nnz());
    }

    // A burst of 60 requests round-robining over the matrices. Same-matrix
    // requests that queue together are coalesced into one multi-RHS solve.
    let handles: Vec<_> = (0..60)
        .map(|j| {
            let l = &matrices[j % matrices.len()];
            let b: Vec<f64> =
                (0..l.nrows()).map(|i| ((i + j) as f64 * 0.003).sin() + 2.0).collect();
            (j, service.submit(l, b).expect("submit failed"))
        })
        .collect();
    for (j, h) in handles {
        let x = h.wait().expect("solve failed");
        if j < 3 {
            println!("request {j}: |x| = {}, x[0] = {:.6}", x.len(), x[0]);
        }
    }

    let stats = service.shutdown();
    println!("\n--- service metrics ---\n{stats}");
    if prometheus {
        println!("\n--- prometheus exposition ---\n{}", stats.render_prometheus());
    }
    println!(
        "\npreprocessing amortisation: {:?} spent building plans once, {:?} saved by reuse",
        stats.preprocess_time, stats.preprocess_time_saved
    );
}
