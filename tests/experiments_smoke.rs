//! Smoke tests for the benchmark harness: every experiment runs end to end
//! (shrunken where the full corpus would be slow) and its report carries the
//! paper's signature content.

use recblock_bench::{experiments, HarnessConfig};

#[test]
fn table1_2_reproduces_paper_values() {
    let report = experiments::table1_2::run_sized(64);
    // Paper Table 1: column block at 65536 parts = 32768.5 n.
    assert!(report.contains("32768.5000n"));
    // Paper Table 2: recursive at 256 parts = 4 n.
    assert!(report.contains("4.0000n"));
    assert!(report.contains("Instrumented counters"));
}

#[test]
fn table3_lists_hardware() {
    let report = experiments::table3::run();
    assert!(report.contains("Pascal"));
    assert!(report.contains("Turing"));
    assert!(report.contains("336.5"));
    assert!(report.contains("672.0"));
}

#[test]
fn figure4_report_has_both_matrices() {
    let cfg = HarnessConfig::default();
    let report = experiments::figure4::run_shrunk(&cfg, 8, &[4, 16, 64]);
    assert!(report.contains("kkt_power-s"));
    assert!(report.contains("FullChip-s"));
    assert!(report.lines().filter(|l| l.trim_start().starts_with("64")).count() >= 2);
}

#[test]
fn figure5_grids_and_thresholds() {
    let cfg = HarnessConfig::default();
    let report = experiments::figure5::run(&cfg);
    assert!(report.contains("Figure 5(a)"));
    assert!(report.contains("Figure 5(b)"));
    // Every kernel code appears somewhere in the maps.
    for code in ["P", "L", "S", "C"] {
        assert!(report.contains(code), "missing SpTRSV code {code}");
    }
    assert!(report.contains("scalar->vector at nnz/row"));
}

#[test]
fn figure6_summary_shows_block_advantage() {
    let cfg = HarnessConfig::default();
    let eval = experiments::figure6::evaluate(&cfg, 24);
    let report = experiments::figure6::render(eval);
    assert!(report.contains("Titan X"));
    assert!(report.contains("Titan RTX"));
    assert!(report.contains("avg speedup vs cuSPARSE"));
}

#[test]
fn figure7_box_stats_render() {
    let cfg = HarnessConfig::default();
    let samples = experiments::figure7::evaluate(&cfg, 32);
    let report = experiments::figure7::render(&samples);
    assert!(report.contains("median"));
    assert!(report.contains("block algorithm"));
}

#[test]
fn table4_renders_all_six() {
    let cfg = HarnessConfig::default();
    let rows = experiments::table4::evaluate(&cfg, 8);
    let report = experiments::table4::render(&rows);
    for name in ["nlpkkt200-s", "mawi-s", "kkt_power-s", "FullChip-s", "vas_stokes-s", "tmt_sym-s"]
    {
        assert!(report.contains(name), "missing {name}");
    }
}

#[test]
fn table5_amortisation_renders() {
    let cfg = HarnessConfig::default();
    let stats = experiments::table5::evaluate(&cfg, 8, 16);
    let report = experiments::table5::render(&stats);
    assert!(report.contains("1000 iters"));
    assert!(report.contains("paper: 9.16x"));
}
