//! Table 3: the two evaluated GPUs (here: simulated device presets) and the
//! three algorithms.

use crate::harness::Table;
use recblock_gpu_sim::DeviceSpec;

/// Render the platform/algorithm table.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("== Table 3: devices (simulated presets) and algorithms ==\n");
    let mut t = Table::new([
        "device",
        "arch",
        "cores",
        "clock MHz",
        "mem GiB",
        "B/W GB/s",
        "L2 KiB",
        "min blk rows",
    ]);
    for dev in [DeviceSpec::titan_x_pascal(), DeviceSpec::titan_rtx_turing()] {
        t.row([
            dev.name.to_string(),
            dev.architecture.to_string(),
            dev.cuda_cores.to_string(),
            format!("{:.0}", dev.clock_mhz),
            dev.memory_gib.to_string(),
            format!("{:.1}", dev.mem_bandwidth_gbs),
            (dev.l2_cache_bytes / 1024).to_string(),
            dev.min_block_rows().to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nAlgorithms: (1) cuSPARSE v2-like level-scheduled baseline,\n");
    out.push_str("            (2) Sync-free (Liu et al.),\n");
    out.push_str("            (3) Recursive block algorithm (this work).\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn lists_both_devices_and_paper_block_rule() {
        let r = super::run();
        assert!(r.contains("Titan X"));
        assert!(r.contains("Titan RTX"));
        assert!(r.contains("92160")); // the paper's example value
        assert!(r.contains("4608"));
    }
}
