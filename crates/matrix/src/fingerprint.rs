//! Structural matrix fingerprints for plan caching.
//!
//! Preprocessing a triangular factor costs ≈ 9× one solve (the paper's
//! Table 5), so a serving layer wants to reuse a preprocessed plan whenever
//! the *same* matrix arrives again. [`Csr::fingerprint`] condenses the
//! sparsity structure — dimensions, `row_ptr` and `col_idx` — into a
//! 64-bit digest plus the raw dimensions, cheap to compare and hash.
//!
//! The hash is a fixed, explicitly-coded multiply-rotate fold (no
//! `DefaultHasher`, whose per-process random keys would defeat
//! cross-process stability). Two matrices with equal structure always
//! produce equal fingerprints, on any run and any platform.
//!
//! Numeric values are *not* part of [`Csr::fingerprint`] — the paper's
//! preprocessing (reordering, blocking, kernel selection) depends on
//! structure only. Consumers that key *solves* (which do depend on values)
//! should additionally compare [`Csr::value_digest`].

use crate::csr::Csr;
use crate::scalar::Scalar;
use std::fmt;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(h: u64, w: u64) -> u64 {
    let x = (h ^ w).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x.rotate_left(29).wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

#[inline]
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^ (h >> 32)
}

/// Stable digest of a sparse matrix's structure.
///
/// Equality compares dimensions, nonzero count and the structural hash, so
/// accidental 64-bit collisions additionally need matching shape metadata
/// before two distinct structures could ever be confused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Rows of the matrix.
    pub nrows: usize,
    /// Columns of the matrix.
    pub ncols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Multiply-rotate fold over dims, `row_ptr` and `col_idx`.
    pub hash: u64,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}/{}nnz-{:016x}", self.nrows, self.ncols, self.nnz, self.hash)
    }
}

impl<S: Scalar> Csr<S> {
    /// Structural fingerprint: dims + `row_ptr` + `col_idx` (values
    /// excluded — see the module docs).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = mix(mix(SEED, self.nrows() as u64), self.ncols() as u64);
        for &p in self.row_ptr() {
            h = mix(h, p as u64);
        }
        // Domain-separate the two index streams so moving an entry between
        // them cannot cancel out.
        h = mix(h, 0x636f_6c5f_6964_7830);
        for &c in self.col_idx() {
            h = mix(h, c as u64);
        }
        Fingerprint { nrows: self.nrows(), ncols: self.ncols(), nnz: self.nnz(), hash: finalize(h) }
    }

    /// Stable digest of the numeric values (bit patterns, widened to `f64`).
    ///
    /// Combine with [`Csr::fingerprint`] when cached artifacts depend on
    /// values as well as structure — e.g. a solve plan that stores the
    /// factor's entries.
    pub fn value_digest(&self) -> u64 {
        let mut h = mix(SEED, self.vals().len() as u64);
        for v in self.vals() {
            h = mix(h, v.to_f64().to_bits());
        }
        finalize(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn identical_structure_equal_fingerprints() {
        let a = generate::random_lower::<f64>(400, 4.0, 21);
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().to_string(), b.fingerprint().to_string());
    }

    #[test]
    fn same_structure_different_values_equal_fingerprints() {
        let a = generate::random_lower::<f64>(300, 3.0, 22);
        let mut b = a.clone();
        for v in b.vals_mut() {
            *v *= 2.0;
        }
        assert_eq!(a.fingerprint(), b.fingerprint(), "structure-only digest");
        assert_ne!(a.value_digest(), b.value_digest(), "values digest differs");
    }

    #[test]
    fn perturbed_col_idx_changes_fingerprint() {
        let a = generate::banded::<f64>(200, 5, 0.7, 23);
        // Rebuild with one column index nudged (keep it lower-triangular
        // and in range).
        let (mut row_ptr, mut col_idx, vals) =
            (a.row_ptr().to_vec(), a.col_idx().to_vec(), a.vals().to_vec());
        let target =
            col_idx.iter().position(|&c| c > 0).expect("banded matrix has a nonzero column index");
        col_idx[target] -= 1;
        // Deduplicate if the nudge collides with a neighbour: drop instead.
        let b = if col_idx.windows(2).any(|w| w[0] == w[1]) {
            // Rare; fall back to removing the entry entirely.
            col_idx.remove(target);
            let vals2: Vec<f64> =
                vals.iter().enumerate().filter(|(i, _)| *i != target).map(|(_, &v)| v).collect();
            let row = a.row_ptr().partition_point(|&p| p <= target) - 1;
            for p in row_ptr.iter_mut().skip(row + 1) {
                *p -= 1;
            }
            Csr::from_parts_unchecked(a.nrows(), a.ncols(), row_ptr, col_idx, vals2)
        } else {
            Csr::from_parts_unchecked(a.nrows(), a.ncols(), row_ptr, col_idx, vals)
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_dims_change_fingerprint() {
        let a = generate::chain::<f64>(100, 24);
        let b = generate::chain::<f64>(101, 24);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same nnz layout, different declared width.
        let c = Csr::<f64>::from_parts_unchecked(
            a.nrows(),
            a.ncols() + 7,
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.vals().to_vec(),
        );
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn stable_across_runs_golden() {
        // Chain of 4 rows: row_ptr [0,1,3,5,7], col_idx [0,0,1,1,2,2,3].
        // The digest is pinned so any accidental algorithm change (or
        // platform-dependent hashing) fails loudly.
        let l = generate::chain::<f64>(4, 7);
        let fp = l.fingerprint();
        assert_eq!(fp.nrows, 4);
        assert_eq!(fp.nnz, 7);
        let again = generate::chain::<f64>(4, 7).fingerprint();
        assert_eq!(fp, again);
        assert_eq!(fp.hash, expected_chain4_hash(&l), "fold algorithm changed");
    }

    /// Independent re-implementation of the fold for the golden test.
    fn expected_chain4_hash(l: &Csr<f64>) -> u64 {
        let mut h = mix(mix(SEED, l.nrows() as u64), l.ncols() as u64);
        for &p in l.row_ptr() {
            h = mix(h, p as u64);
        }
        h = mix(h, 0x636f_6c5f_6964_7830);
        for &c in l.col_idx() {
            h = mix(h, c as u64);
        }
        finalize(h)
    }

    #[test]
    fn transpose_structure_differs() {
        let a = generate::random_lower::<f64>(150, 3.0, 26);
        let t = a.transpose();
        assert_ne!(a.fingerprint(), t.fingerprint());
    }

    #[test]
    fn fingerprint_is_cheap_relative_to_build() {
        // Not a benchmark — just a sanity check that it runs on a larger
        // instance without surprises.
        let a = generate::random_lower::<f64>(20_000, 6.0, 27);
        let f1 = a.fingerprint();
        let f2 = a.fingerprint();
        assert_eq!(f1, f2);
    }
}
