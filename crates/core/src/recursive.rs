//! Recursive block SpTRSV (the paper's Algorithm 6, Figure 2(c)) — the
//! direct recursive formulation.
//!
//! A triangular matrix splits into a top triangular block, a square (or
//! near-square) block, and a bottom triangular block; the triangular halves
//! recurse. Solving is an in-order traversal: solve(top) → SpMV(square) →
//! solve(bottom). This is the formulation the paper's Section 3.3 then
//! replaces with a loop over execution-order blocks ([`crate::blocked`]);
//! both are kept so the suite can measure exactly what the improved layout
//! buys (an ablation bench compares them).

use crate::adaptive::Selector;
use crate::report::{SimBreakdown, SolveBreakdown};
use crate::sqsolver::SqSolver;
use crate::traffic::TrafficCounts;
use crate::trisolver::TriSolver;
use recblock_gpu_sim::{CostParams, DeviceSpec, TriProfile};
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::ops::Range;
use std::time::Instant;

/// One node of the recursion tree.
#[derive(Debug, Clone)]
enum Node<S> {
    Leaf {
        rows: Range<usize>,
        tri: Box<TriSolver<S>>,
        profile: TriProfile,
    },
    Internal {
        top: Box<Node<S>>,
        square: SqSolver<S>,
        sq_rows: Range<usize>,
        sq_cols: Range<usize>,
        bottom: Box<Node<S>>,
    },
}

/// A preprocessed recursive-block solver (Algorithm 6).
#[derive(Debug, Clone)]
pub struct RecursiveBlockSolver<S> {
    n: usize,
    depth: usize,
    root: Node<S>,
    traffic: TrafficCounts,
}

impl<S: Scalar> RecursiveBlockSolver<S> {
    /// Recursively bisect `l` to the given depth and preprocess every block.
    pub fn new(
        l: &Csr<S>,
        depth: usize,
        selector: &Selector,
        syncfree_threads: usize,
    ) -> Result<Self, MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(l)?;
        let n = l.nrows();
        let mut traffic = TrafficCounts::default();
        let root = build(l, 0..n, depth, selector, syncfree_threads, &mut traffic)?;
        Ok(RecursiveBlockSolver { n, depth, root, traffic })
    }

    /// Recursion depth used (`2^depth` triangular leaves).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Dense-counted traffic of one solve (Tables 1–2 accounting).
    pub fn traffic(&self) -> TrafficCounts {
        self.traffic
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        Ok(self.solve_instrumented(b)?.0)
    }

    /// Solve and report the wall-clock tri/SpMV split.
    pub fn solve_instrumented(&self, b: &[S]) -> Result<(Vec<S>, SolveBreakdown), MatrixError> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "recursive block rhs",
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut work = b.to_vec();
        let mut x = vec![S::ZERO; self.n];
        let mut br = SolveBreakdown::default();
        solve_node(&self.root, &mut work, &mut x, &mut br)?;
        Ok((x, br))
    }

    /// Predicted GPU time per part under the cost model.
    pub fn simulated_breakdown(&self, dev: &DeviceSpec, params: &CostParams) -> SimBreakdown {
        let mut sim = SimBreakdown::default();
        sim_node::<S>(&self.root, dev, params, &mut sim);
        sim
    }
}

fn build<S: Scalar>(
    l: &Csr<S>,
    range: Range<usize>,
    depth: usize,
    selector: &Selector,
    threads: usize,
    traffic: &mut TrafficCounts,
) -> Result<Node<S>, MatrixError> {
    if depth == 0 || range.len() < 2 {
        let tri = l.submatrix(range.clone(), range.clone());
        traffic.tri(range.len());
        let (tri, profile) = TriSolver::build_adaptive(tri, selector, threads)?;
        return Ok(Node::Leaf { rows: range, tri: Box::new(tri), profile });
    }
    let mid = range.start + range.len() / 2;
    let top = build(l, range.start..mid, depth - 1, selector, threads, traffic)?;
    let sq_rows = mid..range.end;
    let sq_cols = range.start..mid;
    let square = l.submatrix(sq_rows.clone(), sq_cols.clone());
    traffic.spmv(square.nrows(), square.ncols());
    let square = SqSolver::build(square, selector, true);
    let bottom = build(l, mid..range.end, depth - 1, selector, threads, traffic)?;
    Ok(Node::Internal { top: Box::new(top), square, sq_rows, sq_cols, bottom: Box::new(bottom) })
}

fn solve_node<S: Scalar>(
    node: &Node<S>,
    work: &mut [S],
    x: &mut [S],
    br: &mut SolveBreakdown,
) -> Result<(), MatrixError> {
    match node {
        Node::Leaf { rows, tri, .. } => {
            let t0 = Instant::now();
            let xs = tri.solve(&work[rows.clone()])?;
            br.tri_s += t0.elapsed().as_secs_f64();
            x[rows.clone()].copy_from_slice(&xs);
            Ok(())
        }
        Node::Internal { top, square, sq_rows, sq_cols, bottom } => {
            solve_node(top, work, x, br)?;
            let t1 = Instant::now();
            square.apply(&x[sq_cols.clone()], &mut work[sq_rows.clone()])?;
            br.spmv_s += t1.elapsed().as_secs_f64();
            solve_node(bottom, work, x, br)
        }
    }
}

fn sim_node<S: Scalar>(
    node: &Node<S>,
    dev: &DeviceSpec,
    params: &CostParams,
    sim: &mut SimBreakdown,
) {
    match node {
        Node::Leaf { rows, tri, profile } => {
            let ws = rows.len() * 3 * S::BYTES;
            sim.tri = sim.tri.seq(tri.simulated_time(profile, ws, dev, params));
        }
        Node::Internal { top, square, sq_rows, sq_cols, bottom } => {
            sim_node::<S>(top, dev, params, sim);
            let ws = (sq_rows.len() + sq_cols.len()) * 2 * S::BYTES;
            sim.spmv = sim.spmv.seq(square.simulated_time(ws, dev, params));
            sim_node::<S>(bottom, dev, params, sim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check(l: Csr<f64>, depth: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let s = RecursiveBlockSolver::new(&l, depth, &Selector::default(), 4).unwrap();
        let x = s.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10, "depth={depth}");
    }

    #[test]
    fn matches_serial_various_depths() {
        let l = generate::random_lower::<f64>(600, 4.0, 31);
        for depth in 0..6usize {
            check(l.clone(), depth);
        }
    }

    #[test]
    fn matches_serial_on_structures() {
        check(generate::grid2d::<f64>(25, 24, 32), 3);
        check(generate::chain::<f64>(300, 33), 4);
        check(generate::kkt_like::<f64>(1000, 400, 3, 34), 2);
        check(generate::hub_power_law::<f64>(800, 6, 2, 30, 35), 3);
    }

    #[test]
    fn traffic_matches_dense_formula() {
        let n = 256;
        let l = generate::dense_lower::<f64>(n, 36);
        for depth in [2usize, 4] {
            let parts = 1usize << depth;
            let s = RecursiveBlockSolver::new(&l, depth, &Selector::default(), 2).unwrap();
            let t = s.traffic();
            assert_eq!(t.b_updates as f64, crate::traffic::recursive_b_updates(n, parts));
            assert_eq!(t.x_loads as f64, crate::traffic::recursive_x_loads(n, parts));
        }
    }

    #[test]
    fn recursive_traffic_beats_both_at_scale() {
        let n = 256;
        let l = generate::dense_lower::<f64>(n, 37);
        let sel = Selector::default();
        let rec = RecursiveBlockSolver::new(&l, 4, &sel, 2).unwrap().traffic();
        let col = crate::column::ColumnBlockSolver::new(&l, 16, &sel, 2).unwrap().traffic();
        let row = crate::row::RowBlockSolver::new(&l, 16, &sel, 2).unwrap().traffic();
        let sum = |t: crate::traffic::TrafficCounts| t.b_updates + t.x_loads;
        assert!(sum(rec) < sum(col));
        assert!(sum(rec) < sum(row));
    }

    #[test]
    fn depth_zero_is_single_solve() {
        let l = generate::random_lower::<f64>(150, 3.0, 38);
        let s = RecursiveBlockSolver::new(&l, 0, &Selector::default(), 2).unwrap();
        let b = vec![2.0; 150];
        assert!(max_rel_diff(&s.solve(&b).unwrap(), &serial_csr(&l, &b).unwrap()) < 1e-10);
    }

    #[test]
    fn simulated_breakdown_positive() {
        let l = generate::random_lower::<f64>(500, 4.0, 39);
        let s = RecursiveBlockSolver::new(&l, 3, &Selector::default(), 2).unwrap();
        let sim = s.simulated_breakdown(&DeviceSpec::titan_rtx_turing(), &CostParams::default());
        assert!(sim.tri.total_s > 0.0);
        assert!(sim.spmv.total_s > 0.0);
    }
}
