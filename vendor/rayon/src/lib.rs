//! Vendored, API-compatible subset of `rayon`'s parallel iterators.
//!
//! The workspace builds offline, so the real `rayon` cannot be fetched.
//! This shim keeps the same call-site surface (`par_iter`, `par_iter_mut`,
//! `par_chunks`, `par_chunks_mut`, `into_par_iter`, `map`, `zip`,
//! `enumerate`, `with_min_len`, `with_max_len`, `for_each`, `collect`,
//! `sum`) and executes genuinely in parallel over `std::thread::scope`.
//!
//! Design: every parallel iterator here is **indexed** — it knows its length
//! and can produce the item at any index independently. Adapters compose by
//! index (`Map`, `Zip`, `Enumerate`), and consumers split the index space
//! into chunks claimed from an atomic cursor by a small scoped thread team.
//! That is a deliberate simplification of rayon's work-stealing model: the
//! dynamic chunk queue provides the load balancing that matters for skewed
//! sparse rows, without the full plumbing machinery.

#![warn(missing_docs)]

pub mod iter;

/// Drop-in analogue of `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads consumers will use (the shim has no persistent
/// pool; teams are scoped per call).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}
