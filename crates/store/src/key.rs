//! Identity of a stored plan: structure fingerprint + value digest.
//!
//! A solve plan embeds the factor's numeric values, so two matrices with
//! identical sparsity but different entries must map to different plans.
//! The key therefore pairs the structural [`Fingerprint`] with a digest of
//! the value array.

use recblock_matrix::{Csr, Fingerprint, Scalar};
use std::fmt;

/// Cache/store key for a preprocessed plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structural fingerprint (dims + `row_ptr` + `col_idx`).
    pub structure: Fingerprint,
    /// Digest of the numeric values (bit patterns widened to `f64`).
    pub values: u64,
}

impl PlanKey {
    /// Key of the plan for `l`.
    pub fn of<S: Scalar>(l: &Csr<S>) -> Self {
        PlanKey { structure: l.fingerprint(), values: l.value_digest() }
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-v{:016x}", self.structure, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;

    #[test]
    fn same_matrix_same_key() {
        let a = generate::random_lower::<f64>(200, 3.0, 1);
        assert_eq!(PlanKey::of(&a), PlanKey::of(&a.clone()));
    }

    #[test]
    fn different_values_different_key() {
        let a = generate::random_lower::<f64>(200, 3.0, 2);
        let mut b = a.clone();
        b.vals_mut()[0] += 1.0;
        let (ka, kb) = (PlanKey::of(&a), PlanKey::of(&b));
        assert_eq!(ka.structure, kb.structure);
        assert_ne!(ka.values, kb.values);
        assert_ne!(ka, kb);
    }

    #[test]
    fn different_structure_different_key() {
        let a = generate::random_lower::<f64>(200, 3.0, 3);
        let b = generate::random_lower::<f64>(200, 3.0, 4);
        assert_ne!(PlanKey::of(&a).structure, PlanKey::of(&b).structure);
    }
}
