//! Cross-crate integration tests: every solver in the suite, run end to end
//! over a common set of structures, must agree with the serial reference.

use recblock::adaptive::Selector;
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock::column::ColumnBlockSolver;
use recblock::recursive::RecursiveBlockSolver;
use recblock::row::RowBlockSolver;
use recblock::solver::{RecBlockSolver, SolverOptions};
use recblock_kernels::sptrsv::{serial_csr, CusparseLikeSolver, LevelSetSolver, SyncFreeSolver};
use recblock_matrix::vector::{max_rel_diff, residual_inf};
use recblock_matrix::{generate, Csr};

/// The structure zoo every solver is exercised on.
fn structures() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("diagonal", generate::diagonal::<f64>(400, 1)),
        ("chain", generate::chain::<f64>(400, 2)),
        ("banded", generate::banded::<f64>(500, 6, 0.5, 3)),
        ("grid", generate::grid2d::<f64>(22, 21, 4)),
        ("random", generate::random_lower::<f64>(600, 4.0, 5)),
        ("kkt", generate::kkt_like::<f64>(800, 300, 4, 6)),
        ("hub", generate::hub_power_law::<f64>(700, 6, 2, 40, 7)),
        ("layered", generate::layered::<f64>(650, 13, 2.0, generate::LayerShape::Uniform, 8)),
        (
            "heavy-rows",
            generate::with_heavy_rows(
                &generate::layered::<f64>(600, 9, 2.0, generate::LayerShape::Uniform, 9),
                2,
                150,
                9,
            ),
        ),
        ("dense", generate::dense_lower::<f64>(150, 10)),
    ]
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 31 % 101) as f64) / 50.0 - 1.0).collect()
}

#[test]
fn every_kernel_matches_serial_on_every_structure() {
    for (name, l) in structures() {
        let b = rhs(l.nrows());
        let reference = serial_csr(&l, &b).unwrap();
        let check = |x: Vec<f64>, solver: &str| {
            let d = max_rel_diff(&x, &reference);
            assert!(d < 1e-9, "{solver} on {name}: diff {d}");
        };

        check(LevelSetSolver::new(l.clone()).unwrap().solve(&b).unwrap(), "levelset");
        check(SyncFreeSolver::with_threads(&l, 4).unwrap().solve(&b).unwrap(), "syncfree");
        check(CusparseLikeSolver::analyse(l.clone()).unwrap().solve(&b).unwrap(), "cusparse-like");
    }
}

#[test]
fn every_block_algorithm_matches_serial_on_every_structure() {
    let sel = Selector::default();
    for (name, l) in structures() {
        let b = rhs(l.nrows());
        let reference = serial_csr(&l, &b).unwrap();
        let check = |x: Vec<f64>, solver: &str| {
            let d = max_rel_diff(&x, &reference);
            assert!(d < 1e-9, "{solver} on {name}: diff {d}");
        };

        check(ColumnBlockSolver::new(&l, 6, &sel, 4).unwrap().solve(&b).unwrap(), "column");
        check(RowBlockSolver::new(&l, 6, &sel, 4).unwrap().solve(&b).unwrap(), "row");
        check(RecursiveBlockSolver::new(&l, 3, &sel, 4).unwrap().solve(&b).unwrap(), "recursive");
        let opts = BlockedOptions { depth: DepthRule::Fixed(3), ..BlockedOptions::default() };
        check(BlockedTri::build(&l, &opts).unwrap().solve(&b).unwrap(), "blocked");
    }
}

#[test]
fn high_level_solver_residuals_are_tiny() {
    for (name, l) in structures() {
        let b = rhs(l.nrows());
        let opts = SolverOptions { depth: DepthRule::Fixed(2), ..SolverOptions::default() };
        let solver = RecBlockSolver::new(&l, opts).unwrap();
        let x = solver.solve(&b).unwrap();
        let r = residual_inf(&l, &x, &b).unwrap();
        assert!(r < 1e-10, "{name}: residual {r}");
    }
}

#[test]
fn f32_pipeline_end_to_end() {
    let l = generate::layered::<f32>(500, 10, 2.0, generate::LayerShape::Uniform, 20);
    let b: Vec<f32> = (0..500).map(|i| (i % 9) as f32 - 4.0).collect();
    let opts = SolverOptions { depth: DepthRule::Fixed(3), ..SolverOptions::default() };
    let solver = RecBlockSolver::new(&l, opts).unwrap();
    let x = solver.solve(&b).unwrap();
    let r = residual_inf(&l, &x, &b).unwrap();
    assert!(r < 1e-4, "f32 residual {r}");
}

#[test]
fn matrix_market_roundtrip_through_solver() {
    // Write a generated matrix to Matrix Market, read it back, solve.
    let l = generate::grid2d::<f64>(18, 18, 21);
    let mut buf = Vec::new();
    recblock_matrix::mm::write_matrix_market(&l, &mut buf).unwrap();
    let l2: Csr<f64> = recblock_matrix::mm::read_matrix_market(buf.as_slice()).unwrap();
    let b = rhs(l2.nrows());
    let x1 = serial_csr(&l, &b).unwrap();
    let x2 = serial_csr(&l2, &b).unwrap();
    assert!(max_rel_diff(&x1, &x2) < 1e-12);
}

#[test]
fn solver_census_reflects_structure() {
    // A two-level KKT matrix after reorder should produce diagonal leaves.
    let l = generate::kkt_like::<f64>(2000, 800, 3, 22);
    let opts = SolverOptions { depth: DepthRule::Fixed(3), ..SolverOptions::default() };
    let solver = RecBlockSolver::new(&l, opts).unwrap();
    let census = solver.census();
    let diag = census
        .tri
        .iter()
        .find(|(k, _)| *k == recblock::adaptive::TriKernel::CompletelyParallel)
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert!(diag >= 4, "expected several diagonal leaves, census {census:?}");
}

#[test]
fn traffic_hierarchy_matches_paper_tables() {
    // Full pipeline check of the Tables 1–2 ordering on a dense matrix.
    let n = 128;
    let l = generate::dense_lower::<f64>(n, 23);
    let sel = Selector::default();
    let parts = 16usize;
    let col = ColumnBlockSolver::new(&l, parts, &sel, 2).unwrap().traffic();
    let row = RowBlockSolver::new(&l, parts, &sel, 2).unwrap().traffic();
    let rec = RecursiveBlockSolver::new(&l, 4, &sel, 2).unwrap().traffic();
    assert!(col.b_updates > rec.b_updates && rec.b_updates > row.b_updates);
    assert!(row.x_loads > rec.x_loads && rec.x_loads > col.x_loads);
}
