//! Triangular extraction.
//!
//! Section 4.1 of the paper: "Their lower triangular parts (plus a diagonal
//! to avoid singular) are tested in `Lx = b`." This module implements exactly
//! that dataset-preparation rule, for both lower and upper triangles.

use crate::csr::Csr;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// Which triangle of a matrix to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriangularKind {
    /// On-or-below-diagonal entries (`L`).
    Lower,
    /// On-or-above-diagonal entries (`U`).
    Upper,
}

/// Extract the lower-triangular part of `a` (including the diagonal) and
/// force a nonzero diagonal: rows whose diagonal entry is absent or exactly
/// zero get a unit diagonal instead, so the result is always solvable.
pub fn lower_with_diag<S: Scalar>(a: &Csr<S>) -> Result<Csr<S>, MatrixError> {
    extract_with_diag(a, TriangularKind::Lower)
}

/// Extract the upper-triangular part with a forced nonzero diagonal.
pub fn upper_with_diag<S: Scalar>(a: &Csr<S>) -> Result<Csr<S>, MatrixError> {
    extract_with_diag(a, TriangularKind::Upper)
}

/// Shared implementation of the two extraction helpers.
pub fn extract_with_diag<S: Scalar>(
    a: &Csr<S>,
    kind: TriangularKind,
) -> Result<Csr<S>, MatrixError> {
    if a.nrows() != a.ncols() {
        return Err(MatrixError::DimensionMismatch {
            what: "triangular extraction (matrix must be square)",
            expected: a.nrows(),
            actual: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        let (cols, v) = a.row(i);
        let mut have_diag = false;
        match kind {
            TriangularKind::Lower => {
                let hi = cols.partition_point(|&j| j <= i);
                for k in 0..hi {
                    if cols[k] == i {
                        if v[k] != S::ZERO {
                            have_diag = true;
                            col_idx.push(i);
                            vals.push(v[k]);
                        }
                    } else {
                        col_idx.push(cols[k]);
                        vals.push(v[k]);
                    }
                }
                if !have_diag {
                    col_idx.push(i);
                    vals.push(S::ONE);
                }
            }
            TriangularKind::Upper => {
                let lo = cols.partition_point(|&j| j < i);
                // Diagonal (if present and nonzero) comes first in the row.
                if lo < cols.len() && cols[lo] == i && v[lo] != S::ZERO {
                    have_diag = true;
                }
                if !have_diag {
                    col_idx.push(i);
                    vals.push(S::ONE);
                }
                for k in lo..cols.len() {
                    if cols[k] == i && !have_diag {
                        continue; // zero diagonal already replaced by 1
                    }
                    col_idx.push(cols[k]);
                    vals.push(v[k]);
                }
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Csr::from_parts_unchecked(n, n, row_ptr, col_idx, vals))
}

/// Validate that `l` satisfies the SpTRSV precondition (square, lower
/// triangular, full nonzero diagonal) and report the first violation.
pub fn check_solvable_lower<S: Scalar>(l: &Csr<S>) -> Result<(), MatrixError> {
    if l.nrows() != l.ncols() {
        return Err(MatrixError::DimensionMismatch {
            what: "solvable lower check",
            expected: l.nrows(),
            actual: l.ncols(),
        });
    }
    for i in 0..l.nrows() {
        let (cols, vals) = l.row(i);
        match cols.last() {
            Some(&j) if j > i => return Err(MatrixError::NotTriangular { row: i, col: j }),
            Some(&j) if j == i && vals[cols.len() - 1] != S::ZERO => {}
            _ => return Err(MatrixError::SingularDiagonal { row: i }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn general() -> Csr<f64> {
        // [1 7 0]
        // [2 0 8]   <- zero diag at (1,1) is absent
        // [3 4 5]
        Csr::try_new(
            3,
            3,
            vec![0, 2, 4, 7],
            vec![0, 1, 0, 2, 0, 1, 2],
            vec![1., 7., 2., 8., 3., 4., 5.],
        )
        .unwrap()
    }

    #[test]
    fn lower_extraction_keeps_lower_entries() {
        let l = lower_with_diag(&general()).unwrap();
        assert!(l.is_solvable_lower());
        assert_eq!(l.get(0, 1), None); // upper entry dropped
        assert_eq!(l.get(2, 0), Some(3.0));
        assert_eq!(l.get(2, 2), Some(5.0));
    }

    #[test]
    fn missing_diag_becomes_unit() {
        let l = lower_with_diag(&general()).unwrap();
        assert_eq!(l.get(1, 1), Some(1.0));
    }

    #[test]
    fn explicit_zero_diag_becomes_unit() {
        let a =
            Csr::<f64>::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![0.0, 2.0, 3.0]).unwrap();
        let l = lower_with_diag(&a).unwrap();
        assert_eq!(l.get(0, 0), Some(1.0));
        assert_eq!(l.get(1, 1), Some(3.0));
    }

    #[test]
    fn upper_extraction() {
        let u = upper_with_diag(&general()).unwrap();
        assert!(u.is_upper_triangular());
        assert_eq!(u.get(0, 1), Some(7.0));
        assert_eq!(u.get(1, 1), Some(1.0)); // forced unit
        assert_eq!(u.get(1, 2), Some(8.0));
        assert_eq!(u.get(2, 0), None);
    }

    #[test]
    fn non_square_rejected() {
        let a = Csr::<f64>::zero(2, 3);
        assert!(lower_with_diag(&a).is_err());
    }

    #[test]
    fn check_solvable_accepts_valid() {
        let l = lower_with_diag(&general()).unwrap();
        assert!(check_solvable_lower(&l).is_ok());
    }

    #[test]
    fn check_solvable_flags_upper_entry() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 5., 1.]).unwrap();
        assert!(matches!(
            check_solvable_lower(&a),
            Err(MatrixError::NotTriangular { row: 0, col: 1 })
        ));
    }

    #[test]
    fn check_solvable_flags_missing_diag() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 1, 2], vec![0, 0], vec![1., 1.]).unwrap();
        assert!(matches!(check_solvable_lower(&a), Err(MatrixError::SingularDiagonal { row: 1 })));
    }

    #[test]
    fn diagonal_matrix_is_its_own_triangle() {
        let d = Csr::<f64>::identity(4);
        assert_eq!(lower_with_diag(&d).unwrap(), d);
        assert_eq!(upper_with_diag(&d).unwrap(), d);
    }
}
