//! CPU wall-clock comparison of the four SpMV kernels on the block shapes
//! the adaptive selector distinguishes (short uniform rows vs long skewed
//! rows, dense vs hyper-sparse row population).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use recblock_kernels::spmv;
use recblock_matrix::{generate, Csr, Dcsr};
use std::time::Duration;

fn blocks() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("short_rows_dense", generate::rect_random::<f64>(40_000, 40_000, 5.0, 0.0, 0.0, 1)),
        ("short_rows_empty70", generate::rect_random::<f64>(40_000, 40_000, 5.0, 0.7, 0.0, 2)),
        ("long_rows", generate::rect_random::<f64>(8_000, 8_000, 48.0, 0.0, 0.0, 3)),
        ("skewed_rows", generate::rect_random::<f64>(20_000, 20_000, 8.0, 0.2, 4.0, 4)),
    ]
}

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmv_update");
    g.measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    for (name, a) in blocks() {
        let ncols = a.ncols();
        let x: Vec<f64> = (0..ncols).map(|i| (i % 13) as f64 / 6.5 - 1.0).collect();
        let d: Dcsr<f64> = a.to_dcsr();
        let y0 = vec![0.0f64; a.nrows()];

        g.bench_with_input(BenchmarkId::new("scalar_csr", name), &a, |bench, a| {
            bench.iter_batched(
                || y0.clone(),
                |mut y| spmv::scalar_csr(a, &x, &mut y).unwrap(),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("vector_csr", name), &a, |bench, a| {
            bench.iter_batched(
                || y0.clone(),
                |mut y| spmv::vector_csr(a, &x, &mut y).unwrap(),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("scalar_dcsr", name), &d, |bench, d| {
            bench.iter_batched(
                || y0.clone(),
                |mut y| spmv::scalar_dcsr(d, &x, &mut y).unwrap(),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("vector_dcsr", name), &d, |bench, d| {
            bench.iter_batched(
                || y0.clone(),
                |mut y| spmv::vector_dcsr(d, &x, &mut y).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
