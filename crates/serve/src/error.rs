//! Typed service errors.

use recblock_matrix::MatrixError;
use std::fmt;

/// Everything that can go wrong between `submit` and a delivered solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request queue is full. The caller should back off and retry;
    /// nothing was enqueued.
    Overloaded {
        /// Queued requests at rejection time.
        depth: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The right-hand side length does not match the matrix.
    BadRequest {
        /// Rows of the submitted matrix.
        expected: usize,
        /// Length of the submitted right-hand side.
        actual: usize,
    },
    /// Preprocessing the matrix failed; the message is the underlying
    /// builder error. The failed plan is not cached — a later submit
    /// retries the build.
    PlanBuild(String),
    /// The solve itself failed.
    Solver(MatrixError),
    /// The request was dropped without an answer (worker loss or shutdown
    /// racing the response channel).
    Cancelled,
    /// A worker panicked while solving this request's batch. The panic
    /// was contained — the worker respawned and the service keeps
    /// running — but this batch's results are untrustworthy, so every
    /// request in it gets this error instead of an answer.
    WorkerPanic,
    /// A clustered deployment proxied this request to the owning node and
    /// the owner answered with an error (or the hop itself failed). The
    /// code is the wire-level `ErrCode` the owner returned (serve does not
    /// depend on the net crate, so it travels as the raw `u16`); the
    /// message is the owner's error text.
    Upstream {
        /// The owner's RBNET error code.
        code: u16,
        /// The owner's error message.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "service overloaded: {depth} queued requests (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::BadRequest { expected, actual } => {
                write!(f, "rhs length {actual} does not match matrix rows {expected}")
            }
            ServeError::PlanBuild(msg) => write!(f, "plan preprocessing failed: {msg}"),
            ServeError::Solver(e) => write!(f, "solve failed: {e}"),
            ServeError::Cancelled => write!(f, "request cancelled before completion"),
            ServeError::WorkerPanic => write!(f, "worker panicked while solving this batch"),
            ServeError::Upstream { code, message } => {
                write!(f, "upstream node failed this request (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<MatrixError> for ServeError {
    fn from(e: MatrixError) -> Self {
        ServeError::Solver(e)
    }
}
