//! Structural profiles the cost model consumes.
//!
//! A profile condenses a (sub-)matrix into the handful of per-level and
//! aggregate quantities the analytic formulas need, so the expensive
//! structural analysis happens once per matrix/block (at preprocessing time)
//! and each timing query is O(#levels).

use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, Scalar};

/// Profile of a lower-triangular (sub-)matrix for the SpTRSV cost formulas.
#[derive(Debug, Clone, PartialEq)]
pub struct TriProfile {
    /// Rows (= columns).
    pub n: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Rows per level.
    pub level_rows: Vec<usize>,
    /// Entries per level (summed over the level's rows).
    pub level_nnz: Vec<usize>,
    /// Longest row in each level (drives warp-serial row traversal).
    pub level_max_row: Vec<usize>,
    /// Longest *column* whose owner sits in each level (drives the
    /// sync-free atomic fan-out on that level's critical path).
    pub level_max_col: Vec<usize>,
}

impl TriProfile {
    /// Analyse a triangular matrix against its level decomposition.
    pub fn analyse<S: Scalar>(l: &Csr<S>, levels: &LevelSets) -> Self {
        let n = l.nrows();
        let nlv = levels.nlevels();
        let mut level_rows = vec![0usize; nlv];
        let mut level_nnz = vec![0usize; nlv];
        let mut level_max_row = vec![0usize; nlv];
        let mut level_max_col = vec![0usize; nlv];
        // Column lengths (fan-out degree of each solved component).
        let mut col_nnz = vec![0usize; n];
        for &j in l.col_idx() {
            col_nnz[j] += 1;
        }
        // `i` is simultaneously a row index, a level key and a column key;
        // iterator forms would obscure that.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let lvl = levels.level_of(i);
            let r = l.row_nnz(i);
            level_rows[lvl] += 1;
            level_nnz[lvl] += r;
            level_max_row[lvl] = level_max_row[lvl].max(r);
            level_max_col[lvl] = level_max_col[lvl].max(col_nnz[i]);
        }
        TriProfile { n, nnz: l.nnz(), level_rows, level_nnz, level_max_row, level_max_col }
    }

    /// Build a profile directly from per-level data (used by tests and the
    /// corpus descriptors, which know their structure analytically).
    pub fn from_levels(
        level_rows: Vec<usize>,
        level_nnz: Vec<usize>,
        level_max_row: Vec<usize>,
        level_max_col: Vec<usize>,
    ) -> Self {
        let n = level_rows.iter().sum();
        let nnz = level_nnz.iter().sum();
        TriProfile { n, nnz, level_rows, level_nnz, level_max_row, level_max_col }
    }

    /// Number of levels.
    pub fn nlevels(&self) -> usize {
        self.level_rows.len()
    }

    /// Average entries per row.
    pub fn nnz_per_row(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.nnz as f64 / self.n as f64
        }
    }

    /// `true` if the matrix is purely diagonal (one level, one entry/row).
    pub fn is_diagonal(&self) -> bool {
        self.nlevels() == 1 && self.nnz == self.n
    }

    /// Scale the profile to represent a matrix `f×` larger with the same
    /// structure: per-level rows/nonzeros multiply by `f`; extreme row and
    /// column lengths scale only in their excess over the level mean
    /// (hub-like outliers grow with the matrix, uniform rows do not).
    pub fn scaled(&self, f: f64) -> TriProfile {
        if (f - 1.0).abs() < 1e-12 {
            return self.clone();
        }
        let scale_extreme = |max: usize, avg: f64| -> usize {
            (avg + (max as f64 - avg).max(0.0) * f).round() as usize
        };
        let mut level_rows = Vec::with_capacity(self.nlevels());
        let mut level_nnz = Vec::with_capacity(self.nlevels());
        let mut level_max_row = Vec::with_capacity(self.nlevels());
        let mut level_max_col = Vec::with_capacity(self.nlevels());
        for l in 0..self.nlevels() {
            let avg = if self.level_rows[l] == 0 {
                0.0
            } else {
                self.level_nnz[l] as f64 / self.level_rows[l] as f64
            };
            level_rows.push(((self.level_rows[l] as f64) * f).round() as usize);
            level_nnz.push(((self.level_nnz[l] as f64) * f).round() as usize);
            level_max_row.push(scale_extreme(self.level_max_row[l], avg));
            level_max_col.push(scale_extreme(self.level_max_col[l], avg));
        }
        TriProfile {
            n: ((self.n as f64) * f).round() as usize,
            nnz: ((self.nnz as f64) * f).round() as usize,
            level_rows,
            level_nnz,
            level_max_row,
            level_max_col,
        }
    }
}

/// Profile of a square/rectangular (sub-)matrix for the SpMV cost formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmvProfile {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Non-empty rows (DCSR lanes).
    pub lanes: usize,
    /// Longest row.
    pub max_row: usize,
}

impl SpmvProfile {
    /// Analyse a rectangular matrix.
    pub fn analyse<S: Scalar>(a: &Csr<S>) -> Self {
        let mut lanes = 0usize;
        let mut max_row = 0usize;
        for i in 0..a.nrows() {
            let r = a.row_nnz(i);
            if r > 0 {
                lanes += 1;
            }
            max_row = max_row.max(r);
        }
        SpmvProfile { nrows: a.nrows(), ncols: a.ncols(), nnz: a.nnz(), lanes, max_row }
    }

    /// Average entries per (logical) row.
    pub fn nnz_per_row(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz as f64 / self.nrows as f64
        }
    }

    /// Fraction of rows with no entries — the paper's `emptyratio`.
    pub fn empty_ratio(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            // Saturate: hand-built (or corrupt-file-decoded) profiles can
            // claim more populated lanes than rows.
            self.nrows.saturating_sub(self.lanes) as f64 / self.nrows as f64
        }
    }

    /// Scale to a matrix `f×` larger with the same structure (see
    /// [`TriProfile::scaled`] for the extreme-length heuristic).
    pub fn scaled(&self, f: f64) -> SpmvProfile {
        if (f - 1.0).abs() < 1e-12 {
            return *self;
        }
        let avg = if self.lanes == 0 { 0.0 } else { self.nnz as f64 / self.lanes as f64 };
        SpmvProfile {
            nrows: ((self.nrows as f64) * f).round() as usize,
            ncols: ((self.ncols as f64) * f).round() as usize,
            nnz: ((self.nnz as f64) * f).round() as usize,
            lanes: ((self.lanes as f64) * f).round() as usize,
            max_row: (avg + (self.max_row as f64 - avg).max(0.0) * f).round() as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::generate;

    #[test]
    fn tri_profile_of_chain() {
        let l = generate::chain::<f64>(10, 1);
        let levels = LevelSets::analyse(&l).unwrap();
        let p = TriProfile::analyse(&l, &levels);
        assert_eq!(p.nlevels(), 10);
        assert_eq!(p.level_rows, vec![1; 10]);
        assert_eq!(p.level_nnz[0], 1);
        assert_eq!(p.level_nnz[5], 2);
        assert!(!p.is_diagonal());
    }

    #[test]
    fn tri_profile_of_diagonal() {
        let l = generate::diagonal::<f64>(64, 2);
        let levels = LevelSets::analyse(&l).unwrap();
        let p = TriProfile::analyse(&l, &levels);
        assert!(p.is_diagonal());
        assert_eq!(p.level_rows, vec![64]);
        assert_eq!(p.level_max_row, vec![1]);
    }

    #[test]
    fn tri_profile_tracks_long_columns() {
        // Hub structure: hub columns live in level 0 and have huge fan-out.
        let l = generate::hub_power_law::<f64>(2000, 4, 2, 0, 3);
        let levels = LevelSets::analyse(&l).unwrap();
        let p = TriProfile::analyse(&l, &levels);
        assert!(p.level_max_col[0] > 300, "hub fan-out {}", p.level_max_col[0]);
    }

    #[test]
    fn tri_profile_sums_match() {
        let l = generate::grid2d::<f64>(15, 15, 4);
        let levels = LevelSets::analyse(&l).unwrap();
        let p = TriProfile::analyse(&l, &levels);
        assert_eq!(p.level_rows.iter().sum::<usize>(), 225);
        assert_eq!(p.level_nnz.iter().sum::<usize>(), l.nnz());
    }

    #[test]
    fn spmv_profile_counts() {
        let a = generate::rect_random::<f64>(1000, 500, 3.0, 0.4, 0.0, 5);
        let p = SpmvProfile::analyse(&a);
        assert_eq!(p.nrows, 1000);
        assert!((p.empty_ratio() - 0.4).abs() < 0.02);
        assert!(p.max_row >= 1);
        assert_eq!(p.nnz, a.nnz());
    }

    #[test]
    fn from_levels_aggregates() {
        let p = TriProfile::from_levels(vec![3, 2], vec![3, 5], vec![1, 3], vec![2, 1]);
        assert_eq!(p.n, 5);
        assert_eq!(p.nnz, 8);
        assert_eq!(p.nnz_per_row(), 1.6);
    }
}
