//! Service tuning knobs.

use recblock::SolverOptions;
use recblock_kernels::ScheduleMode;
use std::path::PathBuf;

/// Persistent plan-store tier configuration (see `recblock-store`).
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Directory holding the plan files (created if absent).
    pub dir: PathBuf,
    /// Persist freshly built plans in the background so later processes
    /// (or this one, after an eviction) load instead of rebuilding.
    pub write_back: bool,
    /// At service start, pre-populate the in-memory cache from the store,
    /// newest files first, up to the cache capacity.
    pub warm_start: bool,
}

impl StoreOptions {
    /// Store rooted at `dir` with write-back and warm-start enabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreOptions { dir: dir.into(), write_back: true, warm_start: true }
    }

    /// Toggle background persistence of new builds.
    pub fn with_write_back(mut self, on: bool) -> Self {
        self.write_back = on;
        self
    }

    /// Toggle cache pre-population at service start.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }
}

/// Configuration for [`crate::SolveService`].
///
/// The defaults are sized for an interactive service on the current host:
/// one worker per available core, batches capped at 8 columns (past that
/// the multi-RHS walk's vector working set stops fitting alongside the
/// matrix), and a queue a few hundred requests deep.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Solver worker threads. `0` is accepted (useful in tests: nothing
    /// drains, so backpressure is exercised deterministically).
    pub workers: usize,
    /// Maximum right-hand sides coalesced into one multi-RHS solve.
    pub max_batch: usize,
    /// Bound on queued (accepted, not yet solved) requests across all
    /// matrices. Beyond it [`crate::SolveService::try_submit`] fails fast
    /// with [`crate::ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Total cached plans across all shards. Least-recently-used plans are
    /// evicted once the bound is exceeded.
    pub cache_capacity: usize,
    /// Lock shards for the plan cache. More shards reduce contention when
    /// many distinct matrices are in flight.
    pub cache_shards: usize,
    /// Preprocessing options handed to every plan build.
    pub solver: SolverOptions,
    /// Optional persistent plan store; `None` disables the tier.
    pub store: Option<StoreOptions>,
    /// Run the canary autotuner: the first solves of a cold plan (one
    /// fresh from a build or a store load) replay captured right-hand
    /// sides against the bounded candidate grid on a background thread,
    /// and a measured winner replaces the plan in the cache and is
    /// written back through the store. Off by default — tuning costs
    /// background CPU and is only worth it for plans that stay resident.
    pub canary_tune: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        ServeConfig {
            workers: cores,
            max_batch: 8,
            queue_capacity: 256,
            cache_capacity: 16,
            cache_shards: 8,
            solver: SolverOptions::default(),
            store: None,
            canary_tune: false,
        }
    }
}

impl ServeConfig {
    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the per-solve batching cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Set the queue bound that triggers backpressure.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the plan-cache capacity (total across shards).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Set the plan-cache shard count.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Set the preprocessing options used for plan builds.
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Force (or un-force, with [`ScheduleMode::Auto`]) the engine
    /// synchronisation scheme every plan build compiles for its level-set
    /// blocks. Point-to-point plans served by concurrent workers stay
    /// correct: an overlapped solve on the same plan falls back to the
    /// level-sync schedule rather than sharing task flags.
    pub fn with_schedule_mode(mut self, mode: ScheduleMode) -> Self {
        self.solver.tune.schedule_mode = mode;
        self
    }

    /// Enable the persistent plan store rooted at `dir` (write-back and
    /// warm-start on). Use [`ServeConfig::with_store_options`] for finer
    /// control.
    pub fn with_store(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.with_store_options(StoreOptions::new(dir))
    }

    /// Set (or clear, via `None`-like default) the full store tier options.
    pub fn with_store_options(mut self, store: StoreOptions) -> Self {
        self.store = Some(store);
        self
    }

    /// Toggle the background canary autotuner (see
    /// [`ServeConfig::canary_tune`]).
    pub fn with_canary_tune(mut self, on: bool) -> Self {
        self.canary_tune = on;
        self
    }
}
