//! Background write-back of freshly built plans.
//!
//! Serializing a plan costs a full copy of its arrays plus an fsync —
//! work that must not sit on the submit path. A single writer thread
//! drains a channel of `(key, plan)` jobs and persists each via the
//! store's atomic write. A pending-counter/condvar pair makes the tier
//! testable and drainable: [`Persister::flush`] blocks until every
//! enqueued plan is on disk, and shutdown flushes before joining so
//! accepted work is never silently dropped.
//!
//! Every write is verified (checksums re-read from disk) and retried a
//! bounded number of times on failure — a torn or failed write is
//! rewritten immediately rather than left for the boot-time recovery scan
//! to quarantine. The in-memory plan keeps serving throughout; only the
//! on-disk copy is stale between attempts. This is what lets the canary
//! tuner trust `enqueue` with a freshly tuned plan: an I/O fault delays
//! persistence, never the tuned plan itself.

use crate::cache::PlanKey;
use crate::metrics::Metrics;
use recblock::RecBlockSolver;
use recblock_matrix::Scalar;
use recblock_store::PlanStore;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Job<S> {
    key: PlanKey,
    plan: Arc<RecBlockSolver<S>>,
}

/// Total write attempts per job (first try + retries).
const MAX_WRITE_ATTEMPTS: u32 = 3;

/// Handle to the background writer thread.
pub(crate) struct Persister<S> {
    tx: Option<mpsc::Sender<Job<S>>>,
    pending: Arc<(Mutex<u64>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

/// A detachable enqueue-only handle to the writer thread, for sibling
/// background tiers (the canary tuner) that persist plans of their own.
///
/// Holding one keeps the writer's channel alive, so any holder must be
/// shut down *before* [`Persister::shutdown`] — otherwise the writer never
/// sees disconnect and the join blocks forever.
pub(crate) struct PersistHandle<S> {
    tx: mpsc::Sender<Job<S>>,
    pending: Arc<(Mutex<u64>, Condvar)>,
}

impl<S> PersistHandle<S> {
    /// Queue a plan for persistence (see [`Persister::enqueue`]).
    pub(crate) fn enqueue(&self, key: PlanKey, plan: Arc<RecBlockSolver<S>>) {
        {
            let (lock, _) = &*self.pending;
            *lock.lock().unwrap() += 1;
        }
        if self.tx.send(Job { key, plan }).is_err() {
            let (lock, cv) = &*self.pending;
            *lock.lock().unwrap() -= 1;
            cv.notify_all();
        }
    }
}

impl<S: Scalar> Persister<S> {
    pub(crate) fn spawn(store: Arc<PlanStore>, metrics: Arc<Metrics>) -> Self {
        let (tx, rx) = mpsc::channel::<Job<S>>();
        let pending = Arc::new((Mutex::new(0u64), Condvar::new()));
        let pending_worker = pending.clone();
        let handle = std::thread::Builder::new()
            .name("recblock-store-writer".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    let cost = job.plan.preprocess_time().as_secs_f64();
                    for attempt in 0..MAX_WRITE_ATTEMPTS {
                        if attempt > 0 {
                            metrics.store_errors.fetch_add(1, Relaxed);
                            metrics.tune_write_back_retries.fetch_add(1, Relaxed);
                        }
                        // Save, then verify the bytes actually on disk: a
                        // torn write (crash, lying disk, injected fault)
                        // can report success while leaving a corrupt file,
                        // and rewriting it now beats quarantining it at
                        // the next boot.
                        let ok = store.save(job.plan.blocked(), &job.key, cost).is_ok()
                            && matches!(store.export_bytes(&job.key), Ok(Some(_)));
                        if ok {
                            metrics.store_writes.fetch_add(1, Relaxed);
                            break;
                        }
                        if attempt + 1 == MAX_WRITE_ATTEMPTS {
                            metrics.store_errors.fetch_add(1, Relaxed);
                        }
                    }
                    let (lock, cv) = &*pending_worker;
                    let mut n = lock.lock().unwrap();
                    *n -= 1;
                    cv.notify_all();
                }
            })
            .expect("spawn store writer");
        Persister { tx: Some(tx), pending, handle: Some(handle) }
    }

    /// An enqueue-only handle for a sibling background tier. `None` once
    /// the writer has been shut down.
    pub(crate) fn share(&self) -> Option<PersistHandle<S>> {
        self.tx.as_ref().map(|tx| PersistHandle { tx: tx.clone(), pending: self.pending.clone() })
    }

    /// Queue a plan for persistence. Never blocks on I/O.
    pub(crate) fn enqueue(&self, key: PlanKey, plan: Arc<RecBlockSolver<S>>) {
        let Some(tx) = &self.tx else { return };
        {
            let (lock, _) = &*self.pending;
            *lock.lock().unwrap() += 1;
        }
        if tx.send(Job { key, plan }).is_err() {
            // Writer thread is gone; undo the reservation.
            let (lock, cv) = &*self.pending;
            *lock.lock().unwrap() -= 1;
            cv.notify_all();
        }
    }

    /// Block until every enqueued plan has been written (or failed).
    pub(crate) fn flush(&self) {
        let (lock, cv) = &*self.pending;
        let mut n = lock.lock().unwrap();
        while *n > 0 {
            n = cv.wait(n).unwrap();
        }
    }

    /// Flush, stop the writer thread and join it.
    pub(crate) fn shutdown(&mut self) {
        self.flush();
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<S> Drop for Persister<S> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
