//! Preconditioned Krylov solvers — the iterative-scenario substrate.
//!
//! The paper motivates fast SpTRSV with "accelerating convergence of
//! preconditioned sparse iterative solvers": each iteration applies a
//! preconditioner `M⁻¹` built from triangular factors. This module supplies
//! conjugate gradients (for SPD systems) and BiCGStab (for general
//! systems), both over a [`Preconditioner`] trait so the triangular-solve
//! backend — serial, or the recursive block solver — is pluggable.

use rayon::prelude::*;
use recblock_matrix::{Csr, MatrixError, Scalar};

/// Application of `z = M⁻¹ r` — one preconditioning step.
pub trait Preconditioner<S: Scalar> {
    /// Apply the preconditioner to a residual.
    fn apply(&self, r: &[S]) -> Result<Vec<S>, MatrixError>;
}

/// The identity preconditioner (plain CG / BiCGStab).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl<S: Scalar> Preconditioner<S> for IdentityPreconditioner {
    fn apply(&self, r: &[S]) -> Result<Vec<S>, MatrixError> {
        Ok(r.to_vec())
    }
}

impl<S: Scalar> Preconditioner<S> for crate::ilu::Ilu0<S> {
    fn apply(&self, r: &[S]) -> Result<Vec<S>, MatrixError> {
        crate::ilu::Ilu0::apply(self, r)
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KrylovResult<S> {
    /// The computed solution.
    pub x: Vec<S>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual (2-norm).
    pub residual: f64,
    /// `true` if the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Solver controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrylovOptions {
    /// Relative 2-norm residual tolerance.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for KrylovOptions {
    fn default() -> Self {
        KrylovOptions { tolerance: 1e-10, max_iterations: 500 }
    }
}

fn dot<S: Scalar>(a: &[S], b: &[S]) -> f64 {
    if a.len() >= 16_384 {
        a.par_iter().zip(b).map(|(&x, &y)| x.to_f64() * y.to_f64()).sum()
    } else {
        a.iter().zip(b).map(|(&x, &y)| x.to_f64() * y.to_f64()).sum()
    }
}

fn axpy<S: Scalar>(y: &mut [S], alpha: f64, x: &[S]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += S::from_f64(alpha) * xi;
    }
}

fn norm2<S: Scalar>(v: &[S]) -> f64 {
    dot(v, v).sqrt()
}

fn check_system<S: Scalar>(a: &Csr<S>, b: &[S]) -> Result<(), MatrixError> {
    if a.nrows() != a.ncols() {
        return Err(MatrixError::DimensionMismatch {
            what: "krylov operator (square required)",
            expected: a.nrows(),
            actual: a.ncols(),
        });
    }
    if b.len() != a.nrows() {
        return Err(MatrixError::DimensionMismatch {
            what: "krylov rhs",
            expected: a.nrows(),
            actual: b.len(),
        });
    }
    Ok(())
}

/// Preconditioned conjugate gradients for symmetric positive definite `A`.
pub fn pcg<S: Scalar, P: Preconditioner<S>>(
    a: &Csr<S>,
    b: &[S],
    m: &P,
    opts: &KrylovOptions,
) -> Result<KrylovResult<S>, MatrixError> {
    check_system(a, b)?;
    let n = a.nrows();
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![S::ZERO; n];
    let mut r = b.to_vec();
    let mut z = m.apply(&r)?;
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut res = norm2(&r) / b_norm;
    let mut it = 0usize;
    while res > opts.tolerance && it < opts.max_iterations {
        let ap = a.spmv_dense(&p)?;
        let pap = dot(&p, &ap);
        if pap == 0.0 {
            break; // breakdown (A not SPD on this subspace)
        }
        let alpha = rz / pap;
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &ap);
        res = norm2(&r) / b_norm;
        if res <= opts.tolerance {
            it += 1;
            break;
        }
        z = m.apply(&r)?;
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + S::from_f64(beta) * *pi;
        }
        it += 1;
    }
    Ok(KrylovResult { x, iterations: it, residual: res, converged: res <= opts.tolerance })
}

/// Preconditioned BiCGStab for general (nonsymmetric) `A`.
pub fn bicgstab<S: Scalar, P: Preconditioner<S>>(
    a: &Csr<S>,
    b: &[S],
    m: &P,
    opts: &KrylovOptions,
) -> Result<KrylovResult<S>, MatrixError> {
    check_system(a, b)?;
    let n = a.nrows();
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut x = vec![S::ZERO; n];
    let mut r = b.to_vec();
    let r0 = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![S::ZERO; n];
    let mut p = vec![S::ZERO; n];
    let mut res = norm2(&r) / b_norm;
    let mut it = 0usize;
    while res > opts.tolerance && it < opts.max_iterations {
        let rho_new = dot(&r0, &r);
        if rho_new == 0.0 {
            break; // breakdown
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + S::from_f64(beta) * (p[i] - S::from_f64(omega) * v[i]);
        }
        let ph = m.apply(&p)?;
        v = a.spmv_dense(&ph)?;
        let r0v = dot(&r0, &v);
        if r0v == 0.0 {
            break;
        }
        alpha = rho / r0v;
        let mut s = r.clone();
        axpy(&mut s, -alpha, &v);
        if norm2(&s) / b_norm <= opts.tolerance {
            axpy(&mut x, alpha, &ph);
            r = s;
            res = norm2(&r) / b_norm;
            it += 1;
            break;
        }
        let sh = m.apply(&s)?;
        let t = a.spmv_dense(&sh)?;
        let tt = dot(&t, &t);
        if tt == 0.0 {
            break;
        }
        omega = dot(&t, &s) / tt;
        axpy(&mut x, alpha, &ph);
        axpy(&mut x, omega, &sh);
        r = s;
        axpy(&mut r, -omega, &t);
        res = norm2(&r) / b_norm;
        it += 1;
        if omega == 0.0 {
            break;
        }
    }
    Ok(KrylovResult { x, iterations: it, residual: res, converged: res <= opts.tolerance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu::ilu0;
    use recblock_matrix::coo::Coo;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    /// Symmetric diagonally dominant operator.
    fn spd(n: usize, seed: u64) -> Csr<f64> {
        let l = generate::random_lower::<f64>(n, 3.0, seed);
        let lt = l.transpose();
        let mut coo = Coo::<f64>::with_capacity(n, n, 2 * l.nnz());
        for (i, j, v) in l.iter() {
            coo.push(i, j, v).unwrap();
        }
        for (i, j, v) in lt.iter() {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    /// Nonsymmetric diagonally dominant operator.
    fn nonsym(n: usize, seed: u64) -> Csr<f64> {
        let l = generate::random_lower::<f64>(n, 3.0, seed);
        let u = generate::random_lower::<f64>(n, 2.0, seed + 1).transpose();
        let mut coo = Coo::<f64>::with_capacity(n, n, l.nnz() + u.nnz());
        for (i, j, v) in l.iter() {
            coo.push(i, j, v).unwrap();
        }
        for (i, j, v) in u.iter() {
            coo.push(i, j, v).unwrap();
        }
        coo.to_csr()
    }

    fn manufactured(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 29) as f64) / 14.5 - 1.0).collect()
    }

    #[test]
    fn cg_solves_spd_system() {
        let a = spd(500, 1);
        let xt = manufactured(500);
        let b = a.spmv_dense(&xt).unwrap();
        let res = pcg(&a, &b, &IdentityPreconditioner, &KrylovOptions::default()).unwrap();
        assert!(res.converged, "residual {}", res.residual);
        assert!(max_rel_diff(&res.x, &xt) < 1e-7);
    }

    #[test]
    fn ilu_preconditioning_cuts_cg_iterations() {
        let a = spd(800, 2);
        let xt = manufactured(800);
        let b = a.spmv_dense(&xt).unwrap();
        let plain = pcg(&a, &b, &IdentityPreconditioner, &KrylovOptions::default()).unwrap();
        let f = ilu0(&a).unwrap();
        let prec = pcg(&a, &b, &f, &KrylovOptions::default()).unwrap();
        assert!(prec.converged && plain.converged);
        assert!(
            prec.iterations < plain.iterations,
            "ilu {} vs plain {}",
            prec.iterations,
            plain.iterations
        );
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_system() {
        let a = nonsym(600, 3);
        let xt = manufactured(600);
        let b = a.spmv_dense(&xt).unwrap();
        let f = ilu0(&a).unwrap();
        let res = bicgstab(&a, &b, &f, &KrylovOptions::default()).unwrap();
        assert!(res.converged, "residual {}", res.residual);
        assert!(max_rel_diff(&res.x, &xt) < 1e-6);
    }

    #[test]
    fn bicgstab_with_identity_still_converges_on_dominant_system() {
        let a = nonsym(300, 4);
        let xt = manufactured(300);
        let b = a.spmv_dense(&xt).unwrap();
        let res = bicgstab(&a, &b, &IdentityPreconditioner, &KrylovOptions::default()).unwrap();
        assert!(res.converged);
    }

    #[test]
    fn iteration_budget_respected() {
        let a = spd(400, 5);
        let b = manufactured(400);
        let opts = KrylovOptions { tolerance: 1e-30, max_iterations: 3 };
        let res = pcg(&a, &b, &IdentityPreconditioner, &opts).unwrap();
        assert!(!res.converged);
        assert!(res.iterations <= 3);
    }

    #[test]
    fn dimension_checks() {
        let a = spd(10, 6);
        assert!(pcg(&a, &[1.0; 5], &IdentityPreconditioner, &KrylovOptions::default()).is_err());
        assert!(
            bicgstab(&a, &[1.0; 5], &IdentityPreconditioner, &KrylovOptions::default()).is_err()
        );
        let rect = Csr::<f64>::zero(3, 4);
        assert!(pcg(&rect, &[1.0; 3], &IdentityPreconditioner, &KrylovOptions::default()).is_err());
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = spd(50, 7);
        let res = pcg(&a, &[0.0; 50], &IdentityPreconditioner, &KrylovOptions::default()).unwrap();
        assert!(res.converged);
        assert_eq!(res.x, vec![0.0; 50]);
    }
}
