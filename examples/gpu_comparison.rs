//! Simulated-GPU comparison: price one matrix's solve under the analytic
//! performance model on both of the paper's devices for all three methods,
//! and cross-check the sync-free critical path against the discrete-event
//! warp micro-simulator.
//!
//! Uses the benchmark harness's scaled pricing (`data_scale = 50`, L2 scaled
//! to match) so the laptop-sized matrix is priced as its paper-sized
//! counterpart — see DESIGN.md §2 for the substitution rationale.
//!
//! Run with: `cargo run --release --example gpu_comparison`

use recblock_bench::harness::{evaluate_methods, fmt_x, HarnessConfig};
use recblock_gpu_sim::microsim::simulate_on_device;
use recblock_gpu_sim::{DeviceSpec, TriProfile};
use recblock_matrix::generate;
use recblock_matrix::levelset::LevelSets;

fn main() {
    // A power-law circuit-style matrix: the structure where the method gaps
    // are widest (the paper's FullChip row).
    let n = 120_000;
    let base = generate::hub_power_law::<f64>(n, 40, 3, 400, 3);
    let l = generate::with_heavy_rows(&base, 3, n / 8, 3);
    let levels = LevelSets::analyse(&l).expect("solvable");
    let profile = TriProfile::analyse(&l, &levels);
    println!(
        "matrix: n = {}, nnz = {}, levels = {}, nnz/row = {:.2} (priced at 50x scale)",
        l.nrows(),
        l.nnz(),
        levels.nlevels(),
        profile.nnz_per_row()
    );

    let cfg = HarnessConfig::default();
    for dev in &cfg.devices {
        println!("\n=== {} ({}) ===", dev.name, dev.architecture);
        let eval = evaluate_methods(&l, dev, &cfg);
        let (g_cu, g_sf, g_blk) = eval.gflops();
        println!(
            "cuSPARSE-like : {:9.3} ms ({:6.2} GFlops, {:5} launches)",
            eval.cusparse.total_s * 1e3,
            g_cu,
            eval.cusparse.launches
        );
        println!(
            "sync-free     : {:9.3} ms ({:6.2} GFlops, {:5} launch)",
            eval.syncfree.total_s * 1e3,
            g_sf,
            eval.syncfree.launches
        );
        println!(
            "block         : {:9.3} ms ({:6.2} GFlops, {:5} launches)",
            eval.block.total_s * 1e3,
            g_blk,
            eval.block.launches
        );
        let (s_cu, s_sf) = eval.speedups();
        println!("block speedups: {} vs cuSPARSE, {} vs sync-free", fmt_x(s_cu), fmt_x(s_sf));
        println!(
            "preprocessing : cuSPARSE {:.1} ms, sync-free {:.2} ms, block {:.1} ms",
            eval.cusparse_prep * 1e3,
            eval.syncfree_prep * 1e3,
            eval.block_prep * 1e3
        );
    }

    // Validate the analytic critical-path abstraction against the
    // discrete-event warp simulator on a shrunken instance.
    let small = generate::hub_power_law::<f64>(4_000, 16, 3, 60, 4);
    let report = simulate_on_device(&small, &DeviceSpec::titan_rtx_turing());
    println!(
        "\nmicrosim (n=4000): makespan {:.1} µs, critical path {:.1} µs, occupancy {:.1}%",
        report.makespan_ns / 1e3,
        report.critical_path_ns / 1e3,
        report.occupancy * 100.0
    );
    assert!(report.makespan_ns >= report.critical_path_ns);
}
