//! Property-based tests for the plan file format.
//!
//! Two classes of property:
//!
//! 1. **Round-trip fidelity** — for arbitrary solvable lower-triangular
//!    systems, `encode_plan → decode_plan` yields a plan whose `solve`
//!    output is *bit-identical* to the original's, in both `f64` and `f32`.
//! 2. **Corruption robustness** — flipping any single byte of an encoded
//!    file, truncating it at any point, or appending garbage must produce
//!    a typed [`StoreError`], never a panic and never a silently wrong
//!    plan. (A flipped byte can never decode successfully: every payload
//!    byte is covered by a section CRC and every header byte by an exact
//!    field check.)

use proptest::prelude::*;
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock_kernels::exec::{ScheduleMode, TuneParams};
use recblock_matrix::{generate, Csr, Scalar};
use recblock_store::{decode_plan, encode_plan, PlanKey};

/// Strategy: a random solvable lower-triangular matrix.
fn arb_lower() -> impl Strategy<Value = Csr<f64>> {
    (20usize..160, 0u64..500, 1u32..40)
        .prop_map(|(n, seed, deg10)| generate::random_lower::<f64>(n, deg10 as f64 / 10.0, seed))
}

fn build<S: Scalar>(l: &Csr<S>, depth: usize) -> BlockedTri<S> {
    let opts = BlockedOptions { depth: DepthRule::Fixed(depth), ..BlockedOptions::default() };
    BlockedTri::build(l, &opts).expect("solvable system")
}

fn build_tuned<S: Scalar>(l: &Csr<S>, depth: usize, tune: TuneParams) -> BlockedTri<S> {
    let opts = BlockedOptions { depth: DepthRule::Fixed(depth), tune, ..BlockedOptions::default() };
    BlockedTri::build(l, &opts).expect("solvable system")
}

/// Strategy: arbitrary engine tuning across the whole persisted surface,
/// including everything the autotuner's candidate grid can pick.
fn arb_tune() -> impl Strategy<Value = TuneParams> {
    ((0usize..3, 1usize..64, 1usize..4096), 1usize..1024, 1usize..32768, 1usize..32768, 1usize..16)
        .prop_map(|((mode, p2p_min, p2p_chunk), par_rows, fuse_nnz, chunk_nnz, lanes)| TuneParams {
            par_rows,
            fuse_nnz,
            chunk_nnz,
            lanes,
            schedule_mode: ScheduleMode::from_index(mode),
            p2p_min_parallel: p2p_min,
            p2p_chunk_nnz: p2p_chunk,
        })
}

/// Synthesize a v2 plan file from v3 bytes: stamp the old version and strip
/// the three scheduling-mode tune fields (u8 + 2 × u64) v3 appended after
/// the four original tune words, then re-frame the body section. Mirrors
/// the hand-built fixture in `store_roundtrip.rs`.
fn synth_v2(bytes: &[u8]) -> Vec<u8> {
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize;
    let meta_len = u64_at(16);
    let body_hdr = 12 + 16 + meta_len;
    let body_len = u64_at(body_hdr + 4);
    let body = &bytes[body_hdr + 16..body_hdr + 16 + body_len];
    let nperm = u64::from_le_bytes(body[0..8].try_into().unwrap()) as usize;
    let cut = 8 + nperm * 8 + 4 * 8;
    let mut v2_body = Vec::with_capacity(body_len - 17);
    v2_body.extend_from_slice(&body[..cut]);
    v2_body.extend_from_slice(&body[cut + 17..]);
    let mut v2 = Vec::new();
    v2.extend_from_slice(&bytes[..8]);
    v2.extend_from_slice(&2u32.to_le_bytes());
    v2.extend_from_slice(&bytes[12..body_hdr + 4]);
    v2.extend_from_slice(&(v2_body.len() as u64).to_le_bytes());
    v2.extend_from_slice(&recblock_store::crc::crc32(&v2_body).to_le_bytes());
    v2.extend_from_slice(&v2_body);
    v2
}

fn rhs_for<S: Scalar>(n: usize, seed: u64) -> Vec<S> {
    (0..n)
        .map(|i| S::from_f64((((i as u64).wrapping_mul(seed + 13) % 89) as f64) / 44.5 - 1.0))
        .collect()
}

fn to_f32(l: &Csr<f64>) -> Csr<f32> {
    Csr::try_new(
        l.nrows(),
        l.ncols(),
        l.row_ptr().to_vec(),
        l.col_idx().to_vec(),
        l.vals().iter().map(|&v| v as f32).collect(),
    )
    .expect("same structure")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_solve_is_bit_identical_f64(l in arb_lower(), depth in 0usize..4, rhs_seed in 0u64..50) {
        let plan = build(&l, depth);
        let key = PlanKey::of(&l);
        let bytes = encode_plan(&plan, &key, 0.25);
        let (meta, back) = decode_plan::<f64>(&bytes).expect("clean bytes decode");
        prop_assert_eq!(meta.key, key);
        prop_assert_eq!(meta.nblocks, plan.nblocks());

        let b = rhs_for::<f64>(l.nrows(), rhs_seed);
        let x1 = plan.solve(&b).unwrap();
        let x2 = back.solve(&b).unwrap();
        for (a, c) in x1.iter().zip(&x2) {
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn roundtrip_solve_is_bit_identical_f32(l64 in arb_lower(), depth in 0usize..3) {
        let l = to_f32(&l64);
        let plan = build(&l, depth);
        let key = PlanKey::of(&l);
        let bytes = encode_plan(&plan, &key, 0.0);
        let (_, back) = decode_plan::<f32>(&bytes).expect("clean bytes decode");

        let b = rhs_for::<f32>(l.nrows(), 5);
        let x1 = plan.solve(&b).unwrap();
        let x2 = back.solve(&b).unwrap();
        for (a, c) in x1.iter().zip(&x2) {
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn tuned_params_roundtrip_v3(l in arb_lower(), tune in arb_tune(), rhs_seed in 0u64..50) {
        let plan = build_tuned(&l, 2, tune);
        let key = PlanKey::of(&l);
        let bytes = encode_plan(&plan, &key, 0.1);
        let (_, back) = decode_plan::<f64>(&bytes).expect("clean bytes decode");
        prop_assert_eq!(back.tune(), tune);

        let b = rhs_for::<f64>(l.nrows(), rhs_seed);
        let x1 = plan.solve(&b).unwrap();
        let x2 = back.solve(&b).unwrap();
        for (a, c) in x1.iter().zip(&x2) {
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn tuned_params_survive_v2_read_compat(l in arb_lower(), tune in arb_tune()) {
        let plan = build_tuned(&l, 1, tune);
        let bytes = encode_plan(&plan, &PlanKey::of(&l), 0.0);
        let v2 = synth_v2(&bytes);
        let (_, back) = decode_plan::<f64>(&v2).expect("synthesized v2 file decodes");
        let got = back.tune();
        let d = TuneParams::default();
        // The four words a v2 writer knew about survive verbatim…
        prop_assert_eq!(got.par_rows, tune.par_rows);
        prop_assert_eq!(got.fuse_nnz, tune.fuse_nnz);
        prop_assert_eq!(got.chunk_nnz, tune.chunk_nnz);
        prop_assert_eq!(got.lanes, tune.lanes);
        // …while the v3 scheduling fields fall back to defaults.
        prop_assert_eq!(got.schedule_mode, d.schedule_mode);
        prop_assert_eq!(got.p2p_min_parallel, d.p2p_min_parallel);
        prop_assert_eq!(got.p2p_chunk_nnz, d.p2p_chunk_nnz);
    }

    #[test]
    fn any_single_byte_flip_is_a_typed_error(
        l in arb_lower(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let plan = build(&l, 2);
        let bytes = encode_plan(&plan, &PlanKey::of(&l), 0.0);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;

        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        // Must return a typed error — never panic, never decode to a plan.
        let err = decode_plan::<f64>(&corrupt).expect_err("corrupt byte must not decode");
        drop(err); // any StoreError variant is acceptable; reaching here means no panic
    }

    #[test]
    fn any_truncation_is_a_typed_error(l in arb_lower(), keep_frac in 0.0f64..1.0) {
        let plan = build(&l, 2);
        let bytes = encode_plan(&plan, &PlanKey::of(&l), 0.0);
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        decode_plan::<f64>(&bytes[..keep]).expect_err("truncated file must not decode");
    }

    #[test]
    fn trailing_garbage_is_a_typed_error(l in arb_lower(), extra in 1usize..64) {
        let plan = build(&l, 1);
        let mut bytes = encode_plan(&plan, &PlanKey::of(&l), 0.0);
        bytes.extend(std::iter::repeat_n(0xA5, extra));
        decode_plan::<f64>(&bytes).expect_err("trailing bytes must not decode");
    }
}

/// Exhaustive (non-random) flip battery on one small plan: every byte,
/// every bit. This nails the guarantee the proptest above samples.
#[test]
fn exhaustive_flip_battery_on_small_plan() {
    let l = generate::random_lower::<f64>(24, 2.0, 42);
    let plan = build(&l, 1);
    let bytes = encode_plan(&plan, &PlanKey::of(&l), 0.0);
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            assert!(
                decode_plan::<f64>(&corrupt).is_err(),
                "flip at byte {pos} bit {bit} decoded successfully"
            );
        }
    }
}
