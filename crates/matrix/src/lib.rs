//! Sparse-matrix substrate for the recblock SpTRSV suite.
//!
//! This crate provides everything the block algorithms of the ICPP 2020 paper
//! *"Efficient Block Algorithms for Parallel Sparse Triangular Solve"* need
//! from a sparse-matrix library:
//!
//! * the storage formats the paper uses — [`Csr`], [`Csc`], [`Dcsr`] (the
//!   paper's doubly-compressed row format for hyper-sparse square blocks,
//!   after Buluç & Gilbert's DCSC) and a builder-friendly [`Coo`];
//! * conversions and transposition between them;
//! * triangular extraction (`lower triangular part plus a diagonal to avoid
//!   singular`, exactly the paper's dataset preparation rule);
//! * symmetric permutations, used by the recursive level-set reordering;
//! * [`levelset`] analysis (the classic Anderson/Saad–Saltz construction) and
//!   per-matrix [`stats`] (`nnz/row`, `nlevels`, parallelism profile,
//!   `emptyratio`) that drive the paper's adaptive kernel selector;
//! * deterministic synthetic [`generate`]-ors covering the structural
//!   families of the paper's 159-matrix SuiteSparse dataset;
//! * Matrix Market I/O so real SuiteSparse files can be dropped in.
//!
//! Everything is generic over [`Scalar`] (`f32`/`f64`), including the atomic
//! accumulation support that the sync-free solver needs.

#![warn(missing_docs)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dcsr;
pub mod error;
pub mod fingerprint;
pub mod generate;
pub mod levelset;
pub mod mm;
pub mod permute;
pub mod scalar;
pub mod stats;
pub mod triangular;
pub mod vector;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dcsr::Dcsr;
pub use error::MatrixError;
pub use fingerprint::Fingerprint;
pub use levelset::LevelSets;
pub use scalar::{AtomicF32, AtomicF64, Scalar, ScalarAtomic};
pub use stats::MatrixStats;
pub use triangular::TriangularKind;
