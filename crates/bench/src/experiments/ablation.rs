//! Simulated ablation study of the design choices DESIGN.md calls out:
//! what each ingredient of the improved recursive block algorithm buys,
//! under the GPU cost model, on a structure where all of them matter
//! (power-law hubs + a serial tail + heavy rows).
//!
//! Complements the Criterion `ablations` bench, which measures the same
//! variants as CPU wall clock.

use crate::harness::{fmt_ms, fmt_x, scale_device, HarnessConfig, Table};
use recblock::adaptive::{Selector, TriKernel};
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock_gpu_sim::cost::SpmvKind;
use recblock_gpu_sim::DeviceSpec;
use recblock_matrix::{generate, Csr};

/// One ablation variant's simulated solve time.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub name: String,
    /// Simulated solve seconds.
    pub seconds: f64,
    /// Slowdown vs the full configuration.
    pub vs_full: f64,
}

fn subject(extra_shrink: usize) -> Csr<f64> {
    let n = (100_000 / extra_shrink).max(512);
    let base = generate::hub_power_law::<f64>(n, 32, 3, n / 150, 21);
    generate::with_heavy_rows(&base, 3, n / 8, 21)
}

/// Evaluate all ablation variants.
pub fn evaluate(cfg: &HarnessConfig, extra_shrink: usize) -> Vec<AblationRow> {
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    let l = subject(extra_shrink);
    let depth = crate::harness::harness_depth(l.nrows(), &dev, cfg.scale);
    let base = BlockedOptions {
        depth: DepthRule::Fixed(depth),
        reorder: true,
        selector: Selector::default(),
        allow_dcsr: true,
        syncfree_threads: 4,
        tune: recblock_kernels::exec::TuneParams::default(),
    };
    let time = |opts: &BlockedOptions| -> f64 {
        BlockedTri::build(&l, opts).expect("solvable").simulated_time(&dev, &cfg.params).total_s
    };
    let full = time(&base);
    let variants: Vec<(String, BlockedOptions)> = vec![
        ("full (reorder + adaptive + DCSR)".into(), base.clone()),
        ("no level-set reorder".into(), BlockedOptions { reorder: false, ..base.clone() }),
        ("no DCSR storage".into(), BlockedOptions { allow_dcsr: false, ..base.clone() }),
        (
            "fixed sync-free kernels".into(),
            BlockedOptions {
                selector: Selector::Fixed(TriKernel::SyncFree, SpmvKind::ScalarCsr),
                ..base.clone()
            },
        ),
        (
            "fixed level-set kernels".into(),
            BlockedOptions {
                selector: Selector::Fixed(TriKernel::LevelSet, SpmvKind::VectorCsr),
                ..base.clone()
            },
        ),
        (
            "depth 0 (no blocking)".into(),
            BlockedOptions { depth: DepthRule::Fixed(0), ..base.clone() },
        ),
        (
            format!("depth {} (over-divided)", depth + 3),
            BlockedOptions { depth: DepthRule::Fixed(depth + 3), ..base },
        ),
    ];
    variants
        .into_iter()
        .map(|(name, opts)| {
            let seconds = time(&opts);
            AblationRow { name, seconds, vs_full: seconds / full }
        })
        .collect()
}

/// Render the ablation report.
pub fn run(cfg: &HarnessConfig) -> String {
    render(&evaluate(cfg, 1))
}

/// Render precomputed rows.
pub fn render(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("== Ablation: simulated solve time of the blocked algorithm variants ==\n");
    out.push_str("   (power-law subject with hubs, serial tail and heavy rows; Titan RTX)\n");
    let mut t = Table::new(["variant", "solve (ms)", "vs full"]);
    for r in rows {
        t.row([r.name.clone(), fmt_ms(r.seconds), fmt_x(r.vs_full)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_ingredient_pays_its_way() {
        let cfg = HarnessConfig::default();
        let rows = evaluate(&cfg, 4);
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.name.starts_with(name))
                .unwrap_or_else(|| panic!("missing variant {name}"))
                .vs_full
        };
        assert!((by("full") - 1.0).abs() < 1e-9);
        // Removing any ingredient must not make the solver faster by more
        // than noise, and no-blocking must be clearly worse.
        assert!(by("no level-set reorder") > 0.95);
        assert!(by("no DCSR") > 0.95);
        assert!(by("fixed level-set") > 1.0, "adaptive should beat fixed level-set");
        assert!(by("depth 0") > 1.1, "blocking should pay off on this subject");
    }

    #[test]
    fn report_renders() {
        let cfg = HarnessConfig::default();
        let rows = evaluate(&cfg, 8);
        let report = render(&rows);
        assert!(report.contains("Ablation"));
        assert!(report.contains("vs full"));
    }
}
