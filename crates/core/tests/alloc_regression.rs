//! Allocation-regression guard for the end-to-end blocked solve.
//!
//! After one warm-up call sizes the [`SolveWorkspace`], the full block walk
//! — gather, every per-block triangular solve and SpMV, scatter — must not
//! heap-allocate at all. The kernel selection is pinned to the level-set /
//! CSR kernels because the sync-free solver allocates per-solve atomic
//! state by design (see `TriSolver::solve_into`).
//!
//! A single `#[test]` keeps the allocation counter free of interference
//! from concurrently running tests.

use recblock::adaptive::{Selector, TriKernel};
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule, SolveWorkspace};
use recblock_gpu_sim::cost::SpmvKind;
use recblock_kernels::sptrsm::MultiVector;
use recblock_matrix::generate;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static TRACKING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn blocked_solve_into_does_not_allocate_in_steady_state() {
    let l = generate::kkt_like::<f64>(4000, 1500, 3, 910);
    let n = l.nrows();
    let opts = BlockedOptions {
        depth: DepthRule::Fixed(3),
        // Pin selection to schedule-based kernels: the sync-free variant
        // allocates per-solve state by design and is out of scope here.
        selector: Selector::Fixed(TriKernel::LevelSet, SpmvKind::ScalarCsr),
        ..BlockedOptions::default()
    };
    let s = BlockedTri::build(&l, &opts).unwrap();

    let b: Vec<f64> = (0..n).map(|i| ((i % 19) as f64) - 9.0).collect();
    let mut x = vec![0.0f64; n];
    let mut ws = SolveWorkspace::new();
    s.solve_into(&b, &mut x, &mut ws).unwrap(); // warm-up

    let allocs = allocations_during(|| {
        for _ in 0..10 {
            s.solve_into(&b, &mut x, &mut ws).unwrap();
        }
    });
    assert_eq!(allocs, 0, "BlockedTri::solve_into allocated in steady state");

    // Multi-RHS batches through a warmed workspace are allocation-free too.
    let k = 4;
    let data: Vec<f64> = (0..n * k).map(|i| ((i % 37) as f64) - 18.0).collect();
    let bm = MultiVector::from_columns(n, k, data).unwrap();
    let mut xm = MultiVector::zeros(n, k);
    s.solve_multi_ws(&bm, &mut xm, &mut ws).unwrap(); // warm-up

    let allocs = allocations_during(|| {
        for _ in 0..5 {
            s.solve_multi_ws(&bm, &mut xm, &mut ws).unwrap();
        }
    });
    assert_eq!(allocs, 0, "BlockedTri::solve_multi_ws allocated in steady state");
}
