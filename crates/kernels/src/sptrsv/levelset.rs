//! Level-set parallel SpTRSV (the paper's Algorithm 2).
//!
//! Preprocessing finds the level sets once and plans an execution schedule
//! ([`LevelSchedule`]): consecutive cheap levels fuse into serial runs
//! (level coarsening), expensive levels become parallel launches split at
//! nnz-prefix-sum chunk boundaries. The solve phase executes that schedule
//! on the persistent [`ExecPool`] writing `x` in place — no allocation, no
//! `(index, value)` collection, and results bit-identical to the serial
//! reference because every row reduces through [`crate::exec::row_dot`].

use crate::exec::{
    ExecPool, LevelSchedule, ScheduleMode, TaskGraphStats, TaskSchedule, TuneParams,
};
use crate::trace::{EventKind, SolveTrace};
use rayon::prelude::*;
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, MatrixError, Scalar};

/// Below this many components a level is solved serially — the fork/join
/// overhead dwarfs the work otherwise (the CPU analogue of the kernel-launch
/// cost the GPU model charges per level). Retained as the historical default
/// of [`TuneParams::par_rows`]; the legacy (unscheduled) path still uses it
/// directly.
const PAR_LEVEL_THRESHOLD: usize = 256;

/// A level-scheduled triangular solver: analysis happens once in
/// [`LevelSetSolver::new`], after which [`LevelSetSolver::solve`] may be
/// called for many right-hand sides.
#[derive(Debug, Clone)]
pub struct LevelSetSolver<S> {
    l: Csr<S>,
    levels: LevelSets,
    sched: LevelSchedule,
    /// The point-to-point task graph, compiled when the tune's
    /// [`ScheduleMode`] resolves to it. The level-sync `sched` above is
    /// always kept: it is the fallback when a p2p dispatch is refused
    /// (overlapped solve on the same plan, or a pool too small to host
    /// every task thread).
    tasks: Option<TaskSchedule>,
}

impl<S: Scalar> LevelSetSolver<S> {
    /// Analyse `l` (level-set construction; the preprocessing stage of
    /// Algorithm 2) and plan its execution schedule with default tuning.
    pub fn new(l: Csr<S>) -> Result<Self, MatrixError> {
        let levels = LevelSets::analyse(&l)?;
        Ok(Self::with_tune(l, levels, TuneParams::default()))
    }

    /// Build from an existing level decomposition (used by the blocked
    /// executor, which has already analysed the block during reordering).
    pub fn with_levels(l: Csr<S>, levels: LevelSets) -> Self {
        Self::with_tune(l, levels, TuneParams::default())
    }

    /// As [`LevelSetSolver::with_levels`] with explicit scheduling
    /// thresholds (the blocked executor threads its [`TuneParams`] through;
    /// a reloaded plan passes the tuning it was stored with).
    pub fn with_tune(l: Csr<S>, levels: LevelSets, tune: TuneParams) -> Self {
        Self::with_tune_threads(l, levels, tune, ExecPool::global().concurrency())
    }

    /// As [`LevelSetSolver::with_tune`] compiling the point-to-point task
    /// graph (if the mode selects one) for an explicit thread count instead
    /// of the global pool's — tests and embedders running their own pool.
    pub fn with_tune_threads(
        l: Csr<S>,
        levels: LevelSets,
        tune: TuneParams,
        nthreads: usize,
    ) -> Self {
        let sched = LevelSchedule::plan(&l, &levels, tune);
        let p2p = match tune.schedule_mode {
            ScheduleMode::LevelSync => false,
            ScheduleMode::PointToPoint => true,
            // Point-to-point pays off exactly when level-sync would pay
            // repeated barriers; a mostly-serial schedule stays level-sync.
            ScheduleMode::Auto => sched.nparallel() >= tune.p2p_min_parallel,
        };
        let tasks = p2p.then(|| TaskSchedule::plan(&l, &levels, tune, nthreads));
        LevelSetSolver { l, levels, sched, tasks }
    }

    /// The analysed level sets.
    pub fn levels(&self) -> &LevelSets {
        &self.levels
    }

    /// The planned execution schedule.
    pub fn schedule(&self) -> &LevelSchedule {
        &self.sched
    }

    /// The scheduling thresholds the solver was planned with.
    pub fn tune(&self) -> &TuneParams {
        self.sched.tune()
    }

    /// The matrix being solved.
    pub fn matrix(&self) -> &Csr<S> {
        &self.l
    }

    /// Which synchronisation scheme steady-state solves use: `"p2p"` when a
    /// task graph was compiled, `"level-sync"` otherwise.
    pub fn schedule_mode(&self) -> &'static str {
        if self.tasks.is_some() {
            "p2p"
        } else {
            "level-sync"
        }
    }

    /// Shape of the compiled task graph, when the solver runs
    /// point-to-point.
    pub fn task_stats(&self) -> Option<TaskGraphStats> {
        self.tasks.as_ref().map(|t| t.stats())
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv rhs",
                expected: n,
                actual: b.len(),
            });
        }
        let mut x = vec![S::ZERO; n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solve into a caller-provided buffer. This is the steady-state hot
    /// path: it executes the preplanned schedule on the global [`ExecPool`]
    /// and performs **zero heap allocations**.
    pub fn solve_into(&self, b: &[S], x: &mut [S]) -> Result<(), MatrixError> {
        self.solve_into_pooled(b, x, ExecPool::global())
    }

    /// As [`LevelSetSolver::solve_into`] on an explicit pool (tests and
    /// embedders that keep their own).
    pub fn solve_into_pooled(
        &self,
        b: &[S],
        x: &mut [S],
        pool: &ExecPool,
    ) -> Result<(), MatrixError> {
        self.check_buffers(b, x)?;
        let t0 = SolveTrace::start();
        let p2p_done = self.tasks.as_ref().is_some_and(|t| t.solve_into(&self.l, b, x, pool));
        if !p2p_done {
            self.sched.solve_into(&self.l, b, x, pool);
        }
        SolveTrace::finish(
            t0,
            EventKind::LevelSetKernel,
            0,
            self.l.nrows() as u32,
            self.sched.nparallel().min(u16::MAX as usize) as u16,
        );
        Ok(())
    }

    fn check_buffers(&self, b: &[S], x: &[S]) -> Result<(), MatrixError> {
        let n = self.l.nrows();
        if b.len() != n || x.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv buffers",
                expected: n,
                actual: b.len().min(x.len()),
            });
        }
        Ok(())
    }

    /// The pre-engine solve path (per-level rayon regions collecting
    /// `(index, value)` pairs), kept verbatim for before/after benchmarking.
    /// Not part of the public API surface.
    #[doc(hidden)]
    pub fn solve_into_unscheduled(&self, b: &[S], x: &mut [S]) -> Result<(), MatrixError> {
        self.check_buffers(b, x)?;
        let l = &self.l;
        for lvl in 0..self.levels.nlevels() {
            let items = self.levels.level_items(lvl);
            if items.len() < PAR_LEVEL_THRESHOLD {
                for &i in items {
                    x[i] = solve_row_legacy(l, b, x, i);
                }
            } else {
                let solved: Vec<(usize, S)> =
                    items.par_iter().map(|&i| (i, solve_row_legacy(l, b, x, i))).collect();
                for (i, xi) in solved {
                    x[i] = xi;
                }
            }
        }
        Ok(())
    }
}

/// Forward-substitute one row with the pre-engine sequential accumulation
/// (legacy path only; the engine path uses [`crate::exec::row_dot`]).
#[inline]
fn solve_row_legacy<S: Scalar>(l: &Csr<S>, b: &[S], x: &[S], i: usize) -> S {
    let (cols, vals) = l.row(i);
    let last = cols.len() - 1;
    debug_assert_eq!(cols[last], i, "diagonal must be last in row");
    let mut left_sum = S::ZERO;
    for k in 0..last {
        left_sum += vals[k] * x[cols[k]];
    }
    (b[i] - left_sum) / vals[last]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check_matches_serial(l: Csr<f64>, seed: u64) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37 + seed as f64).sin()).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let solver = LevelSetSolver::new(l).unwrap();
        let x = solver.solve(&b).unwrap();
        assert_eq!(x, reference, "engine path must be bit-identical to serial reference");
    }

    #[test]
    fn matches_serial_on_random() {
        check_matches_serial(generate::random_lower::<f64>(800, 5.0, 31), 1);
    }

    #[test]
    fn matches_serial_on_grid() {
        check_matches_serial(generate::grid2d::<f64>(30, 25, 32), 2);
    }

    #[test]
    fn matches_serial_on_chain() {
        check_matches_serial(generate::chain::<f64>(300, 33), 3);
    }

    #[test]
    fn matches_serial_on_kkt() {
        check_matches_serial(generate::kkt_like::<f64>(2000, 900, 4, 34), 4);
    }

    #[test]
    fn matches_serial_on_large_parallel_levels() {
        // Levels large enough to trigger the parallel path.
        check_matches_serial(generate::kkt_like::<f64>(5000, 2500, 3, 35), 5);
    }

    #[test]
    fn legacy_path_matches_engine_numerically() {
        let l = generate::kkt_like::<f64>(3000, 1400, 3, 38);
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.29).cos()).collect();
        let solver = LevelSetSolver::new(l).unwrap();
        let mut x_new = vec![0.0; n];
        let mut x_old = vec![0.0; n];
        solver.solve_into(&b, &mut x_new).unwrap();
        solver.solve_into_unscheduled(&b, &mut x_old).unwrap();
        assert!(max_rel_diff(&x_new, &x_old) < 1e-12);
    }

    #[test]
    fn solve_into_reuses_buffer() {
        let l = generate::banded::<f64>(200, 4, 0.6, 36);
        let b = vec![1.0; 200];
        let solver = LevelSetSolver::new(l).unwrap();
        let mut x = vec![0.0; 200];
        solver.solve_into(&b, &mut x).unwrap();
        assert!(max_rel_diff(&x, &solver.solve(&b).unwrap()) == 0.0);
    }

    #[test]
    fn rejects_bad_rhs() {
        let solver = LevelSetSolver::new(Csr::<f64>::identity(4)).unwrap();
        assert!(solver.solve(&[1.0]).is_err());
    }

    #[test]
    fn rejects_non_triangular_matrix() {
        let a = Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 1., 1.]).unwrap();
        assert!(LevelSetSolver::new(a).is_err());
    }

    #[test]
    fn exposes_levels_and_schedule() {
        let solver = LevelSetSolver::new(generate::chain::<f64>(10, 37)).unwrap();
        assert_eq!(solver.levels().nlevels(), 10);
        assert_eq!(solver.matrix().nrows(), 10);
        assert_eq!(solver.schedule().nruns(), 1, "a chain coarsens to one serial run");
        assert_eq!(solver.tune().par_rows, TuneParams::default().par_rows);
    }
}
