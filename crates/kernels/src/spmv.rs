//! The four SpMV kernels of the paper's adaptive selector (Section 3.4).
//!
//! All kernels compute the *update* form `y ← y − A·x`, which is what the
//! block algorithms need: after a triangular segment of `x` is solved, the
//! rectangular/square block multiplies it and subtracts from the pending
//! right-hand side (`b_{si+1} ← SPMV(blk, x_si, b_si)` in Algorithms 4–6).
//!
//! * **scalar-CSR** — one thread per row; best for short, uniform rows.
//! * **vector-CSR** — one warp (here: dynamic row scheduling) per row; best
//!   for long rows, where the scalar kernel would be crippled by load
//!   imbalance.
//! * **scalar-DCSR / vector-DCSR** — same pair over [`Dcsr`] storage, which
//!   skips empty rows entirely; best when `emptyratio` is high.
//!
//! Every kernel reduces each row through the deterministic lane-unrolled
//! [`crate::exec::row_dot`], so all four compute **bit-identical** results —
//! the pairs differ only in scheduling policy, which a deterministic
//! reduction makes invisible in the output.
//!
//! The blocked executor does not call these four directly on its hot path:
//! it uses the preplanned, allocation-free forms [`csr_update_planned`] /
//! [`dcsr_update_planned`], which split work at nnz-prefix-sum chunk
//! boundaries computed once at preprocessing time ([`SpmvPlan`]) and write
//! disjoint `y` sub-slices in place on the persistent [`ExecPool`].

use crate::exec::{prefetch_row, row_dot, ExecPool, SendPtr, SpmvPlan, ROW_PREFETCH_DIST};
use crate::trace::{EventKind, SolveTrace};
use rayon::prelude::*;
use recblock_matrix::{Csr, Dcsr, MatrixError, Scalar};

/// Rows below which the parallel kernels fall back to serial execution.
const PAR_THRESHOLD: usize = 512;

fn check_dims<S: Scalar>(nrows: usize, ncols: usize, x: &[S], y: &[S]) -> Result<(), MatrixError> {
    if x.len() != ncols {
        return Err(MatrixError::DimensionMismatch {
            what: "spmv x",
            expected: ncols,
            actual: x.len(),
        });
    }
    if y.len() != nrows {
        return Err(MatrixError::DimensionMismatch {
            what: "spmv y",
            expected: nrows,
            actual: y.len(),
        });
    }
    Ok(())
}

/// scalar-CSR: `y ← y − A·x`, one task per row, static uniform chunks.
pub fn scalar_csr<S: Scalar>(a: &Csr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    if a.nrows() < PAR_THRESHOLD {
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            *yi -= row_dot(cols, vals, x);
        }
    } else {
        y.par_iter_mut().enumerate().with_min_len(256).for_each(|(i, yi)| {
            let (cols, vals) = a.row(i);
            *yi -= row_dot(cols, vals, x);
        });
    }
    Ok(())
}

/// vector-CSR: `y ← y − A·x`, one task per row with dynamic scheduling
/// (handles long rows gracefully).
pub fn vector_csr<S: Scalar>(a: &Csr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    if a.nrows() < PAR_THRESHOLD {
        for (i, yi) in y.iter_mut().enumerate() {
            let (cols, vals) = a.row(i);
            *yi -= row_dot(cols, vals, x);
        }
    } else {
        // Fine-grained tasks: rayon steals rows dynamically, so a few very
        // long rows do not stall a whole static chunk — the CPU analogue of
        // giving each long row its own warp.
        y.par_iter_mut().enumerate().with_max_len(16).for_each(|(i, yi)| {
            let (cols, vals) = a.row(i);
            *yi -= row_dot(cols, vals, x);
        });
    }
    Ok(())
}

/// scalar-DCSR: `y ← y − A·x` over doubly-compressed storage; empty rows are
/// never visited.
pub fn scalar_dcsr<S: Scalar>(a: &Dcsr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    let lanes = a.n_lanes();
    if lanes < PAR_THRESHOLD {
        for k in 0..lanes {
            let (row, cols, vals) = a.lane(k);
            y[row] -= row_dot(cols, vals, x);
        }
    } else {
        let deltas: Vec<(usize, S)> = (0..lanes)
            .into_par_iter()
            .with_min_len(256)
            .map(|k| {
                let (row, cols, vals) = a.lane(k);
                (row, row_dot(cols, vals, x))
            })
            .collect();
        for (row, d) in deltas {
            y[row] -= d;
        }
    }
    Ok(())
}

/// vector-DCSR: the long-row variant over doubly-compressed storage.
pub fn vector_dcsr<S: Scalar>(a: &Dcsr<S>, x: &[S], y: &mut [S]) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    let lanes = a.n_lanes();
    if lanes < PAR_THRESHOLD {
        for k in 0..lanes {
            let (row, cols, vals) = a.lane(k);
            y[row] -= row_dot(cols, vals, x);
        }
    } else {
        let deltas: Vec<(usize, S)> = (0..lanes)
            .into_par_iter()
            .with_max_len(16)
            .map(|k| {
                let (row, cols, vals) = a.lane(k);
                (row, row_dot(cols, vals, x))
            })
            .collect();
        for (row, d) in deltas {
            y[row] -= d;
        }
    }
    Ok(())
}

/// Preplanned `y ← y − A·x` over CSR: executes `plan`'s nnz-balanced chunks
/// on `pool`, each chunk updating a disjoint row range of `y` in place —
/// zero heap allocations, bit-identical to [`scalar_csr`].
pub fn csr_update_planned<S: Scalar>(
    a: &Csr<S>,
    plan: &SpmvPlan,
    x: &[S],
    y: &mut [S],
    pool: &ExecPool,
) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    if plan.len() != a.nrows() {
        return Err(MatrixError::DimensionMismatch {
            what: "spmv plan rows",
            expected: a.nrows(),
            actual: plan.len(),
        });
    }
    let t0 = SolveTrace::start();
    if plan.nchunks() <= 1 {
        for (i, yi) in y.iter_mut().enumerate() {
            if i + ROW_PREFETCH_DIST < a.nrows() {
                let (ncols, nvals) = a.row(i + ROW_PREFETCH_DIST);
                prefetch_row(ncols, nvals, x.as_ptr());
            }
            let (cols, vals) = a.row(i);
            *yi -= row_dot(cols, vals, x);
        }
        SolveTrace::finish(t0, EventKind::SpmvCsr, 0, a.nrows() as u32, 0);
        return Ok(());
    }
    let bounds = plan.bounds();
    let yp = SendPtr(y.as_mut_ptr());
    pool.run(plan.nchunks(), &|c| {
        let hi = bounds[c + 1] as usize;
        for i in bounds[c] as usize..hi {
            if i + ROW_PREFETCH_DIST < hi {
                let (ncols, nvals) = a.row(i + ROW_PREFETCH_DIST);
                prefetch_row(ncols, nvals, x.as_ptr());
            }
            let (cols, vals) = a.row(i);
            // SAFETY: chunk boundaries partition the rows, so each y[i] is
            // touched by exactly one job.
            unsafe { *yp.ptr().add(i) -= row_dot(cols, vals, x) };
        }
    });
    SolveTrace::finish(
        t0,
        EventKind::SpmvCsr,
        0,
        a.nrows() as u32,
        plan.nchunks().min(u16::MAX as usize) as u16,
    );
    Ok(())
}

/// Preplanned `y ← y − A·x` over DCSR (chunks over stored lanes; each lane
/// maps to a distinct row, so writes stay disjoint). Zero heap allocations,
/// bit-identical to [`scalar_dcsr`].
pub fn dcsr_update_planned<S: Scalar>(
    a: &Dcsr<S>,
    plan: &SpmvPlan,
    x: &[S],
    y: &mut [S],
    pool: &ExecPool,
) -> Result<(), MatrixError> {
    check_dims(a.nrows(), a.ncols(), x, y)?;
    if plan.len() != a.n_lanes() {
        return Err(MatrixError::DimensionMismatch {
            what: "spmv plan lanes",
            expected: a.n_lanes(),
            actual: plan.len(),
        });
    }
    let t0 = SolveTrace::start();
    if plan.nchunks() <= 1 {
        for k in 0..a.n_lanes() {
            if k + ROW_PREFETCH_DIST < a.n_lanes() {
                let (_, ncols, nvals) = a.lane(k + ROW_PREFETCH_DIST);
                prefetch_row(ncols, nvals, x.as_ptr());
            }
            let (row, cols, vals) = a.lane(k);
            y[row] -= row_dot(cols, vals, x);
        }
        SolveTrace::finish(t0, EventKind::SpmvDcsr, 0, a.n_lanes() as u32, 0);
        return Ok(());
    }
    let bounds = plan.bounds();
    let yp = SendPtr(y.as_mut_ptr());
    pool.run(plan.nchunks(), &|c| {
        let hi = bounds[c + 1] as usize;
        for k in bounds[c] as usize..hi {
            if k + ROW_PREFETCH_DIST < hi {
                let (_, ncols, nvals) = a.lane(k + ROW_PREFETCH_DIST);
                prefetch_row(ncols, nvals, x.as_ptr());
            }
            let (row, cols, vals) = a.lane(k);
            // SAFETY: lanes hold distinct rows and chunks partition the
            // lanes, so each y[row] is touched by exactly one job.
            unsafe { *yp.ptr().add(row) -= row_dot(cols, vals, x) };
        }
    });
    SolveTrace::finish(
        t0,
        EventKind::SpmvDcsr,
        0,
        a.n_lanes() as u32,
        plan.nchunks().min(u16::MAX as usize) as u16,
    );
    Ok(())
}

/// Plain product `A·x` via the scalar-CSR kernel (convenience for tests and
/// examples).
pub fn apply<S: Scalar>(a: &Csr<S>, x: &[S]) -> Result<Vec<S>, MatrixError> {
    let mut y = vec![S::ZERO; a.nrows()];
    scalar_csr(a, x, &mut y)?;
    // scalar_csr computes y − A·x; negate to get A·x.
    for v in &mut y {
        *v = -*v;
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::TuneParams;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn fixture(n: usize, empty: f64, skew: f64, seed: u64) -> (Csr<f64>, Vec<f64>, Vec<f64>) {
        let a = generate::rect_random::<f64>(n, n, 5.0, empty, skew, seed);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        (a, x, y)
    }

    fn reference_update(a: &Csr<f64>, x: &[f64], y: &[f64]) -> Vec<f64> {
        let ax = a.spmv_dense(x).unwrap();
        y.iter().zip(&ax).map(|(&yi, &axi)| yi - axi).collect()
    }

    #[test]
    fn all_four_kernels_agree_small() {
        let (a, x, y0) = fixture(100, 0.3, 1.0, 71);
        let expect = reference_update(&a, &x, &y0);
        let d = a.to_dcsr();
        let base = run_scalar_csr(&a, &x, &y0);
        assert!(max_rel_diff(&base, &expect) < 1e-12);
        for (name, result) in [
            ("vector_csr", run_vector_csr(&a, &x, &y0)),
            ("scalar_dcsr", run_scalar_dcsr(&d, &x, &y0)),
            ("vector_dcsr", run_vector_dcsr(&d, &x, &y0)),
        ] {
            assert_eq!(result, base, "{name} must be bit-identical to scalar_csr");
        }
    }

    #[test]
    fn all_four_kernels_agree_large_parallel() {
        let (a, x, y0) = fixture(5000, 0.5, 2.0, 72);
        let expect = reference_update(&a, &x, &y0);
        let d = a.to_dcsr();
        let base = run_scalar_csr(&a, &x, &y0);
        assert!(max_rel_diff(&base, &expect) < 1e-10);
        for (name, result) in [
            ("vector_csr", run_vector_csr(&a, &x, &y0)),
            ("scalar_dcsr", run_scalar_dcsr(&d, &x, &y0)),
            ("vector_dcsr", run_vector_dcsr(&d, &x, &y0)),
        ] {
            assert_eq!(result, base, "{name} must be bit-identical to scalar_csr");
        }
    }

    #[test]
    fn planned_kernels_match_unplanned_bitwise() {
        let (a, x, y0) = fixture(3000, 0.4, 1.5, 75);
        let d = a.to_dcsr();
        let base = run_scalar_csr(&a, &x, &y0);
        let pool = ExecPool::new(2);
        let tune = TuneParams { chunk_nnz: 512, ..TuneParams::default() };

        let plan = SpmvPlan::for_csr(&a, &tune);
        assert!(plan.nchunks() > 1);
        let mut y = y0.clone();
        csr_update_planned(&a, &plan, &x, &mut y, &pool).unwrap();
        assert_eq!(y, base);

        let dplan = SpmvPlan::for_dcsr(&d, &tune);
        let mut y = y0.clone();
        dcsr_update_planned(&d, &dplan, &x, &mut y, &pool).unwrap();
        assert_eq!(y, base);

        // Single-chunk (serial) plans too.
        let wide = TuneParams { chunk_nnz: usize::MAX, ..TuneParams::default() };
        let mut y = y0.clone();
        csr_update_planned(&a, &SpmvPlan::for_csr(&a, &wide), &x, &mut y, &pool).unwrap();
        assert_eq!(y, base);
        let mut y = y0.clone();
        dcsr_update_planned(&d, &SpmvPlan::for_dcsr(&d, &wide), &x, &mut y, &pool).unwrap();
        assert_eq!(y, base);
    }

    #[test]
    fn planned_kernels_reject_mismatched_plan() {
        let (a, x, y0) = fixture(100, 0.0, 0.0, 76);
        let other = generate::rect_random::<f64>(50, 100, 3.0, 0.0, 0.0, 77);
        let plan = SpmvPlan::for_csr(&other, &TuneParams::default());
        let mut y = y0.clone();
        assert!(csr_update_planned(&a, &plan, &x, &mut y, ExecPool::global()).is_err());
    }

    fn run_scalar_csr(a: &Csr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        scalar_csr(a, x, &mut y).unwrap();
        y
    }

    fn run_vector_csr(a: &Csr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        vector_csr(a, x, &mut y).unwrap();
        y
    }

    fn run_scalar_dcsr(a: &Dcsr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        scalar_dcsr(a, x, &mut y).unwrap();
        y
    }

    fn run_vector_dcsr(a: &Dcsr<f64>, x: &[f64], y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        vector_dcsr(a, x, &mut y).unwrap();
        y
    }

    #[test]
    fn rectangular_shapes_supported() {
        let a = generate::rect_random::<f64>(300, 120, 3.0, 0.2, 0.0, 73);
        let x = vec![1.0; 120];
        let mut y = vec![0.0; 300];
        scalar_csr(&a, &x, &mut y).unwrap();
        let expect: Vec<f64> = a.spmv_dense(&x).unwrap().iter().map(|v| -v).collect();
        assert!(max_rel_diff(&y, &expect) < 1e-12);
    }

    #[test]
    fn dimension_checks() {
        let a = Csr::<f64>::identity(3);
        let mut y = vec![0.0; 3];
        assert!(scalar_csr(&a, &[1.0], &mut y).is_err());
        assert!(vector_csr(&a, &[1.0; 3], &mut [0.0; 2]).is_err());
        let d = a.to_dcsr();
        assert!(scalar_dcsr(&d, &[1.0; 2], &mut y).is_err());
        assert!(vector_dcsr(&d, &[1.0; 3], &mut [0.0; 4]).is_err());
    }

    #[test]
    fn apply_computes_product() {
        let a = Csr::<f64>::identity(4);
        assert_eq!(apply(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_matrix_is_noop() {
        let a = Csr::<f64>::zero(4, 4);
        let mut y = vec![1.0; 4];
        scalar_csr(&a, &[2.0; 4], &mut y).unwrap();
        assert_eq!(y, vec![1.0; 4]);
    }

    #[test]
    fn update_form_accumulates() {
        // Two successive updates subtract twice.
        let a = Csr::<f64>::identity(2);
        let mut y = vec![10.0, 10.0];
        scalar_csr(&a, &[1.0, 2.0], &mut y).unwrap();
        scalar_csr(&a, &[1.0, 2.0], &mut y).unwrap();
        assert_eq!(y, vec![8.0, 6.0]);
    }

    #[test]
    fn f32_kernels_work() {
        let a = generate::rect_random::<f32>(200, 200, 4.0, 0.4, 0.0, 74);
        let x = vec![0.5f32; 200];
        let mut y1 = vec![1.0f32; 200];
        let mut y2 = vec![1.0f32; 200];
        scalar_csr(&a, &x, &mut y1).unwrap();
        vector_dcsr(&a.to_dcsr(), &x, &mut y2).unwrap();
        assert_eq!(y1, y2);
    }
}
