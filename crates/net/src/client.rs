//! Minimal blocking RBNET client.
//!
//! One synchronous connection: requests are written whole, responses are
//! read whole. `send_solve`/`recv` split the round trip for pipelining
//! (the loopback tests use this to saturate the server from one thread).
//!
//! Every phase is bounded by a [`ClientConfig`] deadline — connect, write
//! and read all surface [`NetError::Timeout`] instead of hanging on a
//! dead peer — and [`NetClient::solve_multi_retry`] layers seeded
//! exponential-backoff retries on top. Retrying a solve is safe by
//! construction: requests carry only the matrix fingerprint + value
//! digest and the right-hand side, so re-sending is idempotent; at worst
//! the server solves the same system twice.

use crate::error::{ErrCode, NetError};
use crate::frame::{
    self, FrameKind, Header, MemberInfo, RingStateMsg, StatReply, TraceHopMsg, HEADER_LEN,
};
use recblock_matrix::Scalar;
use recblock_store::PlanKey;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// The outcome of one solve request: solution columns, or the server's
/// typed refusal.
pub type SolveOutcome<S> = Result<Vec<Vec<S>>, (ErrCode, String)>;

/// Per-phase deadlines of one connection. `None` means "block forever"
/// (the pre-timeout behaviour); the defaults bound every phase.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Option<Duration>,
    /// Deadline for one response read.
    pub read_timeout: Option<Duration>,
    /// Deadline for writing one request.
    pub write_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// Seeded exponential-backoff retry schedule for idempotent requests.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single delay.
    pub max_backoff: Duration,
    /// Fraction of each delay that is randomized away (0.0 = fixed
    /// delays, 1.0 = anywhere in `[0, delay]`). Decorrelates clients
    /// that fail together so they do not retry together.
    pub jitter: f64,
    /// Seed of the jitter stream — a given seed reproduces the exact
    /// backoff sequence, so failure scenarios replay deterministically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.5,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff)
            .as_secs_f64();
        let mut z =
            self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let frac = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_secs_f64(exp * (1.0 - self.jitter.clamp(0.0, 1.0) * frac))
    }

    /// Is `err` worth retrying? Transport failures and transient server
    /// refusals are; a server that answered "your request is wrong"
    /// will answer the same on every retry.
    pub fn retryable(err: &NetError) -> bool {
        match err {
            NetError::Io(_) | NetError::Closed | NetError::Timeout(_) => true,
            NetError::Remote { code, .. } => {
                matches!(code, ErrCode::RateLimited | ErrCode::Overloaded)
            }
            NetError::Frame(_) | NetError::Protocol(_) => false,
        }
    }
}

/// Blocking client for one RBNET connection.
pub struct NetClient {
    stream: TcpStream,
    /// The resolved peer, kept so retries can reconnect.
    addr: SocketAddr,
    config: ClientConfig,
    buf: Vec<u8>,
    next_tag: u64,
    /// Largest response payload this client will accept.
    pub max_frame_bytes: u32,
}

/// Map an I/O error from a socket with a read/write deadline armed:
/// expiry surfaces as `WouldBlock` (unix) or `TimedOut`.
fn classify(e: std::io::Error, phase: &'static str) -> NetError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout(phase),
        std::io::ErrorKind::UnexpectedEof => NetError::Closed,
        _ => NetError::Io(e),
    }
}

impl NetClient {
    /// Connect to a server with the default deadlines.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect to a server with explicit per-phase deadlines.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<NetClient, NetError> {
        let mut last: Option<NetError> = None;
        for addr in addr.to_socket_addrs()? {
            match Self::connect_one(addr, &config) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            NetError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            ))
        }))
    }

    fn connect_one(addr: SocketAddr, config: &ClientConfig) -> Result<NetClient, NetError> {
        let stream = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t).map_err(|e| classify(e, "connect"))?,
            None => TcpStream::connect(addr)?,
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(NetClient {
            stream,
            addr,
            config: *config,
            buf: Vec::new(),
            next_tag: 1,
            max_frame_bytes: 64 << 20,
        })
    }

    /// Drop the current connection and establish a fresh one to the same
    /// peer (same deadlines). The tag counter keeps advancing, so
    /// responses can never be confused across connections.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let fresh = Self::connect_one(self.addr, &self.config)?;
        self.stream = fresh.stream;
        Ok(())
    }

    /// Set a read timeout for responses (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.config.read_timeout = timeout;
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn write_request(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes).map_err(|e| classify(e, "write"))
    }

    /// Read one whole frame; returns its header and leaves the payload in
    /// `self.buf`.
    fn read_frame(&mut self) -> Result<Header, NetError> {
        let mut head = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut head).map_err(|e| classify(e, "read"))?;
        let h = frame::decode_header(&head, self.max_frame_bytes)?
            .expect("full header always decodes or errors");
        self.buf.clear();
        self.buf.resize(h.payload_len as usize, 0);
        self.stream.read_exact(&mut self.buf).map_err(|e| classify(e, "read"))?;
        Ok(h)
    }

    /// Send a solve request without waiting; returns the tag to match the
    /// response against.
    pub fn send_solve<S: Scalar>(
        &mut self,
        tenant: &str,
        key: &PlanKey,
        cols: &[&[S]],
        deadline_ms: u32,
    ) -> Result<u64, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_solve(&mut out, tag, tenant, key, deadline_ms, cols);
        self.write_request(&out)?;
        Ok(tag)
    }

    /// Receive the next solve response (any tag): `(tag, outcome)`.
    pub fn recv<S: Scalar>(&mut self) -> Result<(u64, SolveOutcome<S>), NetError> {
        let h = self.read_frame()?;
        match h.kind {
            FrameKind::SolveOk => {
                let ok = frame::parse_solve_ok(&self.buf)?;
                let mut cols = Vec::with_capacity(ok.k as usize);
                for j in 0..ok.k as usize {
                    let mut v = Vec::new();
                    frame::decode_scalars::<S>(ok.col_bytes(j), ok.width, &mut v)?;
                    cols.push(v);
                }
                Ok((h.tag, Ok(cols)))
            }
            FrameKind::Err => {
                let (code, msg) = frame::parse_err(&self.buf)?;
                Ok((h.tag, Err((code, msg.to_string()))))
            }
            _ => Err(NetError::Protocol("expected SolveOk or Err")),
        }
    }

    /// One blocking multi-column solve round trip.
    pub fn solve_multi<S: Scalar>(
        &mut self,
        tenant: &str,
        key: &PlanKey,
        cols: &[&[S]],
        deadline_ms: u32,
    ) -> Result<Vec<Vec<S>>, NetError> {
        let tag = self.send_solve(tenant, key, cols, deadline_ms)?;
        let (rtag, outcome) = self.recv::<S>()?;
        if rtag != tag {
            return Err(NetError::Protocol("response tag does not match request"));
        }
        outcome.map_err(|(code, message)| NetError::Remote { code, message })
    }

    /// A multi-column solve with retries: transport failures and
    /// transient refusals back off (exponentially, seeded jitter),
    /// reconnect, and re-send. Safe because solve requests are
    /// idempotent — they are keyed by fingerprint + value digest.
    ///
    /// `deadline_ms` (0 = none) bounds the *whole* exchange, retries and
    /// backoff included, and propagates: each attempt tells the server
    /// only the budget that is still left, so a retried request cannot
    /// outlive the caller's patience server-side either.
    pub fn solve_multi_retry<S: Scalar>(
        &mut self,
        tenant: &str,
        key: &PlanKey,
        cols: &[&[S]],
        deadline_ms: u32,
        policy: &RetryPolicy,
    ) -> Result<Vec<Vec<S>>, NetError> {
        let start = Instant::now();
        let budget =
            if deadline_ms == 0 { None } else { Some(Duration::from_millis(deadline_ms as u64)) };
        let remaining_ms = |start: Instant| -> Option<u32> {
            match budget {
                None => Some(0),
                Some(b) => {
                    let left = b.checked_sub(start.elapsed())?;
                    // Round up so a still-live budget never truncates to
                    // "no deadline" (0) or to an instantly-expired 0ms.
                    Some(left.as_millis().clamp(1, u32::MAX as u128) as u32)
                }
            }
        };
        let mut attempt = 0u32;
        loop {
            let Some(left) = remaining_ms(start) else {
                return Err(NetError::Timeout("retry deadline"));
            };
            let err = match self.solve_multi(tenant, key, cols, left) {
                Ok(cols) => return Ok(cols),
                Err(e) => e,
            };
            attempt += 1;
            if attempt >= policy.max_attempts || !RetryPolicy::retryable(&err) {
                return Err(err);
            }
            let mut delay = policy.backoff(attempt - 1);
            if let Some(b) = budget {
                let Some(left) = b.checked_sub(start.elapsed()) else {
                    return Err(NetError::Timeout("retry deadline"));
                };
                delay = delay.min(left);
            }
            std::thread::sleep(delay);
            // Reconnect regardless of what failed: after any error the
            // old connection's stream state is suspect (a late response
            // to the failed attempt must never match a new tag).
            self.reconnect()?;
        }
    }

    /// One blocking multi-column solve round trip carrying a trace id.
    ///
    /// Pass `trace_id = 0` to have the server mint one at admission (the
    /// normal client case); a non-zero id is forwarded verbatim (the
    /// proxy case, so every hop of one request shares the origin's id).
    /// The hops land in each node's trace log — fetch them with
    /// [`NetClient::trace`].
    pub fn solve_multi_traced<S: Scalar>(
        &mut self,
        trace_id: u64,
        tenant: &str,
        key: &PlanKey,
        cols: &[&[S]],
        deadline_ms: u32,
    ) -> Result<Vec<Vec<S>>, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_solve_traced(&mut out, tag, trace_id, tenant, key, deadline_ms, cols);
        self.write_request(&out)?;
        let (rtag, outcome) = self.recv::<S>()?;
        if rtag != tag {
            return Err(NetError::Protocol("response tag does not match request"));
        }
        outcome.map_err(|(code, message)| NetError::Remote { code, message })
    }

    /// Fetch the server's recorded trace hops for one plan (newest last).
    pub fn trace(&mut self, key: &PlanKey) -> Result<Vec<TraceHopMsg>, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_trace_get(&mut out, tag, key);
        self.write_request(&out)?;
        let h = self.read_frame()?;
        if h.tag != tag {
            return Err(NetError::Protocol("response tag does not match request"));
        }
        match h.kind {
            FrameKind::TraceData => Ok(frame::parse_trace_data(&self.buf)?),
            FrameKind::Err => {
                let (code, msg) = frame::parse_err(&self.buf)?;
                Err(NetError::Remote { code, message: msg.to_string() })
            }
            _ => Err(NetError::Protocol("expected TraceData or Err")),
        }
    }

    /// One blocking single-RHS solve round trip.
    pub fn solve<S: Scalar>(
        &mut self,
        tenant: &str,
        key: &PlanKey,
        rhs: &[S],
    ) -> Result<Vec<S>, NetError> {
        let mut cols = self.solve_multi(tenant, key, &[rhs], 0)?;
        Ok(cols.pop().expect("k = 1 response has one column"))
    }

    /// Round-trip liveness probe; returns the measured latency.
    pub fn ping(&mut self) -> Result<Duration, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_header(&mut out, FrameKind::Ping, tag, 0);
        let t0 = Instant::now();
        self.write_request(&out)?;
        let h = self.read_frame()?;
        if h.kind != FrameKind::Pong || h.tag != tag {
            return Err(NetError::Protocol("expected matching Pong"));
        }
        Ok(t0.elapsed())
    }

    /// Fetch server status: health, warm plans, in-flight work,
    /// per-tenant queues.
    pub fn stat(&mut self) -> Result<StatReply, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_header(&mut out, FrameKind::Stat, tag, 0);
        self.write_request(&out)?;
        let h = self.read_frame()?;
        if h.kind != FrameKind::StatOk || h.tag != tag {
            return Err(NetError::Protocol("expected matching StatOk"));
        }
        Ok(frame::parse_stat_reply(&self.buf)?)
    }

    // ---- cluster (protocol v2) ------------------------------------------

    /// Expect a `RingState` reply with `tag`, or surface the peer's
    /// typed refusal.
    fn recv_ring_state(&mut self, tag: u64) -> Result<RingStateMsg, NetError> {
        let h = self.read_frame()?;
        if h.tag != tag {
            return Err(NetError::Protocol("response tag does not match request"));
        }
        match h.kind {
            FrameKind::RingState => Ok(frame::parse_ring_state(&self.buf)?),
            FrameKind::Err => {
                let (code, msg) = frame::parse_err(&self.buf)?;
                Err(NetError::Remote { code, message: msg.to_string() })
            }
            _ => Err(NetError::Protocol("expected RingState or Err")),
        }
    }

    /// Announce `member` joining the ring to the peer; returns the
    /// peer's post-join ring view.
    pub fn join(&mut self, member: &MemberInfo) -> Result<RingStateMsg, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_join(&mut out, tag, member);
        self.write_request(&out)?;
        self.recv_ring_state(tag)
    }

    /// Announce that node `name` is leaving the ring; returns the
    /// peer's post-leave ring view.
    pub fn leave(&mut self, name: &str) -> Result<RingStateMsg, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_leave(&mut out, tag, name);
        self.write_request(&out)?;
        self.recv_ring_state(tag)
    }

    /// Exchange ring views with the peer (push ours, get theirs back).
    pub fn ring_state(&mut self, ours: &RingStateMsg) -> Result<RingStateMsg, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_ring_state(&mut out, tag, ours);
        self.write_request(&out)?;
        self.recv_ring_state(tag)
    }

    /// Push a serialized `.rbplan` to the peer, which verifies the
    /// embedded checksums before adopting it.
    pub fn push_plan(&mut self, key: &PlanKey, bytes: &[u8]) -> Result<(), NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_plan_push(&mut out, tag, key, bytes);
        self.write_request(&out)?;
        let h = self.read_frame()?;
        if h.tag != tag {
            return Err(NetError::Protocol("response tag does not match request"));
        }
        match h.kind {
            FrameKind::PlanPushOk => Ok(()),
            FrameKind::Err => {
                let (code, msg) = frame::parse_err(&self.buf)?;
                Err(NetError::Remote { code, message: msg.to_string() })
            }
            _ => Err(NetError::Protocol("expected PlanPushOk or Err")),
        }
    }

    /// Pull the peer's copy of a plan as verbatim `.rbplan` bytes.
    /// With `build_intent` set, a `PlanNotFound` refusal doubles as the
    /// cluster-wide grant to build this plan (the peer remembers the
    /// grant and answers later intents with `BuildInProgress`).
    pub fn pull_plan(&mut self, key: &PlanKey, build_intent: bool) -> Result<Vec<u8>, NetError> {
        let tag = self.tag();
        let mut out = Vec::new();
        frame::encode_plan_pull(&mut out, tag, key, build_intent);
        self.write_request(&out)?;
        let h = self.read_frame()?;
        if h.tag != tag {
            return Err(NetError::Protocol("response tag does not match request"));
        }
        match h.kind {
            FrameKind::PlanData => {
                let transfer = frame::parse_plan_transfer(&self.buf)?;
                if transfer.key != *key {
                    return Err(NetError::Protocol("plan data for a different key"));
                }
                Ok(transfer.bytes.to_vec())
            }
            FrameKind::Err => {
                let (code, msg) = frame::parse_err(&self.buf)?;
                Err(NetError::Remote { code, message: msg.to_string() })
            }
            _ => Err(NetError::Protocol("expected PlanData or Err")),
        }
    }

    /// The raw stream, for tests that need to misbehave (partial writes,
    /// abrupt shutdowns).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::default();
        let d0 = p.backoff(0);
        let d5 = p.backoff(5);
        assert!(d0 <= Duration::from_millis(50));
        assert!(d0 >= Duration::from_millis(25), "jitter removes at most half: {d0:?}");
        assert!(d5 <= p.max_backoff);
        assert_eq!(p.backoff(3), p.backoff(3), "same seed, same attempt, same delay");
        let other = RetryPolicy { seed: 1, ..p };
        assert_ne!(other.backoff(3), p.backoff(3), "different seeds decorrelate");
    }

    #[test]
    fn retryability_matches_error_semantics() {
        assert!(RetryPolicy::retryable(&NetError::Closed));
        assert!(RetryPolicy::retryable(&NetError::Timeout("read")));
        assert!(RetryPolicy::retryable(&NetError::Remote {
            code: ErrCode::Overloaded,
            message: String::new()
        }));
        assert!(!RetryPolicy::retryable(&NetError::Remote {
            code: ErrCode::BadRequest,
            message: String::new()
        }));
        assert!(!RetryPolicy::retryable(&NetError::Protocol("x")));
    }

    #[test]
    fn read_deadline_fires_as_typed_timeout() {
        // A listener that accepts and then goes silent: the read deadline
        // must fire as `NetError::Timeout`, not block forever.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let cfg = ClientConfig {
            read_timeout: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        };
        let mut client = NetClient::connect_with(addr, cfg).unwrap();
        let _held_open = hold.join().unwrap().unwrap();
        let t0 = Instant::now();
        let err = client.read_frame().unwrap_err();
        assert!(matches!(err, NetError::Timeout("read")), "got {err:?}");
        assert!(t0.elapsed() < Duration::from_secs(5), "took {:?}", t0.elapsed());
    }
}
