//! Vendored ChaCha-based RNG for the offline build (see `vendor/README.md`).
//!
//! Implements a genuine ChaCha8 keystream (RFC 8439 quarter-round, 8 double
//! rounds, 64-byte blocks) behind the [`rand::RngCore`] /
//! [`rand::SeedableRng`] traits, so `ChaCha8Rng::seed_from_u64(seed)` is
//! deterministic, high-quality and key-expanded exactly like the callers
//! expect. Output is *not* bit-identical to the upstream `rand_chacha`
//! stream (the workspace never relies on that — only on determinism).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8 random number generator over a 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, block counter, zero nonce.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_is_balanced() {
        // Crude uniformity check: bit density of 64 KiB of keystream.
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..8192).map(|_| r.next_u64().count_ones()).sum();
        let total = 8192 * 64;
        let density = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&density), "density {density}");
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let v = r.gen_range(10usize..20);
        assert!((10..20).contains(&v));
        let _ = r.gen_bool(0.5);
    }
}
