//! Durability and recovery tests for the plan store: the fsync discipline
//! of the atomic write path, and the boot-time recovery scan that turns
//! torn or corrupt plan files into quarantined files instead of panics.

use proptest::prelude::*;
use recblock::{RecBlockSolver, SolverOptions};
use recblock_matrix::generate;
use recblock_store::{sync_stats, ArtifactKind, PlanKey, PlanStore, StoreError, QUARANTINE_DIR};
use std::path::PathBuf;
use std::sync::OnceLock;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rbstore-res-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// One valid plan file's bytes plus its key, built once and shared across
/// tests (plan construction dominates the cost of every case otherwise).
fn plan_fixture() -> &'static (PlanKey, Vec<u8>) {
    static FIXTURE: OnceLock<(PlanKey, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let tmp = TempDir::new("fixture");
        let l = generate::random_lower::<f64>(200, 3.0, 1900);
        let key = PlanKey::of(&l);
        let solver = RecBlockSolver::new(&l, SolverOptions::default()).unwrap();
        let store = PlanStore::open(&tmp.0).unwrap();
        let path = store.save(solver.blocked(), &key, 0.1).unwrap();
        (key, std::fs::read(path).unwrap())
    })
}

#[test]
fn atomic_write_syncs_file_and_directory() {
    let tmp = TempDir::new("fsync");
    let store = PlanStore::open(&tmp.0).unwrap();
    let (key, bytes) = plan_fixture();
    let (files_before, dirs_before) = sync_stats();
    recblock_store::write_atomic(&store.path_for(key, ArtifactKind::Blocked), bytes).unwrap();
    let (files_after, dirs_after) = sync_stats();
    assert!(files_after > files_before, "temp file must be synced before the rename");
    assert!(dirs_after > dirs_before, "parent directory must be synced after the rename");
    assert!(store.load::<f64>(key).unwrap().is_some());
}

#[test]
fn recover_quarantines_corrupt_file_and_sweeps_stale_tmp() {
    let tmp = TempDir::new("recover");
    let store = PlanStore::open(&tmp.0).unwrap();
    let (key, bytes) = plan_fixture();

    // A valid plan, a bit-flipped copy under a different name, and a
    // stale temp file from a writer that died before its rename.
    let good = store.path_for(key, ArtifactKind::Blocked);
    recblock_store::write_atomic(&good, bytes).unwrap();
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    std::fs::write(tmp.0.join("corrupt-copy.rbplan"), &corrupt).unwrap();
    std::fs::write(tmp.0.join(".dead-writer.rbplan.tmp-999-0"), b"partial").unwrap();

    let report = store.recover().unwrap();
    assert_eq!(report.scanned, 2);
    assert_eq!(report.stale_tmp_removed, 1);
    assert_eq!(report.quarantined.len(), 1);
    let (dest, why) = &report.quarantined[0];
    assert!(dest.starts_with(store.quarantine_dir()), "moved into {QUARANTINE_DIR}/");
    assert!(dest.exists(), "quarantined file is preserved for forensics");
    assert!(matches!(why, StoreError::ChecksumMismatch { .. }), "condemned by CRC: {why}");

    // The good file survived and still loads; the store is clean now.
    assert!(store.load::<f64>(key).unwrap().is_some());
    assert!(!tmp.0.join("corrupt-copy.rbplan").exists());
    let again = store.recover().unwrap();
    assert_eq!(again.quarantined.len(), 0, "recovery is idempotent");
    assert_eq!(again.stale_tmp_removed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // A torn write leaves an arbitrary prefix of a valid plan file. Every
    // prefix length must produce a typed error on load — never a panic,
    // never a bogus plan — and the recovery scan must quarantine it.
    #[test]
    fn torn_prefix_is_typed_error_then_quarantined(frac in 0u64..10_000) {
        let (key, bytes) = plan_fixture();
        // Strictly shorter than the full file: every prefix is torn.
        let keep = (frac as usize * bytes.len()) / 10_000;
        let tmp = TempDir::new(&format!("torn-{frac}"));
        let store = PlanStore::open(&tmp.0).unwrap();
        let path = store.path_for(key, ArtifactKind::Blocked);
        std::fs::write(&path, &bytes[..keep]).unwrap();

        let err = store.load::<f64>(key).expect_err("torn file must not load");
        prop_assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::WrongMagic
                    | StoreError::WrongVersion { .. }
                    | StoreError::Malformed(_)
            ),
            "typed decode error, got {err}"
        );

        let report = store.recover().unwrap();
        prop_assert_eq!(report.quarantined.len(), 1);
        prop_assert!(store.load::<f64>(key).unwrap().is_none(), "quarantined key misses cleanly");
    }
}
