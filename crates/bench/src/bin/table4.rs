//! Regenerate the paper's Table 4 (six representative matrices).
use recblock_bench::HarnessConfig;
fn main() {
    let shrink: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let rows = recblock_bench::experiments::table4::evaluate(&HarnessConfig::default(), shrink);
    print!("{}", recblock_bench::experiments::table4::render(&rows));
}
