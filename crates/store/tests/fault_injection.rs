//! Armed fault injection against the plan store: injected I/O errors,
//! bit flips between read and decode, and torn writes that the recovery
//! scan must quarantine.
//!
//! Compiled only with `--features faults`; lives in its own binary and
//! serializes on a mutex because the fault plan is process global.

#![cfg(feature = "faults")]

use recblock::{RecBlockSolver, SolverOptions};
use recblock_faults::{FaultPlan, FaultPoint, Trigger};
use recblock_matrix::generate;
use recblock_store::{ArtifactKind, PlanKey, PlanStore, StoreError};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("rbstore-flt-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn plan_fixture() -> &'static (PlanKey, Vec<u8>) {
    static FIXTURE: OnceLock<(PlanKey, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let tmp = TempDir::new("fixture");
        let l = generate::random_lower::<f64>(160, 3.0, 2100);
        let key = PlanKey::of(&l);
        let solver = RecBlockSolver::new(&l, SolverOptions::default()).unwrap();
        let store = PlanStore::open(&tmp.0).unwrap();
        let path = store.save(solver.blocked(), &key, 0.1).unwrap();
        (key, std::fs::read(path).unwrap())
    })
}

#[test]
fn injected_read_error_is_typed_io() {
    let _serial = fault_lock();
    let tmp = TempDir::new("read-err");
    let store = PlanStore::open(&tmp.0).unwrap();
    let (key, bytes) = plan_fixture();
    recblock_store::write_atomic(&store.path_for(key, ArtifactKind::Blocked), bytes).unwrap();

    FaultPlan::new(61).with(FaultPoint::StoreRead, Trigger::OneShot).install();
    let err = store.load::<f64>(key).expect_err("injected read error must surface");
    FaultPlan::clear();
    assert!(matches!(err, StoreError::Io(_)), "typed I/O error, got {err}");
    // The file was untouched: the next load succeeds.
    assert!(store.load::<f64>(key).unwrap().is_some());
}

#[test]
fn injected_bit_flip_is_condemned_by_checksum() {
    let _serial = fault_lock();
    let tmp = TempDir::new("bit-flip");
    let store = PlanStore::open(&tmp.0).unwrap();
    let (key, bytes) = plan_fixture();
    recblock_store::write_atomic(&store.path_for(key, ArtifactKind::Blocked), bytes).unwrap();

    // Each load flips a deterministic (seed-dependent) bit between the
    // read and the decode. No single-bit corruption may ever decode.
    for seed in [67, 71, 73, 79] {
        FaultPlan::new(seed).with(FaultPoint::StoreDecode, Trigger::Always).install();
        let err = store.load::<f64>(key).expect_err("flipped bit must not decode");
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. }
                    | StoreError::Malformed(_)
                    | StoreError::Truncated { .. }
                    | StoreError::WrongMagic
                    | StoreError::WrongVersion { .. }
            ),
            "seed {seed}: typed decode error, got {err}"
        );
    }
    FaultPlan::clear();
    assert!(store.load::<f64>(key).unwrap().is_some(), "disk bytes were never harmed");
}

#[test]
fn injected_torn_write_is_quarantined_by_recovery() {
    let _serial = fault_lock();
    let tmp = TempDir::new("torn");
    let store = PlanStore::open(&tmp.0).unwrap();
    let (key, bytes) = plan_fixture();
    let path = store.path_for(key, ArtifactKind::Blocked);

    // The armed write tears: a prefix is published by the rename with no
    // fsync — exactly what a crash mid-persist leaves behind.
    FaultPlan::new(83).with(FaultPoint::StoreWrite, Trigger::OneShot).install();
    recblock_store::write_atomic(&path, bytes).unwrap();
    FaultPlan::clear();

    let on_disk = std::fs::read(&path).unwrap();
    assert!(on_disk.len() < bytes.len(), "the write must actually have torn");

    // Boot-time recovery condemns it; afterwards the key misses cleanly
    // and a healthy rewrite round-trips.
    let report = store.recover().unwrap();
    assert_eq!(report.quarantined.len(), 1, "torn file is quarantined");
    assert!(store.load::<f64>(key).unwrap().is_none());
    recblock_store::write_atomic(&path, bytes).unwrap();
    assert!(store.load::<f64>(key).unwrap().is_some());
}
