//! Figure 7: box plots of the double/single precision performance ratio of
//! the three methods on both devices.
//!
//! The paper: cuSPARSE sits at 0.7–0.8, the block algorithm at 0.8–0.9 and
//! Sync-free around 0.9 — all far above the 0.5 a compute-bound dense
//! kernel would show, because sparse solve cost is dominated by structure,
//! not element width.

use crate::corpus::corpus_scaled;
use crate::harness::{box_stats, evaluate_methods_with, BoxStats, HarnessConfig, Table};
use recblock_gpu_sim::TriProfile;
use recblock_matrix::levelset::LevelSets;

/// Per-device ratio samples for the three methods.
#[derive(Debug, Clone)]
pub struct RatioSamples {
    /// Device name.
    pub device: String,
    /// double/single GFlops ratio per matrix, cuSPARSE.
    pub cusparse: Vec<f64>,
    /// Sync-free ratios.
    pub syncfree: Vec<f64>,
    /// Block-algorithm ratios.
    pub block: Vec<f64>,
}

/// Evaluate ratios over the (optionally shrunken) corpus.
pub fn evaluate(cfg: &HarnessConfig, extra_shrink: usize) -> Vec<RatioSamples> {
    let entries = corpus_scaled(extra_shrink);
    let mut out = Vec::new();
    for dev in &cfg.devices {
        let mut samples = RatioSamples {
            device: dev.name.to_string(),
            cusparse: Vec::new(),
            syncfree: Vec::new(),
            block: Vec::new(),
        };
        for entry in &entries {
            let l = entry.build::<f64>();
            let levels = LevelSets::analyse_unchecked(&l);
            let profile = TriProfile::analyse(&l, &levels);
            let blocked = crate::harness::build_blocked(&l, dev, cfg);
            let f64_eval = evaluate_methods_with(&profile, &blocked, l.nrows(), 8, dev, cfg);
            let f32_eval = evaluate_methods_with(&profile, &blocked, l.nrows(), 4, dev, cfg);
            // ratio = perf(double) / perf(single) = time(single) / time(double).
            samples.cusparse.push(f32_eval.cusparse.total_s / f64_eval.cusparse.total_s);
            samples.syncfree.push(f32_eval.syncfree.total_s / f64_eval.syncfree.total_s);
            samples.block.push(f32_eval.block.total_s / f64_eval.block.total_s);
        }
        out.push(samples);
    }
    out
}

/// Render the report.
pub fn run(cfg: &HarnessConfig) -> String {
    render(&evaluate(cfg, 1))
}

/// Render precomputed samples.
pub fn render(samples: &[RatioSamples]) -> String {
    let mut out = String::new();
    out.push_str("== Figure 7: double/single precision performance ratio (box stats) ==\n");
    let fmt = |s: BoxStats| -> [String; 5] {
        [
            format!("{:.3}", s.min),
            format!("{:.3}", s.q1),
            format!("{:.3}", s.median),
            format!("{:.3}", s.q3),
            format!("{:.3}", s.max),
        ]
    };
    for dev_samples in samples {
        out.push_str(&format!("\n-- {} --\n", dev_samples.device));
        let mut t = Table::new(["method", "min", "q1", "median", "q3", "max"]);
        for (name, vals) in [
            ("cuSPARSE v2", &dev_samples.cusparse),
            ("Sync-free", &dev_samples.syncfree),
            ("block algorithm", &dev_samples.block),
        ] {
            let s = fmt(box_stats(vals));
            t.row([
                name.to_string(),
                s[0].clone(),
                s[1].clone(),
                s[2].clone(),
                s[3].clone(),
                s[4].clone(),
            ]);
        }
        out.push_str(&t.render());
    }
    out.push_str("\nPaper medians: cuSPARSE 0.7-0.8, block 0.8-0.9, Sync-free ~0.9.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_structure_dominated() {
        let cfg = HarnessConfig::default();
        let samples = evaluate(&cfg, 24);
        for dev in &samples {
            for (name, vals) in
                [("cusparse", &dev.cusparse), ("syncfree", &dev.syncfree), ("block", &dev.block)]
            {
                let s = box_stats(vals);
                // All methods: ratio well above the dense 0.5, at most ~1.
                assert!(s.median > 0.55, "{name} median {}", s.median);
                assert!(s.median <= 1.02, "{name} median {}", s.median);
            }
            // Shape: sync-free (atomics dominated by structure) should be
            // at least as precision-insensitive as cuSPARSE.
            let sf = box_stats(&dev.syncfree).median;
            let cu = box_stats(&dev.cusparse).median;
            assert!(sf >= cu - 0.05, "syncfree {sf} vs cusparse {cu}");
        }
    }
}
