//! Compressed sparse column storage (the sync-free kernel's native format,
//! Algorithm 3 of the paper).

use crate::csr::Csr;
use crate::error::MatrixError;
use crate::scalar::Scalar;

/// A sparse matrix in compressed sparse column format.
///
/// Invariants mirror [`Csr`]: `col_ptr.len() == ncols + 1`, non-decreasing,
/// row indices strictly increasing within each column and `< nrows`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<S> {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<S>,
}

impl<S: Scalar> Csc<S> {
    /// Build a CSC matrix, validating all structural invariants.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        vals: Vec<S>,
    ) -> Result<Self, MatrixError> {
        if col_ptr.len() != ncols + 1 {
            return Err(MatrixError::MalformedPointer("col_ptr length must be ncols + 1"));
        }
        if col_ptr[0] != 0 {
            return Err(MatrixError::MalformedPointer("col_ptr must start at 0"));
        }
        if *col_ptr.last().expect("non-empty by construction") != row_idx.len() {
            return Err(MatrixError::MalformedPointer("col_ptr must end at nnz"));
        }
        if row_idx.len() != vals.len() {
            return Err(MatrixError::DimensionMismatch {
                what: "row_idx vs vals",
                expected: row_idx.len(),
                actual: vals.len(),
            });
        }
        for w in col_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(MatrixError::MalformedPointer("col_ptr must be non-decreasing"));
            }
        }
        for j in 0..ncols {
            let lane = &row_idx[col_ptr[j]..col_ptr[j + 1]];
            for w in lane.windows(2) {
                if w[1] <= w[0] {
                    return Err(MatrixError::UnsortedIndices { lane: j });
                }
            }
            if let Some(&last) = lane.last() {
                if last >= nrows {
                    return Err(MatrixError::IndexOutOfBounds {
                        what: "row_idx",
                        index: last,
                        bound: nrows,
                    });
                }
            }
        }
        Ok(Csc { nrows, ncols, col_ptr, row_idx, vals })
    }

    /// Build without validation (see [`Csr::from_parts_unchecked`]).
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<usize>,
        vals: Vec<S>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), ncols + 1);
        debug_assert_eq!(*col_ptr.last().unwrap(), row_idx.len());
        debug_assert_eq!(row_idx.len(), vals.len());
        Csc { nrows, ncols, col_ptr, row_idx, vals }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Column pointer array (`len == ncols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array.
    pub fn vals(&self) -> &[S] {
        &self.vals
    }

    /// Row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[S]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of stored entries in column `j`.
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Iterate over `(row, col, value)` triplets in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, S)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals).map(move |(&i, &v)| (i, j, v))
        })
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<S> {
        let (rows, vals) = self.col(j);
        rows.binary_search(&i).ok().map(|k| vals[k])
    }

    /// Convert to CSR — `O(nnz)` counting sort.
    pub fn to_csr(&self) -> Csr<S> {
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &i in &self.row_idx {
            row_counts[i + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let row_ptr = row_counts.clone();
        let nnz = self.nnz();
        let mut col_idx = vec![0usize; nnz];
        let mut vals = vec![S::ZERO; nnz];
        let mut next = row_counts;
        for j in 0..self.ncols {
            let (rows, v) = self.col(j);
            for (&i, &val) in rows.iter().zip(v) {
                let dst = next[i];
                col_idx[dst] = j;
                vals[dst] = val;
                next[i] += 1;
            }
        }
        Csr::from_parts_unchecked(self.nrows, self.ncols, row_ptr, col_idx, vals)
    }

    /// `true` if square, lower triangular and every diagonal entry is the
    /// *first* entry of its column and nonzero — the layout the sync-free
    /// kernel assumes (`val[col_ptr[i]]` is the diagonal, Algorithm 3).
    pub fn is_solvable_lower(&self) -> bool {
        self.nrows == self.ncols
            && (0..self.ncols).all(|j| {
                let (rows, vals) = self.col(j);
                match rows.first() {
                    Some(&i) => i == j && vals[0] != S::ZERO,
                    None => false,
                }
            })
    }

    /// Memory footprint of the three arrays in bytes.
    pub fn bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<usize>()
            + self.vals.len() * S::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_csr() -> Csr<f64> {
        // [1 0 0]
        // [2 3 0]
        // [0 4 5]
        Csr::try_new(3, 3, vec![0, 1, 3, 5], vec![0, 0, 1, 1, 2], vec![1., 2., 3., 4., 5.]).unwrap()
    }

    #[test]
    fn csr_to_csc_to_csr_roundtrip() {
        let a = small_csr();
        assert_eq!(a.to_csc().to_csr(), a);
    }

    #[test]
    fn csc_columns_are_correct() {
        let c = small_csr().to_csc();
        let (rows, vals) = c.col(1);
        assert_eq!(rows, &[1, 2]);
        assert_eq!(vals, &[3.0, 4.0]);
    }

    #[test]
    fn csc_get() {
        let c = small_csr().to_csc();
        assert_eq!(c.get(1, 0), Some(2.0));
        assert_eq!(c.get(0, 1), None);
    }

    #[test]
    fn solvable_lower_wants_diag_first_in_column() {
        let c = small_csr().to_csc();
        assert!(c.is_solvable_lower());
    }

    #[test]
    fn missing_diag_is_not_solvable() {
        // Column 2 empty.
        let c = Csc::<f64>::try_new(3, 3, vec![0, 1, 2, 2], vec![0, 1], vec![1., 1.]).unwrap();
        assert!(!c.is_solvable_lower());
    }

    #[test]
    fn try_new_rejects_row_out_of_bounds() {
        let r = Csc::<f64>::try_new(2, 1, vec![0, 1], vec![7], vec![1.]);
        assert!(matches!(r, Err(MatrixError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn try_new_rejects_unsorted_rows() {
        let r = Csc::<f64>::try_new(3, 1, vec![0, 2], vec![2, 1], vec![1., 1.]);
        assert!(matches!(r, Err(MatrixError::UnsortedIndices { lane: 0 })));
    }

    #[test]
    fn iter_visits_column_major() {
        let c = small_csr().to_csc();
        let triplets: Vec<_> = c.iter().collect();
        assert_eq!(triplets[0], (0, 0, 1.0));
        assert_eq!(triplets[1], (1, 0, 2.0));
        assert_eq!(triplets.len(), 5);
    }

    #[test]
    fn col_nnz_counts() {
        let c = small_csr().to_csc();
        assert_eq!(c.col_nnz(0), 2);
        assert_eq!(c.col_nnz(2), 1);
    }
}
