//! Fault injection against the execution engine itself: chunk panics and
//! straggler chunks, on both the worker-dispatch path and the 0-worker
//! serial fallback (which is what a 1-CPU host always takes).
//!
//! Compiled only with `--features faults`. The fault plan is process
//! global, so these tests live in their own binary and serialize on a
//! mutex, clearing the plan before releasing it.

#![cfg(feature = "faults")]

use recblock_faults::{FaultPlan, FaultPoint, Trigger};
use recblock_kernels::sptrsv::{serial_csr, LevelSetSolver};
use recblock_kernels::{ExecPool, ScheduleMode, TuneParams};
use recblock_matrix::generate;
use recblock_matrix::levelset::LevelSets;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn chunk_panic_on_worker_path_is_reraised_and_pool_stays_usable() {
    let _serial = fault_lock();
    let pool = ExecPool::new(2);
    let done = AtomicUsize::new(0);

    FaultPlan::new(41).with(FaultPoint::ExecChunk, Trigger::OneShot).install();
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(64, &|_| {
            done.fetch_add(1, Relaxed);
        })
    }));
    FaultPlan::clear();
    assert!(r.is_err(), "the injected chunk panic re-raises on the dispatcher");
    assert_eq!(done.load(Relaxed), 63, "every other chunk of the epoch still ran");

    // The workers caught the unwind and re-parked: the next dispatch
    // completes normally on the same pool.
    pool.run(64, &|_| {
        done.fetch_add(1, Relaxed);
    });
    assert_eq!(done.load(Relaxed), 63 + 64);
}

#[test]
fn chunk_panic_on_serial_fallback_propagates_and_pool_stays_usable() {
    let _serial = fault_lock();
    // No workers: run() takes the inline serial path, so the panic
    // propagates raw out of run() — the serve tier's catch_unwind is what
    // contains it there. The pool itself must survive for the next call.
    let pool = ExecPool::new(0);
    let done = AtomicUsize::new(0);

    FaultPlan::new(43).with(FaultPoint::ExecChunk, Trigger::OneShot).install();
    let r = catch_unwind(AssertUnwindSafe(|| {
        pool.run(16, &|_| {
            done.fetch_add(1, Relaxed);
        })
    }));
    FaultPlan::clear();
    assert!(r.is_err(), "serial-path chunk panic propagates to the caller");
    assert_eq!(done.load(Relaxed), 0, "one-shot fires before the first chunk");

    pool.run(16, &|_| {
        done.fetch_add(1, Relaxed);
    });
    assert_eq!(done.load(Relaxed), 16);
}

#[test]
fn straggler_chunks_delay_but_lose_no_work() {
    let _serial = fault_lock();
    let pool = ExecPool::new(2);
    let done = AtomicUsize::new(0);

    // Roughly half the chunks sleep. Every chunk must still run exactly
    // once and the dispatch must still drain.
    FaultPlan::new(47).with(FaultPoint::ExecSlow, Trigger::Prob(0.5)).install();
    pool.run(48, &|_| {
        done.fetch_add(1, Relaxed);
    });
    FaultPlan::clear();
    assert_eq!(done.load(Relaxed), 48);
}

/// A level-set solver forced to the point-to-point schedule on an explicit
/// multi-thread pool, with a task graph sized to that pool.
fn p2p_solver(pool: &ExecPool) -> (recblock_matrix::Csr<f64>, LevelSetSolver<f64>) {
    let l = generate::layered::<f64>(4000, 50, 3.0, generate::LayerShape::Uniform, 71);
    let levels = LevelSets::analyse(&l).unwrap();
    let tune = TuneParams {
        schedule_mode: ScheduleMode::PointToPoint,
        p2p_chunk_nnz: 128,
        ..TuneParams::default()
    };
    let ls = LevelSetSolver::with_tune_threads(l.clone(), levels, tune, pool.concurrency());
    assert_eq!(ls.schedule_mode(), "p2p");
    (l, ls)
}

#[test]
fn p2p_straggler_threads_delay_but_stay_bit_exact() {
    let _serial = fault_lock();
    let pool = ExecPool::new(2);
    let (l, ls) = p2p_solver(&pool);
    let n = l.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 19) as f64) - 9.0).collect();
    let reference = serial_csr(&l, &b).unwrap();
    let mut x = vec![0.0f64; n];

    // Half the thread jobs start late: downstream tasks spin on their
    // parents' flags longer, but the result must not change by a bit.
    FaultPlan::new(53).with(FaultPoint::ExecSlow, Trigger::Prob(0.5)).install();
    for round in 0..4 {
        x.fill(0.0);
        ls.solve_into_pooled(&b, &mut x, &pool).unwrap();
        assert_eq!(x, reference, "straggler p2p solve diverged, round {round}");
    }
    FaultPlan::clear();
}

#[test]
fn p2p_thread_panic_is_reraised_without_deadlock_and_solver_recovers() {
    let _serial = fault_lock();
    let pool = ExecPool::new(2);
    let (l, ls) = p2p_solver(&pool);
    let n = l.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i % 19) as f64) - 9.0).collect();
    let reference = serial_csr(&l, &b).unwrap();
    let mut x = vec![0.0f64; n];

    // One thread job dies mid-solve. Its children poll the pool's panicked
    // flag inside their dependency spin-waits and bail instead of waiting
    // forever on a flag that will never be set; the dispatcher re-raises.
    FaultPlan::new(59).with(FaultPoint::ExecChunk, Trigger::OneShot).install();
    let r = catch_unwind(AssertUnwindSafe(|| {
        ls.solve_into_pooled(&b, &mut x, &pool).unwrap();
    }));
    FaultPlan::clear();
    assert!(r.is_err(), "the injected p2p thread panic re-raises on the dispatcher");

    // Epoch stamping makes the aborted solve's stale flags harmless: the
    // same solver and pool produce a bit-exact solve on the next call.
    x.fill(0.0);
    ls.solve_into_pooled(&b, &mut x, &pool).unwrap();
    assert_eq!(x, reference, "p2p solver unusable after a contained panic");
}
