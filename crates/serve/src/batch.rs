//! Bounded request queue with per-matrix coalescing.
//!
//! Requests for the same plan land in one per-matrix queue; a round-robin
//! ready list hands matrices to workers, and each worker drains up to
//! `max_batch` right-hand sides from its matrix in one go — that drained
//! slice becomes a single multi-RHS solve. The global bound counts
//! individual right-hand sides: when it is reached, `try_push` fails fast
//! with [`ServeError::Overloaded`] and `push_blocking` parks the caller
//! until a worker frees space.

use crate::cache::PlanKey;
use crate::error::ServeError;
use crate::metrics::Metrics;
use recblock::RecBlockSolver;
use recblock_matrix::Scalar;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One accepted right-hand side awaiting solution.
pub(crate) struct Pending<S> {
    pub rhs: Vec<S>,
    pub tx: mpsc::Sender<Result<Vec<S>, ServeError>>,
    pub submitted: Instant,
}

/// What a worker takes in one drain: a plan and 1..=max_batch requests.
pub(crate) struct Batch<S> {
    pub plan: Arc<RecBlockSolver<S>>,
    pub requests: Vec<Pending<S>>,
}

struct MatrixQueue<S> {
    plan: Arc<RecBlockSolver<S>>,
    pending: VecDeque<Pending<S>>,
}

struct Inner<S> {
    queues: HashMap<PlanKey, MatrixQueue<S>>,
    /// Keys with non-empty queues, each present at most once; popped
    /// round-robin so no matrix starves.
    ready: VecDeque<PlanKey>,
    depth: usize,
    shutting_down: bool,
}

pub(crate) struct BatchQueue<S> {
    inner: Mutex<Inner<S>>,
    /// Workers wait here for work (or shutdown).
    work_cv: Condvar,
    /// Blocking submitters wait here for space.
    space_cv: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
}

impl<S: Scalar> BatchQueue<S> {
    pub(crate) fn new(capacity: usize, metrics: Arc<Metrics>) -> Self {
        BatchQueue {
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                ready: VecDeque::new(),
                depth: 0,
                shutting_down: false,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity,
            metrics,
        }
    }

    /// Enqueue without blocking; `Overloaded` when the bound is hit.
    pub(crate) fn try_push(
        &self,
        key: PlanKey,
        plan: &Arc<RecBlockSolver<S>>,
        req: Pending<S>,
    ) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if inner.depth >= self.capacity {
            self.metrics.rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(ServeError::Overloaded { depth: inner.depth, capacity: self.capacity });
        }
        self.enqueue(&mut inner, key, plan, req);
        Ok(())
    }

    /// Enqueue, parking the caller while the queue is full.
    pub(crate) fn push_blocking(
        &self,
        key: PlanKey,
        plan: &Arc<RecBlockSolver<S>>,
        req: Pending<S>,
    ) -> Result<(), ServeError> {
        let mut inner = self.inner.lock().unwrap();
        while inner.depth >= self.capacity && !inner.shutting_down {
            inner = self.space_cv.wait(inner).unwrap();
        }
        if inner.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        self.enqueue(&mut inner, key, plan, req);
        Ok(())
    }

    fn enqueue(
        &self,
        inner: &mut Inner<S>,
        key: PlanKey,
        plan: &Arc<RecBlockSolver<S>>,
        req: Pending<S>,
    ) {
        let queue = inner
            .queues
            .entry(key)
            .or_insert_with(|| MatrixQueue { plan: plan.clone(), pending: VecDeque::new() });
        let was_empty = queue.pending.is_empty();
        queue.pending.push_back(req);
        if was_empty {
            inner.ready.push_back(key);
        }
        inner.depth += 1;
        self.metrics.submitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.metrics.queue_depth_changed(inner.depth);
        self.work_cv.notify_one();
    }

    /// Next batch for a worker. Blocks while the queue is empty; returns
    /// `None` only at shutdown **after** everything queued has been handed
    /// out — that is the graceful-drain guarantee.
    pub(crate) fn next_batch(&self, max_batch: usize) -> Option<Batch<S>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(key) = inner.ready.pop_front() {
                let (batch, exhausted) = {
                    let queue = inner.queues.get_mut(&key).expect("ready key has a queue");
                    let take = queue.pending.len().min(max_batch.max(1));
                    let requests: Vec<Pending<S>> = queue.pending.drain(..take).collect();
                    (Batch { plan: queue.plan.clone(), requests }, queue.pending.is_empty())
                };
                if exhausted {
                    // Drop the per-matrix queue; the plan stays alive in the
                    // cache (and in the batch being solved).
                    inner.queues.remove(&key);
                } else {
                    inner.ready.push_back(key);
                }
                inner.depth -= batch.requests.len();
                self.metrics.queue_depth_changed(inner.depth);
                self.space_cv.notify_all();
                return Some(batch);
            }
            if inner.shutting_down {
                return None;
            }
            inner = self.work_cv.wait(inner).unwrap();
        }
    }

    /// Flip into shutdown: submitters are refused from now on, workers keep
    /// draining until the queue is empty.
    pub(crate) fn begin_shutdown(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.shutting_down = true;
        drop(inner);
        self.work_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Cancel whatever is still queued (only possible when no workers are
    /// draining, e.g. a zero-worker service). Each pending request receives
    /// [`ServeError::ShuttingDown`].
    pub(crate) fn cancel_remaining(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.ready.clear();
        let queues = std::mem::take(&mut inner.queues);
        inner.depth = 0;
        self.metrics.queue_depth_changed(0);
        drop(inner);
        for (_, q) in queues {
            for req in q.pending {
                self.metrics.cancelled.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let _ = req.tx.send(Err(ServeError::ShuttingDown));
            }
        }
    }

    /// Queued right-hand sides right now.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().unwrap().depth
    }
}
