//! Canary autotuning: measure candidate tunings on real traffic, off the
//! critical path.
//!
//! `planctl tune` can tune a plan offline, but the serve tier sees the
//! actual right-hand sides and the actual machine under actual load — the
//! numbers that matter. The canary tuner captures the first solves of a
//! *cold* plan (fresh from a build or a store load) and replays them on a
//! background thread against the bounded candidate grid from
//! [`recblock::tune::candidate_grid`], one candidate per observed request.
//! Nothing here ever runs on the submit path: observation clones the
//! right-hand side and returns; measurement, verdict and installation all
//! happen on the tuner thread.
//!
//! A winner must solve bit-identically to the incumbent *and* clear the
//! hysteresis margin before it is installed: the tuned plan replaces the
//! incumbent in the cache ([`PlanCache::replace`]) and is queued for
//! store write-back through the persister, so a restart — or a cluster
//! peer pulling the plan — gets the tuned version. Progress is published
//! per fingerprint as [`TuneState`] and counted in the `tune_*` metrics;
//! `recblock_tune_generation` stabilising is the converged signal.

use crate::cache::{PlanCache, PlanKey};
use crate::metrics::{Metrics, TuneState};
use crate::persist::PersistHandle;
use recblock::blocked::SolveWorkspace;
use recblock::tune::{candidate_grid, TuneCandidate};
use recblock::RecBlockSolver;
use recblock_matrix::Scalar;
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Untimed solves before each measurement.
const WARMUP: u32 = 1;
/// Timed batches per measurement; the median is the score.
const SAMPLES: usize = 3;
/// Minimum duration of one timed batch, in nanoseconds.
const MIN_SAMPLE_NS: u64 = 100_000;
/// Fractional improvement a candidate must show to win (hysteresis).
const MIN_IMPROVEMENT: f64 = 0.03;
/// Most observations allowed in flight per fingerprint; beyond this the
/// submit path drops the sample instead of queueing unbounded clones.
const MAX_INFLIGHT: u32 = 2;

struct Job<S> {
    key: PlanKey,
    plan: Arc<RecBlockSolver<S>>,
    rhs: Vec<S>,
}

#[derive(Default)]
struct Gate {
    inflight: u32,
    done: bool,
}

/// Per-fingerprint measurement state, held only on the tuner thread.
struct KeyState<S> {
    incumbent: Arc<RecBlockSolver<S>>,
    rhs: Vec<S>,
    reference: Vec<S>,
    base_ns: u64,
    batch: u32,
    grid: Vec<TuneCandidate>,
    next: usize,
    /// Best bit-identical candidate so far: `(grid index, median ns)`.
    best: Option<(usize, u64)>,
    finished: bool,
}

/// Handle to the background canary-tuning thread.
pub(crate) struct CanaryTuner<S> {
    tx: Option<mpsc::Sender<Job<S>>>,
    gate: Arc<Mutex<HashMap<PlanKey, Gate>>>,
    pending: Arc<(Mutex<u64>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl<S: Scalar> CanaryTuner<S> {
    pub(crate) fn spawn(
        cache: Arc<PlanCache<S>>,
        metrics: Arc<Metrics>,
        persist: Option<PersistHandle<S>>,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Job<S>>();
        let gate = Arc::new(Mutex::new(HashMap::new()));
        let pending = Arc::new((Mutex::new(0u64), Condvar::new()));
        let (gate_worker, pending_worker) = (gate.clone(), pending.clone());
        let handle = std::thread::Builder::new()
            .name("recblock-canary-tuner".into())
            .spawn(move || {
                let mut states: HashMap<PlanKey, KeyState<S>> = HashMap::new();
                let mut ws = SolveWorkspace::new();
                while let Ok(job) = rx.recv() {
                    let key = job.key;
                    step(&mut states, job, &mut ws, &cache, &metrics, &persist, &gate_worker);
                    let mut gates = gate_worker.lock().unwrap();
                    if let Some(g) = gates.get_mut(&key) {
                        g.inflight = g.inflight.saturating_sub(1);
                    }
                    drop(gates);
                    let (lock, cv) = &*pending_worker;
                    *lock.lock().unwrap() -= 1;
                    cv.notify_all();
                }
            })
            .expect("spawn canary tuner");
        CanaryTuner { tx: Some(tx), gate, pending, handle: Some(handle) }
    }

    /// Observe one real solve of `plan`. Cheap on the submit path: a gate
    /// lookup, and — only while the fingerprint is still being tuned and
    /// under its in-flight bound — one clone of the right-hand side.
    pub(crate) fn observe(&self, key: PlanKey, plan: &Arc<RecBlockSolver<S>>, rhs: &[S]) {
        let Some(tx) = &self.tx else { return };
        {
            let mut gates = self.gate.lock().unwrap();
            let g = gates.entry(key).or_default();
            if g.done || g.inflight >= MAX_INFLIGHT {
                return;
            }
            g.inflight += 1;
        }
        {
            let (lock, _) = &*self.pending;
            *lock.lock().unwrap() += 1;
        }
        if tx.send(Job { key, plan: plan.clone(), rhs: rhs.to_vec() }).is_err() {
            let (lock, cv) = &*self.pending;
            *lock.lock().unwrap() -= 1;
            cv.notify_all();
        }
    }

    /// Block until every observed sample has been measured.
    pub(crate) fn flush(&self) {
        let (lock, cv) = &*self.pending;
        let mut n = lock.lock().unwrap();
        while *n > 0 {
            n = cv.wait(n).unwrap();
        }
    }

    /// Flush, stop the tuner thread and join it. Must run before the
    /// persister shuts down: the thread holds a [`PersistHandle`].
    pub(crate) fn shutdown(&mut self) {
        self.flush();
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<S> Drop for CanaryTuner<S> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Median nanoseconds of one solve of `plan` against `rhs`, leaving the
/// solution in `x`.
fn measure<S: Scalar>(
    plan: &RecBlockSolver<S>,
    rhs: &[S],
    x: &mut [S],
    ws: &mut SolveWorkspace<S>,
    batch: u32,
) -> Option<u64> {
    for _ in 0..WARMUP {
        plan.solve_into(rhs, x, ws).ok()?;
    }
    let mut samples = [0u64; SAMPLES];
    for s in samples.iter_mut() {
        let t0 = Instant::now();
        for _ in 0..batch {
            plan.solve_into(rhs, x, ws).ok()?;
        }
        *s = t0.elapsed().as_nanos() as u64 / batch.max(1) as u64;
    }
    samples.sort_unstable();
    Some(samples[SAMPLES / 2])
}

/// Process one observed sample: the first for a fingerprint measures the
/// incumbent, each later one measures the next grid candidate, and the
/// last decides the verdict and installs a winner.
#[allow(clippy::too_many_arguments)]
fn step<S: Scalar>(
    states: &mut HashMap<PlanKey, KeyState<S>>,
    job: Job<S>,
    ws: &mut SolveWorkspace<S>,
    cache: &PlanCache<S>,
    metrics: &Metrics,
    persist: &Option<PersistHandle<S>>,
    gate: &Mutex<HashMap<PlanKey, Gate>>,
) {
    let key = job.key;
    let state = match states.get_mut(&key) {
        Some(s) => s,
        None => {
            // First sample: calibrate the batch size on the incumbent,
            // score it, and keep its solution as the bit-identity
            // reference every candidate must match.
            let mut x = vec![S::ZERO; job.plan.n()];
            let t0 = Instant::now();
            if job.plan.solve_into(&job.rhs, &mut x, ws).is_err() {
                return;
            }
            let one = (t0.elapsed().as_nanos().max(1)) as u64;
            let batch = MIN_SAMPLE_NS.div_ceil(one).clamp(1, 10_000) as u32;
            let Some(base_ns) = measure(&job.plan, &job.rhs, &mut x, ws, batch) else { return };
            let grid = candidate_grid(job.plan.blocked().tune());
            states.insert(
                key,
                KeyState {
                    incumbent: job.plan,
                    rhs: job.rhs,
                    reference: x,
                    base_ns,
                    batch,
                    grid,
                    next: 0,
                    best: None,
                    finished: false,
                },
            );
            states.get_mut(&key).unwrap()
        }
    };
    if state.finished {
        return;
    }
    if state.next < state.grid.len() {
        let i = state.next;
        state.next += 1;
        metrics.tune_candidates_tried.fetch_add(1, Relaxed);
        // Candidates replay the *captured* right-hand side, not this
        // request's, so every median compares against the same work.
        if let Ok(candidate) = state.incumbent.retuned(state.grid[i].tune) {
            let mut x = vec![S::ZERO; candidate.n()];
            if let Some(ns) = measure(&candidate, &state.rhs, &mut x, ws, state.batch) {
                // A diverging candidate is disqualified outright.
                let identical = x == state.reference;
                if identical && state.best.is_none_or(|(_, best)| ns < best) {
                    state.best = Some((i, ns));
                }
            }
        }
    }
    let undecided = state.next < state.grid.len();
    if undecided {
        publish(metrics, key, state, None, 0.0, false);
        return;
    }
    // Every candidate measured: verdict time.
    state.finished = true;
    let bound = (state.base_ns as f64 * (1.0 - MIN_IMPROVEMENT)) as u64;
    let mut winner = None;
    let mut gain = 0.0;
    if let Some((i, ns)) = state.best {
        if ns < bound {
            if let Ok(tuned) = state.incumbent.retuned(state.grid[i].tune) {
                let tuned = Arc::new(tuned);
                cache.replace(key, tuned.clone());
                metrics.tune_winners_installed.fetch_add(1, Relaxed);
                metrics.tune_generation.fetch_add(1, Relaxed);
                if let Some(p) = persist {
                    p.enqueue(key, tuned);
                }
                winner = Some(state.grid[i].name.to_string());
                gain = 1.0 - ns as f64 / state.base_ns.max(1) as f64;
            }
        }
    }
    publish(metrics, key, state, winner, gain, true);
    // Free the measurement state; keep only the gate's `done` flag so
    // later observations of this fingerprint return immediately.
    states.remove(&key);
    if let Some(g) = gate.lock().unwrap().get_mut(&key) {
        g.done = true;
    }
}

fn publish<S>(
    metrics: &Metrics,
    key: PlanKey,
    state: &KeyState<S>,
    winner: Option<String>,
    gain: f64,
    done: bool,
) {
    metrics.publish_tune_state(TuneState {
        key,
        generation: u64::from(winner.is_some()),
        tried: state.next as u32,
        total: state.grid.len() as u32,
        done,
        winner,
        gain,
    });
}
