//! Vendored readiness-polling shim — no external crates.
//!
//! On Linux this is a thin, safe wrapper over the `epoll` syscalls,
//! declared via `extern "C"` against the libc that `std` already links.
//! Other unix targets fall back to POSIX `poll(2)`. Both are
//! level-triggered: an event repeats every wait until the condition is
//! consumed, which lets the server leave bytes unread under backpressure
//! without losing the wakeup.
//!
//! The wrapper is allocation-free after construction: the kernel event
//! ring is a fixed boxed array and callers pass a reusable `Vec<Event>`.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Reading (or accepting) will not block — includes EOF and errors,
    /// which a read surfaces.
    pub readable: bool,
    /// Writing will not block (or the peer hung up and a write will
    /// surface the error).
    pub writable: bool,
}

/// Level-triggered readiness poller.
pub struct Poller {
    sys: sys::Poller,
}

impl Poller {
    /// Create a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { sys: sys::Poller::new()? })
    }

    /// Start watching `fd` under `token` for the given interests.
    pub fn add(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.sys.add(fd, token, readable, writable)
    }

    /// Change the interests (and token) of an already-watched `fd`.
    pub fn modify(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.sys.modify(fd, token, readable, writable)
    }

    /// Stop watching `fd`.
    pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
        self.sys.remove(fd)
    }

    /// Wait for events, appending them to `out` (cleared first). `None`
    /// blocks indefinitely. A signal interruption returns an empty set.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        self.sys.wait(out, timeout)
    }
}

/// Clamp an optional timeout to the millisecond argument `poll`/`epoll`
/// take: `None` → -1 (infinite); sub-millisecond non-zero waits round up
/// so a caller asking for "a little while" never busy-spins at 0 ms.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{timeout_ms, Event};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    /// Matches the kernel's `struct epoll_event`, which is packed on x86.
    #[derive(Clone, Copy)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, max: c_int, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    const RING: usize = 256;

    pub struct Poller {
        epfd: c_int,
        ring: Box<[EpollEvent; RING]>,
    }

    fn check(rc: c_int) -> io::Result<()> {
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn interests(readable: bool, writable: bool) -> u32 {
        (if readable { EPOLLIN } else { 0 }) | (if writable { EPOLLOUT } else { 0 })
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            check(epfd)?;
            Ok(Poller { epfd, ring: Box::new([EpollEvent { events: 0, data: 0 }; RING]) })
        }

        fn ctl(&mut self, op: c_int, fd: RawFd, ev: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = ev.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            check(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            let mut ev = EpollEvent { events: interests(r, w), data: token };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut ev))
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            let mut ev = EpollEvent { events: interests(r, w), data: token };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut ev))
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(self.epfd, self.ring.as_mut_ptr(), RING as c_int, timeout_ms(timeout))
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for i in 0..n as usize {
                let ev = self.ring[i];
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{timeout_ms, Event};
    use std::io;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    struct Entry {
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    }

    pub struct Poller {
        entries: Vec<Entry>,
        fds: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { entries: Vec::new(), fds: Vec::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            if self.entries.iter().any(|e| e.fd == fd) {
                return Err(io::Error::from(io::ErrorKind::AlreadyExists));
            }
            self.entries.push(Entry { fd, token, readable: r, writable: w });
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            let e = self
                .entries
                .iter_mut()
                .find(|e| e.fd == fd)
                .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))?;
            (e.token, e.readable, e.writable) = (token, r, w);
            Ok(())
        }

        pub fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            let pos = self
                .entries
                .iter()
                .position(|e| e.fd == fd)
                .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))?;
            self.entries.swap_remove(pos);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            self.fds.clear();
            for e in &self.entries {
                let events =
                    (if e.readable { POLLIN } else { 0 }) | (if e.writable { POLLOUT } else { 0 });
                self.fds.push(PollFd { fd: e.fd, events, revents: 0 });
            }
            let n = unsafe {
                poll(self.fds.as_mut_ptr(), self.fds.len() as c_uint, timeout_ms(timeout))
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, entry) in self.fds.iter().zip(&self.entries) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token: entry.token,
                    readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_fires_on_written_bytes() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();

        p.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "nothing written yet");

        b.write_all(b"x").unwrap();
        p.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: the event repeats until the byte is consumed.
        p.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert_eq!(events.len(), 1, "still readable");
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 1);
        p.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "consumed");
        p.remove(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_and_modify() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 1, false, true).unwrap();
        let mut events = Vec::new();
        p.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable), "socket is writable");
        // Drop write interest: no more events.
        p.modify(a.as_raw_fd(), 1, false, false).unwrap();
        p.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }
}
