//! cuSPARSE-csrsv2-style baseline solver.
//!
//! The paper compares against "a level-set method in cuSPARSE v2 of CUDA
//! v10.2", which follows Naumov's technical report: a separate, fairly
//! expensive **analysis phase** builds the level schedule (plus auxiliary
//! per-row metadata), and the **solve phase** launches one kernel per level,
//! merging runs of consecutive *small* levels into a single launch to save
//! synchronisation cost.
//!
//! This reproduction keeps the same two-phase structure and the same merged
//! launch schedule. The merged-launch trick is semantically delicate: rows in
//! a later level may depend on rows of an earlier level in the same launch,
//! so within a merged launch rows are processed *in level order serially* —
//! which is precisely why cuSPARSE only merges levels that are small. The
//! GPU cost model charges one launch overhead per merged group, reproducing
//! cuSPARSE's characteristic collapse on matrices with very many levels.
//!
//! Execution runs on the engine ([`LevelSchedule`]) under merged-launch
//! tuning ([`TuneParams::merged_launch`]): levels below `par_rows` rows fuse
//! into serial runs (subsuming the group merge at execution time — the
//! groups remain the cost-model surface), larger levels launch parallel with
//! nnz-balanced chunks. The hot path allocates nothing.

use crate::exec::{ExecPool, LevelSchedule, TuneParams};
use crate::trace::{EventKind, SolveTrace};
use rayon::prelude::*;
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::{Csr, MatrixError, Scalar};

/// Levels with at most this many rows are eligible for merging with their
/// neighbours into a single launch.
const MERGE_THRESHOLD: usize = 32;

/// Rows below which a launch group is executed serially on the CPU (the
/// historical default of [`TuneParams::par_rows`] for this solver).
const PAR_GROUP_THRESHOLD: usize = 256;

/// A launch group: a contiguous range of levels executed as one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchGroup {
    /// First level (inclusive).
    pub level_start: usize,
    /// Last level (exclusive).
    pub level_end: usize,
    /// Total rows across the merged levels.
    pub rows: usize,
}

/// The cuSPARSE-like two-phase solver.
#[derive(Debug, Clone)]
pub struct CusparseLikeSolver<S> {
    l: Csr<S>,
    levels: LevelSets,
    groups: Vec<LaunchGroup>,
    sched: LevelSchedule,
}

impl<S: Scalar> CusparseLikeSolver<S> {
    /// The analysis phase: level construction plus launch-schedule building.
    pub fn analyse(l: Csr<S>) -> Result<Self, MatrixError> {
        let levels = LevelSets::analyse(&l)?;
        Self::with_levels_tuned(l, levels, TuneParams::default())
    }

    /// Rebuild a solver from a matrix and an already-computed level
    /// decomposition (the persistence path: the plan store saves the level
    /// arrays so reloading skips the analysis phase). The launch schedule
    /// is re-derived from the levels — it is cheap (`O(nlevels)`).
    pub fn with_levels(l: Csr<S>, levels: LevelSets) -> Result<Self, MatrixError> {
        Self::with_levels_tuned(l, levels, TuneParams::default())
    }

    /// As [`CusparseLikeSolver::with_levels`] with explicit scheduling
    /// thresholds. Only `par_rows` and `chunk_nnz` matter here — the solver
    /// always plans under merged-launch semantics
    /// ([`TuneParams::merged_launch`]), which is what makes it the
    /// row-threshold baseline the paper compares against.
    pub fn with_levels_tuned(
        l: Csr<S>,
        levels: LevelSets,
        tune: TuneParams,
    ) -> Result<Self, MatrixError> {
        if levels.n() != l.nrows() {
            return Err(MatrixError::DimensionMismatch {
                what: "cusparse-like levels",
                expected: l.nrows(),
                actual: levels.n(),
            });
        }
        let groups = build_groups(&levels);
        let sched = LevelSchedule::plan(&l, &levels, tune.merged_launch());
        Ok(CusparseLikeSolver { l, levels, groups, sched })
    }

    /// The analysed matrix.
    pub fn matrix(&self) -> &Csr<S> {
        &self.l
    }

    /// The level decomposition found by analysis.
    pub fn levels(&self) -> &LevelSets {
        &self.levels
    }

    /// The planned execution schedule.
    pub fn schedule(&self) -> &LevelSchedule {
        &self.sched
    }

    /// The merged launch schedule (one entry per simulated kernel launch).
    pub fn launch_groups(&self) -> &[LaunchGroup] {
        &self.groups
    }

    /// Number of simulated kernel launches per solve.
    pub fn nlaunches(&self) -> usize {
        self.groups.len()
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv rhs",
                expected: n,
                actual: b.len(),
            });
        }
        let mut x = vec![S::ZERO; n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solve into a caller-provided buffer: executes the preplanned schedule
    /// on the global [`ExecPool`] with zero heap allocations.
    pub fn solve_into(&self, b: &[S], x: &mut [S]) -> Result<(), MatrixError> {
        let n = self.l.nrows();
        if b.len() != n || x.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv buffers",
                expected: n,
                actual: b.len().min(x.len()),
            });
        }
        let t0 = SolveTrace::start();
        self.sched.solve_into(&self.l, b, x, ExecPool::global());
        SolveTrace::finish(
            t0,
            EventKind::CusparseKernel,
            0,
            self.l.nrows() as u32,
            self.sched.nparallel().min(u16::MAX as usize) as u16,
        );
        Ok(())
    }

    /// The pre-engine solve path (per-group rayon regions collecting
    /// `(index, value)` pairs), kept verbatim for before/after benchmarking.
    /// Not part of the public API surface.
    #[doc(hidden)]
    pub fn solve_legacy(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(MatrixError::DimensionMismatch {
                what: "sptrsv rhs",
                expected: n,
                actual: b.len(),
            });
        }
        let mut x = vec![S::ZERO; n];
        let l = &self.l;
        for g in &self.groups {
            let single_level = g.level_end - g.level_start == 1;
            if single_level && g.rows >= PAR_GROUP_THRESHOLD {
                // One big level: fully parallel launch.
                let items = self.levels.level_items(g.level_start);
                let solved: Vec<(usize, S)> =
                    items.par_iter().map(|&i| (i, solve_row_legacy(l, b, &x, i))).collect();
                for (i, xi) in solved {
                    x[i] = xi;
                }
            } else {
                // Merged small levels: process in level order within the
                // launch (dependencies may cross the merged levels).
                for lvl in g.level_start..g.level_end {
                    for &i in self.levels.level_items(lvl) {
                        x[i] = solve_row_legacy(l, b, &x, i);
                    }
                }
            }
        }
        Ok(x)
    }
}

/// Merge runs of small levels into launch groups.
fn build_groups(levels: &LevelSets) -> Vec<LaunchGroup> {
    let mut groups = Vec::new();
    let nlevels = levels.nlevels();
    let mut lvl = 0usize;
    while lvl < nlevels {
        let size = levels.level_size(lvl);
        if size > MERGE_THRESHOLD {
            groups.push(LaunchGroup { level_start: lvl, level_end: lvl + 1, rows: size });
            lvl += 1;
        } else {
            let start = lvl;
            let mut rows = 0usize;
            while lvl < nlevels && levels.level_size(lvl) <= MERGE_THRESHOLD {
                rows += levels.level_size(lvl);
                lvl += 1;
            }
            groups.push(LaunchGroup { level_start: start, level_end: lvl, rows });
        }
    }
    groups
}

#[inline]
fn solve_row_legacy<S: Scalar>(l: &Csr<S>, b: &[S], x: &[S], i: usize) -> S {
    let (cols, vals) = l.row(i);
    let last = cols.len() - 1;
    let mut left_sum = S::ZERO;
    for k in 0..last {
        left_sum += vals[k] * x[cols[k]];
    }
    (b[i] - left_sum) / vals[last]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check(l: Csr<f64>) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let solver = CusparseLikeSolver::analyse(l).unwrap();
        let x = solver.solve(&b).unwrap();
        assert_eq!(x, reference, "engine path must be bit-identical to serial reference");
    }

    #[test]
    fn matches_serial_on_random() {
        check(generate::random_lower::<f64>(900, 4.0, 61));
    }

    #[test]
    fn matches_serial_on_chain() {
        check(generate::chain::<f64>(500, 62));
    }

    #[test]
    fn matches_serial_on_grid() {
        check(generate::grid2d::<f64>(35, 20, 63));
    }

    #[test]
    fn matches_serial_on_kkt() {
        check(generate::kkt_like::<f64>(4000, 1500, 3, 64));
    }

    #[test]
    fn legacy_path_matches_engine_numerically() {
        let l = generate::kkt_like::<f64>(4000, 1500, 3, 60);
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let solver = CusparseLikeSolver::analyse(l).unwrap();
        let x_new = solver.solve(&b).unwrap();
        let x_old = solver.solve_legacy(&b).unwrap();
        assert!(max_rel_diff(&x_new, &x_old) < 1e-12);
    }

    #[test]
    fn chain_merges_all_levels_into_few_launches() {
        // 500 levels of size 1 — all mergeable: one launch.
        let solver = CusparseLikeSolver::analyse(generate::chain::<f64>(500, 65)).unwrap();
        assert_eq!(solver.levels().nlevels(), 500);
        assert_eq!(solver.nlaunches(), 1);
        assert_eq!(solver.schedule().nruns(), 1, "merged-launch tuning fuses the whole chain");
    }

    #[test]
    fn big_levels_get_their_own_launch() {
        let solver =
            CusparseLikeSolver::analyse(generate::kkt_like::<f64>(1000, 400, 3, 66)).unwrap();
        assert_eq!(solver.levels().nlevels(), 2);
        assert_eq!(solver.nlaunches(), 2);
    }

    #[test]
    fn groups_cover_all_levels_exactly_once() {
        let solver = CusparseLikeSolver::analyse(generate::grid2d::<f64>(25, 25, 67)).unwrap();
        let mut next = 0usize;
        let mut total_rows = 0usize;
        for g in solver.launch_groups() {
            assert_eq!(g.level_start, next);
            assert!(g.level_end > g.level_start);
            next = g.level_end;
            total_rows += g.rows;
        }
        assert_eq!(next, solver.levels().nlevels());
        assert_eq!(total_rows, 625);
    }

    #[test]
    fn with_levels_matches_analyse() {
        let l = generate::grid2d::<f64>(20, 20, 68);
        let analysed = CusparseLikeSolver::analyse(l.clone()).unwrap();
        let rebuilt =
            CusparseLikeSolver::with_levels(l.clone(), analysed.levels().clone()).unwrap();
        assert_eq!(rebuilt.launch_groups(), analysed.launch_groups());
        assert_eq!(rebuilt.matrix(), &l);
        let b: Vec<f64> = (0..400).map(|i| (i % 13) as f64 - 6.0).collect();
        assert_eq!(rebuilt.solve(&b).unwrap(), analysed.solve(&b).unwrap());
    }

    #[test]
    fn with_levels_rejects_size_mismatch() {
        let l = generate::chain::<f64>(10, 69);
        let levels = recblock_matrix::levelset::LevelSets::analyse(&l).unwrap();
        let smaller = generate::chain::<f64>(9, 69);
        assert!(CusparseLikeSolver::with_levels(smaller, levels).is_err());
    }

    #[test]
    fn rejects_bad_rhs() {
        let solver = CusparseLikeSolver::analyse(Csr::<f64>::identity(3)).unwrap();
        assert!(solver.solve(&[1.0]).is_err());
    }
}
