//! Service tuning knobs.

use recblock::SolverOptions;

/// Configuration for [`crate::SolveService`].
///
/// The defaults are sized for an interactive service on the current host:
/// one worker per available core, batches capped at 8 columns (past that
/// the multi-RHS walk's vector working set stops fitting alongside the
/// matrix), and a queue a few hundred requests deep.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Solver worker threads. `0` is accepted (useful in tests: nothing
    /// drains, so backpressure is exercised deterministically).
    pub workers: usize,
    /// Maximum right-hand sides coalesced into one multi-RHS solve.
    pub max_batch: usize,
    /// Bound on queued (accepted, not yet solved) requests across all
    /// matrices. Beyond it [`crate::SolveService::try_submit`] fails fast
    /// with [`crate::ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Total cached plans across all shards. Least-recently-used plans are
    /// evicted once the bound is exceeded.
    pub cache_capacity: usize,
    /// Lock shards for the plan cache. More shards reduce contention when
    /// many distinct matrices are in flight.
    pub cache_shards: usize,
    /// Preprocessing options handed to every plan build.
    pub solver: SolverOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        ServeConfig {
            workers: cores,
            max_batch: 8,
            queue_capacity: 256,
            cache_capacity: 16,
            cache_shards: 8,
            solver: SolverOptions::default(),
        }
    }
}

impl ServeConfig {
    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the per-solve batching cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Set the queue bound that triggers backpressure.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Set the plan-cache capacity (total across shards).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Set the plan-cache shard count.
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Set the preprocessing options used for plan builds.
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }
}
