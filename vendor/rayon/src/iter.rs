//! Indexed parallel iterators and their scoped-thread driver.

use std::marker::PhantomData;
use std::mem::ManuallyDrop;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------------

/// An indexed parallel iterator: length plus random access to each item.
///
/// All adapters and consumers are provided methods, so concrete sources only
/// implement [`ParallelIterator::par_len`] and
/// [`ParallelIterator::item_at`].
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produce the item at index `i`.
    ///
    /// # Safety
    /// Callers must pass each index in `0..par_len()` **at most once** over
    /// the iterator's lifetime (mutable sources hand out `&mut` aliases by
    /// index; owning sources move items out by index).
    unsafe fn item_at(&self, i: usize) -> Self::Item;

    /// Smallest chunk the driver may hand a worker (load-balancing hint).
    fn min_chunk(&self) -> usize {
        1
    }

    /// Largest chunk the driver may hand a worker (load-balancing hint).
    fn max_chunk(&self) -> usize {
        usize::MAX
    }

    // -- adapters ----------------------------------------------------------

    /// Map each item through `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Pair items with those of another parallel iterator, truncating to the
    /// shorter length.
    fn zip<Z: IntoParallelIterator>(self, other: Z) -> Zip<Self, Z::Iter> {
        Zip { a: self, b: other.into_par_iter() }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Raise the minimum chunk size (amortise per-item overhead).
    fn with_min_len(self, n: usize) -> MinLen<Self> {
        MinLen { base: self, n: n.max(1) }
    }

    /// Lower the maximum chunk size (finer-grained load balancing).
    fn with_max_len(self, n: usize) -> MaxLen<Self> {
        MaxLen { base: self, n: n.max(1) }
    }

    // -- consumers ---------------------------------------------------------

    /// Consume every item in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
    where
        Self: Sync,
    {
        drive_chunks(&self, &|r| {
            for i in r {
                // SAFETY: the driver claims disjoint chunks from an atomic
                // cursor, so each index is visited exactly once.
                f(unsafe { self.item_at(i) });
            }
        });
    }

    /// Collect all items, in index order, into any `FromIterator` target.
    fn collect<C: std::iter::FromIterator<Self::Item>>(self) -> C
    where
        Self: Sync,
    {
        collect_ordered(&self).into_iter().collect()
    }

    /// Sum the items (tree-shaped: per-chunk partials, then a serial fold).
    fn sum<Su>(self) -> Su
    where
        Self: Sync,
        Su: std::iter::Sum<Self::Item> + std::iter::Sum<Su> + Send,
    {
        let partials = Mutex::new(Vec::new());
        drive_chunks(&self, &|r| {
            // SAFETY: disjoint chunks; each index visited exactly once.
            let part: Su = r.map(|i| unsafe { self.item_at(i) }).sum();
            partials.lock().expect("partials mutex").push(part);
        });
        partials.into_inner().expect("partials mutex").into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Split `0..len` into chunks claimed from an atomic cursor, honouring the
/// iterator's chunking hints; run `body` on each chunk across a scoped
/// thread team (or inline when one worker suffices).
fn drive_chunks<I: ParallelIterator + Sync>(it: &I, body: &(dyn Fn(Range<usize>) + Sync)) {
    let len = it.par_len();
    if len == 0 {
        return;
    }
    let threads = crate::current_num_threads().min(len).max(1);
    let min = it.min_chunk().max(1);
    let max = it.max_chunk().max(min);
    // Aim for several chunks per worker so uneven items still balance.
    let chunk = (len / (threads * 4).max(1)).clamp(min, max).max(1);
    if threads == 1 || len <= chunk {
        body(0..len);
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                body(start..(start + chunk).min(len));
            });
        }
    });
}

/// Evaluate every item into a `Vec`, preserving index order.
fn collect_ordered<I: ParallelIterator + Sync>(it: &I) -> Vec<I::Item> {
    let len = it.par_len();
    let mut out: Vec<std::mem::MaybeUninit<I::Item>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialisation; every slot is written
    // exactly once below before the transmute.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(len);
    }
    let base = SendPtr(out.as_mut_ptr());
    drive_chunks(it, &|r| {
        // Rebind so the closure captures the whole `SendPtr` (Sync), not —
        // per edition-2021 disjoint capture — just its raw-pointer field.
        #[allow(clippy::redundant_locals)]
        let base = base;
        for i in r {
            // SAFETY: disjoint chunks ⇒ each slot written once; `out` lives
            // until after the scoped driver returns.
            unsafe { (*base.0.add(i)).write(it.item_at(i)) };
        }
    });
    // SAFETY: all `len` slots are initialised; MaybeUninit<T> has the same
    // layout as T.
    unsafe {
        let mut out = ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr().cast(), out.len(), out.capacity())
    }
}

/// Raw pointer that may cross threads (indices written are disjoint).
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the driver guarantees disjoint index access per thread.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — shared access only ever touches disjoint slots.
unsafe impl<T: Send> Sync for SendPtr<T> {}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        // Reinterpret as Vec<ManuallyDrop<T>> (same layout) so dropping the
        // iterator frees the allocation without double-dropping items that
        // were moved out by index.
        let mut v = ManuallyDrop::new(self);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        // SAFETY: ManuallyDrop<T> is layout-identical to T and we forget the
        // original Vec.
        let buf = unsafe { Vec::from_raw_parts(ptr.cast::<ManuallyDrop<T>>(), len, cap) };
        VecIter { buf }
    }
}

/// Identity: parallel iterators convert to themselves (lets `zip` accept
/// both sources and adapted iterators).
impl<I: ParallelIterator> IntoParallelIterator for I {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> I {
        self
    }
}

/// Shared-slice helpers (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Parallel iterator over `chunk`-sized sub-slices (last may be short).
    fn par_chunks(&self, chunk: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
    fn par_chunks(&self, chunk: usize) -> ChunksIter<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunksIter { slice: self, chunk }
    }
}

/// Mutable-slice helpers (`par_iter_mut`, `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    /// Parallel iterator over disjoint `chunk`-sized mutable sub-slices.
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMutIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData }
    }
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMutIter<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ChunksMutIter { ptr: self.as_mut_ptr(), len: self.len(), chunk, _marker: PhantomData }
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&T` of a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn item_at(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Parallel iterator over `&mut T` of a slice.
pub struct SliceIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: each index — and thus each `&mut T` — is handed out at most once.
unsafe impl<T: Send> Send for SliceIterMut<'_, T> {}
// SAFETY: as above; concurrent `item_at` calls touch disjoint elements.
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn par_len(&self) -> usize {
        self.len
    }
    unsafe fn item_at(&self, i: usize) -> &'a mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// Parallel iterator over shared chunks of a slice.
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];
    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn item_at(&self, i: usize) -> &'a [T] {
        let lo = i * self.chunk;
        &self.slice[lo..(lo + self.chunk).min(self.slice.len())]
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ChunksMutIter<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: chunks are disjoint and each index is handed out at most once.
unsafe impl<T: Send> Send for ChunksMutIter<'_, T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for ChunksMutIter<'_, T> {}

impl<'a, T: Send> ParallelIterator for ChunksMutIter<'a, T> {
    type Item = &'a mut [T];
    fn par_len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn item_at(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.chunk;
        let len = self.chunk.min(self.len - lo);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), len)
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    unsafe fn item_at(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Parallel iterator that moves items out of an owned `Vec`.
///
/// Items not moved out (panic mid-drive, early drop) are **leaked**, never
/// double-dropped — acceptable for a shim; the workspace always consumes
/// every item.
pub struct VecIter<T> {
    buf: Vec<ManuallyDrop<T>>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.buf.len()
    }
    unsafe fn item_at(&self, i: usize) -> T {
        // SAFETY: each index is taken at most once (trait contract).
        ManuallyDrop::into_inner(std::ptr::read(&self.buf[i]))
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    unsafe fn item_at(&self, i: usize) -> R {
        (self.f)(self.base.item_at(i))
    }
    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }
    fn max_chunk(&self) -> usize {
        self.base.max_chunk()
    }
}

/// Result of [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    unsafe fn item_at(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.item_at(i), self.b.item_at(i))
    }
    fn min_chunk(&self) -> usize {
        self.a.min_chunk().max(self.b.min_chunk())
    }
    fn max_chunk(&self) -> usize {
        self.a.max_chunk().min(self.b.max_chunk())
    }
}

/// Result of [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    unsafe fn item_at(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.item_at(i))
    }
    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }
    fn max_chunk(&self) -> usize {
        self.base.max_chunk()
    }
}

/// Result of [`ParallelIterator::with_min_len`].
pub struct MinLen<I> {
    base: I,
    n: usize,
}

impl<I: ParallelIterator> ParallelIterator for MinLen<I> {
    type Item = I::Item;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    unsafe fn item_at(&self, i: usize) -> I::Item {
        self.base.item_at(i)
    }
    fn min_chunk(&self) -> usize {
        self.n.max(self.base.min_chunk())
    }
    fn max_chunk(&self) -> usize {
        self.base.max_chunk()
    }
}

/// Result of [`ParallelIterator::with_max_len`].
pub struct MaxLen<I> {
    base: I,
    n: usize,
}

impl<I: ParallelIterator> ParallelIterator for MaxLen<I> {
    type Item = I::Item;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    unsafe fn item_at(&self, i: usize) -> I::Item {
        self.base.item_at(i)
    }
    fn min_chunk(&self) -> usize {
        self.base.min_chunk()
    }
    fn max_chunk(&self) -> usize {
        self.n.min(self.base.max_chunk())
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_ordered() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        let mut v = vec![0u64; 5000];
        v.par_iter_mut().enumerate().with_min_len(64).for_each(|(i, x)| *x = i as u64 + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn zip_truncates_and_pairs() {
        let a = vec![1.0f64; 1000];
        let b: Vec<f64> = (0..1500).map(|i| i as f64).collect();
        let s: f64 = a.par_iter().zip(&b[..1000]).map(|(&x, &y)| x * y).sum();
        let expect: f64 = (0..1000).map(|i| i as f64).sum();
        assert_eq!(s, expect);
    }

    #[test]
    fn chunks_mut_disjoint() {
        let mut v = vec![0usize; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(c, chunk)| {
            for x in chunk {
                *x = c;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 10);
        }
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let r: Result<Vec<usize>, &'static str> =
            (0..100).into_par_iter().map(|i| if i == 57 { Err("boom") } else { Ok(i) }).collect();
        assert_eq!(r, Err("boom"));
        let ok: Result<Vec<usize>, &'static str> = (0..100).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
    }

    #[test]
    fn owned_vec_moves_items() {
        let src: Vec<String> = (0..500).map(|i| i.to_string()).collect();
        let out: Vec<usize> = src.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 500);
        assert_eq!(out[0], 1);
        assert_eq!(out[499], 3);
    }

    #[test]
    fn sum_matches_serial() {
        let v: Vec<f64> = (0..20_000).map(|i| i as f64 * 0.5).collect();
        let par: f64 = v.par_iter().map(|&x| x).sum();
        let ser: f64 = v.iter().sum();
        assert!((par - ser).abs() < 1e-6);
    }
}
