//! Mid-frame disconnects, from both ends of an RBNET connection, must
//! surface as typed errors — never a panic, never a hang, never a broken
//! server. Prefix lengths are property-driven so every cut point in the
//! frame (inside the header, on its boundary, inside the payload) gets
//! exercised.

use proptest::prelude::*;
use recblock_matrix::generate;
use recblock_net::frame;
use recblock_net::{ClientConfig, NetClient, NetConfig, NetError};
use recblock_serve::{ServeConfig, SolveService};
use recblock_store::PlanKey;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One shared loopback server for every server-side case (plan build and
/// bind dominate per-case cost otherwise). The event-loop thread is
/// detached; the test process exiting tears it down.
fn shared_server() -> &'static (SocketAddr, PlanKey, Vec<u8>, Vec<f64>) {
    static SRV: OnceLock<(SocketAddr, PlanKey, Vec<u8>, Vec<f64>)> = OnceLock::new();
    SRV.get_or_init(|| {
        let service = Arc::new(SolveService::<f64>::new(ServeConfig::default().with_workers(1)));
        let l = generate::random_lower::<f64>(120, 3.0, 1700);
        let b: Vec<f64> = (0..120).map(|i| ((i * 7 + 1) as f64 * 0.017).sin()).collect();
        let expected = service.submit(&l, b.clone()).unwrap().wait().unwrap();
        let key = PlanKey::of(&l);
        let mut server =
            recblock_net::NetServer::bind("127.0.0.1:0", NetConfig::default(), service)
                .expect("bind loopback");
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let mut whole = Vec::new();
        frame::encode_solve::<f64>(&mut whole, 1, "alpha", &key, 0, &[&b]);
        (addr, key, whole, expected)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    // Client vanishes mid-frame at an arbitrary cut point: the server
    // must shrug it off and keep serving the next connection.
    #[test]
    fn server_survives_mid_frame_disconnect_at_any_cut(frac in 0u64..10_000) {
        let (addr, key, whole, expected) = shared_server();
        let keep = (frac as usize * whole.len()) / 10_000;
        {
            let mut raw = TcpStream::connect(*addr).unwrap();
            raw.write_all(&whole[..keep]).unwrap();
        } // dropped: FIN/RST mid-frame

        let mut client = NetClient::connect(*addr).unwrap();
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        let b: Vec<f64> = (0..120).map(|i| ((i * 7 + 1) as f64 * 0.017).sin()).collect();
        let got = client.solve::<f64>("alpha", key, &b).unwrap();
        prop_assert_eq!(&got, expected, "server answers bit-identically after the disconnect");
    }

    // Server vanishes mid-response at an arbitrary cut point: the client
    // must report a typed error, not panic or hang.
    #[test]
    fn client_reports_typed_error_on_truncated_response(frac in 0u64..10_000, tag in 1u64..1_000) {
        let col: Vec<f64> = (0..64).map(|i| i as f64 * 0.5 - 3.0).collect();
        let mut whole = Vec::new();
        frame::encode_solve_ok::<f64>(&mut whole, tag, &[col]);
        // Strictly shorter than the frame: every case is a real truncation.
        let keep = (frac as usize * whole.len()) / 10_000;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.write_all(&whole[..keep]).unwrap();
        }); // stream drops: close mid-frame
        let cfg = ClientConfig {
            read_timeout: Some(Duration::from_secs(10)),
            ..ClientConfig::default()
        };
        let mut client = NetClient::connect_with(addr, cfg).unwrap();
        let err = client.recv::<f64>().expect_err("truncated response cannot parse");
        prop_assert!(
            matches!(err, NetError::Closed | NetError::Io(_) | NetError::Frame(_)),
            "typed transport error, got {}", err
        );
        srv.join().unwrap();
    }
}
