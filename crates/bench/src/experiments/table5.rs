//! Table 5: preprocessing cost versus amortisation — average preprocessing
//! time, single-solve time, and total time for 100/500/1000 iterations for
//! the three methods (the paper reports block preprocessing ≈ 9.16× one
//! block solve, amortised far below the baselines by 100 iterations).

use crate::corpus::corpus_scaled;
use crate::harness::{evaluate_methods, fmt_ms, scale_device, HarnessConfig, Table};
use recblock_gpu_sim::DeviceSpec;

/// Average per-method costs over a corpus sample.
#[derive(Debug, Clone, Default)]
pub struct Table5Stats {
    /// (prep, single-solve) seconds: cuSPARSE.
    pub cusparse: (f64, f64),
    /// Sync-free.
    pub syncfree: (f64, f64),
    /// Block algorithm.
    pub block: (f64, f64),
    /// Matrices sampled.
    pub sampled: usize,
}

impl Table5Stats {
    /// Total time of preprocessing plus `iters` solves for a method.
    pub fn overall(method: (f64, f64), iters: usize) -> f64 {
        method.0 + iters as f64 * method.1
    }

    /// Preprocessing cost of the block method expressed in single solves —
    /// the paper's headline "9.16×".
    pub fn block_prep_over_solve(&self) -> f64 {
        self.block.0 / self.block.1
    }
}

/// Average the costs over every `stride`-th corpus matrix.
pub fn evaluate(cfg: &HarnessConfig, extra_shrink: usize, stride: usize) -> Table5Stats {
    let dev = scale_device(&DeviceSpec::titan_rtx_turing(), cfg.scale);
    let mut stats = Table5Stats::default();
    for entry in corpus_scaled(extra_shrink).iter().step_by(stride.max(1)) {
        let l = entry.build::<f64>();
        let eval = evaluate_methods(&l, &dev, cfg);
        stats.cusparse.0 += eval.cusparse_prep;
        stats.cusparse.1 += eval.cusparse.total_s;
        stats.syncfree.0 += eval.syncfree_prep;
        stats.syncfree.1 += eval.syncfree.total_s;
        stats.block.0 += eval.block_prep;
        stats.block.1 += eval.block.total_s;
        stats.sampled += 1;
    }
    let n = stats.sampled.max(1) as f64;
    for m in [&mut stats.cusparse, &mut stats.syncfree, &mut stats.block] {
        m.0 /= n;
        m.1 /= n;
    }
    stats
}

/// Render the report.
pub fn run(cfg: &HarnessConfig) -> String {
    render(&evaluate(cfg, 1, 4))
}

/// Render precomputed stats.
pub fn render(stats: &Table5Stats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== Table 5: preprocessing amortisation (avg over {} corpus matrices, ms, Titan RTX) ==\n",
        stats.sampled
    ));
    let mut t = Table::new([
        "method",
        "preprocess",
        "single solve",
        "100 iters",
        "500 iters",
        "1000 iters",
    ]);
    for (name, m) in [
        ("cuSPARSE v2", stats.cusparse),
        ("Sync-free", stats.syncfree),
        ("block algorithm", stats.block),
    ] {
        t.row([
            name.to_string(),
            fmt_ms(m.0),
            fmt_ms(m.1),
            fmt_ms(Table5Stats::overall(m, 100)),
            fmt_ms(Table5Stats::overall(m, 500)),
            fmt_ms(Table5Stats::overall(m, 1000)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nBlock preprocessing = {:.2}x one block solve (paper: 9.16x).\n",
        stats.block_prep_over_solve()
    ));
    out.push_str("Paper (ms): cuSPARSE 91.32/103.09, Sync-free 2.34/94.79, block 104.44/11.40;\n");
    out.push_str("block wins overall from 100 iterations on.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortisation_shape_holds() {
        let cfg = HarnessConfig::default();
        let stats = evaluate(&cfg, 4, 8);
        assert!(stats.sampled >= 10);
        // Sync-free preprocessing is the cheapest; block prep the priciest.
        assert!(stats.syncfree.0 < stats.cusparse.0);
        assert!(stats.block.0 >= stats.cusparse.0 * 0.2);
        // Block solve is the fastest per iteration.
        assert!(stats.block.1 < stats.cusparse.1);
        assert!(stats.block.1 < stats.syncfree.1);
        // By 100 iterations the block method's total is the lowest — the
        // paper's amortisation claim.
        let b100 = Table5Stats::overall(stats.block, 100);
        assert!(b100 < Table5Stats::overall(stats.cusparse, 100));
        assert!(b100 < Table5Stats::overall(stats.syncfree, 100));
        // Prep-over-solve in a plausible band around the paper's 9.16x.
        let ratio = stats.block_prep_over_solve();
        assert!(ratio > 1.0 && ratio < 100.0, "prep/solve {ratio}");
    }
}
