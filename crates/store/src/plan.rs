//! Plan file format: encode/decode preprocessed solve plans.
//!
//! # Layout
//!
//! ```text
//! magic   [8 bytes]  b"RBSTORE\0"
//! version [u32 LE]   FORMAT_VERSION
//! section            META  (tag 1)
//! section            BODY  (tag 2)
//! <end of file — trailing bytes are an error>
//!
//! section := tag [u32] | payload_len [u64] | crc32c(payload) [u32] | payload
//! ```
//!
//! META is small and fixed-shape: artifact kind, scalar width, the
//! [`PlanKey`], headline dimensions and the original build cost. It has its
//! own CRC so `decode_meta` (used by `planctl inspect` and the store's
//! directory scan) never needs to touch the — typically much larger — BODY.
//!
//! BODY carries the fully preprocessed solver state: the permutation, the
//! block tree in execution order, and for every block its selected kernel
//! plus the exact arrays the kernel runs on (CSR/CSC/DCSR, level
//! schedules, profiles). Loading therefore skips reordering, partitioning,
//! level analysis and kernel selection entirely — the expensive phases the
//! paper measures at ~9× one solve (Table 5).
//!
//! # Integrity
//!
//! Corruption is caught in layers: per-section CRC-32C (all single-bit and
//! single-byte flips), typed truncation checks while decoding, and finally
//! the validating constructors ([`BlockedTri::from_parts`] and friends)
//! which re-verify every structural invariant the solve kernels index by.
//! A length-field flip that survives the CRC of its own section cannot
//! cause over-allocation: array byte budgets are claimed against the
//! remaining payload before any allocation happens.

use crate::crc::{crc32, crc32_parallel};
use crate::error::StoreError;
use crate::key::PlanKey;
use crate::wire::{Reader, Writer};
use recblock::blocked::{BlockParts, BlockPartsKind, BlockViewKind, BlockedTriParts};
use recblock::packed::{PackedBlockParts, PackedBlocked, PackedBlockedParts, PackedShape};
use recblock::sqsolver::{SqSolver, SqStorage};
use recblock::trisolver::TriSolver;
use recblock::BlockedTri;
use recblock_gpu_sim::cost::SpmvKind;
use recblock_gpu_sim::{SpmvProfile, TriProfile};
use recblock_kernels::exec::{ScheduleMode, TuneParams};
use recblock_kernels::sptrsv::{CusparseLikeSolver, LevelSetSolver, SyncFreeSolver};
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::permute::Permutation;
use recblock_matrix::{Csc, Csr, Dcsr, Fingerprint, Scalar};

/// First eight bytes of every plan file.
pub const MAGIC: [u8; 8] = *b"RBSTORE\0";

/// Format version this build writes and reads. Bump on any layout change;
/// readers reject other versions with [`StoreError::WrongVersion`] and the
/// caller rebuilds (see DESIGN.md for the compatibility policy).
///
/// v2 added the execution-engine [`TuneParams`] at the start of the blocked
/// BODY, so a reloaded plan replans its schedules under the exact tuning it
/// was built with.
///
/// v3 extended the persisted [`TuneParams`] with the scheduling-mode fields
/// (`schedule_mode`, `p2p_min_parallel`, `p2p_chunk_nnz`). v2 files remain
/// readable: the reader defaults the new fields, and the point-to-point
/// task graphs themselves are never persisted — they are recompiled at load
/// for the machine doing the loading.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version this build still reads (see [`FORMAT_VERSION`]).
pub const MIN_FORMAT_VERSION: u32 = 2;

const TAG_META: u32 = 1;
const TAG_BODY: u32 = 2;

/// Which preprocessed artifact a file carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A [`BlockedTri`] plan (`.rbplan`).
    Blocked,
    /// A [`PackedBlocked`] arena (`.rbpack`).
    Packed,
}

impl ArtifactKind {
    /// File extension used by the store for this kind.
    pub fn extension(self) -> &'static str {
        match self {
            ArtifactKind::Blocked => "rbplan",
            ArtifactKind::Packed => "rbpack",
        }
    }
}

/// The META section: everything about a plan that is knowable without
/// decoding its body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanMeta {
    /// Which artifact the body holds.
    pub kind: ArtifactKind,
    /// Identity of the matrix the plan was built for.
    pub key: PlanKey,
    /// Byte width of the scalar type the plan was built with (4 or 8).
    pub scalar_bytes: u8,
    /// Rows of the system.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Recursion depth of the original build.
    pub depth: usize,
    /// Number of blocks in the plan.
    pub nblocks: usize,
    /// Wall-clock seconds the original preprocessing took — what a load
    /// saves, reported by the serve metrics as warm-start savings.
    pub build_cost: f64,
}

fn put_meta(w: &mut Writer, meta: &PlanMeta) {
    w.put_u8(match meta.kind {
        ArtifactKind::Blocked => 0,
        ArtifactKind::Packed => 1,
    });
    w.put_u8(meta.scalar_bytes);
    w.put_usize(meta.key.structure.nrows);
    w.put_usize(meta.key.structure.ncols);
    w.put_usize(meta.key.structure.nnz);
    w.put_u64(meta.key.structure.hash);
    w.put_u64(meta.key.values);
    w.put_usize(meta.n);
    w.put_usize(meta.nnz);
    w.put_usize(meta.depth);
    w.put_usize(meta.nblocks);
    w.put_f64(meta.build_cost);
}

fn get_meta(payload: &[u8]) -> Result<PlanMeta, StoreError> {
    let mut r = Reader::new(payload, "meta section");
    let kind = match r.u8()? {
        0 => ArtifactKind::Blocked,
        1 => ArtifactKind::Packed,
        k => return Err(StoreError::Malformed(format!("unknown artifact kind {k}"))),
    };
    let scalar_bytes = r.u8()?;
    if scalar_bytes != 4 && scalar_bytes != 8 {
        return Err(StoreError::Malformed(format!("scalar width {scalar_bytes} is not 4 or 8")));
    }
    let structure =
        Fingerprint { nrows: r.usize()?, ncols: r.usize()?, nnz: r.usize()?, hash: r.u64()? };
    let values = r.u64()?;
    let meta = PlanMeta {
        kind,
        key: PlanKey { structure, values },
        scalar_bytes,
        n: r.usize()?,
        nnz: r.usize()?,
        depth: r.usize()?,
        nblocks: r.usize()?,
        build_cost: r.f64()?,
    };
    r.finish()?;
    Ok(meta)
}

fn put_section(w: &mut Writer, tag: u32, payload: &[u8]) {
    w.put_u32(tag);
    w.put_usize(payload.len());
    w.put_u32(crc32(payload));
    w.put_bytes(payload);
}

/// Read one section frame without verifying its checksum; returns the
/// payload and the stored CRC so the caller chooses when (and on how many
/// threads) to verify.
fn read_section_raw<'a>(
    r: &mut Reader<'a>,
    expect_tag: u32,
    section: &'static str,
) -> Result<(&'a [u8], u32), StoreError> {
    let tag = r.u32()?;
    if tag != expect_tag {
        return Err(StoreError::Malformed(format!(
            "expected section tag {expect_tag} ({section}), found {tag}"
        )));
    }
    let len = r.usize()?;
    let crc = r.u32()?;
    let payload = r.take(len)?;
    Ok((payload, crc))
}

fn read_section<'a>(
    r: &mut Reader<'a>,
    expect_tag: u32,
    section: &'static str,
) -> Result<&'a [u8], StoreError> {
    let (payload, crc) = read_section_raw(r, expect_tag, section)?;
    if crc32(payload) != crc {
        return Err(StoreError::ChecksumMismatch { section });
    }
    Ok(payload)
}

/// Parse the header and META section; the body is not decoded. Used for
/// inspection and for the store's key check before committing to a full
/// decode.
pub fn decode_meta(bytes: &[u8]) -> Result<PlanMeta, StoreError> {
    let mut r = Reader::new(bytes, "plan file header");
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(StoreError::WrongMagic);
    }
    let version = r.u32()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::WrongVersion { found: version, expected: FORMAT_VERSION });
    }
    let meta_payload = read_section(&mut r, TAG_META, "meta")?;
    get_meta(meta_payload)
}

/// Scalar-independent integrity check of a whole plan/pack file: magic,
/// version, META and BODY checksums, and no trailing bytes. The body is
/// *not* decoded, so the check needs no knowledge of the stored scalar
/// type — exactly what a boot-time recovery scan wants, where files of
/// every width sit in one directory.
pub fn verify_file(bytes: &[u8]) -> Result<PlanMeta, StoreError> {
    let meta = decode_meta(bytes)?;
    let mut r = Reader::new(bytes, "plan file header");
    r.take(8)?;
    r.u32()?;
    read_section(&mut r, TAG_META, "meta")?;
    let (body, crc) = read_section_raw(&mut r, TAG_BODY, "body")?;
    r.finish()?;
    if crc32_parallel(body) != crc {
        return Err(StoreError::ChecksumMismatch { section: "body" });
    }
    Ok(meta)
}

fn encode_file(meta: &PlanMeta, body: Vec<u8>) -> Vec<u8> {
    let mut mw = Writer::new();
    put_meta(&mut mw, meta);
    let meta_payload = mw.into_bytes();

    let mut w = Writer::new();
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    put_section(&mut w, TAG_META, &meta_payload);
    put_section(&mut w, TAG_BODY, &body);
    w.into_bytes()
}

/// Shared prologue of the full decoders: header + META + BODY frame. The
/// body checksum is **not** verified here — the stored CRC is returned so
/// [`decode_checked`] can run verification concurrently with decoding.
fn decode_body<S: Scalar>(
    bytes: &[u8],
    want: ArtifactKind,
) -> Result<(PlanMeta, u32, &[u8], u32), StoreError> {
    let meta = decode_meta(bytes)?;
    if meta.scalar_bytes as usize != S::BYTES {
        return Err(StoreError::ScalarMismatch {
            expected: S::BYTES as u8,
            found: meta.scalar_bytes,
        });
    }
    if meta.kind != want {
        return Err(StoreError::Malformed(format!(
            "file holds a {:?} artifact, expected {:?}",
            meta.kind, want
        )));
    }
    // Re-walk the header to position after META (decode_meta borrowed it).
    let mut r = Reader::new(bytes, "plan file header");
    r.take(8)?;
    let version = r.u32()?;
    read_section(&mut r, TAG_META, "meta")?;
    let (body, crc) = read_section_raw(&mut r, TAG_BODY, "body")?;
    r.finish()?;
    Ok((meta, version, body, crc))
}

/// Run the body decoder while the body checksum is verified on other
/// threads, then reconcile. The decoder only ever produces typed errors on
/// bad input (no panics, no unchecked allocation), so letting it race ahead
/// of verification is safe; a checksum failure takes priority over whatever
/// the decoder made of the corrupt bytes, since it is the more precise
/// diagnosis. This overlap — plus the parallel CRC itself — is what keeps
/// a load several times cheaper than a rebuild even on multi-megabyte
/// plans.
fn decode_checked<T>(
    body: &[u8],
    stored_crc: u32,
    decode: impl FnOnce(&[u8]) -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    let (crc_ok, decoded) = std::thread::scope(|s| {
        let crc = s.spawn(|| crc32_parallel(body) == stored_crc);
        let decoded = decode(body);
        (crc.join().expect("crc thread panicked"), decoded)
    });
    if !crc_ok {
        return Err(StoreError::ChecksumMismatch { section: "body" });
    }
    decoded
}

// ---------------------------------------------------------------------------
// Shared component encoders/decoders
// ---------------------------------------------------------------------------

fn put_csr<S: Scalar>(w: &mut Writer, a: &Csr<S>) {
    w.put_usize(a.nrows());
    w.put_usize(a.ncols());
    w.put_usize_slice(a.row_ptr());
    w.put_usize_slice(a.col_idx());
    w.put_scalar_slice(a.vals());
}

fn get_csr<S: Scalar>(r: &mut Reader<'_>) -> Result<Csr<S>, StoreError> {
    let nrows = r.usize()?;
    let ncols = r.usize()?;
    let row_ptr = r.usize_vec()?;
    let col_idx = r.usize_vec()?;
    let vals = r.scalar_vec()?;
    Ok(Csr::try_new(nrows, ncols, row_ptr, col_idx, vals)?)
}

fn put_csc<S: Scalar>(w: &mut Writer, a: &Csc<S>) {
    w.put_usize(a.nrows());
    w.put_usize(a.ncols());
    w.put_usize_slice(a.col_ptr());
    w.put_usize_slice(a.row_idx());
    w.put_scalar_slice(a.vals());
}

fn get_csc<S: Scalar>(r: &mut Reader<'_>) -> Result<Csc<S>, StoreError> {
    let nrows = r.usize()?;
    let ncols = r.usize()?;
    let col_ptr = r.usize_vec()?;
    let row_idx = r.usize_vec()?;
    let vals = r.scalar_vec()?;
    Ok(Csc::try_new(nrows, ncols, col_ptr, row_idx, vals)?)
}

fn put_dcsr<S: Scalar>(w: &mut Writer, a: &Dcsr<S>) {
    w.put_usize(a.nrows());
    w.put_usize(a.ncols());
    w.put_usize_slice(a.row_ids());
    w.put_usize_slice(a.row_ptr());
    w.put_usize_slice(a.col_idx());
    w.put_scalar_slice(a.vals());
}

fn get_dcsr<S: Scalar>(r: &mut Reader<'_>) -> Result<Dcsr<S>, StoreError> {
    let nrows = r.usize()?;
    let ncols = r.usize()?;
    let row_ids = r.usize_vec()?;
    let row_ptr = r.usize_vec()?;
    let col_idx = r.usize_vec()?;
    let vals = r.scalar_vec()?;
    Ok(Dcsr::try_new(nrows, ncols, row_ids, row_ptr, col_idx, vals)?)
}

fn put_levels(w: &mut Writer, lv: &LevelSets) {
    w.put_usize_slice(lv.level_ptr());
    w.put_usize_slice(lv.items());
}

fn get_levels(r: &mut Reader<'_>) -> Result<LevelSets, StoreError> {
    let level_ptr = r.usize_vec()?;
    let items = r.usize_vec()?;
    Ok(LevelSets::from_parts(level_ptr, items)?)
}

fn put_tri_profile(w: &mut Writer, p: &TriProfile) {
    w.put_usize(p.n);
    w.put_usize(p.nnz);
    w.put_usize_slice(&p.level_rows);
    w.put_usize_slice(&p.level_nnz);
    w.put_usize_slice(&p.level_max_row);
    w.put_usize_slice(&p.level_max_col);
}

fn get_tri_profile(r: &mut Reader<'_>) -> Result<TriProfile, StoreError> {
    let n = r.usize()?;
    let nnz = r.usize()?;
    let level_rows = r.usize_vec()?;
    let level_nnz = r.usize_vec()?;
    let level_max_row = r.usize_vec()?;
    let level_max_col = r.usize_vec()?;
    let nlevels = level_rows.len();
    if level_nnz.len() != nlevels
        || level_max_row.len() != nlevels
        || level_max_col.len() != nlevels
    {
        return Err(StoreError::Malformed("tri profile level arrays disagree in length".into()));
    }
    Ok(TriProfile { n, nnz, level_rows, level_nnz, level_max_row, level_max_col })
}

fn put_spmv_profile(w: &mut Writer, p: &SpmvProfile) {
    w.put_usize(p.nrows);
    w.put_usize(p.ncols);
    w.put_usize(p.nnz);
    w.put_usize(p.lanes);
    w.put_usize(p.max_row);
}

fn get_spmv_profile(r: &mut Reader<'_>) -> Result<SpmvProfile, StoreError> {
    Ok(SpmvProfile {
        nrows: r.usize()?,
        ncols: r.usize()?,
        nnz: r.usize()?,
        lanes: r.usize()?,
        max_row: r.usize()?,
    })
}

fn put_tune(w: &mut Writer, t: TuneParams) {
    w.put_usize(t.par_rows);
    w.put_usize(t.fuse_nnz);
    w.put_usize(t.chunk_nnz);
    w.put_usize(t.lanes);
    w.put_u8(t.schedule_mode.as_index() as u8);
    w.put_usize(t.p2p_min_parallel);
    w.put_usize(t.p2p_chunk_nnz);
}

/// Read the persisted [`TuneParams`]; a v2 body predates the scheduling-mode
/// fields and gets their defaults, so old plans keep loading (and keep the
/// same automatic mode selection they would get from a fresh build).
fn get_tune(r: &mut Reader<'_>, version: u32) -> Result<TuneParams, StoreError> {
    let mut t = TuneParams {
        par_rows: r.usize()?,
        fuse_nnz: r.usize()?,
        chunk_nnz: r.usize()?,
        lanes: r.usize()?,
        ..TuneParams::default()
    };
    if version >= 3 {
        t.schedule_mode = ScheduleMode::from_index(r.u8()? as usize);
        t.p2p_min_parallel = r.usize()?;
        t.p2p_chunk_nnz = r.usize()?;
    }
    Ok(t)
}

fn spmv_kind_tag(k: SpmvKind) -> u8 {
    match k {
        SpmvKind::ScalarCsr => 0,
        SpmvKind::VectorCsr => 1,
        SpmvKind::ScalarDcsr => 2,
        SpmvKind::VectorDcsr => 3,
    }
}

fn spmv_kind_from(tag: u8) -> Result<SpmvKind, StoreError> {
    Ok(match tag {
        0 => SpmvKind::ScalarCsr,
        1 => SpmvKind::VectorCsr,
        2 => SpmvKind::ScalarDcsr,
        3 => SpmvKind::VectorDcsr,
        t => return Err(StoreError::Malformed(format!("unknown spmv kind tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// BlockedTri plan
// ---------------------------------------------------------------------------

const TRI_DIAG: u8 = 0;
const TRI_LEVELSET: u8 = 1;
const TRI_SYNCFREE: u8 = 2;
const TRI_CUSPARSE: u8 = 3;

fn put_tri_solver<S: Scalar>(w: &mut Writer, s: &TriSolver<S>) {
    match s {
        TriSolver::Diag(l) => {
            w.put_u8(TRI_DIAG);
            put_csr(w, l);
        }
        TriSolver::LevelSet(s) => {
            w.put_u8(TRI_LEVELSET);
            put_csr(w, s.matrix());
            put_levels(w, s.levels());
        }
        TriSolver::SyncFree(s) => {
            w.put_u8(TRI_SYNCFREE);
            put_csc(w, s.matrix());
            w.put_usize(s.nthreads());
        }
        TriSolver::Cusparse(s) => {
            w.put_u8(TRI_CUSPARSE);
            put_csr(w, s.matrix());
            put_levels(w, s.levels());
        }
    }
}

fn get_tri_solver<S: Scalar>(
    r: &mut Reader<'_>,
    tune: TuneParams,
) -> Result<TriSolver<S>, StoreError> {
    Ok(match r.u8()? {
        TRI_DIAG => TriSolver::Diag(get_csr(r)?),
        TRI_LEVELSET => {
            let l: Csr<S> = get_csr(r)?;
            let levels = get_levels(r)?;
            if levels.n() != l.nrows() {
                return Err(StoreError::Malformed(format!(
                    "level schedule covers {} rows, block has {}",
                    levels.n(),
                    l.nrows()
                )));
            }
            TriSolver::LevelSet(LevelSetSolver::with_tune(l, levels, tune))
        }
        TRI_SYNCFREE => {
            let csc = get_csc(r)?;
            let nthreads = r.usize()?;
            TriSolver::SyncFree(SyncFreeSolver::from_csc(csc, nthreads)?)
        }
        TRI_CUSPARSE => {
            let l = get_csr(r)?;
            let levels = get_levels(r)?;
            TriSolver::Cusparse(CusparseLikeSolver::with_levels_tuned(l, levels, tune)?)
        }
        t => return Err(StoreError::Malformed(format!("unknown tri solver tag {t}"))),
    })
}

const BLOCK_TRI: u8 = 0;
const BLOCK_SQUARE: u8 = 1;

const STORAGE_CSR: u8 = 0;
const STORAGE_DCSR: u8 = 1;

/// Serialize a fully built plan. `build_cost` is the wall-clock seconds the
/// original preprocessing took (recorded so a later load can report what it
/// saved).
pub fn encode_plan<S: Scalar>(blocked: &BlockedTri<S>, key: &PlanKey, build_cost: f64) -> Vec<u8> {
    let meta = PlanMeta {
        kind: ArtifactKind::Blocked,
        key: *key,
        scalar_bytes: S::BYTES as u8,
        n: blocked.n(),
        nnz: blocked.nnz(),
        depth: blocked.depth(),
        nblocks: blocked.nblocks(),
        build_cost,
    };
    let mut b = Writer::new();
    b.put_usize_slice(blocked.permutation().forward());
    put_tune(&mut b, blocked.tune());
    b.put_usize(blocked.nblocks());
    for v in blocked.block_views() {
        b.put_range(&v.rows);
        b.put_range(&v.cols);
        match v.kind {
            BlockViewKind::Tri { solver, profile } => {
                b.put_u8(BLOCK_TRI);
                put_tri_solver(&mut b, solver);
                put_tri_profile(&mut b, profile);
            }
            BlockViewKind::Square(sq) => {
                b.put_u8(BLOCK_SQUARE);
                b.put_u8(spmv_kind_tag(sq.kind()));
                match sq.storage() {
                    SqStorage::Csr(a) => {
                        b.put_u8(STORAGE_CSR);
                        put_csr(&mut b, a);
                    }
                    SqStorage::Dcsr(a) => {
                        b.put_u8(STORAGE_DCSR);
                        put_dcsr(&mut b, a);
                    }
                }
                put_spmv_profile(&mut b, sq.profile());
            }
        }
    }
    encode_file(&meta, b.into_bytes())
}

/// Decode a [`BlockedTri`] plan, re-validating every structural invariant.
pub fn decode_plan<S: Scalar>(bytes: &[u8]) -> Result<(PlanMeta, BlockedTri<S>), StoreError> {
    let (meta, version, body, crc) = decode_body::<S>(bytes, ArtifactKind::Blocked)?;
    let blocked = decode_checked(body, crc, |body| decode_plan_body::<S>(&meta, version, body))?;
    Ok((meta, blocked))
}

fn decode_plan_body<S: Scalar>(
    meta: &PlanMeta,
    version: u32,
    body: &[u8],
) -> Result<BlockedTri<S>, StoreError> {
    let mut r = Reader::new(body, "body section");
    let perm = Permutation::from_forward(r.usize_vec()?)?;
    let tune = get_tune(&mut r, version)?;
    let nblocks = r.usize()?;
    if nblocks != meta.nblocks {
        return Err(StoreError::Malformed(format!(
            "body holds {nblocks} blocks, meta declares {}",
            meta.nblocks
        )));
    }
    let mut blocks = Vec::with_capacity(nblocks.min(body.len()));
    for _ in 0..nblocks {
        let rows = r.range()?;
        let cols = r.range()?;
        let kind = match r.u8()? {
            BLOCK_TRI => {
                let solver = get_tri_solver(&mut r, tune)?;
                let profile = get_tri_profile(&mut r)?;
                BlockPartsKind::Tri { solver, profile }
            }
            BLOCK_SQUARE => {
                let kind = spmv_kind_from(r.u8()?)?;
                let storage = match r.u8()? {
                    STORAGE_CSR => SqStorage::Csr(get_csr(&mut r)?),
                    STORAGE_DCSR => SqStorage::Dcsr(get_dcsr(&mut r)?),
                    t => return Err(StoreError::Malformed(format!("unknown storage tag {t}"))),
                };
                let profile = get_spmv_profile(&mut r)?;
                BlockPartsKind::Square(SqSolver::from_parts_tuned(kind, storage, profile, tune)?)
            }
            t => return Err(StoreError::Malformed(format!("unknown block tag {t}"))),
        };
        blocks.push(BlockParts { rows, cols, kind });
    }
    r.finish()?;
    let parts = BlockedTriParts { n: meta.n, nnz: meta.nnz, depth: meta.depth, perm, tune, blocks };
    Ok(BlockedTri::from_parts(parts)?)
}

// ---------------------------------------------------------------------------
// PackedBlocked arena
// ---------------------------------------------------------------------------

fn shape_tag(s: PackedShape) -> u8 {
    match s {
        PackedShape::TriCsc => 0,
        PackedShape::SquareCsr => 1,
        PackedShape::SquareDcsr => 2,
    }
}

fn shape_from(tag: u8) -> Result<PackedShape, StoreError> {
    Ok(match tag {
        0 => PackedShape::TriCsc,
        1 => PackedShape::SquareCsr,
        2 => PackedShape::SquareDcsr,
        t => return Err(StoreError::Malformed(format!("unknown packed shape tag {t}"))),
    })
}

/// Serialize a packed arena.
pub fn encode_packed<S: Scalar>(
    packed: &PackedBlocked<S>,
    key: &PlanKey,
    build_cost: f64,
) -> Vec<u8> {
    let parts = packed.to_parts();
    let meta = PlanMeta {
        kind: ArtifactKind::Packed,
        key: *key,
        scalar_bytes: S::BYTES as u8,
        n: parts.n,
        nnz: parts.nnz,
        depth: parts.depth,
        nblocks: parts.blocks.len(),
        build_cost,
    };
    let mut b = Writer::new();
    b.put_usize_slice(parts.perm.forward());
    b.put_scalar_slice(&parts.diag);
    b.put_usize_slice(&parts.ptr);
    b.put_usize_slice(&parts.idx);
    b.put_scalar_slice(&parts.vals);
    b.put_usize_slice(&parts.aux);
    b.put_usize(parts.blocks.len());
    for blk in &parts.blocks {
        b.put_u8(shape_tag(blk.shape));
        b.put_range(&blk.rows);
        b.put_range(&blk.cols);
        b.put_range(&blk.ptr);
        b.put_range(&blk.data);
        b.put_range(&blk.aux);
    }
    encode_file(&meta, b.into_bytes())
}

/// Decode a [`PackedBlocked`] arena, re-validating every span the solve
/// kernels index by.
pub fn decode_packed<S: Scalar>(bytes: &[u8]) -> Result<(PlanMeta, PackedBlocked<S>), StoreError> {
    let (meta, _version, body, crc) = decode_body::<S>(bytes, ArtifactKind::Packed)?;
    let packed = decode_checked(body, crc, |body| decode_packed_body::<S>(&meta, body))?;
    Ok((meta, packed))
}

fn decode_packed_body<S: Scalar>(
    meta: &PlanMeta,
    body: &[u8],
) -> Result<PackedBlocked<S>, StoreError> {
    let mut r = Reader::new(body, "body section");
    let perm = Permutation::from_forward(r.usize_vec()?)?;
    let diag = r.scalar_vec()?;
    let ptr = r.usize_vec()?;
    let idx = r.usize_vec()?;
    let vals = r.scalar_vec()?;
    let aux = r.usize_vec()?;
    let nblocks = r.usize()?;
    if nblocks != meta.nblocks {
        return Err(StoreError::Malformed(format!(
            "body holds {nblocks} blocks, meta declares {}",
            meta.nblocks
        )));
    }
    let mut blocks = Vec::with_capacity(nblocks.min(body.len()));
    for _ in 0..nblocks {
        let shape = shape_from(r.u8()?)?;
        blocks.push(PackedBlockParts {
            shape,
            rows: r.range()?,
            cols: r.range()?,
            ptr: r.range()?,
            data: r.range()?,
            aux: r.range()?,
        });
    }
    r.finish()?;
    let parts = PackedBlockedParts {
        n: meta.n,
        nnz: meta.nnz,
        depth: meta.depth,
        perm,
        diag,
        ptr,
        idx,
        vals,
        aux,
        blocks,
    };
    Ok(PackedBlocked::from_parts(parts)?)
}
