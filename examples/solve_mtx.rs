//! Matrix Market workflow: load a SuiteSparse-style `.mtx` file, extract
//! its lower triangle (plus a diagonal to avoid singular — exactly the
//! paper's dataset rule), preprocess with the recursive block solver, solve
//! `L x = b`, and report structure, kernel census, wall-clock and simulated
//! GPU timings for all three methods.
//!
//! Usage:
//!   cargo run --release --example solve_mtx [path/to/matrix.mtx] \
//!       [--save-plan <plan-file>] [--load-plan <plan-file>]
//!
//! Without an argument, a demo matrix is generated, written to a temporary
//! `.mtx`, and processed through the same path — so the example is
//! self-contained while accepting real SuiteSparse files.
//!
//! `--save-plan` persists the preprocessed plan after building it;
//! `--load-plan` skips preprocessing entirely when the given plan file
//! matches the matrix (falling back to a fresh build, with a note, when it
//! does not).

use recblock_bench::harness::{evaluate_methods, fmt_x, HarnessConfig};
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::triangular::lower_with_diag;
use recblock_matrix::vector::residual_inf;
use recblock_matrix::{generate, mm, Csr};
use recblock_store::{encode_plan, read_plan_file, write_atomic, PlanKey};

fn main() {
    let mut save_plan: Option<String> = None;
    let mut load_plan: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--save-plan" => save_plan = Some(args.next().expect("--save-plan needs a path")),
            "--load-plan" => load_plan = Some(args.next().expect("--load-plan needs a path")),
            _ => positional.push(arg),
        }
    }

    let path = positional.into_iter().next().unwrap_or_else(|| {
        // Self-contained mode: generate, write, then read back like a
        // downloaded file.
        let demo = generate::layered::<f64>(30_000, 40, 3.0, generate::LayerShape::Uniform, 5);
        let dir = std::env::temp_dir().join("recblock_demo");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join("demo.mtx");
        mm::write_matrix_market_file(&demo, &p).expect("write demo matrix");
        println!("no file given; generated demo matrix at {}", p.display());
        p.to_string_lossy().into_owned()
    });

    println!("reading {path} ...");
    let a: Csr<f64> = mm::read_matrix_market_file(&path).expect("valid Matrix Market file");
    println!("read {} x {} with {} entries", a.nrows(), a.ncols(), a.nnz());

    // The paper's preparation rule: lower triangle plus a unit diagonal
    // where missing/zero.
    let l = lower_with_diag(&a).expect("square matrix");
    let levels = LevelSets::analyse(&l).expect("solvable");
    let (mn, avg, mx) = levels.parallelism();
    println!(
        "lower triangle: nnz = {}, nnz/row = {:.2}, levels = {} (parallelism {}/{:.0}/{})",
        l.nnz(),
        l.nnz() as f64 / l.nrows() as f64,
        levels.nlevels(),
        mn,
        avg,
        mx
    );

    // CPU solve through the harness-configured blocked solver — or a
    // previously persisted plan when --load-plan matches this matrix.
    let cfg = HarnessConfig::default();
    let dev = &cfg.devices[1]; // Titan RTX preset
    let key = PlanKey::of(&l);
    let loaded = load_plan.as_deref().and_then(|p| {
        let t = std::time::Instant::now();
        match read_plan_file::<f64>(std::path::Path::new(p)) {
            Ok(plan) if plan.meta.key == key => {
                println!(
                    "loaded plan from {p}: {} bytes in {:.2} ms (build had cost {:.1} ms)",
                    plan.bytes,
                    t.elapsed().as_secs_f64() * 1e3,
                    plan.meta.build_cost * 1e3
                );
                Some(plan.blocked)
            }
            Ok(plan) => {
                println!(
                    "plan at {p} is for {} but this matrix is {key}; rebuilding",
                    plan.meta.key
                );
                None
            }
            Err(e) => {
                println!("could not load plan from {p}: {e}; rebuilding");
                None
            }
        }
    });
    let (blocked, build_s) = match loaded {
        Some(plan) => (plan, 0.0),
        None => {
            let t0 = std::time::Instant::now();
            let plan = recblock_bench::harness::build_blocked(&l, dev, &cfg);
            (plan, t0.elapsed().as_secs_f64())
        }
    };
    println!(
        "preprocessing: {:.1} ms into {} blocks (depth {}), census {:?}",
        build_s * 1e3,
        blocked.nblocks(),
        blocked.depth(),
        blocked.census()
    );

    if let Some(p) = save_plan.as_deref() {
        let bytes = encode_plan(&blocked, &key, build_s);
        write_atomic(std::path::Path::new(p), &bytes).expect("writing plan file");
        println!("saved plan to {p} ({} bytes)", bytes.len());
    }

    let b: Vec<f64> = (0..l.nrows()).map(|i| 1.0 + ((i % 97) as f64) / 97.0).collect();
    let t1 = std::time::Instant::now();
    let x = blocked.solve(&b).expect("solve");
    let cpu_ms = t1.elapsed().as_secs_f64() * 1e3;
    let r = residual_inf(&l, &x, &b).expect("dims");
    println!("CPU solve: {cpu_ms:.2} ms, relative residual {r:.2e}");
    assert!(r < 1e-8, "solution verified");

    // Simulated-GPU comparison of the three methods.
    let eval = evaluate_methods(&l, dev, &cfg);
    let (g_cu, g_sf, g_blk) = eval.gflops();
    println!("\nsimulated {} (full-scale pricing):", dev.name);
    println!("  cuSPARSE-like : {:8.3} ms ({g_cu:.2} GFlops)", eval.cusparse.total_s * 1e3);
    println!("  sync-free     : {:8.3} ms ({g_sf:.2} GFlops)", eval.syncfree.total_s * 1e3);
    println!("  block         : {:8.3} ms ({g_blk:.2} GFlops)", eval.block.total_s * 1e3);
    let (s_cu, s_sf) = eval.speedups();
    println!("  block speedups: {} vs cuSPARSE, {} vs sync-free", fmt_x(s_cu), fmt_x(s_sf));
}
