//! GPU device descriptions (the paper's Table 3).

/// Hardware parameters of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Microarchitecture, used in reports.
    pub architecture: &'static str,
    /// Total CUDA cores.
    pub cuda_cores: usize,
    /// Streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Device memory in GiB.
    pub memory_gib: usize,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Last-level (L2) cache in bytes.
    pub l2_cache_bytes: usize,
}

impl DeviceSpec {
    /// NVIDIA Titan X (Pascal): 3072 CUDA cores @ 1075 MHz, 12 GB,
    /// 336.5 GB/s — the first platform of the paper's Table 3.
    pub fn titan_x_pascal() -> Self {
        DeviceSpec {
            name: "Titan X",
            architecture: "Pascal",
            cuda_cores: 3072,
            sm_count: 24,
            warp_size: 32,
            clock_mhz: 1075.0,
            memory_gib: 12,
            mem_bandwidth_gbs: 336.5,
            l2_cache_bytes: 3 << 20,
        }
    }

    /// NVIDIA Titan RTX (Turing): 4608 CUDA cores @ 1770 MHz, 24 GB,
    /// 672 GB/s — the second platform of the paper's Table 3.
    pub fn titan_rtx_turing() -> Self {
        DeviceSpec {
            name: "Titan RTX",
            architecture: "Turing",
            cuda_cores: 4608,
            sm_count: 72,
            warp_size: 32,
            clock_mhz: 1770.0,
            memory_gib: 24,
            mem_bandwidth_gbs: 672.0,
            l2_cache_bytes: 6 << 20,
        }
    }

    /// Maximum concurrently resident warps the model assumes (one warp per
    /// component in the warp-per-row kernels).
    pub fn max_resident_warps(&self) -> usize {
        // 32 resident warps per SM is a reasonable occupancy assumption for
        // these latency-bound kernels.
        self.sm_count * 32
    }

    /// Peak DRAM bandwidth in bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9
    }

    /// Fraction of the device occupied by `warps` concurrent warps (the
    /// utilisation factor of the cost model).
    pub fn utilisation(&self, warps: usize) -> f64 {
        if warps == 0 {
            return 0.0;
        }
        (warps as f64 / self.max_resident_warps() as f64).min(1.0)
    }

    /// The paper's recursion-stop rule: "divide the matrix until the number
    /// of rows of the next smallest block is less than 20 times the GPU core
    /// counts (e.g., on Titan RTX of 4608 CUDA cores, the block size should
    /// not be smaller than 92160)".
    pub fn min_block_rows(&self) -> usize {
        20 * self.cuda_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_specs() {
        let x = DeviceSpec::titan_x_pascal();
        assert_eq!(x.cuda_cores, 3072);
        assert_eq!(x.mem_bandwidth_gbs, 336.5);
        let rtx = DeviceSpec::titan_rtx_turing();
        assert_eq!(rtx.cuda_cores, 4608);
        assert_eq!(rtx.memory_gib, 24);
    }

    #[test]
    fn paper_min_block_rule() {
        // The paper's own example: Titan RTX → 92160.
        assert_eq!(DeviceSpec::titan_rtx_turing().min_block_rows(), 92_160);
    }

    #[test]
    fn utilisation_clamps() {
        let d = DeviceSpec::titan_rtx_turing();
        assert_eq!(d.utilisation(0), 0.0);
        assert!(d.utilisation(10) < 0.01);
        assert_eq!(d.utilisation(10_000_000), 1.0);
    }

    #[test]
    fn rtx_outclasses_pascal() {
        let x = DeviceSpec::titan_x_pascal();
        let rtx = DeviceSpec::titan_rtx_turing();
        assert!(rtx.bandwidth_bytes_per_sec() > x.bandwidth_bytes_per_sec());
        assert!(rtx.max_resident_warps() > x.max_resident_warps());
    }
}
