//! Packed execution-order storage — the faithful Figure 3(d) layout.
//!
//! The paper stores the whole blocked matrix in **three contiguous
//! arrays**: triangular parts in CSC (diagonal handled separately), square
//! parts transposed into CSR, hyper-sparse squares doubly compressed into
//! DCSR, all concatenated in execution order so the solve phase streams one
//! arena front to back. [`PackedBlocked`] reproduces that layout exactly —
//! one pointer array, one index array, one value array, plus a small
//! descriptor table — and executes the solve as a single loop of
//! slice-level kernels over the arena.
//!
//! [`crate::blocked::BlockedTri`] remains the *performance* representation
//! (per-block structs so each block can carry its preprocessed parallel
//! solver); `PackedBlocked` is the *storage* representation, used to
//! measure the format's memory footprint and to validate the layout
//! round-trips. Both solve identically (tests cross-check them).

use crate::partition::{self, PlanNode};
use recblock_matrix::permute::Permutation;
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::ops::Range;

/// How one block is laid out inside the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedShape {
    /// Triangular block in CSC, diagonal stored separately in `diag`.
    TriCsc,
    /// Square block in CSR.
    SquareCsr,
    /// Square block in DCSR (pointer array covers only non-empty rows,
    /// whose original indices live in `aux`).
    SquareDcsr,
}

/// Descriptor of one block: where it sits in the matrix and in the arena.
#[derive(Debug, Clone)]
pub struct PackedBlock {
    /// Storage shape.
    pub shape: PackedShape,
    /// Row range in the reordered matrix.
    pub rows: Range<usize>,
    /// Column range in the reordered matrix.
    pub cols: Range<usize>,
    /// Slice of the shared pointer array (`len = lanes + 1`).
    ptr: Range<usize>,
    /// Slice of the shared index/value arrays.
    data: Range<usize>,
    /// Slice of the auxiliary array (DCSR row ids; empty otherwise).
    aux: Range<usize>,
}

/// Owned copy of one block descriptor — the persistence surface matching
/// [`PackedBlocked::from_parts`] (the arena-slice ranges are private on
/// [`PackedBlock`] itself).
#[derive(Debug, Clone)]
pub struct PackedBlockParts {
    /// Storage shape.
    pub shape: PackedShape,
    /// Row range in the reordered matrix.
    pub rows: Range<usize>,
    /// Column range in the reordered matrix.
    pub cols: Range<usize>,
    /// Slice of the shared pointer array.
    pub ptr: Range<usize>,
    /// Slice of the shared index/value arrays.
    pub data: Range<usize>,
    /// Slice of the auxiliary array (DCSR row ids).
    pub aux: Range<usize>,
}

/// Everything needed to reconstruct a [`PackedBlocked`]: the flat arena
/// arrays plus the block descriptors in execution order.
#[derive(Debug, Clone)]
pub struct PackedBlockedParts<S> {
    /// Rows of the system.
    pub n: usize,
    /// Nonzeros of the original matrix (diagonal included).
    pub nnz: usize,
    /// Recursion depth.
    pub depth: usize,
    /// The reordering permutation (`perm[new] = old`).
    pub perm: Permutation,
    /// Per-component diagonal values.
    pub diag: Vec<S>,
    /// Concatenated pointer arrays (block-relative running counts).
    pub ptr: Vec<usize>,
    /// Concatenated block-local index arrays.
    pub idx: Vec<usize>,
    /// Concatenated value arrays.
    pub vals: Vec<S>,
    /// DCSR non-empty-row indices, block-local.
    pub aux: Vec<usize>,
    /// Block descriptors in execution order.
    pub blocks: Vec<PackedBlockParts>,
}

/// Options for the packed build.
#[derive(Debug, Clone)]
pub struct PackedOptions {
    /// Recursion depth (`2^depth` leaves).
    pub depth: usize,
    /// Apply the recursive level-set reordering first.
    pub reorder: bool,
    /// Squares with at least this fraction of empty rows are stored DCSR
    /// (the paper's hyper-sparse case).
    pub dcsr_empty_ratio: f64,
}

impl Default for PackedOptions {
    fn default() -> Self {
        PackedOptions { depth: 3, reorder: true, dcsr_empty_ratio: 0.5 }
    }
}

/// The packed blocked matrix: three shared arrays plus descriptors.
#[derive(Debug, Clone)]
pub struct PackedBlocked<S> {
    n: usize,
    nnz: usize,
    depth: usize,
    perm: Permutation,
    /// Per-component diagonal values (stored separately, as in Figure 3(d)).
    diag: Vec<S>,
    /// Concatenated pointer arrays of every block.
    ptr: Vec<usize>,
    /// Concatenated index arrays (CSC row indices / CSR column indices),
    /// block-local.
    idx: Vec<usize>,
    /// Concatenated value arrays.
    vals: Vec<S>,
    /// DCSR non-empty-row indices, block-local.
    aux: Vec<usize>,
    /// Block descriptors in execution order.
    blocks: Vec<PackedBlock>,
}

impl<S: Scalar> PackedBlocked<S> {
    /// Build the packed representation of a solvable lower-triangular
    /// matrix.
    pub fn build(l: &Csr<S>, opts: &PackedOptions) -> Result<Self, MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(l)?;
        let n = l.nrows();
        let (matrix, perm) = if opts.reorder {
            crate::reorder::recursive_levelset_reorder(l, opts.depth)?
        } else {
            (l.clone(), Permutation::identity(n))
        };
        let mut packed = PackedBlocked {
            n,
            nnz: l.nnz(),
            depth: opts.depth,
            perm,
            diag: vec![S::ZERO; n],
            ptr: Vec::new(),
            idx: Vec::with_capacity(l.nnz()),
            vals: Vec::with_capacity(l.nnz()),
            aux: Vec::new(),
            blocks: Vec::new(),
        };
        for i in 0..n {
            packed.diag[i] = matrix.get(i, i).ok_or(MatrixError::SingularDiagonal { row: i })?;
        }
        for node in partition::recursive_plan(n, opts.depth) {
            match node {
                PlanNode::Tri { rows } => packed.push_tri(&matrix, rows),
                PlanNode::Square { rows, cols } => {
                    packed.push_square(&matrix, rows, cols, opts.dcsr_empty_ratio)
                }
            }
        }
        debug_assert_eq!(packed.vals.len() + n, l.nnz());
        Ok(packed)
    }

    /// Append a triangular block in CSC, diagonal excluded.
    fn push_tri(&mut self, m: &Csr<S>, rows: Range<usize>) {
        let sub = m.submatrix(rows.clone(), rows.clone());
        let csc = sub.to_csc();
        let w = rows.len();
        let ptr_start = self.ptr.len();
        let data_start = self.idx.len();
        // Strip the diagonal (first entry of each column) while packing.
        let mut running = 0usize;
        self.ptr.push(0);
        for j in 0..w {
            let (r, v) = csc.col(j);
            for k in 0..r.len() {
                if r[k] == j {
                    continue; // diagonal lives in `diag`
                }
                self.idx.push(r[k]);
                self.vals.push(v[k]);
                running += 1;
            }
            self.ptr.push(running);
        }
        self.blocks.push(PackedBlock {
            shape: PackedShape::TriCsc,
            rows: rows.clone(),
            cols: rows,
            ptr: ptr_start..self.ptr.len(),
            data: data_start..self.idx.len(),
            aux: 0..0,
        });
    }

    /// Append a square block in CSR, or DCSR when hyper-sparse.
    fn push_square(
        &mut self,
        m: &Csr<S>,
        rows: Range<usize>,
        cols: Range<usize>,
        dcsr_threshold: f64,
    ) {
        let sub = m.submatrix(rows.clone(), cols.clone());
        let empty = sub.empty_rows() as f64 / sub.nrows().max(1) as f64;
        let ptr_start = self.ptr.len();
        let data_start = self.idx.len();
        let aux_start = self.aux.len();
        let shape = if empty > dcsr_threshold {
            // DCSR: only non-empty rows get a pointer slot.
            let mut running = 0usize;
            self.ptr.push(0);
            for i in 0..sub.nrows() {
                let (c, v) = sub.row(i);
                if c.is_empty() {
                    continue;
                }
                self.aux.push(i);
                self.idx.extend_from_slice(c);
                self.vals.extend_from_slice(v);
                running += c.len();
                self.ptr.push(running);
            }
            PackedShape::SquareDcsr
        } else {
            let mut running = 0usize;
            self.ptr.push(0);
            for i in 0..sub.nrows() {
                let (c, v) = sub.row(i);
                self.idx.extend_from_slice(c);
                self.vals.extend_from_slice(v);
                running += c.len();
                self.ptr.push(running);
            }
            PackedShape::SquareCsr
        };
        self.blocks.push(PackedBlock {
            shape,
            rows,
            cols,
            ptr: ptr_start..self.ptr.len(),
            data: data_start..self.idx.len(),
            aux: aux_start..self.aux.len(),
        });
    }

    /// Copy out the flat arrays and descriptors for persistence.
    pub fn to_parts(&self) -> PackedBlockedParts<S> {
        PackedBlockedParts {
            n: self.n,
            nnz: self.nnz,
            depth: self.depth,
            perm: self.perm.clone(),
            diag: self.diag.clone(),
            ptr: self.ptr.clone(),
            idx: self.idx.clone(),
            vals: self.vals.clone(),
            aux: self.aux.clone(),
            blocks: self
                .blocks
                .iter()
                .map(|b| PackedBlockParts {
                    shape: b.shape,
                    rows: b.rows.clone(),
                    cols: b.cols.clone(),
                    ptr: b.ptr.clone(),
                    data: b.data.clone(),
                    aux: b.aux.clone(),
                })
                .collect(),
        }
    }

    /// Reconstruct from persisted parts, validating every invariant the
    /// arena-streaming solve indexes by: descriptor ranges inside the shared
    /// arrays, per-block pointer slices that are monotone and span their
    /// data slices, block-local indices inside the block, and nonzero
    /// conservation (`Σ off-diagonal + n == nnz`).
    pub fn from_parts(parts: PackedBlockedParts<S>) -> Result<Self, MatrixError> {
        let PackedBlockedParts { n, nnz, depth, perm, diag, ptr, idx, vals, aux, blocks } = parts;
        if perm.len() != n || diag.len() != n || idx.len() != vals.len() {
            return Err(MatrixError::DimensionMismatch {
                what: "packed parts arrays",
                expected: n,
                actual: perm.len().min(diag.len()),
            });
        }
        let range_ok = |r: &Range<usize>, bound: usize| r.start <= r.end && r.end <= bound;
        let mut off_diag = 0usize;
        let mut out = Vec::with_capacity(blocks.len());
        for b in &blocks {
            if !range_ok(&b.rows, n)
                || !range_ok(&b.cols, n)
                || !range_ok(&b.ptr, ptr.len())
                || !range_ok(&b.data, idx.len())
                || !range_ok(&b.aux, aux.len())
            {
                return Err(MatrixError::IndexOutOfBounds {
                    what: "packed parts descriptor range",
                    index: b.data.end,
                    bound: idx.len(),
                });
            }
            let p = &ptr[b.ptr.clone()];
            let span = b.data.len();
            if p.is_empty() || p[0] != 0 || *p.last().unwrap() != span {
                return Err(MatrixError::MalformedPointer("packed block pointer span"));
            }
            if p.windows(2).any(|w| w[0] > w[1]) {
                return Err(MatrixError::MalformedPointer("packed block pointer order"));
            }
            let lanes = p.len() - 1;
            let idx_bound = match b.shape {
                PackedShape::TriCsc => {
                    if b.rows != b.cols {
                        return Err(MatrixError::DimensionMismatch {
                            what: "packed tri block off the diagonal",
                            expected: b.rows.start,
                            actual: b.cols.start,
                        });
                    }
                    b.rows.len()
                }
                PackedShape::SquareCsr | PackedShape::SquareDcsr => b.cols.len(),
            };
            if idx[b.data.clone()].iter().any(|&c| c >= idx_bound) {
                return Err(MatrixError::IndexOutOfBounds {
                    what: "packed block-local index",
                    index: idx_bound,
                    bound: idx_bound,
                });
            }
            match b.shape {
                PackedShape::TriCsc | PackedShape::SquareCsr => {
                    if lanes != b.rows.len() || !b.aux.is_empty() {
                        return Err(MatrixError::MalformedPointer("packed block lane count"));
                    }
                }
                PackedShape::SquareDcsr => {
                    let a = &aux[b.aux.clone()];
                    if a.len() != lanes || a.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(MatrixError::MalformedPointer("packed dcsr aux lanes"));
                    }
                    if a.iter().any(|&i| i >= b.rows.len()) {
                        return Err(MatrixError::IndexOutOfBounds {
                            what: "packed dcsr row id",
                            index: b.rows.len(),
                            bound: b.rows.len(),
                        });
                    }
                }
            }
            off_diag += span;
            out.push(PackedBlock {
                shape: b.shape,
                rows: b.rows.clone(),
                cols: b.cols.clone(),
                ptr: b.ptr.clone(),
                data: b.data.clone(),
                aux: b.aux.clone(),
            });
        }
        if off_diag + n != nnz {
            return Err(MatrixError::DimensionMismatch {
                what: "packed parts nonzero conservation",
                expected: nnz,
                actual: off_diag + n,
            });
        }
        Ok(PackedBlocked { n, nnz, depth, perm, diag, ptr, idx, vals, aux, blocks: out })
    }

    /// Rows of the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzeros of the original matrix (diagonal included).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Recursion depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Block descriptors in execution order.
    pub fn blocks(&self) -> &[PackedBlock] {
        &self.blocks
    }

    /// Total bytes of the arena (the paper's memory argument: one pointer
    /// array, one index array, one value array, the separate diagonal and
    /// the DCSR aux indices).
    pub fn bytes(&self) -> usize {
        (self.ptr.len() + self.idx.len() + self.aux.len()) * std::mem::size_of::<usize>()
            + (self.vals.len() + self.diag.len()) * S::BYTES
    }

    /// Solve `L x = b` by streaming the arena front to back.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "packed rhs",
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut work = self.perm.gather(b);
        let mut x = vec![S::ZERO; self.n];
        for blk in &self.blocks {
            let ptr = &self.ptr[blk.ptr.clone()];
            let idx = &self.idx[blk.data.clone()];
            let vals = &self.vals[blk.data.clone()];
            match blk.shape {
                PackedShape::TriCsc => {
                    // Column-sweep forward substitution over the slice; the
                    // diagonal comes from the shared diag array.
                    let base = blk.rows.start;
                    for j in 0..blk.rows.len() {
                        let xj = work[base + j] / self.diag[base + j];
                        x[base + j] = xj;
                        for k in ptr[j]..ptr[j + 1] {
                            let upd = vals[k] * xj;
                            work[base + idx[k]] -= upd;
                        }
                    }
                }
                PackedShape::SquareCsr => {
                    let (rb, cb) = (blk.rows.start, blk.cols.start);
                    for i in 0..blk.rows.len() {
                        let mut acc = S::ZERO;
                        for k in ptr[i]..ptr[i + 1] {
                            acc += vals[k] * x[cb + idx[k]];
                        }
                        work[rb + i] -= acc;
                    }
                }
                PackedShape::SquareDcsr => {
                    let (rb, cb) = (blk.rows.start, blk.cols.start);
                    let aux = &self.aux[blk.aux.clone()];
                    for (lane, &i) in aux.iter().enumerate() {
                        let mut acc = S::ZERO;
                        for k in ptr[lane]..ptr[lane + 1] {
                            acc += vals[k] * x[cb + idx[k]];
                        }
                        work[rb + i] -= acc;
                    }
                }
            }
        }
        Ok(self.perm.scatter(&x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::{BlockedOptions, BlockedTri, DepthRule};
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn opts(depth: usize) -> PackedOptions {
        PackedOptions { depth, ..PackedOptions::default() }
    }

    fn check(l: Csr<f64>, depth: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 31) as f64) - 15.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let p = PackedBlocked::build(&l, &opts(depth)).unwrap();
        let x = p.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10, "depth={depth}");
    }

    #[test]
    fn matches_serial_various_depths() {
        let l = generate::random_lower::<f64>(500, 4.0, 91);
        for depth in 0..5usize {
            check(l.clone(), depth);
        }
    }

    #[test]
    fn matches_serial_on_structures() {
        check(generate::chain::<f64>(300, 92), 3);
        check(generate::grid2d::<f64>(20, 20, 93), 3);
        check(generate::kkt_like::<f64>(800, 300, 3, 94), 3);
        check(generate::hub_power_law::<f64>(600, 5, 2, 30, 95), 3);
        check(generate::diagonal::<f64>(200, 96), 2);
    }

    #[test]
    fn agrees_with_blocked_tri() {
        let l = generate::layered::<f64>(700, 11, 2.0, generate::LayerShape::Uniform, 97);
        let b: Vec<f64> = (0..700).map(|i| (i as f64 * 0.01).sin()).collect();
        let packed = PackedBlocked::build(&l, &opts(3)).unwrap();
        let blocked = BlockedTri::build(
            &l,
            &BlockedOptions { depth: DepthRule::Fixed(3), ..BlockedOptions::default() },
        )
        .unwrap();
        let xp = packed.solve(&b).unwrap();
        let xb = blocked.solve(&b).unwrap();
        assert!(max_rel_diff(&xp, &xb) < 1e-10);
    }

    #[test]
    fn arena_conserves_nonzeros() {
        let l = generate::random_lower::<f64>(400, 5.0, 98);
        let p = PackedBlocked::build(&l, &opts(3)).unwrap();
        // diag + off-diagonal values = original nnz.
        assert_eq!(p.nnz(), l.nnz());
        assert_eq!(p.blocks().len(), (1 << 4) - 1);
    }

    #[test]
    fn hypersparse_squares_use_dcsr() {
        // Hub structure leaves most square rows empty at deep levels.
        let l = generate::hub_power_law::<f64>(800, 4, 1, 0, 99);
        let p = PackedBlocked::build(&l, &opts(3)).unwrap();
        let dcsr_count = p.blocks().iter().filter(|b| b.shape == PackedShape::SquareDcsr).count();
        assert!(dcsr_count > 0, "expected DCSR squares");
    }

    #[test]
    fn dcsr_saves_memory_on_hypersparse() {
        let l = generate::hub_power_law::<f64>(3000, 4, 1, 0, 100);
        let with_dcsr = PackedBlocked::build(&l, &opts(4)).unwrap();
        let without = PackedBlocked::build(
            &l,
            &PackedOptions { depth: 4, reorder: true, dcsr_empty_ratio: 1.1 },
        )
        .unwrap();
        assert!(
            with_dcsr.bytes() < without.bytes(),
            "dcsr {} vs csr {}",
            with_dcsr.bytes(),
            without.bytes()
        );
    }

    #[test]
    fn parts_roundtrip_solves_identically() {
        let l = generate::kkt_like::<f64>(900, 350, 3, 103);
        let p = PackedBlocked::build(&l, &opts(3)).unwrap();
        let rebuilt = PackedBlocked::from_parts(p.to_parts()).unwrap();
        assert_eq!(rebuilt.nnz(), p.nnz());
        assert_eq!(rebuilt.blocks().len(), p.blocks().len());
        let b: Vec<f64> = (0..900).map(|i| ((i % 17) as f64) - 8.0).collect();
        assert_eq!(rebuilt.solve(&b).unwrap(), p.solve(&b).unwrap());
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        let l = generate::random_lower::<f64>(300, 4.0, 104);
        let p = PackedBlocked::build(&l, &opts(2)).unwrap();

        // Wrong total nnz.
        let mut parts = p.to_parts();
        parts.nnz += 1;
        assert!(PackedBlocked::from_parts(parts).is_err());

        // Values / indices length mismatch.
        let mut parts = p.to_parts();
        parts.vals.pop();
        assert!(PackedBlocked::from_parts(parts).is_err());

        // Block pointer slice must end at the block's data length.
        let mut parts = p.to_parts();
        let last = parts.ptr.len() - 1;
        parts.ptr[last] += 1;
        assert!(PackedBlocked::from_parts(parts).is_err());

        // Column index beyond the block's width.
        let mut parts = p.to_parts();
        if let Some(b) = parts.blocks.iter().find(|b| !b.data.is_empty()) {
            let width = match b.shape {
                PackedShape::TriCsc => b.rows.len(),
                _ => b.cols.len(),
            };
            parts.idx[b.data.start] = width;
            assert!(PackedBlocked::from_parts(parts).is_err());
        }

        // Permutation of the wrong length.
        let mut parts = p.to_parts();
        parts.perm = Permutation::identity(parts.n + 1);
        assert!(PackedBlocked::from_parts(parts).is_err());
    }

    #[test]
    fn no_reorder_still_correct() {
        let l = generate::grid2d::<f64>(15, 15, 101);
        let o = PackedOptions { reorder: false, ..opts(2) };
        let p = PackedBlocked::build(&l, &o).unwrap();
        let b = vec![1.0; 225];
        let x = p.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &serial_csr(&l, &b).unwrap()) < 1e-10);
    }

    #[test]
    fn rejects_bad_inputs() {
        let l = generate::random_lower::<f64>(50, 3.0, 102);
        let p = PackedBlocked::build(&l, &opts(2)).unwrap();
        assert!(p.solve(&[1.0; 49]).is_err());
        let bad =
            Csr::<f64>::try_new(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![1., 1., 1.]).unwrap();
        assert!(PackedBlocked::build(&bad, &opts(1)).is_err());
    }

    #[test]
    fn f32_packed_solve() {
        let l = generate::banded::<f32>(300, 4, 0.6, 103);
        let p = PackedBlocked::build(&l, &opts(2)).unwrap();
        let b = vec![1.0f32; 300];
        let x = p.solve(&b).unwrap();
        let r = recblock_matrix::vector::residual_inf(&l, &x, &b).unwrap();
        assert!(r < 1e-4);
    }
}
