//! Column block SpTRSV (the paper's Algorithm 4, Figure 2(a)).
//!
//! The matrix is cut into `nseg` vertical strips. Strip `si` holds a
//! triangular block on the diagonal and a tall rectangular block covering
//! *all* remaining rows below it. The solve alternates: solve the strip's
//! triangular system, then one SpMV pushes its contribution into the whole
//! remaining right-hand side. This front-loads `b` updates — the traffic
//! disadvantage quantified in Table 1.

use crate::adaptive::Selector;
use crate::report::{SimBreakdown, SolveBreakdown};
use crate::sqsolver::SqSolver;
use crate::traffic::TrafficCounts;
use crate::trisolver::TriSolver;
use recblock_gpu_sim::{CostParams, DeviceSpec, TriProfile};
use recblock_matrix::{Csr, MatrixError, Scalar};
use std::ops::Range;
use std::time::Instant;

/// A preprocessed column-block solver.
#[derive(Debug, Clone)]
pub struct ColumnBlockSolver<S> {
    n: usize,
    segments: Vec<Range<usize>>,
    tris: Vec<(TriSolver<S>, TriProfile)>,
    /// `rects[si]`: rows `segments[si].end..n` × cols `segments[si]`
    /// (absent for the last strip).
    rects: Vec<SqSolver<S>>,
    traffic: TrafficCounts,
}

impl<S: Scalar> ColumnBlockSolver<S> {
    /// Partition `l` into `nseg` column blocks and preprocess every block.
    pub fn new(
        l: &Csr<S>,
        nseg: usize,
        selector: &Selector,
        syncfree_threads: usize,
    ) -> Result<Self, MatrixError> {
        recblock_matrix::triangular::check_solvable_lower(l)?;
        let n = l.nrows();
        let segments = crate::partition::equal_segments(n, nseg);
        let mut tris = Vec::with_capacity(segments.len());
        let mut rects = Vec::new();
        let mut traffic = TrafficCounts::default();
        for (si, seg) in segments.iter().enumerate() {
            let tri = l.submatrix(seg.clone(), seg.clone());
            traffic.tri(seg.len());
            tris.push(TriSolver::build_adaptive(tri, selector, syncfree_threads)?);
            if si + 1 < segments.len() {
                let rect = l.submatrix(seg.end..n, seg.clone());
                traffic.spmv(rect.nrows(), rect.ncols());
                rects.push(SqSolver::build(rect, selector, true));
            }
        }
        Ok(ColumnBlockSolver { n, segments, tris, rects, traffic })
    }

    /// Number of strips.
    pub fn nseg(&self) -> usize {
        self.segments.len()
    }

    /// Dense-counted traffic of one solve (Tables 1–2 accounting).
    pub fn traffic(&self) -> TrafficCounts {
        self.traffic
    }

    /// Solve `L x = b`.
    pub fn solve(&self, b: &[S]) -> Result<Vec<S>, MatrixError> {
        Ok(self.solve_instrumented(b)?.0)
    }

    /// Solve and report the wall-clock tri/SpMV split (Figure 4's metric).
    pub fn solve_instrumented(&self, b: &[S]) -> Result<(Vec<S>, SolveBreakdown), MatrixError> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                what: "column block rhs",
                expected: self.n,
                actual: b.len(),
            });
        }
        let mut work = b.to_vec();
        let mut x = vec![S::ZERO; self.n];
        let mut br = SolveBreakdown::default();
        for (si, seg) in self.segments.iter().enumerate() {
            let t0 = Instant::now();
            let xs = self.tris[si].0.solve(&work[seg.clone()])?;
            br.tri_s += t0.elapsed().as_secs_f64();
            x[seg.clone()].copy_from_slice(&xs);
            if si < self.rects.len() {
                let t1 = Instant::now();
                self.rects[si].apply(&x[seg.clone()], &mut work[seg.end..])?;
                br.spmv_s += t1.elapsed().as_secs_f64();
            }
        }
        Ok((x, br))
    }

    /// Predicted GPU time per part under the cost model.
    pub fn simulated_breakdown(&self, dev: &DeviceSpec, params: &CostParams) -> SimBreakdown {
        let mut sim = SimBreakdown::default();
        for (si, (tri, profile)) in self.tris.iter().enumerate() {
            let seg = &self.segments[si];
            let ws = seg.len() * 3 * S::BYTES;
            sim.tri = sim.tri.seq(tri.simulated_time(profile, ws, dev, params));
        }
        for (si, rect) in self.rects.iter().enumerate() {
            let seg = &self.segments[si];
            // The rectangular SpMV touches x over the strip plus b over all
            // remaining rows — the column method's huge working set.
            let ws = (seg.len() + rect.nrows()) * 2 * S::BYTES;
            sim.spmv = sim.spmv.seq(rect.simulated_time(ws, dev, params));
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_kernels::sptrsv::serial_csr;
    use recblock_matrix::generate;
    use recblock_matrix::vector::max_rel_diff;

    fn check(l: Csr<f64>, nseg: usize) {
        let n = l.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
        let reference = serial_csr(&l, &b).unwrap();
        let s = ColumnBlockSolver::new(&l, nseg, &Selector::default(), 4).unwrap();
        let x = s.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &reference) < 1e-10, "nseg={nseg}");
    }

    #[test]
    fn matches_serial_various_segments() {
        let l = generate::random_lower::<f64>(600, 4.0, 11);
        for nseg in [1usize, 2, 3, 4, 8, 16] {
            check(l.clone(), nseg);
        }
    }

    #[test]
    fn matches_serial_on_structures() {
        check(generate::grid2d::<f64>(25, 24, 12), 4);
        check(generate::chain::<f64>(300, 13), 8);
        check(generate::kkt_like::<f64>(1000, 400, 3, 14), 4);
        check(generate::hub_power_law::<f64>(800, 6, 2, 30, 15), 4);
    }

    #[test]
    fn one_segment_is_plain_sptrsv() {
        let l = generate::random_lower::<f64>(200, 3.0, 16);
        let s = ColumnBlockSolver::new(&l, 1, &Selector::default(), 2).unwrap();
        assert_eq!(s.nseg(), 1);
        let b = vec![1.0; 200];
        let x = s.solve(&b).unwrap();
        assert!(max_rel_diff(&x, &serial_csr(&l, &b).unwrap()) < 1e-10);
    }

    #[test]
    fn traffic_matches_dense_formula() {
        // On a dense lower triangle the counters reproduce Table 1/2 exactly.
        let n = 256;
        let l = generate::dense_lower::<f64>(n, 17);
        for parts in [4usize, 16] {
            let s = ColumnBlockSolver::new(&l, parts, &Selector::default(), 2).unwrap();
            let t = s.traffic();
            assert_eq!(t.b_updates as f64, crate::traffic::column_b_updates(n, parts));
            assert_eq!(t.x_loads as f64, crate::traffic::column_x_loads(n, parts));
        }
    }

    #[test]
    fn instrumented_breakdown_sums() {
        let l = generate::random_lower::<f64>(400, 4.0, 18);
        let s = ColumnBlockSolver::new(&l, 4, &Selector::default(), 2).unwrap();
        let (_, br) = s.solve_instrumented(&vec![1.0; 400]).unwrap();
        assert!(br.tri_s >= 0.0 && br.spmv_s >= 0.0);
        assert!(br.total_s() > 0.0);
    }

    #[test]
    fn simulated_breakdown_positive() {
        let l = generate::random_lower::<f64>(500, 4.0, 19);
        let s = ColumnBlockSolver::new(&l, 4, &Selector::default(), 2).unwrap();
        let sim = s.simulated_breakdown(&DeviceSpec::titan_rtx_turing(), &CostParams::default());
        assert!(sim.tri.total_s > 0.0);
        assert!(sim.spmv.total_s > 0.0);
    }

    #[test]
    fn rejects_wrong_rhs() {
        let l = generate::random_lower::<f64>(100, 3.0, 20);
        let s = ColumnBlockSolver::new(&l, 4, &Selector::default(), 2).unwrap();
        assert!(s.solve(&[1.0]).is_err());
    }
}
