//! RBNET: the versioned, length-prefixed binary frame protocol.
//!
//! Every message is one frame: a fixed 24-byte little-endian header
//! followed by `payload_len` payload bytes.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "RBNT"
//! 4       1     version (1 for the v1 kinds, 2 for the v2 cluster kinds)
//! 5       1     kind
//! 6       2     reserved, must be zero
//! 8       8     tag     (echoed verbatim in the response)
//! 16      4     payload_len
//! 20      4     reserved, must be zero
//! ```
//!
//! **v1 kinds** (version byte 1 — the original point-to-point protocol):
//! Solve=1 SolveOk=2 Err=3 Ping=4 Pong=5 Stat=6 StatOk=7.
//!
//! **v2 kinds** (version byte 2 — cluster traffic between nodes, plus
//! request tracing): Join=8 Leave=9 RingState=10 PlanPush=11
//! PlanPushOk=12 PlanPull=13 PlanData=14 SolveTraced=15 TraceGet=16
//! TraceData=17.
//!
//! Version negotiation is per frame, not per connection: every v1 frame
//! this build emits is byte-identical to a v1 build's, so old clients
//! interoperate untouched, and a v2-capable server still answers v1
//! traffic in v1. A header whose version byte is *lower* than its kind
//! requires (a v1 client somehow emitting a v2-only kind — a mismatched
//! build) still decodes; the server answers it with a typed
//! [`ErrCode::BadRequest`](crate::error::ErrCode) `Err` frame instead of
//! silently killing the connection. Versions above [`VERSION`] are
//! rejected as [`FrameError::BadVersion`].
//!
//! Solve request payload:
//!
//! ```text
//! 1                tenant_len (1..=64)
//! tenant_len       tenant name, UTF-8
//! 8×4              structure fingerprint: nrows ncols nnz hash
//! 8                value digest
//! 4                deadline_ms (0 → tenant default)
//! 1                scalar width in bytes (4 or 8)
//! 2                k, number of right-hand-side columns (≥ 1)
//! 8                n, rows per column
//! k×n×width        column-major values, little-endian
//! ```
//!
//! `SolveOk` mirrors the tail (`width, k, n, values`); `Err` is
//! `code:u16 msg_len:u16 msg`; `Ping`/`Pong`/`Stat` carry no payload and
//! `StatOk` is described at [`StatReply`].
//!
//! Cluster payloads (all little-endian; a "plan key" is the 40-byte
//! `nrows ncols nnz hash value_digest` block, a "member" is
//! `name_len:u8 name addr_len:u16 addr`):
//!
//! ```text
//! Join        member                      (node asking to join; reply is RingState)
//! Leave       name_len:u8 name            (node announcing departure; reply is RingState)
//! RingState   epoch:u64 seed:u64 vnodes:u32 replicas:u16 count:u16 member×count
//! PlanPush    plan key, then .rbplan file bytes verbatim  (reply is PlanPushOk)
//! PlanPushOk  (empty)
//! PlanPull    plan key, flags:u8 (bit 0 = caller intends to build on miss)
//! PlanData    plan key, then .rbplan file bytes verbatim  (reply to PlanPull)
//! SolveTraced trace_id:u64, then a Solve payload verbatim  (reply is SolveOk/Err)
//! TraceGet    plan key                                     (reply is TraceData)
//! TraceData   count:u16, then per hop: trace_id:u64 node_len:u8 node
//!             tenant_len:u8 tenant k:u16 solve_ns:u64 respond_ns:u64
//!             total_ns:u64 proxied:u8
//! ```
//!
//! `PlanPush`/`PlanData` ship the checksummed `.rbplan` container
//! *verbatim* — the receiver re-verifies the embedded CRCs, so transport
//! corruption is caught without a second integrity layer, and no matrix
//! bytes ever cross the wire (plans are keyed by fingerprint + digest).
//!
//! Decoding is allocation-free (parsers return borrowed views) and total:
//! any byte sequence yields either a frame or a typed [`FrameError`] —
//! never a panic. That property is fuzzed in `tests/frame_proptest.rs`.

use crate::error::ErrCode;
use recblock_matrix::{Fingerprint, Scalar};
use recblock_store::PlanKey;
use std::fmt;

/// Bytes every frame starts with.
pub const MAGIC: [u8; 4] = *b"RBNT";
/// Highest protocol version this build speaks. v1 kinds are still
/// emitted with version byte 1 (see the module docs).
pub const VERSION: u8 = 2;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Longest allowed tenant name on the wire.
pub const MAX_TENANT_LEN: usize = 64;
/// Longest allowed node name on the wire.
pub const MAX_NODE_LEN: usize = 64;
/// Longest allowed node address string on the wire.
pub const MAX_ADDR_LEN: usize = 256;

/// Frame discriminator. Numeric values are wire format — append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Solve request (client → server).
    Solve = 1,
    /// Successful solve response.
    SolveOk = 2,
    /// Typed failure response.
    Err = 3,
    /// Liveness probe.
    Ping = 4,
    /// Liveness answer.
    Pong = 5,
    /// Server status request.
    Stat = 6,
    /// Server status answer.
    StatOk = 7,
    /// Cluster: a node asks to join the ring (answered with `RingState`).
    Join = 8,
    /// Cluster: a node announces an orderly departure.
    Leave = 9,
    /// Cluster: full ring view (membership + hashing parameters).
    RingState = 10,
    /// Cluster: warm-migrate a plan — `.rbplan` bytes shipped verbatim.
    PlanPush = 11,
    /// Cluster: a push was verified and stored.
    PlanPushOk = 12,
    /// Cluster: request a plan's `.rbplan` bytes from its owner.
    PlanPull = 13,
    /// Cluster: the pulled plan's bytes (reply to `PlanPull`).
    PlanData = 14,
    /// Solve request carrying an end-to-end trace id. Semantics are
    /// exactly `Solve`; the 8-byte trace id rides ahead of the payload
    /// and survives proxy hops, so one distributed request shows up
    /// under one id on every node it touched.
    SolveTraced = 15,
    /// Ask a node for its recorded trace hops of one plan.
    TraceGet = 16,
    /// The node's recorded hops for that plan (reply to `TraceGet`).
    TraceData = 17,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Solve,
            2 => FrameKind::SolveOk,
            3 => FrameKind::Err,
            4 => FrameKind::Ping,
            5 => FrameKind::Pong,
            6 => FrameKind::Stat,
            7 => FrameKind::StatOk,
            8 => FrameKind::Join,
            9 => FrameKind::Leave,
            10 => FrameKind::RingState,
            11 => FrameKind::PlanPush,
            12 => FrameKind::PlanPushOk,
            13 => FrameKind::PlanPull,
            14 => FrameKind::PlanData,
            15 => FrameKind::SolveTraced,
            16 => FrameKind::TraceGet,
            17 => FrameKind::TraceData,
            _ => return None,
        })
    }

    /// Lowest protocol version that understands this kind.
    pub fn min_version(self) -> u8 {
        if (self as u8) >= FrameKind::Join as u8 {
            2
        } else {
            1
        }
    }
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Protocol version the sender stamped on the frame.
    pub version: u8,
    /// What the payload means.
    pub kind: FrameKind,
    /// Correlation tag, echoed in the response.
    pub tag: u64,
    /// Payload bytes following the header.
    pub payload_len: u32,
}

impl Header {
    /// Whether the stamped version actually covers the frame's kind. A
    /// mismatch (v1 header, v2-only kind) is a client/server build skew;
    /// servers answer it with a typed `BadRequest` instead of killing
    /// the connection.
    pub fn version_covers_kind(&self) -> bool {
        self.version >= self.kind.min_version()
    }
}

/// Everything that can be wrong with bytes claiming to be a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not `RBNT`.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// A reserved header field is non-zero.
    ReservedNonZero,
    /// The announced payload exceeds the configured maximum.
    Oversize {
        /// Announced payload length.
        len: u32,
        /// Configured ceiling.
        max: u32,
    },
    /// The payload ended before a field was complete.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Tenant name empty, too long, or not UTF-8.
    BadTenant,
    /// Node name or address empty, too long, or not UTF-8.
    BadNode,
    /// Scalar width is neither 4 nor 8.
    BadWidth(u8),
    /// Zero right-hand-side columns.
    BadCount,
    /// The value block does not match `k × n × width`.
    PayloadSize {
        /// Bytes the dimensions imply.
        expected: u128,
        /// Bytes present.
        actual: usize,
    },
    /// `Err` frame carries an unknown status code.
    BadErrorCode(u16),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Payload bytes left over after the last field.
    TrailingBytes(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad magic (expected RBNT)"),
            FrameError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::ReservedNonZero => write!(f, "reserved header bits set"),
            FrameError::Oversize { len, max } => {
                write!(f, "payload of {len} bytes exceeds maximum {max}")
            }
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated payload: field needs {needed} bytes, {have} available")
            }
            FrameError::BadTenant => write!(f, "tenant name empty, over 64 bytes, or not UTF-8"),
            FrameError::BadNode => {
                write!(f, "node name or address empty, too long, or not UTF-8")
            }
            FrameError::BadWidth(w) => write!(f, "scalar width {w} is not 4 or 8"),
            FrameError::BadCount => write!(f, "zero right-hand-side columns"),
            FrameError::PayloadSize { expected, actual } => {
                write!(f, "value block is {actual} bytes, dimensions imply {expected}")
            }
            FrameError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            FrameError::BadUtf8 => write!(f, "string field is not UTF-8"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Allocation-free little-endian cursor over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(FrameError::Truncated { needed: n, have });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    fn finish(self) -> Result<(), FrameError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(FrameError::TrailingBytes(left));
        }
        Ok(())
    }
}

/// Try to decode a header from the front of `buf`.
///
/// `Ok(None)` means "not enough bytes yet — read more"; errors are
/// unrecoverable for the connection (the stream cannot be resynchronised).
pub fn decode_header(buf: &[u8], max_payload: u32) -> Result<Option<Header>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = buf[4];
    if version == 0 || version > VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = FrameKind::from_u8(buf[5]).ok_or(FrameError::BadKind(buf[5]))?;
    if buf[6] != 0 || buf[7] != 0 {
        return Err(FrameError::ReservedNonZero);
    }
    let tag = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    let payload_len = u32::from_le_bytes(buf[16..20].try_into().unwrap());
    if buf[20..24] != [0; 4] {
        return Err(FrameError::ReservedNonZero);
    }
    if payload_len > max_payload {
        return Err(FrameError::Oversize { len: payload_len, max: max_payload });
    }
    // A version byte that does not cover the kind (v1 stamped on a
    // v2-only kind) still decodes — the caller answers it with a typed
    // error rather than tearing down the connection.
    Ok(Some(Header { version, kind, tag, payload_len }))
}

/// Append a frame header to `out`. The version byte is the lowest one
/// that understands `kind`, so v1 frames stay byte-identical to a v1
/// build's output and old peers interoperate untouched.
pub fn encode_header(out: &mut Vec<u8>, kind: FrameKind, tag: u64, payload_len: u32) {
    out.extend_from_slice(&MAGIC);
    out.push(kind.min_version());
    out.push(kind as u8);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&[0; 4]);
}

/// Borrowed view of a decoded solve request payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveRequest<'a> {
    /// Requesting tenant.
    pub tenant: &'a str,
    /// Plan identity (structure fingerprint + value digest).
    pub key: PlanKey,
    /// Per-request deadline in milliseconds; 0 means "tenant default".
    pub deadline_ms: u32,
    /// Scalar width in bytes (4 or 8).
    pub width: u8,
    /// Right-hand-side columns.
    pub k: u16,
    /// Rows per column.
    pub n: u64,
    /// Raw column-major value bytes, exactly `k × n × width` long.
    pub values: &'a [u8],
}

impl<'a> SolveRequest<'a> {
    /// Raw bytes of column `j`.
    pub fn col_bytes(&self, j: usize) -> &'a [u8] {
        let stride = self.n as usize * self.width as usize;
        &self.values[j * stride..(j + 1) * stride]
    }

    /// Admission cost of this request: `nnz × k`.
    pub fn cost(&self) -> u64 {
        (self.key.structure.nnz as u64).saturating_mul(self.k as u64).max(1)
    }
}

/// Parse a solve request payload (the bytes after the header).
pub fn parse_solve(payload: &[u8]) -> Result<SolveRequest<'_>, FrameError> {
    let mut c = Cursor::new(payload);
    let tlen = c.u8()? as usize;
    if tlen == 0 || tlen > MAX_TENANT_LEN {
        return Err(FrameError::BadTenant);
    }
    let tenant = std::str::from_utf8(c.take(tlen)?).map_err(|_| FrameError::BadTenant)?;
    let structure = Fingerprint {
        nrows: c.u64()? as usize,
        ncols: c.u64()? as usize,
        nnz: c.u64()? as usize,
        hash: c.u64()?,
    };
    let values_digest = c.u64()?;
    let deadline_ms = c.u32()?;
    let width = c.u8()?;
    if width != 4 && width != 8 {
        return Err(FrameError::BadWidth(width));
    }
    let k = c.u16()?;
    if k == 0 {
        return Err(FrameError::BadCount);
    }
    let n = c.u64()?;
    let values = c.rest();
    let expected = k as u128 * n as u128 * width as u128;
    if expected != values.len() as u128 {
        return Err(FrameError::PayloadSize { expected, actual: values.len() });
    }
    Ok(SolveRequest {
        tenant,
        key: PlanKey { structure, values: values_digest },
        deadline_ms,
        width,
        k,
        n,
        values,
    })
}

/// Append a complete solve request frame (header + payload) to `out`.
///
/// Every column in `cols` must have the same length `n`.
pub fn encode_solve<S: Scalar>(
    out: &mut Vec<u8>,
    tag: u64,
    tenant: &str,
    key: &PlanKey,
    deadline_ms: u32,
    cols: &[&[S]],
) {
    let payload_len = solve_payload_len::<S>(tenant, cols);
    encode_header(out, FrameKind::Solve, tag, payload_len as u32);
    put_solve_payload(out, tenant, key, deadline_ms, cols);
}

/// Append a complete `SolveTraced` frame: a `Solve` payload prefixed by
/// the request's end-to-end trace id.
pub fn encode_solve_traced<S: Scalar>(
    out: &mut Vec<u8>,
    tag: u64,
    trace_id: u64,
    tenant: &str,
    key: &PlanKey,
    deadline_ms: u32,
    cols: &[&[S]],
) {
    let payload_len = 8 + solve_payload_len::<S>(tenant, cols);
    encode_header(out, FrameKind::SolveTraced, tag, payload_len as u32);
    out.extend_from_slice(&trace_id.to_le_bytes());
    put_solve_payload(out, tenant, key, deadline_ms, cols);
}

/// Parse a `SolveTraced` payload into the trace id and the request.
pub fn parse_solve_traced(payload: &[u8]) -> Result<(u64, SolveRequest<'_>), FrameError> {
    let mut c = Cursor::new(payload);
    let trace_id = c.u64()?;
    Ok((trace_id, parse_solve(c.rest())?))
}

fn solve_payload_len<S: Scalar>(tenant: &str, cols: &[&[S]]) -> usize {
    assert!(!tenant.is_empty() && tenant.len() <= MAX_TENANT_LEN, "tenant name must be 1..=64");
    assert!(!cols.is_empty(), "at least one right-hand side");
    let n = cols[0].len();
    assert!(cols.iter().all(|c| c.len() == n), "all columns equally long");
    1 + tenant.len() + 40 + 4 + 1 + 2 + 8 + cols.len() * n * S::BYTES
}

fn put_solve_payload<S: Scalar>(
    out: &mut Vec<u8>,
    tenant: &str,
    key: &PlanKey,
    deadline_ms: u32,
    cols: &[&[S]],
) {
    let n = cols[0].len();
    out.push(tenant.len() as u8);
    out.extend_from_slice(tenant.as_bytes());
    for v in [
        key.structure.nrows as u64,
        key.structure.ncols as u64,
        key.structure.nnz as u64,
        key.structure.hash,
        key.values,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&deadline_ms.to_le_bytes());
    out.push(S::BYTES as u8);
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    for col in cols {
        encode_scalars(col, out);
    }
}

/// Borrowed view of a successful solve response payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOk<'a> {
    /// Scalar width in bytes.
    pub width: u8,
    /// Solution columns.
    pub k: u16,
    /// Rows per column.
    pub n: u64,
    /// Raw column-major value bytes.
    pub values: &'a [u8],
}

impl<'a> SolveOk<'a> {
    /// Raw bytes of column `j`.
    pub fn col_bytes(&self, j: usize) -> &'a [u8] {
        let stride = self.n as usize * self.width as usize;
        &self.values[j * stride..(j + 1) * stride]
    }
}

/// Parse a `SolveOk` payload.
pub fn parse_solve_ok(payload: &[u8]) -> Result<SolveOk<'_>, FrameError> {
    let mut c = Cursor::new(payload);
    let width = c.u8()?;
    if width != 4 && width != 8 {
        return Err(FrameError::BadWidth(width));
    }
    let k = c.u16()?;
    if k == 0 {
        return Err(FrameError::BadCount);
    }
    let n = c.u64()?;
    let values = c.rest();
    let expected = k as u128 * n as u128 * width as u128;
    if expected != values.len() as u128 {
        return Err(FrameError::PayloadSize { expected, actual: values.len() });
    }
    Ok(SolveOk { width, k, n, values })
}

/// Append a complete `SolveOk` frame built from solved columns.
pub fn encode_solve_ok<S: Scalar>(out: &mut Vec<u8>, tag: u64, cols: &[Vec<S>]) {
    let n = cols.first().map_or(0, |c| c.len());
    let payload_len = 1 + 2 + 8 + cols.len() * n * S::BYTES;
    encode_header(out, FrameKind::SolveOk, tag, payload_len as u32);
    out.push(S::BYTES as u8);
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    for col in cols {
        encode_scalars(col, out);
    }
}

/// Parse an `Err` payload into its status code and message.
pub fn parse_err(payload: &[u8]) -> Result<(ErrCode, &str), FrameError> {
    let mut c = Cursor::new(payload);
    let raw = c.u16()?;
    let code = ErrCode::from_u16(raw).ok_or(FrameError::BadErrorCode(raw))?;
    let mlen = c.u16()? as usize;
    let msg = std::str::from_utf8(c.take(mlen)?).map_err(|_| FrameError::BadUtf8)?;
    c.finish()?;
    Ok((code, msg))
}

/// Append a complete `Err` frame. Messages over `u16::MAX` bytes are
/// truncated at a char boundary.
pub fn encode_err(out: &mut Vec<u8>, tag: u64, code: ErrCode, msg: &str) {
    let mut cut = msg.len().min(u16::MAX as usize);
    while !msg.is_char_boundary(cut) {
        cut -= 1;
    }
    let msg = &msg[..cut];
    encode_header(out, FrameKind::Err, tag, (2 + 2 + msg.len()) as u32);
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    out.extend_from_slice(msg.as_bytes());
}

/// One tenant's slice of a [`StatReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStat {
    /// Tenant name.
    pub tenant: String,
    /// Requests queued ahead of dispatch right now.
    pub queue_depth: u64,
    /// Requests admitted so far.
    pub admitted: u64,
    /// Requests answered with a solution.
    pub completed: u64,
    /// Requests refused by rate admission.
    pub admission_rejected: u64,
    /// Requests shed by cost budget or deadline.
    pub shed: u64,
}

/// Decoded `StatOk` payload: warm status plus per-tenant queue depths.
///
/// Wire layout: `draining:u8 health:u8 plans_warm:u32 inflight:u32 tenant_count:u16`
/// then per tenant `name_len:u8 name queue_depth:u64 admitted:u64
/// completed:u64 admission_rejected:u64 shed:u64`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatReply {
    /// Whether the server is draining.
    pub draining: bool,
    /// Health state machine position: 0 healthy, 1 degraded, 2 draining
    /// (`recblock_serve::Health` names the values).
    pub health: u8,
    /// Distinct plans this server has resolved (cache or store) so far.
    pub plans_warm: u32,
    /// Requests dispatched into the solver and not yet answered.
    pub inflight: u32,
    /// Per-tenant slices, sorted by name.
    pub tenants: Vec<TenantStat>,
}

/// Append a complete `StatOk` frame.
pub fn encode_stat_reply(out: &mut Vec<u8>, tag: u64, stat: &StatReply) {
    let payload_len =
        2 + 4 + 4 + 2 + stat.tenants.iter().map(|t| 1 + t.tenant.len() + 40).sum::<usize>();
    encode_header(out, FrameKind::StatOk, tag, payload_len as u32);
    out.push(stat.draining as u8);
    out.push(stat.health);
    out.extend_from_slice(&stat.plans_warm.to_le_bytes());
    out.extend_from_slice(&stat.inflight.to_le_bytes());
    out.extend_from_slice(&(stat.tenants.len() as u16).to_le_bytes());
    for t in &stat.tenants {
        out.push(t.tenant.len() as u8);
        out.extend_from_slice(t.tenant.as_bytes());
        for v in [t.queue_depth, t.admitted, t.completed, t.admission_rejected, t.shed] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Parse a `StatOk` payload.
pub fn parse_stat_reply(payload: &[u8]) -> Result<StatReply, FrameError> {
    let mut c = Cursor::new(payload);
    let draining = c.u8()? != 0;
    let health = c.u8()?;
    let plans_warm = c.u32()?;
    let inflight = c.u32()?;
    let count = c.u16()?;
    let mut tenants = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let nlen = c.u8()? as usize;
        let tenant =
            std::str::from_utf8(c.take(nlen)?).map_err(|_| FrameError::BadUtf8)?.to_string();
        tenants.push(TenantStat {
            tenant,
            queue_depth: c.u64()?,
            admitted: c.u64()?,
            completed: c.u64()?,
            admission_rejected: c.u64()?,
            shed: c.u64()?,
        });
    }
    c.finish()?;
    Ok(StatReply { draining, health, plans_warm, inflight, tenants })
}

// ---------------------------------------------------------------------
// v2 cluster payloads
// ---------------------------------------------------------------------

/// One ring member: a stable node name plus its RBNET listen address.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemberInfo {
    /// Stable node name (hashed onto the ring).
    pub name: String,
    /// The node's RBNET listen address (`host:port`).
    pub addr: String,
}

/// Decoded `RingState` payload: the full cluster view. The ring itself is
/// *derived* — every node reconstructs identical virtual-node placement
/// from `(seed, vnodes, members)`, so the wire only carries parameters
/// and membership, never the point table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RingStateMsg {
    /// Monotonic view number; higher epoch wins.
    pub epoch: u64,
    /// Seed of the virtual-node hash placement.
    pub seed: u64,
    /// Virtual nodes per member.
    pub vnodes: u32,
    /// Replicas per key (owner + `replicas - 1` successors).
    pub replicas: u16,
    /// Current members, sorted by name.
    pub members: Vec<MemberInfo>,
}

fn put_member(out: &mut Vec<u8>, m: &MemberInfo) {
    debug_assert!(!m.name.is_empty() && m.name.len() <= MAX_NODE_LEN);
    debug_assert!(!m.addr.is_empty() && m.addr.len() <= MAX_ADDR_LEN);
    out.push(m.name.len() as u8);
    out.extend_from_slice(m.name.as_bytes());
    out.extend_from_slice(&(m.addr.len() as u16).to_le_bytes());
    out.extend_from_slice(m.addr.as_bytes());
}

fn take_member(c: &mut Cursor<'_>) -> Result<MemberInfo, FrameError> {
    let nlen = c.u8()? as usize;
    if nlen == 0 || nlen > MAX_NODE_LEN {
        return Err(FrameError::BadNode);
    }
    let name = std::str::from_utf8(c.take(nlen)?).map_err(|_| FrameError::BadNode)?.to_string();
    let alen = c.u16()? as usize;
    if alen == 0 || alen > MAX_ADDR_LEN {
        return Err(FrameError::BadNode);
    }
    let addr = std::str::from_utf8(c.take(alen)?).map_err(|_| FrameError::BadNode)?.to_string();
    Ok(MemberInfo { name, addr })
}

fn member_len(m: &MemberInfo) -> usize {
    1 + m.name.len() + 2 + m.addr.len()
}

fn put_key(out: &mut Vec<u8>, key: &PlanKey) {
    for v in [
        key.structure.nrows as u64,
        key.structure.ncols as u64,
        key.structure.nnz as u64,
        key.structure.hash,
        key.values,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn take_key(c: &mut Cursor<'_>) -> Result<PlanKey, FrameError> {
    let structure = Fingerprint {
        nrows: c.u64()? as usize,
        ncols: c.u64()? as usize,
        nnz: c.u64()? as usize,
        hash: c.u64()?,
    };
    Ok(PlanKey { structure, values: c.u64()? })
}

/// Append a complete `Join` frame: `member` asks to enter the ring.
pub fn encode_join(out: &mut Vec<u8>, tag: u64, member: &MemberInfo) {
    encode_header(out, FrameKind::Join, tag, member_len(member) as u32);
    put_member(out, member);
}

/// Parse a `Join` payload.
pub fn parse_join(payload: &[u8]) -> Result<MemberInfo, FrameError> {
    let mut c = Cursor::new(payload);
    let member = take_member(&mut c)?;
    c.finish()?;
    Ok(member)
}

/// Append a complete `Leave` frame: the named node departs in order.
pub fn encode_leave(out: &mut Vec<u8>, tag: u64, name: &str) {
    assert!(!name.is_empty() && name.len() <= MAX_NODE_LEN, "node name must be 1..=64");
    encode_header(out, FrameKind::Leave, tag, (1 + name.len()) as u32);
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
}

/// Parse a `Leave` payload into the departing node's name.
pub fn parse_leave(payload: &[u8]) -> Result<&str, FrameError> {
    let mut c = Cursor::new(payload);
    let nlen = c.u8()? as usize;
    if nlen == 0 || nlen > MAX_NODE_LEN {
        return Err(FrameError::BadNode);
    }
    let name = std::str::from_utf8(c.take(nlen)?).map_err(|_| FrameError::BadNode)?;
    c.finish()?;
    Ok(name)
}

/// Append a complete `RingState` frame.
pub fn encode_ring_state(out: &mut Vec<u8>, tag: u64, ring: &RingStateMsg) {
    let payload_len = 8 + 8 + 4 + 2 + 2 + ring.members.iter().map(member_len).sum::<usize>();
    encode_header(out, FrameKind::RingState, tag, payload_len as u32);
    out.extend_from_slice(&ring.epoch.to_le_bytes());
    out.extend_from_slice(&ring.seed.to_le_bytes());
    out.extend_from_slice(&ring.vnodes.to_le_bytes());
    out.extend_from_slice(&ring.replicas.to_le_bytes());
    out.extend_from_slice(&(ring.members.len() as u16).to_le_bytes());
    for m in &ring.members {
        put_member(out, m);
    }
}

/// Parse a `RingState` payload.
pub fn parse_ring_state(payload: &[u8]) -> Result<RingStateMsg, FrameError> {
    let mut c = Cursor::new(payload);
    let epoch = c.u64()?;
    let seed = c.u64()?;
    let vnodes = c.u32()?;
    let replicas = c.u16()?;
    let count = c.u16()?;
    let mut members = Vec::with_capacity(count as usize);
    for _ in 0..count {
        members.push(take_member(&mut c)?);
    }
    c.finish()?;
    Ok(RingStateMsg { epoch, seed, vnodes, replicas, members })
}

/// Borrowed view of a `PlanPush` or `PlanData` payload: the plan's key
/// followed by its `.rbplan` file bytes, shipped verbatim (the embedded
/// CRCs travel with them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanTransfer<'a> {
    /// Which plan the bytes are for (must match the file's embedded key).
    pub key: PlanKey,
    /// The `.rbplan` container, byte for byte.
    pub bytes: &'a [u8],
}

/// Append a complete `PlanPush` frame.
pub fn encode_plan_push(out: &mut Vec<u8>, tag: u64, key: &PlanKey, bytes: &[u8]) {
    encode_header(out, FrameKind::PlanPush, tag, (40 + bytes.len()) as u32);
    put_key(out, key);
    out.extend_from_slice(bytes);
}

/// Append a complete `PlanData` frame (the reply to a `PlanPull`).
pub fn encode_plan_data(out: &mut Vec<u8>, tag: u64, key: &PlanKey, bytes: &[u8]) {
    encode_header(out, FrameKind::PlanData, tag, (40 + bytes.len()) as u32);
    put_key(out, key);
    out.extend_from_slice(bytes);
}

/// Parse a `PlanPush`/`PlanData` payload.
pub fn parse_plan_transfer(payload: &[u8]) -> Result<PlanTransfer<'_>, FrameError> {
    let mut c = Cursor::new(payload);
    let key = take_key(&mut c)?;
    Ok(PlanTransfer { key, bytes: c.rest() })
}

/// Append a complete `PlanPull` frame. `build_intent` tells the owner the
/// caller will build the plan itself if the owner does not have it — the
/// owner grants exactly one such caller at a time (cluster-wide
/// single-flight); later intents get `BuildInProgress` until the grant
/// resolves or expires.
pub fn encode_plan_pull(out: &mut Vec<u8>, tag: u64, key: &PlanKey, build_intent: bool) {
    encode_header(out, FrameKind::PlanPull, tag, 41);
    put_key(out, key);
    out.push(build_intent as u8);
}

/// Parse a `PlanPull` payload into `(key, build_intent)`.
pub fn parse_plan_pull(payload: &[u8]) -> Result<(PlanKey, bool), FrameError> {
    let mut c = Cursor::new(payload);
    let key = take_key(&mut c)?;
    let flags = c.u8()?;
    c.finish()?;
    Ok((key, flags & 1 != 0))
}

/// One recorded hop of a traced request on one node, as shipped in a
/// `TraceData` frame. A request answered locally produces one hop; a
/// proxied request produces one hop per node it touched, all sharing a
/// trace id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHopMsg {
    /// End-to-end trace id minted at admission on the first hop.
    pub trace_id: u64,
    /// Name of the node that recorded the hop.
    pub node: String,
    /// Tenant the request was admitted under.
    pub tenant: String,
    /// Right-hand-side columns in the request.
    pub k: u16,
    /// Nanoseconds from admission to the last column solved.
    pub solve_ns: u64,
    /// Nanoseconds spent encoding and flushing the response.
    pub respond_ns: u64,
    /// Nanoseconds from admission to the response leaving the node.
    pub total_ns: u64,
    /// Whether this node forwarded the solve to the plan's owner.
    pub proxied: bool,
}

/// Append a complete `TraceGet` frame asking for a plan's recorded hops.
pub fn encode_trace_get(out: &mut Vec<u8>, tag: u64, key: &PlanKey) {
    encode_header(out, FrameKind::TraceGet, tag, 40);
    put_key(out, key);
}

/// Parse a `TraceGet` payload into the plan key being asked about.
pub fn parse_trace_get(payload: &[u8]) -> Result<PlanKey, FrameError> {
    let mut c = Cursor::new(payload);
    let key = take_key(&mut c)?;
    c.finish()?;
    Ok(key)
}

/// Append a complete `TraceData` frame (the reply to a `TraceGet`).
pub fn encode_trace_data(out: &mut Vec<u8>, tag: u64, hops: &[TraceHopMsg]) {
    let payload_len = 2 + hops
        .iter()
        .map(|h| 8 + 1 + h.node.len() + 1 + h.tenant.len() + 2 + 24 + 1)
        .sum::<usize>();
    encode_header(out, FrameKind::TraceData, tag, payload_len as u32);
    out.extend_from_slice(&(hops.len() as u16).to_le_bytes());
    for h in hops {
        debug_assert!(!h.node.is_empty() && h.node.len() <= MAX_NODE_LEN);
        debug_assert!(!h.tenant.is_empty() && h.tenant.len() <= MAX_TENANT_LEN);
        out.extend_from_slice(&h.trace_id.to_le_bytes());
        out.push(h.node.len() as u8);
        out.extend_from_slice(h.node.as_bytes());
        out.push(h.tenant.len() as u8);
        out.extend_from_slice(h.tenant.as_bytes());
        out.extend_from_slice(&h.k.to_le_bytes());
        for v in [h.solve_ns, h.respond_ns, h.total_ns] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(h.proxied as u8);
    }
}

/// Parse a `TraceData` payload into its hop records.
pub fn parse_trace_data(payload: &[u8]) -> Result<Vec<TraceHopMsg>, FrameError> {
    let mut c = Cursor::new(payload);
    let count = c.u16()?;
    let mut hops = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let trace_id = c.u64()?;
        let nlen = c.u8()? as usize;
        if nlen == 0 || nlen > MAX_NODE_LEN {
            return Err(FrameError::BadNode);
        }
        let node = std::str::from_utf8(c.take(nlen)?).map_err(|_| FrameError::BadNode)?.to_string();
        let tlen = c.u8()? as usize;
        if tlen == 0 || tlen > MAX_TENANT_LEN {
            return Err(FrameError::BadTenant);
        }
        let tenant =
            std::str::from_utf8(c.take(tlen)?).map_err(|_| FrameError::BadTenant)?.to_string();
        let k = c.u16()?;
        let solve_ns = c.u64()?;
        let respond_ns = c.u64()?;
        let total_ns = c.u64()?;
        let proxied = c.u8()? != 0;
        hops.push(TraceHopMsg {
            trace_id,
            node,
            tenant,
            k,
            solve_ns,
            respond_ns,
            total_ns,
            proxied,
        });
    }
    c.finish()?;
    Ok(hops)
}

/// Decode a little-endian value block into `out` (cleared first). The
/// stated `width` must match `S`; capacity is reused, so a warm caller
/// allocates nothing.
pub fn decode_scalars<S: Scalar>(
    bytes: &[u8],
    width: u8,
    out: &mut Vec<S>,
) -> Result<(), FrameError> {
    if width as usize != S::BYTES {
        return Err(FrameError::BadWidth(width));
    }
    out.clear();
    out.reserve(bytes.len() / S::BYTES);
    match S::BYTES {
        4 => {
            for chunk in bytes.chunks_exact(4) {
                let v = f32::from_bits(u32::from_le_bytes(chunk.try_into().unwrap()));
                out.push(S::from_f64(v as f64));
            }
        }
        _ => {
            for chunk in bytes.chunks_exact(8) {
                let v = f64::from_bits(u64::from_le_bytes(chunk.try_into().unwrap()));
                out.push(S::from_f64(v));
            }
        }
    }
    Ok(())
}

/// Append the little-endian value block for `vals` to `out`.
pub fn encode_scalars<S: Scalar>(vals: &[S], out: &mut Vec<u8>) {
    match S::BYTES {
        4 => {
            for v in vals {
                out.extend_from_slice(&(v.to_f64() as f32).to_bits().to_le_bytes());
            }
        }
        _ => {
            for v in vals {
                out.extend_from_slice(&v.to_f64().to_bits().to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_key() -> PlanKey {
        PlanKey {
            structure: Fingerprint { nrows: 10, ncols: 10, nnz: 28, hash: 0xdead_beef },
            values: 0x1234_5678_9abc_def0,
        }
    }

    #[test]
    fn header_roundtrip() {
        let mut buf = Vec::new();
        encode_header(&mut buf, FrameKind::Ping, 42, 0);
        assert_eq!(buf.len(), HEADER_LEN);
        let h = decode_header(&buf, 1024).unwrap().unwrap();
        assert_eq!(h, Header { version: 1, kind: FrameKind::Ping, tag: 42, payload_len: 0 });
        assert!(h.version_covers_kind());
    }

    #[test]
    fn v1_kinds_still_emit_version_1() {
        // Backward compatibility: a v2-capable build's v1 frames must be
        // byte-identical to a v1 build's, so old peers stay untouched.
        for kind in [
            FrameKind::Solve,
            FrameKind::SolveOk,
            FrameKind::Err,
            FrameKind::Ping,
            FrameKind::Pong,
            FrameKind::Stat,
            FrameKind::StatOk,
        ] {
            let mut buf = Vec::new();
            encode_header(&mut buf, kind, 0, 0);
            assert_eq!(buf[4], 1, "{kind:?}");
        }
        for kind in [
            FrameKind::Join,
            FrameKind::Leave,
            FrameKind::RingState,
            FrameKind::PlanPush,
            FrameKind::PlanPushOk,
            FrameKind::PlanPull,
            FrameKind::PlanData,
            FrameKind::SolveTraced,
            FrameKind::TraceGet,
            FrameKind::TraceData,
        ] {
            let mut buf = Vec::new();
            encode_header(&mut buf, kind, 0, 0);
            assert_eq!(buf[4], 2, "{kind:?}");
        }
    }

    #[test]
    fn v1_header_on_v2_kind_decodes_but_flags_mismatch() {
        let mut buf = Vec::new();
        encode_header(&mut buf, FrameKind::PlanPull, 3, 0);
        buf[4] = 1; // a mismatched build stamping v1 on a v2-only kind
        let h = decode_header(&buf, 1024).unwrap().unwrap();
        assert_eq!(h.kind, FrameKind::PlanPull);
        assert!(!h.version_covers_kind(), "mismatch must be visible, not fatal");
    }

    #[test]
    fn short_header_needs_more_bytes() {
        let mut buf = Vec::new();
        encode_header(&mut buf, FrameKind::Stat, 7, 0);
        for cut in 0..HEADER_LEN {
            assert_eq!(decode_header(&buf[..cut], 1024).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn header_rejections_are_typed() {
        let mut buf = Vec::new();
        encode_header(&mut buf, FrameKind::Solve, 1, 10);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert_eq!(decode_header(&bad, 1024), Err(FrameError::BadMagic));
        let mut bad = buf.clone();
        bad[4] = 9;
        assert_eq!(decode_header(&bad, 1024), Err(FrameError::BadVersion(9)));
        let mut bad = buf.clone();
        bad[5] = 200;
        assert_eq!(decode_header(&bad, 1024), Err(FrameError::BadKind(200)));
        let mut bad = buf.clone();
        bad[6] = 1;
        assert_eq!(decode_header(&bad, 1024), Err(FrameError::ReservedNonZero));
        assert_eq!(decode_header(&buf, 9), Err(FrameError::Oversize { len: 10, max: 9 }));
    }

    #[test]
    fn solve_roundtrip() {
        let cols: Vec<Vec<f64>> = vec![(0..10).map(|i| i as f64).collect(); 3];
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut buf = Vec::new();
        encode_solve(&mut buf, 99, "alpha", &demo_key(), 250, &refs);
        let h = decode_header(&buf, 1 << 20).unwrap().unwrap();
        assert_eq!(h.kind, FrameKind::Solve);
        assert_eq!(h.tag, 99);
        let req = parse_solve(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(req.tenant, "alpha");
        assert_eq!(req.key, demo_key());
        assert_eq!(req.deadline_ms, 250);
        assert_eq!((req.width, req.k, req.n), (8, 3, 10));
        let mut col = Vec::new();
        decode_scalars::<f64>(req.col_bytes(1), req.width, &mut col).unwrap();
        assert_eq!(col, cols[1]);
        assert_eq!(req.cost(), 28 * 3);
    }

    #[test]
    fn solve_ok_and_err_roundtrip() {
        let cols = vec![vec![1.5f32, -2.5, 3.0]];
        let mut buf = Vec::new();
        encode_solve_ok(&mut buf, 5, &cols);
        let h = decode_header(&buf, 1 << 20).unwrap().unwrap();
        assert_eq!(h.kind, FrameKind::SolveOk);
        let ok = parse_solve_ok(&buf[HEADER_LEN..]).unwrap();
        assert_eq!((ok.width, ok.k, ok.n), (4, 1, 3));
        let mut col = Vec::new();
        decode_scalars::<f32>(ok.col_bytes(0), 4, &mut col).unwrap();
        assert_eq!(col, cols[0]);

        let mut buf = Vec::new();
        encode_err(&mut buf, 6, ErrCode::RateLimited, "slow down");
        let (code, msg) = parse_err(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(code, ErrCode::RateLimited);
        assert_eq!(msg, "slow down");
    }

    #[test]
    fn stat_roundtrip() {
        let stat = StatReply {
            draining: true,
            health: 2,
            plans_warm: 3,
            inflight: 7,
            tenants: vec![TenantStat {
                tenant: "beta".into(),
                queue_depth: 2,
                admitted: 10,
                completed: 8,
                admission_rejected: 1,
                shed: 1,
            }],
        };
        let mut buf = Vec::new();
        encode_stat_reply(&mut buf, 1, &stat);
        let parsed = parse_stat_reply(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(parsed, stat);
    }

    #[test]
    fn cluster_frames_roundtrip() {
        let m = MemberInfo { name: "node-a".into(), addr: "127.0.0.1:7070".into() };
        let mut buf = Vec::new();
        encode_join(&mut buf, 11, &m);
        let h = decode_header(&buf, 1 << 20).unwrap().unwrap();
        assert_eq!((h.version, h.kind, h.tag), (2, FrameKind::Join, 11));
        assert_eq!(parse_join(&buf[HEADER_LEN..]).unwrap(), m);

        let mut buf = Vec::new();
        encode_leave(&mut buf, 12, "node-a");
        assert_eq!(parse_leave(&buf[HEADER_LEN..]).unwrap(), "node-a");

        let ring = RingStateMsg {
            epoch: 4,
            seed: 0xfeed,
            vnodes: 64,
            replicas: 2,
            members: vec![
                MemberInfo { name: "a".into(), addr: "h1:1".into() },
                MemberInfo { name: "b".into(), addr: "h2:2".into() },
            ],
        };
        let mut buf = Vec::new();
        encode_ring_state(&mut buf, 13, &ring);
        assert_eq!(parse_ring_state(&buf[HEADER_LEN..]).unwrap(), ring);

        let plan_bytes = vec![7u8; 129];
        let mut buf = Vec::new();
        encode_plan_push(&mut buf, 14, &demo_key(), &plan_bytes);
        let t = parse_plan_transfer(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(t.key, demo_key());
        assert_eq!(t.bytes, &plan_bytes[..]);

        let mut buf = Vec::new();
        encode_plan_pull(&mut buf, 15, &demo_key(), true);
        assert_eq!(parse_plan_pull(&buf[HEADER_LEN..]).unwrap(), (demo_key(), true));
        let mut buf = Vec::new();
        encode_plan_pull(&mut buf, 16, &demo_key(), false);
        assert_eq!(parse_plan_pull(&buf[HEADER_LEN..]).unwrap(), (demo_key(), false));
    }

    #[test]
    fn cluster_frame_rejections_are_typed() {
        // Empty node name.
        assert_eq!(parse_join(&[0u8, 1, 0, b'x']), Err(FrameError::BadNode));
        assert_eq!(parse_leave(&[0u8]), Err(FrameError::BadNode));
        // Truncated ring state.
        assert!(parse_ring_state(&[1, 2, 3]).is_err());
        // Member count promising more than the payload holds.
        let ring = RingStateMsg {
            epoch: 1,
            seed: 2,
            vnodes: 8,
            replicas: 1,
            members: vec![MemberInfo { name: "a".into(), addr: "h:1".into() }],
        };
        let mut buf = Vec::new();
        encode_ring_state(&mut buf, 0, &ring);
        let mut payload = buf[HEADER_LEN..].to_vec();
        payload[22] = 9; // count lives after epoch+seed+vnodes+replicas
        assert!(parse_ring_state(&payload).is_err());
        // PlanPull payload too short for key + flags.
        assert!(parse_plan_pull(&[0u8; 40]).is_err());
        // Trailing bytes after the flags byte.
        assert!(matches!(parse_plan_pull(&[0u8; 42]), Err(FrameError::TrailingBytes(1))));
    }

    #[test]
    fn trace_frames_roundtrip() {
        // SolveTraced is a Solve payload with the trace id riding ahead.
        let cols: Vec<Vec<f64>> = vec![(0..6).map(|i| i as f64 * 0.5).collect(); 2];
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut buf = Vec::new();
        encode_solve_traced(&mut buf, 21, 0xabad_1dea_f00d_cafe, "gamma", &demo_key(), 50, &refs);
        let h = decode_header(&buf, 1 << 20).unwrap().unwrap();
        assert_eq!((h.version, h.kind, h.tag), (2, FrameKind::SolveTraced, 21));
        let (trace_id, req) = parse_solve_traced(&buf[HEADER_LEN..]).unwrap();
        assert_eq!(trace_id, 0xabad_1dea_f00d_cafe);
        assert_eq!(req.tenant, "gamma");
        assert_eq!(req.key, demo_key());
        assert_eq!((req.width, req.k, req.n), (8, 2, 6));
        // The embedded payload is byte-identical to a plain Solve's.
        let mut plain = Vec::new();
        encode_solve(&mut plain, 21, "gamma", &demo_key(), 50, &refs);
        assert_eq!(&buf[HEADER_LEN + 8..], &plain[HEADER_LEN..]);

        let mut buf = Vec::new();
        encode_trace_get(&mut buf, 22, &demo_key());
        assert_eq!(parse_trace_get(&buf[HEADER_LEN..]).unwrap(), demo_key());

        let hops = vec![
            TraceHopMsg {
                trace_id: 7,
                node: "origin".into(),
                tenant: "gamma".into(),
                k: 2,
                solve_ns: 1_000,
                respond_ns: 200,
                total_ns: 1_300,
                proxied: true,
            },
            TraceHopMsg {
                trace_id: 7,
                node: "owner".into(),
                tenant: "gamma".into(),
                k: 2,
                solve_ns: 800,
                respond_ns: 150,
                total_ns: 990,
                proxied: false,
            },
        ];
        let mut buf = Vec::new();
        encode_trace_data(&mut buf, 23, &hops);
        assert_eq!(parse_trace_data(&buf[HEADER_LEN..]).unwrap(), hops);
        let mut buf = Vec::new();
        encode_trace_data(&mut buf, 24, &[]);
        assert_eq!(parse_trace_data(&buf[HEADER_LEN..]).unwrap(), vec![]);
    }

    #[test]
    fn trace_frame_rejections_are_typed() {
        // SolveTraced shorter than its trace id.
        assert!(parse_solve_traced(&[0u8; 7]).is_err());
        // TraceGet payload must be exactly one plan key.
        assert!(parse_trace_get(&[0u8; 39]).is_err());
        assert!(matches!(parse_trace_get(&[0u8; 41]), Err(FrameError::TrailingBytes(1))));
        // Hop count promising more than the payload holds.
        let hops = vec![TraceHopMsg {
            trace_id: 1,
            node: "n".into(),
            tenant: "t".into(),
            k: 1,
            solve_ns: 1,
            respond_ns: 1,
            total_ns: 2,
            proxied: false,
        }];
        let mut buf = Vec::new();
        encode_trace_data(&mut buf, 0, &hops);
        let mut payload = buf[HEADER_LEN..].to_vec();
        payload[0] = 9;
        assert!(parse_trace_data(&payload).is_err());
        // Empty node name inside a hop.
        let mut payload = buf[HEADER_LEN..].to_vec();
        payload[2 + 8] = 0;
        assert!(parse_trace_data(&payload).is_err());
    }

    #[test]
    fn payload_mismatches_are_typed() {
        let cols: Vec<Vec<f64>> = vec![vec![0.0; 4]];
        let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut buf = Vec::new();
        encode_solve(&mut buf, 1, "t", &demo_key(), 0, &refs);
        // Chop one value byte: dimensions no longer match the block.
        let payload = &buf[HEADER_LEN..buf.len() - 1];
        assert!(matches!(parse_solve(payload), Err(FrameError::PayloadSize { .. })));
        // Truncate inside the fixed fields.
        assert!(parse_solve(&buf[HEADER_LEN..HEADER_LEN + 3]).is_err());
        // Empty tenant.
        assert_eq!(parse_solve(&[0u8, 1, 2]), Err(FrameError::BadTenant));
    }
}
