//! # recblock — block algorithms for parallel sparse triangular solve
//!
//! Reproduction of Lu, Niu & Liu, *"Efficient Block Algorithms for Parallel
//! Sparse Triangular Solve"* (ICPP 2020). The crate implements the paper's
//! three block algorithms and its improved adaptive recursive variant:
//!
//! * [`column::ColumnBlockSolver`] — vertical strips: solve the triangular
//!   block on top of each strip, then one SpMV updates the entire remaining
//!   right-hand side (the paper's Algorithm 4);
//! * [`row::RowBlockSolver`] — horizontal strips: one SpMV consumes the
//!   already-solved prefix of `x`, then the strip's triangular block is
//!   solved (Algorithm 5);
//! * [`recursive::RecursiveBlockSolver`] — recursive bisection into
//!   top-triangle / square / bottom-triangle (Algorithm 6);
//! * [`blocked::BlockedTri`] — the improved data structure of Section 3.3:
//!   recursive level-set reordering, blocks stored in execution order,
//!   triangular parts solved by adaptively selected SpTRSV kernels and
//!   square parts by adaptively selected SpMV kernels (Algorithm 7);
//! * [`solver::RecBlockSolver`] — the user-facing API: preprocess once,
//!   solve many right-hand sides, query simulated GPU timings.
//!
//! Supporting modules: [`traffic`] reproduces the `b`-update / `x`-load
//! accounting of the paper's Tables 1–2; [`adaptive`] holds the kernel
//! selection thresholds of Figure 5 / Algorithm 7 plus a tuning harness to
//! re-derive them; [`reorder`] implements the recursive level-set
//! permutation of Figure 3.
//!
//! ## Quickstart
//!
//! ```
//! use recblock::solver::{RecBlockSolver, SolverOptions};
//! use recblock_matrix::generate;
//!
//! // A lower-triangular system with a KKT-like two-level structure.
//! let l = generate::kkt_like::<f64>(4096, 1600, 4, 7);
//! let b = vec![1.0; 4096];
//!
//! let solver = RecBlockSolver::new(&l, SolverOptions::default()).unwrap();
//! let x = solver.solve(&b).unwrap();
//!
//! let r = recblock_matrix::vector::residual_inf(&l, &x, &b).unwrap();
//! assert!(r < 1e-10);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod blocked;
pub mod column;
pub mod explain;
pub mod packed;
pub mod partition;
pub mod precond;
pub mod recursive;
pub mod reorder;
pub mod report;
pub mod row;
pub mod solver;
pub mod sqsolver;
pub mod traffic;
pub mod trisolver;
pub mod tune;
pub mod upper;

pub use adaptive::{Selector, TriKernel};
pub use blocked::{BlockedOptions, BlockedTri, DepthRule};
pub use explain::SelectionReport;
pub use solver::{RecBlockSolver, SolverOptions};
pub use traffic::TrafficCounts;
pub use tune::{candidate_grid, tune_blocked, TuneOptions, TuneReport};
