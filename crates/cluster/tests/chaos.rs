//! Armed fault injection on the inter-node path: dropped plan pushes,
//! stale ring views, and a build-grant holder that crashes mid-build.
//!
//! The invariant under every fault is the resilience contract the rest
//! of the stack already obeys: clients get **correct answers or typed
//! errors**, never hangs, crashes or silent corruption — and the
//! cluster converges back to healthy once the fault clears.
//!
//! Compiled only with `--features faults`; serialized on a mutex
//! because the fault plan is process global (all three "nodes" share
//! this process).

#![cfg(feature = "faults")]

use recblock_cluster::{ClusterConfig, ClusterNode, WarmOutcome};
use recblock_faults::{FaultPlan, FaultPoint, Trigger};
use recblock_matrix::generate;
use recblock_net::{ErrCode, NetClient, NetConfig, NetError};
use recblock_serve::{ServeConfig, SolveService};
use recblock_store::PlanKey;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn chaos_config(i: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(format!("chaos-{i}"));
    c.replicas = 2;
    c.grant_ttl = Duration::from_millis(300);
    c.pull_retry = Duration::from_millis(10);
    c.pull_attempts = 200;
    c
}

fn start_cluster(n: usize) -> Vec<ClusterNode<f64>> {
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let service = Arc::new(SolveService::<f64>::new(ServeConfig::default().with_workers(2)));
        nodes.push(
            ClusterNode::start("127.0.0.1:0", chaos_config(i), NetConfig::default(), service)
                .expect("start node"),
        );
    }
    let seed_addr = nodes[0].addr().to_string();
    for node in &nodes[1..] {
        node.join(&seed_addr).expect("join");
    }
    nodes
}

fn by_name<'a>(nodes: &'a [ClusterNode<f64>], name: &str) -> &'a ClusterNode<f64> {
    nodes.iter().find(|n| n.name() == name).expect("named node")
}

fn total_builds(nodes: &[ClusterNode<f64>]) -> u64 {
    nodes.iter().map(|n| n.service().metrics().plan_builds).sum()
}

/// The granted builder "crashes" before building (owner crash
/// mid-migration). The grant's TTL must recover: the next warm attempt
/// waits out `BuildInProgress`, claims the expired grant and builds —
/// exactly once in total.
#[test]
fn crashed_build_grant_recovers_after_ttl() {
    let _guard = fault_lock();
    let nodes = start_cluster(3);
    let l = generate::random_lower::<f64>(300, 4.0, 700);
    let key = PlanKey::of(&l);
    let owners = nodes[0].coordinator().owners_of(&key);
    let replica = by_name(&nodes, &owners[1].0);

    FaultPlan::new(31).with(FaultPoint::ClusterBuild, Trigger::OneShot).install();
    let first = replica.warm(&l).expect("faulted warm");
    assert_eq!(first, WarmOutcome::Crashed, "the grant holder must die mid-build");
    assert_eq!(total_builds(&nodes), 0, "the crashed grantee built nothing");

    // Second attempt: the live grant answers BuildInProgress until the
    // TTL expires, then this caller is granted and builds.
    let second = replica.warm(&l).expect("recovery warm");
    FaultPlan::clear();
    assert_eq!(second, WarmOutcome::Built, "the expired grant must be claimable");
    assert_eq!(total_builds(&nodes), 1, "still exactly one build cluster-wide");
    assert_eq!(recblock_faults::fired(FaultPoint::ClusterBuild), 1);

    // And the plan serves from every node.
    let rhs: Vec<f64> = (0..l.nrows()).map(|r| (r as f64 * 0.01).cos()).collect();
    for node in &nodes {
        let mut c = NetClient::connect(node.addr()).expect("connect");
        c.solve_multi("acme", &key, &[&rhs], 0).expect("post-recovery solve");
    }
}

/// Replica pushes are silently dropped: the replica stays cold. A solve
/// routed to it answers a *typed* `PlanNotFound` (degraded, never a
/// hang), and a later pull — pushes and pulls are independent paths —
/// heals it.
#[test]
fn dropped_push_degrades_typed_then_heals_by_pull() {
    let _guard = fault_lock();
    let nodes = start_cluster(3);
    let l = generate::random_lower::<f64>(280, 4.0, 701);
    let key = PlanKey::of(&l);
    let owners = nodes[0].coordinator().owners_of(&key);
    let primary = by_name(&nodes, &owners[0].0);
    let replica = by_name(&nodes, &owners[1].0);

    FaultPlan::new(32).with(FaultPoint::ClusterPush, Trigger::Always).install();
    let outcome = primary.warm(&l).expect("primary warm");
    FaultPlan::clear();
    assert_eq!(outcome, WarmOutcome::Built);
    assert!(recblock_faults::fired(FaultPoint::ClusterPush) >= 1, "the push was dropped");
    assert_eq!(replica.service().metrics().cluster_plans_received, 0);

    // The cold replica refuses its own shard typed, not silently.
    let rhs: Vec<f64> = (0..l.nrows()).map(|r| (r as f64 * 0.02).sin()).collect();
    let mut c = NetClient::connect(replica.addr()).expect("connect replica");
    let err = c.solve_multi("acme", &key, &[&rhs], 0).expect_err("replica is cold");
    match err {
        NetError::Remote { code, .. } => assert_eq!(code, ErrCode::PlanNotFound),
        other => panic!("expected typed PlanNotFound, got {other:?}"),
    }

    // Healing: warm on the replica pulls the primary's copy.
    assert_eq!(replica.warm(&l).expect("healing warm"), WarmOutcome::Pulled);
    let mut c = NetClient::connect(replica.addr()).expect("reconnect replica");
    c.solve_multi("acme", &key, &[&rhs], 0).expect("healed replica serves");
    assert_eq!(total_builds(&nodes), 1, "healing pulled, never rebuilt");
}

/// One node misses a ring broadcast and keeps serving from a stale
/// view. Requests through it still terminate in a correct answer or a
/// typed error (stale routing proxies one hop further), and re-gossip
/// converges the view once the fault clears.
#[test]
fn stale_ring_view_stays_correct_and_converges() {
    let _guard = fault_lock();
    // Two joined nodes; the third joins while B's view updates fail.
    let mut nodes = start_cluster(2);
    let service = Arc::new(SolveService::<f64>::new(ServeConfig::default().with_workers(2)));
    let late = ClusterNode::start("127.0.0.1:0", chaos_config(2), NetConfig::default(), service)
        .expect("start late node");

    FaultPlan::new(33).with(FaultPoint::ClusterRing, Trigger::Always).install();
    late.join(&nodes[0].addr().to_string()).expect("join under fault");
    FaultPlan::clear();
    nodes.push(late);

    assert!(recblock_faults::fired(FaultPoint::ClusterRing) >= 1);
    assert_eq!(nodes[0].ring().members.len(), 3, "the seed handled the Join directly");
    assert_eq!(nodes[1].ring().members.len(), 2, "the bystander missed the broadcast");

    // Solves through the stale node terminate: success or typed error.
    let l = generate::random_lower::<f64>(260, 4.0, 702);
    let key = PlanKey::of(&l);
    for node in &nodes {
        node.warm(&l).expect("warm");
    }
    let rhs: Vec<f64> = (0..l.nrows()).map(|r| (r as f64 * 0.03).sin()).collect();
    let mut c = NetClient::connect(nodes[1].addr()).expect("connect stale node");
    match c.solve_multi("acme", &key, &[&rhs], 0) {
        Ok(cols) => assert_eq!(cols.len(), 1),
        Err(NetError::Remote { code, .. }) => assert!(
            matches!(code, ErrCode::PlanNotFound | ErrCode::Redirect),
            "stale view may degrade but only typed: {code}"
        ),
        Err(other) => panic!("stale view must not break transport: {other:?}"),
    }

    // Convergence: a fresh gossip round repairs the stale view.
    nodes[2].join(&nodes[0].addr().to_string()).expect("re-gossip");
    assert_eq!(nodes[1].ring().members.len(), 3, "anti-entropy repaired the view");
    for node in &nodes {
        node.warm(&l).expect("re-warm");
        let mut c = NetClient::connect(node.addr()).expect("connect");
        c.solve_multi("acme", &key, &[&rhs], 0).expect("converged cluster serves");
    }
}
