//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! Enough of the format to load SuiteSparse matrices the way the paper does:
//! `matrix coordinate real|integer|pattern general|symmetric`. Pattern
//! entries get value 1; symmetric files are expanded to both triangles.
//!
//! The parser is strict where silence would corrupt data downstream:
//! repeated coordinates are rejected with [`MatrixError::DuplicateEntry`]
//! (COO→CSR conversion would otherwise silently sum them) and out-of-range
//! indices with [`MatrixError::IndexOutOfBounds`]. It is tolerant where
//! files vary harmlessly: blank lines, interleaved `%` comments and CRLF
//! line endings are all accepted.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::MatrixError;
use crate::scalar::Scalar;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Read a Matrix Market file from any reader.
pub fn read_matrix_market<S: Scalar, R: Read>(reader: R) -> Result<Csr<S>, MatrixError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| MatrixError::Parse("empty file".into()))?
        .map_err(MatrixError::from)?;
    let toks: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(MatrixError::Parse(format!("bad header: {header}")));
    }
    if toks[2] != "coordinate" {
        return Err(MatrixError::Parse(format!("unsupported format: {}", toks[2])));
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MatrixError::Parse(format!("unsupported field: {other}"))),
    };
    let symmetry = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(MatrixError::Parse(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, read the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(MatrixError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| MatrixError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|e| MatrixError::Parse(format!("size: {e}"))))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(MatrixError::Parse(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::<S>::with_capacity(
        nrows,
        ncols,
        if symmetry == Symmetry::Symmetric { 2 * nnz } else { nnz },
    );
    let mut seen = 0usize;
    // Coordinates already taken, including the mirrored position of
    // symmetric off-diagonal entries — `Coo::to_csr` sums duplicates
    // silently, so they must be caught here.
    let mut taken: HashSet<(usize, usize)> = HashSet::with_capacity(nnz);
    for line in lines {
        let line = line.map_err(MatrixError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let i: usize = parts
            .next()
            .ok_or_else(|| MatrixError::Parse("missing row".into()))?
            .parse()
            .map_err(|e| MatrixError::Parse(format!("row: {e}")))?;
        let j: usize = parts
            .next()
            .ok_or_else(|| MatrixError::Parse("missing col".into()))?
            .parse()
            .map_err(|e| MatrixError::Parse(format!("col: {e}")))?;
        if i == 0 || j == 0 {
            return Err(MatrixError::Parse("matrix market indices are 1-based".into()));
        }
        let v = match field {
            Field::Pattern => S::ONE,
            Field::Real | Field::Integer => {
                let raw = parts.next().ok_or_else(|| MatrixError::Parse("missing value".into()))?;
                S::from_f64(
                    raw.parse::<f64>().map_err(|e| MatrixError::Parse(format!("value: {e}")))?,
                )
            }
        };
        let (r, c) = (i - 1, j - 1);
        if !taken.insert((r, c)) {
            return Err(MatrixError::DuplicateEntry { row: r, col: c });
        }
        coo.push(r, c, v)?;
        if symmetry == Symmetry::Symmetric && r != c {
            if !taken.insert((c, r)) {
                return Err(MatrixError::DuplicateEntry { row: c, col: r });
            }
            coo.push(c, r, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MatrixError::Parse(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_csr())
}

/// Read a Matrix Market file from disk.
pub fn read_matrix_market_file<S: Scalar, P: AsRef<Path>>(path: P) -> Result<Csr<S>, MatrixError> {
    let f = std::fs::File::open(path)?;
    read_matrix_market(f)
}

/// Write a matrix in `coordinate real general` form.
pub fn write_matrix_market<S: Scalar, W: Write>(a: &Csr<S>, writer: W) -> Result<(), MatrixError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by recblock-matrix")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {:e}", i + 1, j + 1, v.to_f64())?;
    }
    w.flush()?;
    Ok(())
}

/// Write a matrix to a `.mtx` file on disk.
pub fn write_matrix_market_file<S: Scalar, P: AsRef<Path>>(
    a: &Csr<S>,
    path: P,
) -> Result<(), MatrixError> {
    let f = std::fs::File::create(path)?;
    write_matrix_market(a, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_real() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 2\n1 1 2.5\n3 2 -1.0\n";
        let a: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.get(0, 0), Some(2.5));
        assert_eq!(a.get(2, 1), Some(-1.0));
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n2 1 5.0\n";
        let a: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), Some(5.0));
        assert_eq!(a.get(1, 0), Some(5.0));
    }

    #[test]
    fn parse_pattern_gets_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n";
        let a: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(1, 0), Some(1.0));
    }

    #[test]
    fn reject_bad_header() {
        let text = "%%NotMatrixMarket nope\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn reject_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn reject_zero_based_index() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market::<f64, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_entry_rejected() {
        let text = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.5\n1 1 4.0\n";
        let err = read_matrix_market::<f64, _>(text.as_bytes()).unwrap_err();
        assert_eq!(err, MatrixError::DuplicateEntry { row: 0, col: 0 });
    }

    #[test]
    fn symmetric_mirror_duplicate_rejected() {
        // (1, 2) duplicates the implicit mirror of (2, 1).
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n1 2 5.0\n";
        let err = read_matrix_market::<f64, _>(text.as_bytes()).unwrap_err();
        assert!(matches!(err, MatrixError::DuplicateEntry { .. }), "got {err:?}");
    }

    #[test]
    fn out_of_range_index_rejected_with_typed_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let err = read_matrix_market::<f64, _>(text.as_bytes()).unwrap_err();
        assert!(matches!(err, MatrixError::IndexOutOfBounds { .. }), "got {err:?}");

        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 9 1.0\n";
        let err = read_matrix_market::<f64, _>(text.as_bytes()).unwrap_err();
        assert!(matches!(err, MatrixError::IndexOutOfBounds { .. }), "got {err:?}");
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let text = "%%MatrixMarket matrix coordinate real general\r\n\r\n% comment\r\n3 3 2\r\n\
                    1 1 2.5\r\n\r\n3 2 -1.0\r\n\r\n";
        let a: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), Some(2.5));
        assert_eq!(a.get(2, 1), Some(-1.0));
    }

    fn assert_same(a: &Csr<f64>, b: &Csr<f64>) {
        assert_eq!((a.nrows(), a.ncols(), a.nnz()), (b.nrows(), b.ncols(), b.nnz()));
        for ((i1, j1, v1), (i2, j2, v2)) in a.iter().zip(b.iter()) {
            assert_eq!((i1, j1), (i2, j2));
            assert!((v1 - v2).abs() < 1e-12);
        }
    }

    #[test]
    fn general_header_roundtrips_through_write() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 2.5\n2 1 -3.0\n3 3 0.5\n";
        let a: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: Csr<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert_same(&a, &b);
    }

    #[test]
    fn symmetric_header_roundtrips_through_write() {
        // Written back as the expanded `general` form; the matrix itself
        // must survive unchanged.
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 1.0\n2 1 5.0\n3 3 2.0\n";
        let a: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.nnz(), 4, "off-diagonal expanded to both triangles");
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: Csr<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert_same(&a, &b);
    }

    #[test]
    fn pattern_header_roundtrips_through_write() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n2 1\n3 3\n";
        let a: Csr<f64> = read_matrix_market(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: Csr<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert_same(&a, &b);
        assert_eq!(b.get(1, 0), Some(1.0), "pattern entries carry value 1");
    }

    #[test]
    fn write_read_roundtrip() {
        let a = crate::generate::random_lower::<f64>(50, 3.0, 77);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b: Csr<f64> = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        for ((i1, j1, v1), (i2, j2, v2)) in a.iter().zip(b.iter()) {
            assert_eq!((i1, j1), (i2, j2));
            assert!((v1 - v2).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let a = crate::generate::chain::<f64>(10, 3);
        let dir = std::env::temp_dir().join("recblock_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chain.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let b: Csr<f64> = read_matrix_market_file(&path).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        std::fs::remove_file(&path).ok();
    }
}
