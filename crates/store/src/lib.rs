//! # recblock-store — persistent plan store
//!
//! Preprocessing is the expensive half of recursive-block SpTRSV: the
//! paper's Table 5 puts plan construction at roughly **9× the cost of one
//! solve**. That cost is paid per matrix *per process* — every restart of a
//! service rebuilds plans for matrices it has solved thousands of times
//! before. This crate amortises it across processes: a built
//! [`BlockedTri`](recblock::BlockedTri) (or packed arena) is serialized to
//! a versioned, checksummed file keyed by the matrix's structural
//! fingerprint and value digest, and reloaded with a single read + linear
//! decode that skips reordering, partitioning, level analysis and kernel
//! selection entirely.
//!
//! ## Safety model
//!
//! A plan file is trusted *only after* it passes, in order: magic/version
//! check, per-section CRC-32C, typed structural decode, and the validating
//! `from_parts` constructors that re-verify every invariant the solve
//! kernels index by. Every failure is a typed [`StoreError`]; nothing in
//! the load path panics on bad bytes, so callers can always fall back to
//! rebuilding.
//!
//! ## Quick use
//!
//! ```
//! use recblock::{BlockedOptions, BlockedTri};
//! use recblock_matrix::generate;
//! use recblock_store::{PlanKey, PlanStore};
//!
//! let dir = std::env::temp_dir().join(format!("rbstore-doc-{}", std::process::id()));
//! let l = generate::random_lower::<f64>(500, 4.0, 7);
//! let plan = BlockedTri::build(&l, &BlockedOptions::default()).unwrap();
//!
//! let store = PlanStore::open(&dir).unwrap();
//! let key = PlanKey::of(&l);
//! store.save(&plan, &key, 0.01).unwrap();
//!
//! let loaded = store.load::<f64>(&key).unwrap().expect("plan was just saved");
//! let b = vec![1.0; 500];
//! assert_eq!(loaded.blocked.solve(&b).unwrap(), plan.solve(&b).unwrap());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod key;
pub mod plan;
pub mod store;
pub mod wire;

pub use error::StoreError;
pub use key::PlanKey;
pub use plan::{
    decode_meta, decode_packed, decode_plan, encode_packed, encode_plan, verify_file, ArtifactKind,
    PlanMeta, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION,
};
pub use store::{
    inspect_plan_file, read_pack_file, read_plan_file, sync_stats, write_atomic, LoadTimings,
    LoadedPlan, PlanStore, RecoveryReport, StoreEntry, QUARANTINE_DIR,
};
