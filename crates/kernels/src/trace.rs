//! `SolveTrace`: a pre-allocated, lock-free ring buffer of typed solve
//! events, filled by the execution engine and the kernels.
//!
//! The solve hot path must stay allocation-free (the PR-4 regression tests
//! pin it at zero steady-state allocations), so tracing follows the same
//! discipline:
//!
//! * the ring is allocated once, at [`SolveTrace::enable`] time, never on
//!   the recording path;
//! * a slot is claimed with one relaxed `fetch_add` and filled with two
//!   relaxed atomic stores — no locks, no CAS loops;
//! * when tracing is disabled (the default) every instrumentation site
//!   reduces to a single relaxed load of a static `AtomicBool`
//!   ([`SolveTrace::start`] returns `None` and [`SolveTrace::finish`] is a
//!   no-op), and with `--no-default-features` (the `trace` feature off) the
//!   check is `cfg!`-folded to a constant and the sites compile away
//!   entirely.
//!
//! Events are recorded by the *dispatching* thread (the one that owns the
//! solve call), not by pool workers, so a drained trace reads as a linear
//! story of one solve: per-run wall-clock on the nnz-balanced schedule,
//! per-kernel totals, per-block timings from the blocked executor, and
//! store read/decode stages.
//!
//! The ring keeps the **most recent** `capacity` events: when it wraps, the
//! oldest events are overwritten and counted in [`SolveTrace::dropped`].
//! [`SolveTrace::drain`] is meant to be called at quiescence (no solve in
//! flight); a concurrent recorder can tear at most the slots it is
//! mid-writing, which decode as garbage kinds and are skipped.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What a [`TraceEvent`] measured. Discriminants are stable (they appear in
/// the packed wire format of the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A fused serial run of a [`crate::LevelSchedule`] (id = run index).
    SerialRun = 1,
    /// A parallel launch of a [`crate::LevelSchedule`] (id = run index,
    /// `chunks` = nnz-balanced chunks dispatched to the pool).
    ParallelRun = 2,
    /// One [`crate::ExecPool::run`] dispatch (id = jobs dispatched).
    PoolDispatch = 3,
    /// The completely-parallel diagonal kernel
    /// ([`crate::sptrsv::parallel_diag_into`]).
    DiagKernel = 4,
    /// One whole [`crate::LevelSetSolver`] solve.
    LevelSetKernel = 5,
    /// One whole [`crate::CusparseLikeSolver`] solve.
    CusparseKernel = 6,
    /// One whole [`crate::SyncFreeSolver`] solve (recorded by the caller).
    SyncFreeKernel = 7,
    /// A planned CSR SpMV update ([`crate::spmv::csr_update_planned`]).
    SpmvCsr = 8,
    /// A planned DCSR SpMV update ([`crate::spmv::dcsr_update_planned`]).
    SpmvDcsr = 9,
    /// One triangular diagonal block of a blocked solve (id = block index).
    BlockTri = 10,
    /// One square update block of a blocked solve (id = block index).
    BlockSquare = 11,
    /// Permutation gather of `b` into block order (blocked solve).
    Gather = 12,
    /// Permutation scatter of `x` back to original order (blocked solve).
    Scatter = 13,
    /// Reading a persisted plan file from disk (recblock-store).
    StoreRead = 14,
    /// Verifying + decoding a persisted plan (recblock-store).
    StoreDecode = 15,
    /// One point-to-point task-schedule solve (`TaskSchedule`): a single
    /// dispatch replacing the whole per-level launch sequence.
    P2pRun = 16,
    /// One end-to-end request span at the serving tier (id = low 24 bits of
    /// the request's cluster-wide trace id; rows = batch width).
    RequestSpan = 17,
}

impl EventKind {
    /// Stable snake_case name (used by bench JSON and report rendering).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SerialRun => "serial_run",
            EventKind::ParallelRun => "parallel_run",
            EventKind::PoolDispatch => "pool_dispatch",
            EventKind::DiagKernel => "diag_kernel",
            EventKind::LevelSetKernel => "levelset_kernel",
            EventKind::CusparseKernel => "cusparse_kernel",
            EventKind::SyncFreeKernel => "syncfree_kernel",
            EventKind::SpmvCsr => "spmv_csr",
            EventKind::SpmvDcsr => "spmv_dcsr",
            EventKind::BlockTri => "block_tri",
            EventKind::BlockSquare => "block_square",
            EventKind::Gather => "gather",
            EventKind::Scatter => "scatter",
            EventKind::StoreRead => "store_read",
            EventKind::StoreDecode => "store_decode",
            EventKind::P2pRun => "p2p_run",
            EventKind::RequestSpan => "request_span",
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::SerialRun,
            2 => EventKind::ParallelRun,
            3 => EventKind::PoolDispatch,
            4 => EventKind::DiagKernel,
            5 => EventKind::LevelSetKernel,
            6 => EventKind::CusparseKernel,
            7 => EventKind::SyncFreeKernel,
            8 => EventKind::SpmvCsr,
            9 => EventKind::SpmvDcsr,
            10 => EventKind::BlockTri,
            11 => EventKind::BlockSquare,
            12 => EventKind::Gather,
            13 => EventKind::Scatter,
            14 => EventKind::StoreRead,
            15 => EventKind::StoreDecode,
            16 => EventKind::P2pRun,
            17 => EventKind::RequestSpan,
            _ => return None,
        })
    }
}

/// One decoded trace event.
///
/// Field widths match the packed slot format: `id` carries 24 bits (run or
/// block index), `rows` 32 bits, `chunks` 16 bits and `ns` 48 bits (~78
/// hours — far beyond any single kernel invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What was measured.
    pub kind: EventKind,
    /// Kind-specific identifier: run index, block index, or job count.
    pub id: u32,
    /// Rows (or lanes / bytes for store events) the event covered.
    pub rows: u32,
    /// Parallel chunks dispatched (0 for serial work).
    pub chunks: u16,
    /// Wall-clock nanoseconds, measured on the dispatching thread.
    pub ns: u64,
}

const ID_MAX: u32 = (1 << 24) - 1;
const NS_MAX: u64 = (1 << 48) - 1;

#[inline]
fn pack(ev: &TraceEvent) -> (u64, u64) {
    let w0 = ((ev.kind as u64) << 56) | ((ev.id.min(ID_MAX) as u64) << 32) | ev.rows as u64;
    let w1 = ((ev.chunks as u64) << 48) | ev.ns.min(NS_MAX);
    (w0, w1)
}

#[inline]
fn unpack(w0: u64, w1: u64) -> Option<TraceEvent> {
    let kind = EventKind::from_u8((w0 >> 56) as u8)?;
    Some(TraceEvent {
        kind,
        id: ((w0 >> 32) & ID_MAX as u64) as u32,
        rows: w0 as u32,
        chunks: (w1 >> 48) as u16,
        ns: w1 & NS_MAX,
    })
}

/// A slot is two words so claiming and filling need no lock; an event being
/// written while the ring is drained decodes as kind 0 (skipped) at worst.
struct Slot {
    w0: AtomicU64,
    w1: AtomicU64,
}

struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever claimed (monotonic); slot = cursor % capacity.
    cursor: AtomicU64,
    /// Cursor snapshot at the last reset; events older than this are stale.
    floor: AtomicU64,
}

/// `false` is the steady state: every instrumentation site is one relaxed
/// load and a well-predicted branch.
static ENABLED: AtomicBool = AtomicBool::new(false);
static RING: OnceLock<Ring> = OnceLock::new();

/// The global solve trace. All state is process-wide and all methods are
/// associated functions: kernels deep in the call stack record without any
/// handle being threaded through the hot path.
pub struct SolveTrace;

impl SolveTrace {
    /// Ring capacity used by [`SolveTrace::enable`].
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// `true` when the `trace` feature is compiled in (default). With
    /// `--no-default-features` every instrumentation site folds to nothing.
    #[inline(always)]
    pub const fn compiled() -> bool {
        cfg!(feature = "trace")
    }

    /// Whether events are currently being recorded.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        Self::compiled() && ENABLED.load(Ordering::Relaxed)
    }

    /// Start recording into a ring of [`Self::DEFAULT_CAPACITY`] events.
    /// The ring is allocated on the first call and reused (and reset)
    /// afterwards; the capacity of the first call wins for the process.
    pub fn enable() {
        Self::enable_with_capacity(Self::DEFAULT_CAPACITY);
    }

    /// As [`SolveTrace::enable`] with an explicit capacity (clamped to at
    /// least 16; ignored if the ring already exists).
    pub fn enable_with_capacity(capacity: usize) {
        if !Self::compiled() {
            return;
        }
        let ring = RING.get_or_init(|| {
            let cap = capacity.max(16);
            let slots = (0..cap)
                .map(|_| Slot { w0: AtomicU64::new(0), w1: AtomicU64::new(0) })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Ring { slots, cursor: AtomicU64::new(0), floor: AtomicU64::new(0) }
        });
        ring.floor.store(ring.cursor.load(Ordering::Acquire), Ordering::Release);
        ENABLED.store(true, Ordering::Release);
    }

    /// Stop recording. The already-recorded events stay drainable.
    pub fn disable() {
        ENABLED.store(false, Ordering::Release);
    }

    /// Forget all recorded events (recording state is unchanged).
    pub fn reset() {
        if let Some(ring) = RING.get() {
            ring.floor.store(ring.cursor.load(Ordering::Acquire), Ordering::Release);
        }
    }

    /// Events recorded since the last reset/enable (may exceed the ring
    /// capacity; the excess was overwritten).
    pub fn recorded() -> u64 {
        match RING.get() {
            Some(r) => {
                r.cursor.load(Ordering::Acquire).saturating_sub(r.floor.load(Ordering::Acquire))
            }
            None => 0,
        }
    }

    /// Events overwritten by ring wrap-around since the last reset.
    pub fn dropped() -> u64 {
        match RING.get() {
            Some(r) => Self::recorded().saturating_sub(r.slots.len() as u64),
            None => 0,
        }
    }

    /// Timestamp helper for instrumentation sites: `None` (and therefore a
    /// no-op [`SolveTrace::finish`]) when tracing is off.
    #[inline(always)]
    pub fn start() -> Option<Instant> {
        if Self::is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record an event timed from a [`SolveTrace::start`] stamp. A `None`
    /// stamp (tracing was off at `start`) records nothing.
    #[inline]
    pub fn finish(t0: Option<Instant>, kind: EventKind, id: u32, rows: u32, chunks: u16) {
        if let Some(t0) = t0 {
            Self::record(TraceEvent {
                kind,
                id,
                rows,
                chunks,
                ns: t0.elapsed().as_nanos().min(NS_MAX as u128) as u64,
            });
        }
    }

    /// Record a fully-formed event. No-op when tracing is disabled; never
    /// allocates.
    #[inline]
    pub fn record(ev: TraceEvent) {
        if !Self::is_enabled() {
            return;
        }
        let Some(ring) = RING.get() else { return };
        let seq = ring.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(seq % ring.slots.len() as u64) as usize];
        let (w0, w1) = pack(&ev);
        slot.w0.store(w0, Ordering::Relaxed);
        slot.w1.store(w1, Ordering::Relaxed);
    }

    /// Read the recorded events in chronological order and reset the ring.
    ///
    /// Meant for quiescent points (after a solve returns). Events still
    /// being written by a racing recorder may decode to an unknown kind and
    /// are skipped.
    pub fn drain() -> Vec<TraceEvent> {
        let out = Self::snapshot();
        Self::reset();
        out
    }

    /// As [`SolveTrace::drain`] without resetting.
    pub fn snapshot() -> Vec<TraceEvent> {
        let Some(ring) = RING.get() else { return Vec::new() };
        let cur = ring.cursor.load(Ordering::Acquire);
        let floor = ring.floor.load(Ordering::Acquire);
        let cap = ring.slots.len() as u64;
        let lo = floor.max(cur.saturating_sub(cap));
        let mut out = Vec::with_capacity((cur - lo) as usize);
        for seq in lo..cur {
            let slot = &ring.slots[(seq % cap) as usize];
            let w0 = slot.w0.load(Ordering::Acquire);
            let w1 = slot.w1.load(Ordering::Acquire);
            if let Some(ev) = unpack(w0, w1) {
                out.push(ev);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Trace state is process-global; tests touching it must not interleave.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn pack_roundtrips_all_fields() {
        let ev = TraceEvent {
            kind: EventKind::BlockTri,
            id: 123_456,
            rows: u32::MAX,
            chunks: 999,
            ns: 1_234_567_890_123,
        };
        let (w0, w1) = pack(&ev);
        assert_eq!(unpack(w0, w1), Some(ev));
    }

    #[test]
    fn pack_saturates_oversized_fields() {
        let ev = TraceEvent {
            kind: EventKind::SerialRun,
            id: u32::MAX,
            rows: 7,
            chunks: 3,
            ns: u64::MAX,
        };
        let (w0, w1) = pack(&ev);
        let got = unpack(w0, w1).unwrap();
        assert_eq!(got.id, ID_MAX);
        assert_eq!(got.ns, NS_MAX);
        assert_eq!(got.rows, 7);
    }

    #[test]
    fn unknown_kind_is_skipped() {
        assert_eq!(unpack(0, 0), None);
        assert_eq!(unpack(200u64 << 56, 0), None);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let _g = locked();
        SolveTrace::disable();
        assert!(SolveTrace::start().is_none());
        let before = SolveTrace::recorded();
        SolveTrace::record(TraceEvent {
            kind: EventKind::Gather,
            id: 0,
            rows: 1,
            chunks: 0,
            ns: 5,
        });
        assert_eq!(SolveTrace::recorded(), before);
    }

    #[test]
    fn enable_record_drain_roundtrip() {
        let _g = locked();
        SolveTrace::enable();
        SolveTrace::reset();
        for i in 0..5u32 {
            SolveTrace::record(TraceEvent {
                kind: EventKind::ParallelRun,
                id: i,
                rows: 10 * i,
                chunks: i as u16,
                ns: 100 + i as u64,
            });
        }
        let evs: Vec<_> = SolveTrace::drain()
            .into_iter()
            .filter(|e| e.kind == EventKind::ParallelRun && e.ns >= 100 && e.ns < 105)
            .collect();
        SolveTrace::disable();
        assert_eq!(evs.len(), 5);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.id, i as u32);
            assert_eq!(e.rows, 10 * i as u32);
        }
        // Drained: a second drain of the same window is empty.
        assert_eq!(SolveTrace::recorded(), 0);
    }

    #[test]
    fn ring_keeps_most_recent_events_on_wrap() {
        let _g = locked();
        SolveTrace::enable(); // ring capacity fixed by first enable in process
        SolveTrace::reset();
        let cap = RING.get().unwrap().slots.len() as u64;
        let total = cap + 37;
        for i in 0..total {
            SolveTrace::record(TraceEvent {
                kind: EventKind::SerialRun,
                id: (i % 1000) as u32,
                rows: 1,
                chunks: 0,
                ns: i.min(NS_MAX),
            });
        }
        assert_eq!(SolveTrace::recorded(), total);
        assert_eq!(SolveTrace::dropped(), 37);
        let evs = SolveTrace::drain();
        SolveTrace::disable();
        assert_eq!(evs.len() as u64, cap, "wrap keeps exactly one lap");
        assert_eq!(evs.last().unwrap().ns, total - 1, "newest event survives");
        assert_eq!(evs[0].ns, 37, "oldest surviving event is the wrap point");
    }

    #[test]
    fn start_finish_measures_elapsed_time() {
        let _g = locked();
        SolveTrace::enable();
        SolveTrace::reset();
        let t0 = SolveTrace::start();
        assert!(t0.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        SolveTrace::finish(t0, EventKind::StoreRead, 0, 42, 0);
        let evs = SolveTrace::drain();
        SolveTrace::disable();
        let ev = evs.iter().find(|e| e.kind == EventKind::StoreRead).expect("event recorded");
        assert!(ev.ns >= 1_000_000, "slept 2ms, recorded {}ns", ev.ns);
        assert_eq!(ev.rows, 42);
    }
}
