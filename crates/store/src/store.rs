//! Directory-backed plan store with atomic writes.
//!
//! One plan per file, named after the [`PlanKey`] so lookups are a single
//! `fs::read` with no index to maintain or corrupt. Writes go through a
//! uniquely named temp file in the same directory, `sync_all`, then
//! `rename` — readers never observe a half-written plan, and two processes
//! racing to persist the same key both leave a complete file behind.

use crate::error::StoreError;
use crate::key::PlanKey;
use crate::plan::{
    decode_meta, decode_packed, decode_plan, encode_packed, encode_plan, ArtifactKind, PlanMeta,
};
use recblock::packed::PackedBlocked;
use recblock::{BlockedTri, RecBlockSolver};
use recblock_kernels::trace::{EventKind, SolveTrace};
use recblock_matrix::Scalar;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

/// Wall-clock spent in each phase of a plan load, so callers (and the
/// serve layer's stage histograms) can tell I/O-bound loads apart from
/// decode-bound ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadTimings {
    /// Reading the raw bytes from disk.
    pub read: Duration,
    /// Decoding those bytes into the in-memory plan.
    pub decode: Duration,
}

/// A plan read back from disk.
#[derive(Debug, Clone)]
pub struct LoadedPlan<S> {
    /// The file's META section.
    pub meta: PlanMeta,
    /// The reconstructed plan.
    pub blocked: BlockedTri<S>,
    /// On-disk size of the file, in bytes.
    pub bytes: usize,
    /// How long the read and decode phases took.
    pub timings: LoadTimings,
}

impl<S: Scalar> LoadedPlan<S> {
    /// Wrap the plan as a [`RecBlockSolver`], carrying the original build
    /// cost so `preprocess_time()` still reports what a cold build costs.
    pub fn into_solver(self) -> RecBlockSolver<S> {
        let prep = Duration::from_secs_f64(self.meta.build_cost.max(0.0));
        RecBlockSolver::from_blocked(self.blocked, prep)
    }
}

/// One plan file found by a directory scan.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Full path of the file.
    pub path: PathBuf,
    /// Its META section.
    pub meta: PlanMeta,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-modified time (used to warm newest-first).
    pub modified: SystemTime,
}

/// A directory of persisted plans.
#[derive(Debug, Clone)]
pub struct PlanStore {
    dir: PathBuf,
}

/// Distinguishes concurrent writers within one process; combined with the
/// pid to distinguish processes.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl PlanStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(PlanStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical file name for `key`: readable, unique per key, stable
    /// across processes.
    pub fn file_name(key: &PlanKey, kind: ArtifactKind) -> String {
        format!(
            "{}x{}-{}nnz-{:016x}-{:016x}.{}",
            key.structure.nrows,
            key.structure.ncols,
            key.structure.nnz,
            key.structure.hash,
            key.values,
            kind.extension()
        )
    }

    /// Where the plan for `key` lives (whether or not it exists yet).
    pub fn path_for(&self, key: &PlanKey, kind: ArtifactKind) -> PathBuf {
        self.dir.join(Self::file_name(key, kind))
    }

    /// Persist a built plan. Returns the final path.
    pub fn save<S: Scalar>(
        &self,
        blocked: &BlockedTri<S>,
        key: &PlanKey,
        build_cost: f64,
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for(key, ArtifactKind::Blocked);
        write_atomic(&path, &encode_plan(blocked, key, build_cost))?;
        Ok(path)
    }

    /// Persist a packed arena. Returns the final path.
    pub fn save_packed<S: Scalar>(
        &self,
        packed: &PackedBlocked<S>,
        key: &PlanKey,
        build_cost: f64,
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for(key, ArtifactKind::Packed);
        write_atomic(&path, &encode_packed(packed, key, build_cost))?;
        Ok(path)
    }

    /// Load the plan for `key`. `Ok(None)` when no file exists for the key
    /// — the one non-error "miss" outcome. Any present-but-unusable file is
    /// a typed error so callers can report *why* before rebuilding.
    pub fn load<S: Scalar>(&self, key: &PlanKey) -> Result<Option<LoadedPlan<S>>, StoreError> {
        let path = self.path_for(key, ArtifactKind::Blocked);
        match fs::metadata(&path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
            Ok(_) => {}
        }
        let loaded = read_plan_file(&path)?;
        if loaded.meta.key != *key {
            return Err(StoreError::FingerprintMismatch { expected: *key, found: loaded.meta.key });
        }
        Ok(Some(loaded))
    }

    /// Remove the plan for `key` if present. Returns whether a file was
    /// deleted.
    pub fn remove(&self, key: &PlanKey) -> Result<bool, StoreError> {
        match fs::remove_file(self.path_for(key, ArtifactKind::Blocked)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Scan the directory for plan files, newest first. Files that fail to
    /// parse are skipped (a corrupt file must not prevent warming the rest);
    /// only the META section is read, so scanning stays cheap even for
    /// large plans.
    pub fn entries(&self) -> Result<Vec<StoreEntry>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            let is_plan = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e == "rbplan" || e == "rbpack");
            if !is_plan {
                continue;
            }
            let Ok(fmeta) = entry.metadata() else { continue };
            let Ok(meta) = inspect_plan_file(&path) else { continue };
            out.push(StoreEntry {
                path,
                meta,
                bytes: fmeta.len(),
                modified: fmeta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        out.sort_by_key(|e| std::cmp::Reverse(e.modified));
        Ok(out)
    }
}

/// Write `bytes` to `path` atomically: unique temp file in the same
/// directory, flush + `sync_all`, then rename over the target.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().ok_or_else(|| {
        StoreError::Io(format!("plan path {} has no parent directory", path.display()))
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("plan"),
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| -> Result<(), StoreError> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Read and fully decode a plan file, timing the two phases separately.
pub fn read_plan_file<S: Scalar>(path: &Path) -> Result<LoadedPlan<S>, StoreError> {
    let tr = SolveTrace::start();
    let t0 = Instant::now();
    let bytes = fs::read(path)?;
    let read = t0.elapsed();
    SolveTrace::finish(tr, EventKind::StoreRead, 0, bytes.len().min(u32::MAX as usize) as u32, 0);
    let td = SolveTrace::start();
    let t1 = Instant::now();
    let (meta, blocked) = decode_plan(&bytes)?;
    let decode = t1.elapsed();
    SolveTrace::finish(
        td,
        EventKind::StoreDecode,
        0,
        meta.key.structure.nrows.min(u32::MAX as usize) as u32,
        0,
    );
    Ok(LoadedPlan { meta, blocked, bytes: bytes.len(), timings: LoadTimings { read, decode } })
}

/// Read and fully decode a packed-arena file.
pub fn read_pack_file<S: Scalar>(path: &Path) -> Result<(PlanMeta, PackedBlocked<S>), StoreError> {
    let bytes = fs::read(path)?;
    decode_packed(&bytes)
}

/// Read only the META section of a plan file (either artifact kind).
pub fn inspect_plan_file(path: &Path) -> Result<PlanMeta, StoreError> {
    // META sits within the first few hundred bytes; reading the whole file
    // just to inspect it would defeat the cheap-scan goal for large plans.
    use std::io::Read as _;
    let mut f = fs::File::open(path)?;
    let mut head = vec![0u8; 4096];
    let mut filled = 0;
    while filled < head.len() {
        let got = f.read(&mut head[filled..])?;
        if got == 0 {
            break;
        }
        filled += got;
    }
    head.truncate(filled);
    decode_meta(&head)
}
