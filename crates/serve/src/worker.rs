//! Worker threads: drain batches, run the fused multi-RHS solve, answer.

use crate::batch::{Batch, BatchQueue, Pending};
use crate::error::ServeError;
use crate::metrics::{Metrics, Stage};
use recblock::blocked::SolveWorkspace;
use recblock_kernels::sptrsm::MultiVector;
use recblock_matrix::Scalar;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Instant;

/// Buffers one worker reuses across batches: the gathered input block, the
/// solved output block, a single-RHS scratch, and the engine's
/// [`SolveWorkspace`]. Whenever the `(n, k)` shape repeats — the common
/// case of a stream of same-matrix requests — the steady state allocates
/// nothing: each answer is written back into the request's own rhs buffer,
/// which the transport layer recycles.
struct WorkerBuffers<S> {
    input: Option<MultiVector<S>>,
    out: Option<MultiVector<S>>,
    single: Vec<S>,
    ws: SolveWorkspace<S>,
}

pub(crate) fn run<S: Scalar>(queue: Arc<BatchQueue<S>>, metrics: Arc<Metrics>, max_batch: usize) {
    let mut bufs =
        WorkerBuffers { input: None, out: None, single: Vec::new(), ws: SolveWorkspace::new() };
    while let Some(batch) = queue.next_batch(max_batch) {
        solve_batch(batch, &metrics, &mut bufs);
    }
}

fn ensure_shape<S: Scalar>(slot: &mut Option<MultiVector<S>>, n: usize, k: usize) {
    if !matches!(slot, Some(m) if m.n() == n && m.k() == k) {
        *slot = Some(MultiVector::zeros(n, k));
    }
}

fn solve_batch<S: Scalar>(batch: Batch<S>, metrics: &Metrics, bufs: &mut WorkerBuffers<S>) {
    let k = batch.requests.len();
    metrics.record_batch(k);
    for req in &batch.requests {
        metrics.record_stage(Stage::QueueWait, req.submitted.elapsed());
    }
    let n = batch.plan.n();
    let Batch { plan, mut requests } = batch;

    // The compute phase runs under an unwind guard: a panic in the
    // solver (or an injected `serve_dispatch`/`exec_chunk` fault) must
    // cost this batch, not the process. Crucially the guard only
    // *borrows* `requests` — delivery happens after it, so a poisoned
    // batch still answers every request with a typed error instead of
    // dropping replies on the floor.
    let computed =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<(), ServeError> {
            if recblock_faults::fires(recblock_faults::FaultPoint::ServeDispatch) {
                panic!("injected fault: serve_dispatch");
            }
            if k == 1 {
                let req = &mut requests[0];
                let t0 = Instant::now();
                let r = (|| -> Result<(), ServeError> {
                    bufs.single.resize(n, S::ZERO);
                    plan.solve_into(&req.rhs, &mut bufs.single, &mut bufs.ws)?;
                    // Answer in the request's own buffer so the submitter
                    // (e.g. the network event loop) can recycle it.
                    req.rhs.copy_from_slice(&bufs.single);
                    Ok(())
                })();
                metrics.record_stage(Stage::Solve, t0.elapsed());
                r
            } else {
                gather_and_solve(&plan, &mut requests, n, k, bufs, metrics)
            }
        }));
    let result = match computed {
        Ok(r) => r,
        Err(_) => {
            metrics.worker_panics.fetch_add(1, Relaxed);
            Err(ServeError::WorkerPanic)
        }
    };
    for req in requests {
        finish(metrics, req, result.clone());
    }
}

fn gather_and_solve<S: Scalar>(
    plan: &recblock::RecBlockSolver<S>,
    requests: &mut [Pending<S>],
    n: usize,
    k: usize,
    bufs: &mut WorkerBuffers<S>,
    metrics: &Metrics,
) -> Result<(), ServeError> {
    for req in requests.iter() {
        if req.rhs.len() != n {
            return Err(recblock_matrix::MatrixError::DimensionMismatch {
                what: "batched rhs rows",
                expected: n,
                actual: req.rhs.len(),
            }
            .into());
        }
    }
    let t0 = Instant::now();
    ensure_shape(&mut bufs.input, n, k);
    let b = bufs.input.as_mut().expect("just ensured");
    for (j, req) in requests.iter().enumerate() {
        b.col_mut(j).copy_from_slice(&req.rhs);
    }
    ensure_shape(&mut bufs.out, n, k);
    metrics.record_stage(Stage::BatchAssembly, t0.elapsed());
    let out = bufs.out.as_mut().expect("just ensured");
    let t1 = Instant::now();
    plan.solve_multi_ws(&*b, out, &mut bufs.ws)?;
    metrics.record_stage(Stage::Solve, t1.elapsed());
    for (j, req) in requests.iter_mut().enumerate() {
        req.rhs.copy_from_slice(out.col(j));
    }
    Ok(())
}

/// Deliver one answer. On success the solution has already been written
/// into `req.rhs`, which is moved out as the response vector.
fn finish<S: Scalar>(metrics: &Metrics, req: Pending<S>, result: Result<(), ServeError>) {
    let Pending { rhs, reply, submitted } = req;
    let result = match result {
        Ok(()) => {
            metrics.completed.fetch_add(1, Relaxed);
            Ok(rhs)
        }
        Err(e) => {
            metrics.failed.fetch_add(1, Relaxed);
            Err(e)
        }
    };
    metrics.record_latency(submitted.elapsed());
    let t0 = Instant::now();
    reply.deliver(result);
    metrics.record_stage(Stage::Respond, t0.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Pending, Reply};
    use crate::cache::PlanKey;
    use recblock::{RecBlockSolver, SolverOptions};
    use recblock_matrix::generate;
    use std::sync::mpsc;
    use std::time::Instant;

    #[test]
    fn worker_drains_and_answers_then_exits_on_shutdown() {
        let metrics = Arc::new(Metrics::default());
        let queue = Arc::new(BatchQueue::<f64>::new(64, metrics.clone()));
        let l = generate::random_lower::<f64>(300, 4.0, 70);
        let plan = Arc::new(RecBlockSolver::new(&l, SolverOptions::default()).unwrap());
        let key = PlanKey::of(&l);

        let mut rxs = Vec::new();
        for i in 0..5 {
            let (tx, rx) = mpsc::channel();
            let rhs: Vec<f64> = (0..300).map(|r| ((r + i * 37) as f64 * 0.01).cos()).collect();
            queue
                .try_push(
                    key,
                    &plan,
                    Pending { rhs, reply: Reply::Channel(tx), submitted: Instant::now() },
                )
                .unwrap();
            rxs.push(rx);
        }

        let handle = {
            let (q, m) = (queue.clone(), metrics.clone());
            std::thread::spawn(move || run(q, m, 4))
        };
        for rx in rxs {
            let x = rx.recv().unwrap().unwrap();
            assert_eq!(x.len(), 300);
        }
        queue.begin_shutdown();
        handle.join().unwrap();
        assert_eq!(metrics.completed.load(Relaxed), 5);
        assert_eq!(metrics.batched_columns.load(Relaxed), 5);
        assert!(metrics.multi_column_batches.load(Relaxed) >= 1);
        assert_eq!(queue.depth(), 0);
    }
}
