//! Point-to-point plans behind the solve service.
//!
//! Several workers can pick up batches against the *same* cached plan at
//! once; a plan whose level-set blocks compiled a p2p task graph must stay
//! bit-identical under that overlap (the second dispatch on a busy task
//! graph falls back to the level-sync schedule instead of sharing flags).

use recblock_kernels::sptrsv::serial_csr;
use recblock_kernels::ScheduleMode;
use recblock_matrix::generate;
use recblock_serve::{ServeConfig, SolveService};

#[test]
fn p2p_plans_serve_concurrent_requests_bit_identically() {
    let l = generate::kkt_like::<f64>(3000, 1200, 3, 91);
    let n = l.nrows();
    let cfg = ServeConfig::default()
        .with_workers(3)
        .with_max_batch(1) // no coalescing: maximise overlapped solves
        .with_schedule_mode(ScheduleMode::PointToPoint);
    let svc = SolveService::<f64>::new(cfg);

    let mut handles = Vec::new();
    for r in 0..12 {
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.11 + r as f64).sin()).collect();
        let expect = serial_csr(&l, &b).unwrap();
        handles.push((svc.submit(&l, b).unwrap(), expect));
    }
    for (h, expect) in handles {
        assert_eq!(h.wait().unwrap(), expect, "served p2p solve diverged from serial");
    }
    svc.shutdown();
}

#[test]
fn schedule_mode_config_reaches_plan_builds() {
    let cfg = ServeConfig::default().with_schedule_mode(ScheduleMode::LevelSync);
    assert_eq!(cfg.solver.tune.schedule_mode, ScheduleMode::LevelSync);
    let cfg = cfg.with_schedule_mode(ScheduleMode::Auto);
    assert_eq!(cfg.solver.tune.schedule_mode, ScheduleMode::Auto);
}
