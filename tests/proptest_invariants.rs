//! Property-based tests over the core invariants of the suite.
//!
//! Strategy: generate random lower-triangular systems (structure and
//! values), then assert the cross-cutting invariants — every solver agrees
//! with the serial reference, format conversions round-trip, level order is
//! topological, permutations are involutive, blocked storage conserves
//! nonzeros and traffic accounting matches the closed forms.

use proptest::prelude::*;
use recblock::adaptive::Selector;
use recblock::blocked::{BlockedOptions, BlockedTri, DepthRule};
use recblock::column::ColumnBlockSolver;
use recblock::recursive::RecursiveBlockSolver;
use recblock::reorder::recursive_levelset_reorder;
use recblock::row::RowBlockSolver;
use recblock_kernels::sptrsv::{serial_csr, CusparseLikeSolver, LevelSetSolver, SyncFreeSolver};
use recblock_matrix::levelset::LevelSets;
use recblock_matrix::permute::Permutation;
use recblock_matrix::vector::max_rel_diff;
use recblock_matrix::{generate, Csr};

/// Strategy: a random solvable lower-triangular matrix.
fn arb_lower() -> impl Strategy<Value = Csr<f64>> {
    (20usize..300, 0u64..1000, 1u32..60)
        .prop_map(|(n, seed, deg10)| generate::random_lower::<f64>(n, deg10 as f64 / 10.0, seed))
}

/// Strategy: a structured matrix from one of the generator families.
fn arb_structured() -> impl Strategy<Value = Csr<f64>> {
    (0usize..5, 30usize..200, 0u64..500).prop_map(|(family, n, seed)| match family {
        0 => generate::chain::<f64>(n, seed),
        1 => generate::banded::<f64>(n, 4, 0.6, seed),
        2 => generate::kkt_like::<f64>(n.max(40), n.max(40) / 2, 3, seed),
        3 => generate::layered::<f64>(n, (n / 10).max(2), 1.5, generate::LayerShape::Uniform, seed),
        _ => generate::hub_power_law::<f64>(n.max(50), 4, 2, n / 10, seed),
    })
}

fn rhs_for(n: usize, seed: u64) -> Vec<f64> {
    (0..n).map(|i| (((i as u64).wrapping_mul(seed + 7) % 97) as f64) / 48.5 - 1.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_kernels_agree(l in arb_lower(), rhs_seed in 0u64..100) {
        let b = rhs_for(l.nrows(), rhs_seed);
        let reference = serial_csr(&l, &b).unwrap();
        let x1 = LevelSetSolver::new(l.clone()).unwrap().solve(&b).unwrap();
        let x2 = SyncFreeSolver::with_threads(&l, 3).unwrap().solve(&b).unwrap();
        let x3 = CusparseLikeSolver::analyse(l.clone()).unwrap().solve(&b).unwrap();
        prop_assert!(max_rel_diff(&x1, &reference) < 1e-9);
        prop_assert!(max_rel_diff(&x2, &reference) < 1e-9);
        prop_assert!(max_rel_diff(&x3, &reference) < 1e-9);
    }

    #[test]
    fn all_block_algorithms_agree(l in arb_structured(), nseg in 1usize..8, depth in 0usize..4) {
        let b = rhs_for(l.nrows(), 3);
        let reference = serial_csr(&l, &b).unwrap();
        let sel = Selector::default();
        let xc = ColumnBlockSolver::new(&l, nseg, &sel, 2).unwrap().solve(&b).unwrap();
        let xr = RowBlockSolver::new(&l, nseg, &sel, 2).unwrap().solve(&b).unwrap();
        let xq = RecursiveBlockSolver::new(&l, depth, &sel, 2).unwrap().solve(&b).unwrap();
        let opts = BlockedOptions { depth: DepthRule::Fixed(depth), ..BlockedOptions::default() };
        let xb = BlockedTri::build(&l, &opts).unwrap().solve(&b).unwrap();
        prop_assert!(max_rel_diff(&xc, &reference) < 1e-9, "column");
        prop_assert!(max_rel_diff(&xr, &reference) < 1e-9, "row");
        prop_assert!(max_rel_diff(&xq, &reference) < 1e-9, "recursive");
        prop_assert!(max_rel_diff(&xb, &reference) < 1e-9, "blocked");
    }

    #[test]
    fn format_conversions_roundtrip(l in arb_lower()) {
        prop_assert_eq!(&l.to_csc().to_csr(), &l);
        prop_assert_eq!(&l.to_dcsr().to_csr(), &l);
        prop_assert_eq!(&l.transpose().transpose(), &l);
    }

    #[test]
    fn level_order_is_topological(l in arb_structured()) {
        let ls = LevelSets::analyse(&l).unwrap();
        for (i, j, _) in l.iter() {
            if j < i {
                prop_assert!(ls.level_of(j) < ls.level_of(i));
            }
        }
        // Levels partition all components.
        let total: usize = (0..ls.nlevels()).map(|lv| ls.level_size(lv)).sum();
        prop_assert_eq!(total, l.nrows());
    }

    #[test]
    fn reorder_preserves_solution(l in arb_structured(), depth in 0usize..4) {
        let b = rhs_for(l.nrows(), 5);
        let (r, p) = recursive_levelset_reorder(&l, depth).unwrap();
        prop_assert!(r.is_solvable_lower());
        prop_assert_eq!(r.nnz(), l.nnz());
        let y = serial_csr(&r, &p.gather(&b)).unwrap();
        let x = p.scatter(&y);
        let reference = serial_csr(&l, &b).unwrap();
        prop_assert!(max_rel_diff(&x, &reference) < 1e-9);
    }

    #[test]
    fn permutation_gather_scatter_involutive(fwd in proptest::collection::vec(0usize..1000, 1..64)) {
        // Build a valid permutation from the raw vector by ranking.
        let n = fwd.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (fwd[i], i));
        let p = Permutation::from_forward(idx).unwrap();
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
        prop_assert_eq!(p.scatter(&p.gather(&x)), x.clone());
        prop_assert_eq!(p.gather(&p.scatter(&x)), x);
    }

    #[test]
    fn blocked_storage_conserves_nnz(l in arb_structured(), depth in 0usize..4) {
        let opts = BlockedOptions { depth: DepthRule::Fixed(depth), ..BlockedOptions::default() };
        let blocked = BlockedTri::build(&l, &opts).unwrap();
        prop_assert_eq!(blocked.nnz(), l.nnz());
        prop_assert_eq!(blocked.nblocks(), (1usize << (depth + 1)) - 1);
        // Traffic accounting matches the closed forms on any matrix (the
        // counters are structure-independent); odd splits round each square
        // by at most one row/column, so allow one unit of slack per square.
        let parts = 1usize << depth;
        let t = blocked.traffic();
        let slack = parts as f64;
        let b_formula = recblock::traffic::recursive_b_updates(l.nrows(), parts);
        let x_formula = recblock::traffic::recursive_x_loads(l.nrows(), parts);
        prop_assert!((t.b_updates as f64 - b_formula).abs() <= slack);
        prop_assert!((t.x_loads as f64 - x_formula).abs() <= slack);
    }

    #[test]
    fn tuner_candidates_solve_bit_identically(l in arb_structured(), depth in 0usize..3, rhs_seed in 0u64..100) {
        // Every tuning the autotuner's candidate grid may pick must solve
        // bit-identically to the incumbent plan — retuning re-plans the
        // schedule, never the arithmetic — and stay within tolerance of the
        // serial reference.
        let b = rhs_for(l.nrows(), rhs_seed);
        let reference = serial_csr(&l, &b).unwrap();
        let opts = BlockedOptions { depth: DepthRule::Fixed(depth), ..BlockedOptions::default() };
        let plan = BlockedTri::build(&l, &opts).unwrap();
        let incumbent = plan.solve(&b).unwrap();
        prop_assert!(max_rel_diff(&incumbent, &reference) < 1e-9);
        for c in recblock::tune::candidate_grid(plan.tune()) {
            let cand = plan.retuned(c.tune).unwrap();
            prop_assert_eq!(cand.tune(), c.tune, "{}", c.name);
            let x = cand.solve(&b).unwrap();
            for (a, r) in x.iter().zip(&incumbent) {
                prop_assert_eq!(a.to_bits(), r.to_bits(), "candidate {} diverged", c.name);
            }
        }
    }

    #[test]
    fn syncfree_thread_count_invariance(l in arb_lower()) {
        let b = rhs_for(l.nrows(), 11);
        let x1 = SyncFreeSolver::with_threads(&l, 1).unwrap().solve(&b).unwrap();
        let x8 = SyncFreeSolver::with_threads(&l, 8).unwrap().solve(&b).unwrap();
        prop_assert!(max_rel_diff(&x1, &x8) < 1e-9);
    }
}
