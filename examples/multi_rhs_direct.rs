//! Direct-solver solve phase with multiple right-hand sides — the paper's
//! other headline scenario: "one of the most crucial performance
//! bottlenecks of direct solvers with multiple right-hand sides".
//!
//! One preprocessing pass, then 64 right-hand sides solved through the
//! blocked structure; compared against the serial reference for correctness
//! and against re-analysing per solve for cost.
//!
//! Run with: `cargo run --release --example multi_rhs_direct`

use recblock::blocked::DepthRule;
use recblock::solver::{RecBlockSolver, SolverOptions};
use recblock_kernels::sptrsm::MultiVector;
use recblock_kernels::sptrsv::serial_csr;
use recblock_matrix::generate;
use recblock_matrix::vector::max_rel_diff;

fn main() {
    let n = 60_000;
    let k = 64;
    // A KKT-style system: the structure a sparse direct factorisation of an
    // optimisation problem hands to its solve phase.
    let l = generate::kkt_like::<f64>(n, n / 2, 6, 11);
    println!("factor: {} rows, {} nonzeros; {k} right-hand sides", l.nrows(), l.nnz());

    let opts = SolverOptions { depth: DepthRule::Fixed(4), ..SolverOptions::default() };
    let t0 = std::time::Instant::now();
    let solver = RecBlockSolver::new(&l, opts).expect("solvable factor");
    let prep = t0.elapsed();
    println!("preprocessing: {:.1} ms (paid once)", prep.as_secs_f64() * 1e3);

    // Assemble B column-major.
    let data: Vec<f64> =
        (0..n * k).map(|i| ((i * 2_654_435_761) % 1000) as f64 / 500.0 - 1.0).collect();
    let b = MultiVector::from_columns(n, k, data).expect("dimensions");

    // solve_multi picks its strategy adaptively: walk the block list once
    // with all columns (amortising matrix traffic) when the matrix
    // outweighs the right-hand-side batch, or iterate whole solves (keeping
    // one column's vectors cache-hot) when the batch dominates.
    let t1 = std::time::Instant::now();
    let x = solver.solve_multi(&b).expect("solve");
    let solve = t1.elapsed();
    println!(
        "{k} solves: {:.1} ms total, {:.2} ms per rhs",
        solve.as_secs_f64() * 1e3,
        solve.as_secs_f64() * 1e3 / k as f64
    );
    println!(
        "preprocessing amortised over {k} solves: {:.1}% of total time",
        100.0 * prep.as_secs_f64() / (prep.as_secs_f64() + solve.as_secs_f64())
    );

    // Verify a sample of columns against the serial reference.
    for j in [0usize, k / 2, k - 1] {
        let reference = serial_csr(&l, b.col(j)).expect("serial solve");
        let diff = max_rel_diff(x.col(j), &reference);
        println!("column {j:2}: max relative difference vs serial = {diff:.2e}");
        assert!(diff < 1e-10);
    }
    println!("all sampled columns match the serial reference");
}
