//! Regenerate the paper's Figure 4 (SpMV time of the three block algorithms).
//!
//! Pass `--measure` to additionally report CPU wall-clock SpMV-part times.
use recblock_bench::HarnessConfig;
fn main() {
    let cfg = HarnessConfig::default();
    print!("{}", recblock_bench::experiments::figure4::run(&cfg));
    if std::env::args().any(|a| a == "--measure") {
        println!();
        print!(
            "{}",
            recblock_bench::experiments::figure4::run_measured(
                1,
                &recblock_bench::experiments::figure4::PART_COUNTS,
                5
            )
        );
    }
}
