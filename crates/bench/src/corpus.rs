//! The synthetic 159-matrix corpus.
//!
//! The paper evaluates on all 159 SuiteSparse matrices with n ≥ 500 000 and
//! 5 M ≤ nnz ≤ 500 M. Those matrices span a handful of structural families;
//! this module generates a corpus of the same *size and family mix*, scaled
//! down by [`SCALE`] (≈ 1/50 in rows and nonzeros) so the whole sweep runs
//! on a laptop. The scaling is matched in the GPU model by shrinking the
//! device's L2 by the same factor ([`crate::harness`]), preserving the
//! cached/uncached boundary that drives the locality results.
//!
//! Family mix (counts chosen to mirror the SuiteSparse population in the
//! paper's size band): FEM/banded 44, structured grids 24, optimisation/KKT
//! 22, circuit/power-law 26, network/heavy-hitter 15, generic layered DAGs
//! 28 — total 159.

use recblock_matrix::generate::{self, LayerShape};
use recblock_matrix::{Csr, Scalar};

/// Row/nonzero scale-down factor relative to the paper's dataset.
pub const SCALE: usize = 50;

/// Structural family of a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixFamily {
    /// Banded FEM-like structure.
    FemBanded,
    /// 2-D structured grid (wavefront levels).
    Grid,
    /// Optimisation/KKT two-layer structure.
    Kkt,
    /// Circuit-like power-law with a serial tail.
    Circuit,
    /// Network-like power-law (few levels, extreme hubs).
    Network,
    /// Generic layered DAG (controlled level count).
    Layered,
}

impl MatrixFamily {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MatrixFamily::FemBanded => "fem",
            MatrixFamily::Grid => "grid",
            MatrixFamily::Kkt => "kkt",
            MatrixFamily::Circuit => "circuit",
            MatrixFamily::Network => "network",
            MatrixFamily::Layered => "layered",
        }
    }
}

/// One corpus matrix: a named, seeded generator invocation.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable name (`fem_007`, `circuit_012`, …).
    pub name: String,
    /// Structural family.
    pub family: MatrixFamily,
    /// Rows.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
    /// Family-specific shape knob (bandwidth / layers / degree).
    pub knob: usize,
}

impl CorpusEntry {
    /// Build the lower-triangular matrix for this entry.
    pub fn build<S: Scalar>(&self) -> Csr<S> {
        match self.family {
            MatrixFamily::FemBanded => generate::banded(self.n, self.knob, 0.6, self.seed),
            MatrixFamily::Grid => {
                let nx = (self.n as f64).sqrt() as usize;
                let ny = self.n / nx.max(1);
                generate::grid2d(nx.max(2), ny.max(2), self.seed)
            }
            MatrixFamily::Kkt => generate::kkt_like(self.n, self.n / 2, self.knob, self.seed),
            MatrixFamily::Circuit => {
                let base = generate::hub_power_law(
                    self.n,
                    (self.n as f64).sqrt() as usize / 4 + 4,
                    self.knob,
                    self.n / 200,
                    self.seed,
                );
                // Circuit matrices are power-law in both directions: a few
                // enormous rows serialize sync-free atomics.
                generate::with_heavy_rows(&base, 2, self.n / 8, self.seed)
            }
            MatrixFamily::Network => {
                generate::hub_power_law(self.n, 8 + self.knob, 2, 16, self.seed)
            }
            MatrixFamily::Layered => generate::layered(
                self.n,
                self.knob.max(2).min(self.n),
                3.0,
                LayerShape::Uniform,
                self.seed,
            ),
        }
    }
}

/// The full 159-entry corpus, scaled by [`SCALE`]. Deterministic.
pub fn corpus_159() -> Vec<CorpusEntry> {
    corpus_scaled(1)
}

/// The corpus with an *additional* shrink factor on top of [`SCALE`]
/// (used by tests; `extra_shrink = 1` is the real corpus).
pub fn corpus_scaled(extra_shrink: usize) -> Vec<CorpusEntry> {
    let mut out = Vec::with_capacity(159);
    let mut push = |family: MatrixFamily, idx: usize, n: usize, seed: u64, knob: usize| {
        let n = (n / extra_shrink).max(64);
        out.push(CorpusEntry {
            name: format!("{}_{:03}", family.name(), idx),
            family,
            n,
            seed,
            knob,
        });
    };
    // 44 FEM/banded: n 12k–120k, bandwidth 4–20.
    for i in 0..44usize {
        let n = 12_000 + (i * 2_500) % 108_000;
        push(MatrixFamily::FemBanded, i, n, 1_000 + i as u64, 4 + i % 17);
    }
    // 24 grids: n 10k–90k.
    for i in 0..24usize {
        let n = 10_000 + i * 3_400;
        push(MatrixFamily::Grid, i, n, 2_000 + i as u64, 0);
    }
    // 22 KKT: n 20k–240k, coupling degree 3–13.
    for i in 0..22usize {
        let n = 20_000 + i * 10_000;
        push(MatrixFamily::Kkt, i, n, 3_000 + i as u64, 3 + i % 11);
    }
    // 26 circuit power-law: n 15k–140k, 2–5 links/row.
    for i in 0..26usize {
        let n = 15_000 + i * 4_800;
        push(MatrixFamily::Circuit, i, n, 4_000 + i as u64, 2 + i % 4);
    }
    // 15 network heavy-hitter: n 40k–300k.
    for i in 0..15usize {
        let n = 40_000 + i * 17_500;
        push(MatrixFamily::Network, i, n, 5_000 + i as u64, i);
    }
    // 28 layered DAGs: level counts sweeping 2 … ~30k (log spaced).
    for i in 0..28usize {
        let n = 25_000 + (i * 7_000) % 130_000;
        let layers = (2.0f64 * 1.45f64.powi(i as i32)) as usize;
        push(MatrixFamily::Layered, i, n, 6_000 + i as u64, layers.min(n / 2));
    }
    assert_eq!(out.len(), 159);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use recblock_matrix::levelset::LevelSets;

    #[test]
    fn corpus_has_159_unique_names() {
        let c = corpus_159();
        assert_eq!(c.len(), 159);
        let mut names: Vec<&str> = c.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 159);
    }

    #[test]
    fn entries_build_solvable_matrices() {
        // Build a shrunken sample of each family.
        for entry in corpus_scaled(64).iter().step_by(13) {
            let l = entry.build::<f64>();
            assert!(l.is_solvable_lower(), "{} not solvable", entry.name);
            assert!(LevelSets::analyse(&l).is_ok(), "{}", entry.name);
        }
    }

    #[test]
    fn families_span_level_spectrum() {
        let sample = corpus_scaled(16);
        let mut min_levels = usize::MAX;
        let mut max_levels = 0usize;
        for entry in sample.iter().step_by(7) {
            let l = entry.build::<f64>();
            let nl = LevelSets::analyse_unchecked(&l).nlevels();
            min_levels = min_levels.min(nl);
            max_levels = max_levels.max(nl);
        }
        assert!(min_levels <= 4, "min levels {min_levels}");
        assert!(max_levels >= 100, "max levels {max_levels}");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus_159();
        let b = corpus_159();
        assert_eq!(a[17].name, b[17].name);
        assert_eq!(a[17].build::<f64>().nnz(), b[17].build::<f64>().nnz());
    }
}
